//! Thin safe wrappers over the Linux scheduling syscalls SFS uses.
//!
//! The paper's artifact drives `schedtool(8)` from Go; the equivalent raw
//! interface is `sched_setscheduler(2)` plus `/proc/<pid>/stat` polling
//! (what `gopsutil` reads). Everything here degrades gracefully when the
//! process lacks `CAP_SYS_NICE` (as on a typical developer machine):
//! [`probe_rt_permission`] reports whether FIFO promotion is possible, and
//! callers fall back to `nice`-based priorities.
//!
//! The FFI surface is declared by hand (private module `ffi`) instead of
//! pulling in the `libc` crate, so the workspace builds with no external
//! dependencies; `std` already links the C library these symbols live in.

use std::fs;
use std::io;

/// Private FFI declarations for the five C-library entry points this
/// module needs. Linux-only by construction (the whole crate is gated on
/// the `host-linux` feature and `target_os = "linux"`).
mod ffi {
    use std::ffi::{c_int, c_long, c_uint};

    /// Matches glibc's `struct sched_param`.
    #[repr(C)]
    pub struct SchedParam {
        pub sched_priority: c_int,
    }

    /// Matches glibc's `cpu_set_t`: a 1024-bit CPU mask.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct CpuSet {
        pub bits: [u64; 16],
    }

    impl CpuSet {
        pub fn empty() -> CpuSet {
            CpuSet { bits: [0; 16] }
        }

        pub fn set(&mut self, cpu: usize) {
            if cpu < 1024 {
                self.bits[cpu / 64] |= 1u64 << (cpu % 64);
            }
        }
    }

    pub const SCHED_OTHER: c_int = 0;
    pub const SCHED_FIFO: c_int = 1;
    pub const PRIO_PROCESS: c_int = 0;

    #[cfg(target_arch = "x86_64")]
    pub const SYS_GETTID: c_long = 186;
    #[cfg(target_arch = "aarch64")]
    pub const SYS_GETTID: c_long = 178;

    extern "C" {
        #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
        pub fn syscall(num: c_long, ...) -> c_long;
        /// glibc wrapper, used where the gettid syscall number is unknown.
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        pub fn gettid() -> c_int;
        pub fn sched_setscheduler(pid: c_int, policy: c_int, param: *const SchedParam) -> c_int;
        pub fn sched_getscheduler(pid: c_int) -> c_int;
        pub fn setpriority(which: c_int, who: c_uint, prio: c_int) -> c_int;
        pub fn sched_setaffinity(pid: c_int, cpusetsize: usize, mask: *const CpuSet) -> c_int;
    }
}

/// Linux thread id.
pub type Tid = i32;

/// `SCHED_OTHER` (CFS), as returned by [`get_policy`].
pub const SCHED_OTHER: i32 = ffi::SCHED_OTHER;
/// `SCHED_FIFO` (real-time), as returned by [`get_policy`].
pub const SCHED_FIFO: i32 = ffi::SCHED_FIFO;

/// The calling thread's kernel tid.
pub fn gettid() -> Tid {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    // SAFETY: gettid has no preconditions and cannot fail.
    unsafe {
        ffi::syscall(ffi::SYS_GETTID) as Tid
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    // SAFETY: as above, via the glibc wrapper.
    unsafe {
        ffi::gettid() as Tid
    }
}

/// Scheduling policy to apply to a live thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPolicy {
    /// `SCHED_FIFO` at the given priority (1..=99). Needs CAP_SYS_NICE.
    Fifo(u8),
    /// `SCHED_OTHER` (CFS) at nice 0.
    Normal,
    /// `SCHED_OTHER` with an explicit nice value (fallback priority lever
    /// when RT is unavailable).
    Nice(i8),
}

/// Apply a policy to a thread. Returns `Err` with the OS error on failure
/// (most commonly `EPERM` without CAP_SYS_NICE).
pub fn set_policy(tid: Tid, policy: HostPolicy) -> io::Result<()> {
    match policy {
        HostPolicy::Fifo(prio) => {
            let param = ffi::SchedParam {
                sched_priority: prio.clamp(1, 99) as i32,
            };
            // SAFETY: param is a valid sched_param; tid is a live thread id
            // (or 0 for self); the kernel validates everything else.
            let rc = unsafe { ffi::sched_setscheduler(tid, ffi::SCHED_FIFO, &param) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }
        HostPolicy::Normal => {
            let param = ffi::SchedParam { sched_priority: 0 };
            // SAFETY: as above.
            let rc = unsafe { ffi::sched_setscheduler(tid, ffi::SCHED_OTHER, &param) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }
        HostPolicy::Nice(n) => {
            // SAFETY: setpriority with PRIO_PROCESS and a tid is the
            // documented way to renice a single thread on Linux.
            let rc = unsafe { ffi::setpriority(ffi::PRIO_PROCESS, tid as u32, n as i32) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }
    }
}

/// The policy a thread currently runs under, as reported by the kernel.
pub fn get_policy(tid: Tid) -> io::Result<i32> {
    // SAFETY: no memory is passed; the kernel validates tid.
    let rc = unsafe { ffi::sched_getscheduler(tid) };
    if rc >= 0 {
        Ok(rc)
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Pin a thread to one CPU (used by tests/examples to create contention on
/// a single core deterministically).
pub fn pin_to_cpu(tid: Tid, cpu: usize) -> io::Result<()> {
    let mut set = ffi::CpuSet::empty();
    set.set(cpu);
    // SAFETY: set is fully initialised and outlives the call.
    let rc = unsafe { ffi::sched_setaffinity(tid, std::mem::size_of::<ffi::CpuSet>(), &set) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Whether this process may promote threads to `SCHED_FIFO` (tries it on
/// the calling thread and reverts).
pub fn probe_rt_permission() -> bool {
    let tid = gettid();
    match set_policy(tid, HostPolicy::Fifo(1)) {
        Ok(()) => {
            let _ = set_policy(tid, HostPolicy::Normal);
            true
        }
        Err(_) => false,
    }
}

/// A `/proc/<pid>/task/<tid>/stat` snapshot — the fields SFS's monitor
/// reads (state char, utime, stime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadStat {
    /// Kernel state: 'R' running/runnable, 'S' sleeping, 'D' disk wait,
    /// 'Z' zombie, ...
    pub state: char,
    /// User-mode CPU time in clock ticks.
    pub utime_ticks: u64,
    /// Kernel-mode CPU time in clock ticks.
    pub stime_ticks: u64,
}

impl ThreadStat {
    /// Whether the thread is off-CPU waiting (what SFS's I/O detection
    /// looks for, §V-D).
    pub fn is_sleeping(self) -> bool {
        matches!(self.state, 'S' | 'D')
    }
}

/// Read a thread's stat line (the poll SFS performs every 4 ms).
pub fn read_thread_stat(tid: Tid) -> io::Result<ThreadStat> {
    let path = format!("/proc/{}/task/{}/stat", std::process::id(), tid);
    let content = fs::read_to_string(path)?;
    parse_stat_line(&content)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed stat line"))
}

/// Parse a `/proc/.../stat` line. The comm field may contain spaces and
/// parentheses, so fields are located after the *last* `)`.
pub fn parse_stat_line(line: &str) -> Option<ThreadStat> {
    let after = line.get(line.rfind(')')? + 2..)?;
    let fields: Vec<&str> = after.split_whitespace().collect();
    // after the comm field: state is field 0; utime/stime are fields 11/12
    // (stat fields 14/15 in proc(5) numbering).
    let state = fields.first()?.chars().next()?;
    let utime = fields.get(11)?.parse().ok()?;
    let stime = fields.get(12)?.parse().ok()?;
    Some(ThreadStat {
        state,
        utime_ticks: utime,
        stime_ticks: stime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gettid_is_stable_within_a_thread() {
        let a = gettid();
        let b = gettid();
        assert_eq!(a, b);
        assert!(a > 0);
        let other = std::thread::spawn(gettid).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn parse_stat_handles_spaces_in_comm() {
        let line = "1234 (my (weird) comm) R 1 2 3 4 5 6 7 8 9 10 42 43 14 15 16 17 18 19 20";
        let st = parse_stat_line(line).unwrap();
        assert_eq!(st.state, 'R');
        assert_eq!(st.utime_ticks, 42);
        assert_eq!(st.stime_ticks, 43);
        assert!(!st.is_sleeping());
    }

    #[test]
    fn parse_stat_rejects_garbage() {
        assert!(parse_stat_line("not a stat line").is_none());
        assert!(parse_stat_line("1 (x) R").is_none());
        assert!(parse_stat_line("").is_none());
        assert!(parse_stat_line("1234 (comm)").is_none());
        // Non-numeric utime.
        assert!(
            parse_stat_line("1 (c) R 1 2 3 4 5 6 7 8 9 10 xx 43 14 15 16 17 18 19 20").is_none()
        );
    }

    #[test]
    fn parse_stat_real_kernel_line() {
        // A real(ish) stat line shape from a modern kernel (52 fields).
        let line = "12345 (kworker/0:1-events) I 2 0 0 0 -1 69238880 0 0 0 0                     17 29 0 0 20 0 1 0 123456 0 0 18446744073709551615 0 0 0 0 0 0                     0 2147483647 0 1 0 0 17 0 0 0 0 0 0 0 0 0 0 0 0 0 0";
        let st = parse_stat_line(line).unwrap();
        assert_eq!(st.state, 'I');
        assert_eq!(st.utime_ticks, 17);
        assert_eq!(st.stime_ticks, 29);
        assert!(!st.is_sleeping(), "idle kworker is not S/D");
    }

    #[test]
    fn sleeping_states_cover_s_and_d() {
        for (ch, sleeping) in [
            ('S', true),
            ('D', true),
            ('R', false),
            ('Z', false),
            ('T', false),
        ] {
            let st = ThreadStat {
                state: ch,
                utime_ticks: 0,
                stime_ticks: 0,
            };
            assert_eq!(st.is_sleeping(), sleeping, "state {ch}");
        }
    }

    #[test]
    fn read_own_stat() {
        let st = read_thread_stat(gettid()).expect("own stat must be readable");
        // We are on-CPU reading it.
        assert_eq!(st.state, 'R');
    }

    #[test]
    fn sleeping_thread_reports_s_state() {
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let h = std::thread::spawn(move || {
            tx.send(gettid()).unwrap();
            // Block until the test finishes observing.
            let _ = done_rx.recv();
        });
        let tid = rx.recv().unwrap();
        // Give it a moment to block.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let st = read_thread_stat(tid).expect("peer stat");
        assert!(
            st.is_sleeping(),
            "blocked thread should be sleeping, got {:?}",
            st
        );
        done_tx.send(()).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn get_policy_reports_normal_by_default() {
        let p = get_policy(gettid()).unwrap();
        assert_eq!(p, SCHED_OTHER);
    }

    #[test]
    fn probe_does_not_leave_rt_behind() {
        let _ = probe_rt_permission();
        assert_eq!(get_policy(gettid()).unwrap(), SCHED_OTHER);
    }

    #[test]
    fn fifo_roundtrip_when_permitted() {
        if !probe_rt_permission() {
            eprintln!("skipping: no CAP_SYS_NICE in this environment");
            return;
        }
        let tid = gettid();
        set_policy(tid, HostPolicy::Fifo(10)).unwrap();
        assert_eq!(get_policy(tid).unwrap(), SCHED_FIFO);
        set_policy(tid, HostPolicy::Normal).unwrap();
        assert_eq!(get_policy(tid).unwrap(), SCHED_OTHER);
    }

    #[test]
    fn pin_to_cpu_zero_succeeds() {
        // CPU 0 always exists.
        pin_to_cpu(gettid(), 0).expect("affinity to cpu0");
        // Restore a full mask is not required for the test process.
    }
}
