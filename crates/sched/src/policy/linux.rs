//! The Linux discipline as a [`KernelPolicy`] value: a machine-global RT
//! runqueue (`SCHED_FIFO`/`SCHED_RR`) strictly above per-core CFS
//! runqueues, with wakeup preemption, idle pull-stealing, and balance-tick
//! migration.
//!
//! This is the pre-refactor machine's hard-wired behaviour transplanted
//! verbatim onto the hook seam — the kernel-policy differential suite
//! (`tests/kpolicy_diff.rs`) and the 21 golden snapshots lock it
//! bit-identical.

use sfs_simcore::SimDuration;

use crate::policy::cfs::{weight_of_nice, CfsParams, CfsRunqueue};
use crate::policy::rt::{RtRunqueue, RR_TIMESLICE};
use crate::policy::{rt_band_enqueue, KernelCtx, KernelPolicy, Placed, PreemptKind};
use crate::smp::pick_imbalance;
use crate::task::{Pid, Policy};

/// RT over per-core CFS (see module docs).
#[derive(Debug)]
pub struct LinuxPolicy {
    /// Machine-global real-time queue.
    rt: RtRunqueue,
    /// Per-core CFS runqueues.
    rq: Vec<CfsRunqueue>,
}

impl LinuxPolicy {
    /// The Linux discipline for a machine with `cores` cores.
    pub fn new(cores: usize) -> LinuxPolicy {
        LinuxPolicy {
            rt: RtRunqueue::new(),
            rq: (0..cores).map(|_| CfsRunqueue::new()).collect(),
        }
    }

    /// Runnable CFS load on `core` including a running CFS task.
    fn cfs_nr(&self, ctx: &KernelCtx<'_>, core: usize) -> u64 {
        let running_cfs = ctx
            .current(core)
            .is_some_and(|p| !ctx.policy_of(p).is_realtime());
        self.rq[core].len() as u64 + u64::from(running_cfs)
    }

    /// Wakeup placement + preemption check for a fair-class task.
    fn enqueue_fair(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        // Place on the least-loaded core (by CFS runnable count, counting a
        // running CFS task; cores busy with RT count their queue only).
        let core_id = (0..self.rq.len())
            .min_by_key(|&i| self.cfs_nr(ctx, i))
            .expect("at least one core");
        let floor = self.rq[core_id].place_vruntime(ctx.vruntime(pid));
        ctx.set_vruntime(pid, floor);
        if ctx.home_core(pid) != Some(core_id) && ctx.has_run(pid) {
            ctx.note_migration(pid);
        }
        ctx.set_home_core(pid, Some(core_id));
        let w = ctx.weight_of(pid);
        self.rq[core_id].enqueue(pid, floor, w);

        match ctx.current(core_id) {
            None => Placed::RescheduleIdle(core_id),
            Some(curr) if !ctx.policy_of(curr).is_realtime() => {
                // Wakeup preemption: preempt if the waking task's vruntime
                // lags the current one by more than wakeup_granularity.
                let curr_v = ctx.running_vruntime(core_id, curr);
                let gran = ctx.cfs_params().wakeup_granularity.as_nanos();
                if floor + gran < curr_v {
                    Placed::Preempt(core_id)
                } else {
                    // The runqueue grew: the current task's fair slice
                    // shrank (the kernel's per-tick check_preempt_tick).
                    Placed::RefreshSlice(core_id)
                }
            }
            Some(_) => Placed::Queued, // RT running: CFS task waits.
        }
    }

    /// Idle pull-balancing: take the largest-vruntime task from the most
    /// loaded CFS runqueue.
    fn steal_for(&mut self, ctx: &mut KernelCtx<'_>, core_id: usize) -> Option<Pid> {
        let victim = (0..self.rq.len())
            .filter(|&i| i != core_id && !self.rq[i].is_empty())
            .max_by_key(|&i| self.rq[i].len())?;
        let (v, pid) = self.rq[victim].pop_last()?;
        ctx.note_migration(pid);
        ctx.set_home_core(pid, Some(core_id));
        // Renormalise vruntime onto the thief's queue.
        let placed = self.rq[core_id].place_vruntime(v);
        ctx.set_vruntime(pid, placed);
        Some(pid)
    }
}

impl KernelPolicy for LinuxPolicy {
    fn name(&self) -> &'static str {
        "cfs"
    }

    fn enqueue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        match ctx.policy_of(pid) {
            Policy::Fifo { prio } | Policy::Rr { prio } => {
                rt_band_enqueue(&mut self.rt, ctx, pid, prio, false)
            }
            Policy::Normal { .. } => self.enqueue_fair(ctx, pid),
        }
    }

    fn dequeue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) {
        if ctx.policy_of(pid).is_realtime() {
            self.rt.remove(pid);
        } else if let Some(core_id) = ctx.home_core(pid) {
            let v = ctx.vruntime(pid);
            self.rq[core_id].remove(pid, v);
        }
    }

    fn pick_next(&mut self, ctx: &mut KernelCtx<'_>, core: usize) -> Option<Pid> {
        if let Some((pid, _)) = self.rt.pop() {
            Some(pid)
        } else if let Some((_, pid)) = self.rq[core].pop() {
            Some(pid)
        } else {
            self.steal_for(ctx, core)
        }
    }

    fn requeue_preempted(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        core: usize,
        pid: Pid,
        why: PreemptKind,
    ) {
        match (ctx.policy_of(pid), why) {
            // Round-robin quantum expiry: to the *tail* of the level.
            (Policy::Rr { prio }, PreemptKind::SliceExpired) => self.rt.push_back(pid, prio),
            // A preempted FIFO/RR task resumes at the head of its level.
            (Policy::Fifo { prio } | Policy::Rr { prio }, PreemptKind::Preempted) => {
                self.rt.push_front(pid, prio)
            }
            (Policy::Fifo { prio }, PreemptKind::SliceExpired) => self.rt.push_front(pid, prio),
            (Policy::Normal { .. }, _) => {
                let floor = self.rq[core].place_vruntime(ctx.vruntime(pid));
                ctx.set_vruntime(pid, floor);
                ctx.set_home_core(pid, Some(core));
                let w = ctx.weight_of(pid);
                self.rq[core].enqueue(pid, floor, w);
            }
        }
    }

    fn slice_for(&mut self, ctx: &mut KernelCtx<'_>, core: usize, pid: Pid) -> SimDuration {
        match ctx.policy_of(pid) {
            Policy::Fifo { .. } => SimDuration::MAX,
            Policy::Rr { .. } => RR_TIMESLICE,
            Policy::Normal { nice } => {
                let w = weight_of_nice(nice);
                let nr = self.rq[core].len() as u64 + 1;
                let total = self.rq[core].total_weight() + w as u64;
                ctx.cfs_params().slice(nr, w, total)
            }
        }
    }

    fn refresh_slice(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        core: usize,
        pid: Pid,
    ) -> Option<SimDuration> {
        // Only a running CFS task's slice shrinks as its queue grows; RT
        // quanta are fixed.
        match ctx.policy_of(pid) {
            Policy::Normal { .. } => Some(self.slice_for(ctx, core, pid)),
            _ => None,
        }
    }

    fn task_tick(&mut self, ctx: &mut KernelCtx<'_>, core: usize, pid: Pid, ran: SimDuration) {
        if ctx.policy_of(pid).is_realtime() {
            return;
        }
        let w = ctx.weight_of(pid);
        let v = ctx.vruntime(pid) + CfsParams::vruntime_delta(ran, w);
        ctx.set_vruntime(pid, v);
        let leftmost = self.rq[core].peek().map(|(lv, _)| lv);
        let floor = leftmost.map_or(v, |lv| lv.min(v));
        self.rq[core].advance_min_vruntime(floor);
    }

    fn has_competition(&self, _ctx: &KernelCtx<'_>, core: usize) -> bool {
        !self.rt.is_empty()
            || !self.rq[core].is_empty()
            // Another queue could be stolen from if we vacate.
            || self
                .rq
                .iter()
                .enumerate()
                .any(|(i, q)| i != core && q.len() > 1)
    }

    fn has_waiters(&self, _ctx: &KernelCtx<'_>) -> bool {
        !self.rt.is_empty() || self.rq.iter().any(|q| !q.is_empty())
    }

    fn demotes_on_change(&self, old: Policy, new: Policy) -> bool {
        // Demotion RT → CFS (SFS FILTER expiry) forces the task off-core;
        // promotion or same-class changes keep it and reslice.
        old.is_realtime() && !new.is_realtime()
    }

    fn participates_in_balance(&self) -> bool {
        true
    }

    fn balance(&mut self, ctx: &mut KernelCtx<'_>) -> Option<Placed> {
        let depths: Vec<u64> = self.rq.iter().map(|q| q.len() as u64).collect();
        let (src, dst) = pick_imbalance(&depths, ctx.smp_params().balance_threshold)?;
        // Pull from the tail: the task that would run last on the busy
        // core loses the least cache state by moving (same choice as the
        // idle-steal path).
        let (v, pid) = self.rq[src].pop_last()?;
        ctx.note_migration(pid);
        ctx.add_migration_cost(pid, ctx.smp_params().migration_cost);
        let placed = self.rq[dst].place_vruntime(v);
        ctx.set_vruntime(pid, placed);
        ctx.set_home_core(pid, Some(dst));
        let w = ctx.weight_of(pid);
        self.rq[dst].enqueue(pid, placed, w);
        match ctx.current(dst) {
            // An idle destination (only possible transiently, e.g. a tick
            // coinciding with a completion) starts the migrant at once.
            None => Some(Placed::RescheduleIdle(dst)),
            // The destination queue grew: its running CFS task's fair
            // slice shrank, exactly as on a wakeup enqueue.
            Some(curr) if !ctx.policy_of(curr).is_realtime() => Some(Placed::RefreshSlice(dst)),
            Some(_) => Some(Placed::Queued),
        }
    }

    fn queue_depth(&self, core: usize) -> usize {
        self.rq[core].len()
    }

    fn rt_depth(&self) -> usize {
        self.rt.len()
    }

    fn queued_places(&self, pid: Pid) -> usize {
        self.rq.iter().filter(|q| q.contains(pid)).count() + usize::from(self.rt.contains(pid))
    }
}
