//! Fig. 1: CDF of the average function execution duration of Azure
//! Functions traces.
//!
//! Regenerates the paper's motivation figure from the synthetic Azure
//! population (see `sfs_workload::azure` for the substitution note). The
//! printed checkpoints are the quantile claims from §IV-A.

use sfs_bench::{banner, save, section, Sweep};
use sfs_metrics::{cdf_chart, MarkdownTable};
use sfs_simcore::SimRng;
use sfs_workload::azure;

fn main() {
    let n = sfs_bench::n_requests(100_000);
    let seed = sfs_bench::seed();
    banner("Fig. 1", "CDF of Azure function durations", n, seed);

    // A single scenario: population sampling is the whole experiment.
    let mut sweep = Sweep::new("fig01", seed);
    sweep.scenario("azure population", move |_| {
        let mut rng = SimRng::seed_from_u64(seed);
        azure::sample_population(n, &mut rng)
    });
    let mut pop = sweep.run().remove(0).value;

    section("paper checkpoints (§IV-A)");
    let mut t = MarkdownTable::new(&["duration", "paper CDF", "measured CDF"]);
    for (label, ms, expect) in [
        ("300 ms", 300.0, 0.372),
        ("1 s", 1_000.0, 0.572),
        ("224 s", 224_000.0, 0.999),
    ] {
        t.row(&[
            label.into(),
            format!("{expect:.3}"),
            format!("{:.3}", pop.fraction_below(ms)),
        ]);
    }
    println!("{}", t.to_markdown());

    section("duration CDF (log-x)");
    let values = pop.raw().to_vec();
    println!(
        "{}",
        cdf_chart(&[("azure durations (ms)", &values)], 64, 16)
    );

    let cdf = pop.cdf(200);
    save("fig01_azure_cdf.csv", &cdf.to_csv());

    let span = pop.quantile(0.9999) / pop.quantile(0.0001);
    println!(
        "duration span p0.01..p99.99: {:.1} orders of magnitude",
        span.log10()
    );
}
