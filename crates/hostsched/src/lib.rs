//! # sfs-host — live-Linux scheduling backend
//!
//! The real-OS counterpart of the simulator: the repro target's
//! `schedtool`/`gopsutil` toolchain rebuilt on hand-written Linux FFI:
//!
//! * `sys` — `sched_setscheduler(2)` / `setpriority(2)` /
//!   `sched_setaffinity(2)` wrappers and `/proc/<tid>/stat` parsing;
//! * `function` — calibrated busy-loop "function" threads;
//! * `live` — a demo-grade live SFS (FILTER promote → slice → demote),
//!   with a `nice`-based fallback when CAP_SYS_NICE is unavailable, and the
//!   Table-II poll-cost measurement.
//!
//! Figures are generated from the deterministic simulator; this crate
//! demonstrates that the mechanism drives a real kernel and measures the
//! real polling overhead.
//!
//! ## Feature gating
//!
//! Everything in this crate needs Linux scheduler syscalls, so the whole
//! backend sits behind the off-by-default `host-linux` cargo feature (and
//! compiles only on `target_os = "linux"`). The default build is an empty,
//! hermetic shell: consumers such as the `table2_overhead` bench binary
//! and the `live_host` example probe the feature and degrade gracefully.
//! Enable with e.g. `cargo test -p sfs-host --features host-linux`.

#[cfg(all(feature = "host-linux", target_os = "linux"))]
pub mod function;
#[cfg(all(feature = "host-linux", target_os = "linux"))]
pub mod live;
#[cfg(all(feature = "host-linux", target_os = "linux"))]
pub mod sys;

#[cfg(all(feature = "host-linux", target_os = "linux"))]
pub use function::{LiveFunction, LiveOutcome, LiveSpec};
#[cfg(all(feature = "host-linux", target_os = "linux"))]
pub use live::{measure_poll_cost, run_live_sfs, LiveRun, LiveSfsConfig, PriorityLever};
#[cfg(all(feature = "host-linux", target_os = "linux"))]
pub use sys::{
    get_policy, gettid, parse_stat_line, pin_to_cpu, probe_rt_permission, read_thread_stat,
    set_policy, HostPolicy, ThreadStat, Tid,
};

/// Whether the live backend is compiled into this build.
///
/// `false` means the crate was built without the `host-linux` feature (or
/// for a non-Linux target) and none of the live APIs exist.
pub const LIVE_BACKEND_AVAILABLE: bool = cfg!(all(feature = "host-linux", target_os = "linux"));
