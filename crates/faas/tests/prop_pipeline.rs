//! Property-style tests for the dispatch pipeline and container pool.
//!
//! Randomised cases come from the workspace's seeded [`SimRng`] (no
//! proptest dependency): a fixed number of cases from a fixed seed, so
//! failures are exactly reproducible.

use sfs_faas::{Pipeline, Stage};
use sfs_simcore::{SimDuration, SimRng, SimTime};

const CASES: u64 = 48;

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::seed_from_u64(0xFAA5)
        .derive(test)
        .derive(&case.to_string())
}

/// Every request exits after its arrival plus at least the unjittered
/// minimum service, and no request is lost.
#[test]
fn stage_respects_capacity_and_causality() {
    for case in 0..CASES {
        let mut rng = case_rng("stage_capacity", case);
        let n = rng.uniform_u64(1, 199) as usize;
        let servers = rng.uniform_u64(1, 5) as usize;
        let service_ms = rng.uniform_u64(1, 49);
        let mut sorted: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 9_999)).collect();
        sorted.sort_unstable();
        let times: Vec<SimTime> = sorted
            .iter()
            .map(|&ms| SimTime::ZERO + SimDuration::from_millis(ms))
            .collect();
        let stage = Stage::new("s", servers, SimDuration::from_millis(service_ms), 0.0);
        let mut srng = SimRng::seed_from_u64(1);
        let exits = stage.process(&times, &mut srng);
        assert_eq!(exits.len(), times.len(), "case {case}");
        for (a, e) in times.iter().zip(exits.iter()) {
            assert!(
                *e >= *a + SimDuration::from_millis(service_ms),
                "exit before minimum service (case {case})"
            );
        }
        // FCFS with a single server: exits are sorted.
        if servers == 1 {
            let mut prev = SimTime::ZERO;
            for &e in exits.iter() {
                assert!(e >= prev, "single-server exits out of order (case {case})");
                prev = e;
            }
        }
    }
}

/// A multi-stage pipeline preserves request count and causality.
#[test]
fn pipeline_composes() {
    for case in 0..CASES {
        let mut rng = case_rng("pipeline_composes", case);
        let n = rng.uniform_u64(1, 149) as usize;
        let s1 = rng.uniform_u64(1, 9);
        let s2 = rng.uniform_u64(1, 9);
        let times: Vec<SimTime> = (0..n)
            .map(|i| SimTime::ZERO + SimDuration::from_millis(i as u64 * 3))
            .collect();
        let p = Pipeline::new()
            .stage(Stage::new("a", 2, SimDuration::from_millis(s1), 0.0))
            .stage(Stage::new("b", 3, SimDuration::from_millis(s2), 0.0));
        let mut srng = SimRng::seed_from_u64(9);
        let out = p.process(&times, &mut srng);
        assert_eq!(out.len(), n, "case {case}");
        for (a, e) in times.iter().zip(out.iter()) {
            assert!(
                *e >= *a + SimDuration::from_millis(s1 + s2),
                "pipeline exit beats sum of stage services (case {case})"
            );
        }
    }
}
