//! The offline oracle as a [`KernelPolicy`] value: preemptive Shortest
//! Remaining (CPU) Time First over one machine-global pool. Task policy
//! classes are ignored. Bit-for-bit the pre-refactor `SchedMode::Srtf`.

use std::collections::BTreeSet;

use sfs_simcore::SimDuration;

use crate::policy::{KernelCtx, KernelPolicy, Placed, PreemptKind};
use crate::task::Pid;

/// Preemptive SRTF (see module docs).
#[derive(Debug, Default)]
pub struct SrtfPolicy {
    /// Waiting pool keyed by (remaining CPU ns, pid).
    pool: BTreeSet<(u64, Pid)>,
}

impl SrtfPolicy {
    /// An empty SRTF oracle.
    pub fn new() -> SrtfPolicy {
        SrtfPolicy::default()
    }
}

impl KernelPolicy for SrtfPolicy {
    fn name(&self) -> &'static str {
        "srtf"
    }

    fn enqueue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        let rem = ctx.remaining_cpu(pid).as_nanos();
        self.pool.insert((rem, pid));
        // Dispatch to an idle core, else preempt the core running the
        // largest-remaining task if we beat it.
        if let Some(idle) = (0..ctx.nr_cores()).find(|&i| ctx.current(i).is_none()) {
            return Placed::RescheduleIdle(idle);
        }
        let remaining_running = |i: usize| {
            let vpid = ctx.current(i).expect("no idle cores");
            ctx.remaining_cpu(vpid)
                .as_nanos()
                .saturating_sub(ctx.inflight(i).as_nanos())
        };
        let victim = (0..ctx.nr_cores()).max_by_key(|&i| remaining_running(i));
        if let Some(vc) = victim {
            if remaining_running(vc) > rem {
                return Placed::Preempt(vc);
            }
        }
        Placed::Queued
    }

    fn dequeue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) {
        let key = (ctx.remaining_cpu(pid).as_nanos(), pid);
        self.pool.remove(&key);
    }

    fn pick_next(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize) -> Option<Pid> {
        self.pool.pop_first().map(|(_, p)| p)
    }

    fn requeue_preempted(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        _core: usize,
        pid: Pid,
        _why: PreemptKind,
    ) {
        let rem = ctx.remaining_cpu(pid).as_nanos();
        self.pool.insert((rem, pid));
    }

    fn slice_for(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize, _pid: Pid) -> SimDuration {
        SimDuration::MAX // run to block; SRTF never slices
    }

    fn task_tick(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize, _pid: Pid, _ran: SimDuration) {}

    fn has_competition(&self, _ctx: &KernelCtx<'_>, _core: usize) -> bool {
        // Unsliced policies never reach slice-expiry arbitration (the
        // machine re-arms unsliced boundaries in place).
        false
    }

    fn has_waiters(&self, _ctx: &KernelCtx<'_>) -> bool {
        !self.pool.is_empty()
    }

    fn policy_change_inert(&self) -> bool {
        true // the oracle ignores policy classes
    }

    fn queue_depth(&self, _core: usize) -> usize {
        0 // no per-core fair queues
    }

    fn queued_places(&self, pid: Pid) -> usize {
        self.pool.iter().filter(|&&(_, p)| p == pid).count()
    }
}
