//! Scenario tests for the SFS scheduler over crafted workloads: FILTER
//! promotion visibility, slice carry-over across I/O blocks, overload
//! threshold arithmetic, and queue-topology behaviour.

use sfs_core::{QueueMode, RunOutcome, SfsConfig, SfsController, Sim, SliceMode};
use sfs_sched::{MachineParams, Phase, Policy, TaskSpec};
use sfs_simcore::{SimDuration, SimTime};
use sfs_workload::{build_task, AppKind, IatSpec, Request, Spike, Workload, WorkloadSpec};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// Hand-build a workload from `(arrival_ms, duration_ms, leading_io_ms)`.
fn craft(rows: &[(u64, f64, Option<f64>)]) -> Workload {
    let requests = rows
        .iter()
        .enumerate()
        .map(|(i, &(at, dur, io))| {
            let spec = build_task(i as u64, AppKind::Fib, dur, io);
            Request {
                id: i as u64,
                arrival: SimTime::ZERO + ms(at),
                app: AppKind::Fib,
                duration_ms: dur,
                injected_io_ms: io,
                cold_start_ms: None,
                spec,
            }
        })
        .collect();
    Workload { requests }
}

fn run_sfs(cfg: SfsConfig, params: MachineParams, w: Workload) -> RunOutcome {
    Sim::on(params)
        .workload(&w)
        .controller(SfsController::new(cfg))
        .run()
}

fn exact(cores: usize) -> MachineParams {
    MachineParams {
        cores,
        ctx_switch_cost: SimDuration::ZERO,
        ..MachineParams::linux(cores)
    }
}

#[test]
fn short_function_finishes_in_one_filter_round() {
    let w = craft(&[(0, 20.0, None)]);
    let cfg = SfsConfig::new(1).with_fixed_slice(100);
    let r = run_sfs(cfg, exact(1), w);
    let o = &r.outcomes[0];
    assert_eq!(o.filter_rounds, 1);
    assert!(!o.demoted && !o.offloaded);
    assert_eq!(o.ctx_switches, 0);
    assert_eq!(o.turnaround, ms(20));
    assert_eq!(r.telemetry.demoted, 0);
}

#[test]
fn long_function_demoted_exactly_at_slice() {
    // 300ms function, 100ms fixed slice, with a competitor so the demotion
    // actually costs it the core.
    let w = craft(&[(0, 300.0, None), (1, 20.0, None), (2, 20.0, None)]);
    let cfg = SfsConfig::new(1).with_fixed_slice(100);
    let r = run_sfs(cfg, exact(1), w);
    let long = &r.outcomes[0];
    assert!(long.demoted, "300ms > 100ms slice must demote");
    assert_eq!(long.filter_rounds, 1);
    // The two shorts each get a clean FILTER round after the demotion.
    for o in &r.outcomes[1..] {
        assert!(!o.demoted);
        assert_eq!(o.filter_rounds, 1);
    }
    // Shorts run [100,120] and [120,140]; the long resumes around them.
    assert!(r.outcomes[1].finished <= SimTime::ZERO + ms(125));
}

#[test]
fn filter_runs_under_fifo_policy() {
    // Mid-flight, a FILTER function must be SCHED_FIFO at the configured
    // priority; after demotion it must be SCHED_NORMAL.
    let w = craft(&[(0, 300.0, None), (5, 10.0, None)]);
    let mut cfg = SfsConfig::new(1).with_fixed_slice(50);
    cfg.filter_prio = 42;
    // Drive the simulator manually via its components: use the public API
    // only — run to completion and assert on aggregate evidence instead.
    let r = run_sfs(cfg, exact(1), w);
    assert!(r.sched_actions >= 3, "promote, demote, promote");
    assert!(r.outcomes[0].demoted);
    assert_eq!(r.outcomes[1].filter_rounds, 1);
}

#[test]
fn io_block_carries_slice_remainder() {
    // Function: 10ms CPU, 50ms IO, 10ms CPU with a 100ms slice. The first
    // FILTER round uses ~10ms; the block is detected by polling; the wake
    // re-enqueues with the remainder, and the function finishes its second
    // round without demotion.
    let spec = TaskSpec {
        phases: vec![Phase::Cpu(ms(10)), Phase::Io(ms(50)), Phase::Cpu(ms(10))],
        policy: Policy::NORMAL,
        label: 0,
    };
    let w = Workload {
        requests: vec![Request {
            id: 0,
            arrival: SimTime::ZERO,
            app: AppKind::Fib,
            duration_ms: 20.0,
            injected_io_ms: Some(50.0),
            cold_start_ms: None,
            spec,
        }],
    };
    let cfg = SfsConfig::new(1).with_fixed_slice(100);
    let r = run_sfs(cfg, exact(1), w);
    let o = &r.outcomes[0];
    assert_eq!(o.io_blocks, 1, "one block must be detected");
    assert_eq!(o.filter_rounds, 2, "re-enqueued after the wake");
    assert!(!o.demoted, "plenty of slice remained");
    // Polling granularity (4ms) bounds the detection lag; total turnaround
    // stays near ideal 70ms.
    assert!(o.turnaround <= ms(90), "turnaround {}", o.turnaround);
}

#[test]
fn zero_remaining_slice_after_io_demotes_instead_of_zero_round() {
    // 10ms of CPU burns the entire fixed 10ms slice, then the function
    // blocks on I/O. On wake its carried-over slice is exactly zero, so
    // the worker must demote it to CFS instead of granting a
    // zero-duration FILTER round (which would spin promote → instant
    // expiry → repeat, never progressing).
    let spec = TaskSpec {
        phases: vec![Phase::Cpu(ms(10)), Phase::Io(ms(30)), Phase::Cpu(ms(10))],
        policy: Policy::NORMAL,
        label: 0,
    };
    let w = Workload {
        requests: vec![Request {
            id: 0,
            arrival: SimTime::ZERO,
            app: AppKind::Fib,
            duration_ms: 20.0,
            injected_io_ms: None,
            cold_start_ms: None,
            spec,
        }],
    };
    let cfg = SfsConfig::new(1).with_fixed_slice(10);
    let r = run_sfs(cfg, exact(1), w);
    let o = &r.outcomes[0];
    assert_eq!(o.io_blocks, 1, "the block must be detected");
    assert!(
        o.demoted,
        "zero remaining slice must demote, not re-promote"
    );
    assert_eq!(o.filter_rounds, 1, "no zero-duration second round");
    assert_eq!(r.outcomes.len(), 1, "the request still completes under CFS");
}

#[test]
fn overload_threshold_is_o_times_s() {
    // Fixed slice 50ms, O = 3 → threshold 150ms. A burst whose queueing
    // delay passes 150ms must offload; the head of the burst must not.
    let mut rows = vec![(0u64, 400.0, None)]; // occupies the only worker
    for i in 0..20 {
        rows.push((1 + i as u64, 30.0, None));
    }
    let w = craft(&rows);
    let mut cfg = SfsConfig::new(1).with_fixed_slice(50);
    cfg.hybrid_overload = true;
    cfg.overload_factor = 3.0;
    let r = run_sfs(cfg, exact(1), w);
    assert!(
        r.telemetry.offloaded > 0,
        "queue of 20x30ms behind a demoted 400ms must trip the 150ms threshold"
    );
    // With the bypass disabled, nothing offloads.
    let w2 = craft(&rows);
    let r2 = run_sfs(
        SfsConfig::new(1).with_fixed_slice(50).without_hybrid(),
        exact(1),
        w2,
    );
    assert_eq!(r2.telemetry.offloaded, 0);
}

#[test]
fn queued_functions_still_run_under_cfs_work_conservation() {
    // A subtle property of user-space scheduling the paper relies on: a
    // request waiting in an SFS queue is still a live CFS process, so if a
    // core frees up, the kernel runs it anyway. Here worker 0's per-worker
    // queue holds shorts behind a 500ms FILTER function, yet they complete
    // early via CFS on the other core — per-worker queueing cannot trap
    // work, only reorder FILTER priority (which is why its damage shows up
    // statistically, not in tiny crafted cases; see the lib-level
    // `global_queue_beats_per_worker_queues_on_tail` test).
    let mut rows = vec![(0u64, 500.0, None)];
    for i in 1..=10u64 {
        rows.push((i, 10.0, None));
    }
    let w = craft(&rows);
    let per = run_sfs(
        SfsConfig::new(2)
            .with_fixed_slice(1_000)
            .per_worker_queues(),
        exact(2),
        w,
    );
    assert_eq!(per.outcomes.len(), 11);
    let worst_short = per
        .outcomes
        .iter()
        .filter(|o| o.ideal < ms(100))
        .map(|o| o.turnaround.as_millis_f64())
        .fold(0.0, f64::max);
    assert!(
        worst_short < 250.0,
        "shorts must drain through CFS work conservation, worst {worst_short}ms"
    );
    // Some of those shorts never needed a FILTER round at all: they
    // finished under CFS while queued (filter_rounds == 0, not offloaded).
    let cfs_finished = per
        .outcomes
        .iter()
        .filter(|o| o.filter_rounds == 0 && !o.offloaded)
        .count();
    assert!(cfs_finished > 0, "expected some pure-CFS completions");
}

#[test]
fn adaptive_mode_follows_arrival_rate_changes() {
    let n = 2_000;
    let mut spec = WorkloadSpec::azure_sampled(n, 61);
    spec.iat = IatSpec::Bursty {
        base_mean_ms: 1.0,
        spikes: Spike::evenly_spaced(1, n / 4, 6.0, n),
    };
    let w = spec.with_load(4, 0.8).generate();
    let r = run_sfs(SfsConfig::new(4), MachineParams::linux(4), w);
    assert_eq!(r.telemetry.slice_recalcs as usize, n / 100);
    let slices: Vec<f64> = r
        .telemetry
        .slice_timeline
        .points()
        .iter()
        .map(|&(_, v)| v)
        .collect();
    let min = slices.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = slices.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min > 2.0,
        "the 6x spike must move the adaptive slice: {min}..{max}"
    );
    match SfsConfig::new(4).slice_mode {
        SliceMode::Adaptive => {}
        _ => panic!("default must be adaptive"),
    }
    assert_eq!(SfsConfig::new(4).queue_mode, QueueMode::Global);
}

#[test]
fn zero_and_single_request_workloads() {
    let empty = Workload { requests: vec![] };
    let r = run_sfs(SfsConfig::new(2), exact(2), empty);
    assert!(r.outcomes.is_empty());
    assert_eq!(r.telemetry.polls, 0);

    let one = craft(&[(0, 5.0, None)]);
    let r = run_sfs(SfsConfig::new(2), exact(2), one);
    assert_eq!(r.outcomes.len(), 1);
    assert_eq!(r.outcomes[0].turnaround, ms(5));
}

#[test]
fn io_oblivious_wastes_slice_on_blocked_functions() {
    // Functions that immediately block for 200ms under a 60ms slice:
    // oblivious SFS times both out (the second is assigned when the first
    // is demoted at t=60ms and still sleeps past its own 60ms slice);
    // aware SFS detects the sleeps and recycles the worker.
    let w = craft(&[(0, 30.0, Some(200.0)), (0, 30.0, Some(200.0))]);
    let aware = run_sfs(SfsConfig::new(1).with_fixed_slice(60), exact(1), w.clone());
    let oblivious = run_sfs(
        SfsConfig::new(1).with_fixed_slice(60).io_oblivious(),
        exact(1),
        w,
    );
    assert_eq!(
        oblivious.telemetry.demoted, 2,
        "both blocked functions time out"
    );
    assert_eq!(
        aware.telemetry.demoted, 0,
        "aware SFS recycles the worker instead"
    );
    let blocks: u32 = aware.outcomes.iter().map(|o| o.io_blocks).sum();
    assert_eq!(blocks, 2);
}
