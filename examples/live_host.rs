//! Live-Linux demo: run real busy-loop "functions" as threads and schedule
//! them with the SFS mechanism via actual `sched_setscheduler(2)` calls
//! (`SCHED_FIFO` promotion / demotion), with a `nice`-based fallback when
//! the process lacks CAP_SYS_NICE.
//!
//! ```text
//! cargo run --release --example live_host
//! ```

use std::time::Duration;

use sfs_repro::host::{
    measure_poll_cost, probe_rt_permission, run_live_sfs, LiveSfsConfig, LiveSpec,
};

fn main() {
    println!(
        "RT permission (CAP_SYS_NICE): {}",
        if probe_rt_permission() {
            "available — using SCHED_FIFO"
        } else {
            "unavailable — falling back to nice-based priorities"
        }
    );
    let poll = measure_poll_cost(1_000);
    println!(
        "one /proc status poll costs {:.1} us on this machine (the paper's\n\
         dominant overhead source, Table II)\n",
        poll.as_secs_f64() * 1e6
    );

    // A convoy scenario: one long function and four short ones, all pinned
    // to CPU 0 so they genuinely contend.
    let specs = vec![
        LiveSpec::cpu_ms(400).pinned(0),
        LiveSpec::cpu_ms(20).pinned(0),
        LiveSpec::cpu_ms(20).pinned(0),
        LiveSpec::cpu_ms(20).pinned(0),
        LiveSpec::cpu_ms(20).pinned(0),
    ];
    let cfg = LiveSfsConfig {
        workers: 1,
        slice: Duration::from_millis(60),
        poll_interval: Duration::from_millis(4),
    };
    println!("running 1x400ms + 4x20ms functions on one core under live SFS...");
    let run = run_live_sfs(cfg, specs);
    println!(
        "lever={:?} promotions={} demotions={} polls={}",
        run.lever, run.promotions, run.demotions, run.polls
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        println!(
            "  fn{i}: demand {:>4.0}ms  turnaround {:>6.1}ms  RTE {:.2}",
            o.cpu_demand.as_secs_f64() * 1e3,
            o.turnaround.as_secs_f64() * 1e3,
            o.rte()
        );
    }
    println!(
        "\nThe 400ms function exceeds the 60ms FILTER slice and is demoted;\n\
         the short functions each run a FILTER round to completion."
    );
}
