//! Multi-server offloading at cluster scale (the paper's stated future
//! work, §VIII-A): *"Longer functions could be potentially offloaded to
//! relatively lighter-loaded FaaS servers by the global FaaS scheduler to
//! mitigate the performance impact."*
//!
//! A [`Cluster`] of identical hosts behind one global dispatcher. The
//! dispatcher runs an **event-driven loop**: request arrivals interleave
//! with predicted host-completion events, so every placement decision sees
//! *live* per-host state ([`HostLoad`]: outstanding queue depth, remaining
//! backlog, and an EWMA of recent turnarounds) rather than a static
//! pre-assignment. The dispatcher's view is its own dispatch log plus the
//! per-function duration statistics SFS already keeps — it never peeks at
//! host internals, matching the paper's architecture.
//!
//! Placement policies ([`Placement`]):
//!
//! * [`RoundRobin`](Placement::RoundRobin) — baseline spreading;
//! * [`LeastLoaded`](Placement::LeastLoaded) — join the host with the
//!   least remaining modelled backlog at the arrival instant;
//! * [`LongToLightest`](Placement::LongToLightest) — the paper's proposal:
//!   short functions rotate (they are latency-critical and any FILTER pool
//!   serves them); functions predicted long are steered to the host with
//!   the least outstanding *long* work, so their demoted-CFS phase faces
//!   the least competition;
//! * [`JoinShortestQueue`](Placement::JoinShortestQueue) — join the host
//!   with the fewest outstanding requests, ties broken by the lower EWMA
//!   of recent turnarounds;
//! * [`ConsistentHash`](Placement::ConsistentHash) — locality-aware: each
//!   function (a FaaSBench `(app, fib-N)` deployment) hashes onto a ring
//!   of host virtual nodes, with Google-style *bounded loads* (a host more
//!   than 25% above the mean outstanding depth is skipped clockwise), so
//!   warm-container affinity composes with live load feedback.
//!
//! Warm-container affinity is modelled cluster-wide via [`Affinity`]: a
//! host that has not served a function within the keep-alive window pays a
//! cold-start CPU penalty (a leading CPU phase, the same idiom
//! `WorkloadSpec::cold_start_mix` uses). Locality-blind placements scatter
//! functions and pay it often; `ConsistentHash` concentrates them.
//!
//! # Determinism under parallel execution
//!
//! A run has two phases. *Placement* is a single sequential event loop —
//! a pure function of `(cluster config, placement, workload)`. *Execution*
//! fans the per-host simulations out over
//! [`sfs_simcore::parallel::run_indexed`], one independent `Sim` per host
//! with results written into host-indexed slots; per-host inputs (the
//! sub-workload and the hash-ring positions) derive from the cluster seed
//! by pure [`SeedSequencer`] functions. A 64-host run therefore uses every
//! core, yet its output is bit-identical at any thread count — the same
//! invariant the sweep engine guarantees for trials.

use std::cmp::Reverse;
// lint: allow(D1, dispatcher bookkeeping maps are keyed insert/get/remove only — see the audited allows in place())
use std::collections::{BinaryHeap, HashMap};

use sfs_core::{ControllerFactory, RequestOutcome, SfsConfig};
use sfs_sched::Phase;
use sfs_simcore::{parallel, SeedSequencer, SimDuration, SimTime};
use sfs_workload::{AppKind, Request, Table1Sampler, Workload, LONG_THRESHOLD_MS};

/// Global dispatcher placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Requests go to hosts in rotation.
    RoundRobin,
    /// Requests join the host with the least remaining modelled backlog.
    LeastLoaded,
    /// Short functions rotate; predicted-long functions go to the host
    /// with the least outstanding *long* work.
    LongToLightest,
    /// Requests join the host with the fewest outstanding requests (ties:
    /// lower EWMA of recent turnarounds).
    JoinShortestQueue,
    /// Functions hash onto a ring of host virtual nodes with bounded
    /// loads, maximising warm-container hits under [`Affinity`].
    ConsistentHash,
}

impl Placement {
    /// Every placement, in presentation order.
    pub const ALL: [Placement; 5] = [
        Placement::RoundRobin,
        Placement::LeastLoaded,
        Placement::LongToLightest,
        Placement::JoinShortestQueue,
        Placement::ConsistentHash,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
            Placement::LongToLightest => "long-to-lightest",
            Placement::JoinShortestQueue => "join-shortest-queue",
            Placement::ConsistentHash => "consistent-hash",
        }
    }

    /// Parse a CLI spelling (the [`Placement::name`] strings plus the
    /// short aliases `rr`, `ll`, `l2l`, `jsq`, `hash`).
    pub fn parse(s: &str) -> Option<Placement> {
        match s {
            "round-robin" | "rr" => Some(Placement::RoundRobin),
            "least-loaded" | "ll" => Some(Placement::LeastLoaded),
            "long-to-lightest" | "l2l" => Some(Placement::LongToLightest),
            "join-shortest-queue" | "jsq" => Some(Placement::JoinShortestQueue),
            "consistent-hash" | "hash" => Some(Placement::ConsistentHash),
            _ => None,
        }
    }
}

/// Warm-container affinity model: a host that has not served a function
/// within `keep_alive` of a request's arrival pays `cold_start` of extra
/// CPU before the function body (container spin-up).
#[derive(Debug, Clone, Copy)]
pub struct Affinity {
    /// How long a per-function container stays warm after its last use.
    pub keep_alive: SimDuration,
    /// CPU penalty of a cold start.
    pub cold_start: SimDuration,
}

/// Live per-host state as the dispatcher models it — what a placement
/// policy sees at each arrival instant. Updated by the event loop: depth
/// and long-work fall at predicted completions, the EWMA folds in each
/// completed request's turnaround.
#[derive(Debug, Clone)]
pub struct HostLoad {
    /// Outstanding requests: dispatched, not yet predicted complete.
    pub depth: usize,
    /// Outstanding predicted service (ms) of the *long* population.
    pub outstanding_long_ms: f64,
    /// EWMA of predicted turnarounds (ms) at this host's completions;
    /// `None` until the first completion.
    pub ewma_turnaround_ms: Option<f64>,
    /// Predicted next-free instant of each core (the dispatcher's c-server
    /// FIFO model of the host).
    core_free: Vec<SimTime>,
}

impl HostLoad {
    pub(crate) fn new(cores: usize) -> HostLoad {
        HostLoad {
            depth: 0,
            outstanding_long_ms: 0.0,
            ewma_turnaround_ms: None,
            core_free: vec![SimTime::ZERO; cores],
        }
    }

    /// Crash / re-provision hook for the fleet layer: wipe the modelled
    /// state back to an empty host whose cores free up at `now` (a crashed
    /// host loses its queue; a re-provisioned one starts fresh). The EWMA
    /// is dropped too — turnaround history died with the old instance.
    pub(crate) fn reset(&mut self, now: SimTime) {
        self.depth = 0;
        self.outstanding_long_ms = 0.0;
        self.ewma_turnaround_ms = None;
        self.core_free.fill(now);
    }

    /// Remaining modelled backlog (ms) at `now`: how much already-placed
    /// work the host's cores still have ahead of them.
    pub fn backlog_ms(&self, now: SimTime) -> f64 {
        self.core_free
            .iter()
            .map(|&f| {
                if f > now {
                    f.since(now).as_millis_f64()
                } else {
                    0.0
                }
            })
            .sum()
    }

    /// Dispatch `service_ms` of work at `now`; returns the predicted
    /// completion instant under the c-server FIFO model.
    pub(crate) fn admit(&mut self, now: SimTime, service_ms: f64) -> SimTime {
        let core = (0..self.core_free.len())
            .min_by_key(|&c| self.core_free[c])
            .expect("hosts have at least one core");
        let start = self.core_free[core].max(now);
        let finish = start + SimDuration::from_millis_f64(service_ms);
        self.core_free[core] = finish;
        finish
    }
}

/// A predicted host completion in the dispatcher's event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Completion {
    at: SimTime,
    /// Dispatch sequence number: deterministic FIFO tie-break.
    seq: u64,
    host: usize,
}

/// The dispatcher's output: per-host request indices plus the cold-start
/// penalties the affinity model charged.
struct Plan {
    per_host: Vec<Vec<usize>>,
    /// Cold-start penalty per request index (zero = warm or no affinity).
    penalty: Vec<SimDuration>,
    cold_starts: u64,
}

/// A cluster of identical SFS hosts behind one global dispatcher.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Number of hosts.
    pub hosts: usize,
    /// Cores per host.
    pub cores_per_host: usize,
    /// SFS configuration applied on every host by [`Cluster::run`].
    pub sfs: SfsConfig,
    /// Warm-container affinity model; `None` disables cold starts (every
    /// host serves every function at full speed).
    pub affinity: Option<Affinity>,
    /// EWMA smoothing factor for the turnaround feedback (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// Seed for the consistent-hash ring (virtual-node positions derive
    /// from it by pure `SeedSequencer` functions).
    pub seed: u64,
    /// Virtual nodes per host on the hash ring.
    pub vnodes: usize,
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// Outcomes across all hosts, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests placed per host.
    pub per_host: Vec<usize>,
    /// The placement used.
    pub placement: Placement,
    /// Cold starts the affinity model charged (0 without [`Affinity`]).
    pub cold_starts: u64,
}

impl Cluster {
    /// A cluster of `hosts` × `cores_per_host` with default SFS settings
    /// and no warm-container affinity model.
    pub fn new(hosts: usize, cores_per_host: usize) -> Cluster {
        assert!(hosts >= 1 && cores_per_host >= 1);
        Cluster {
            hosts,
            cores_per_host,
            sfs: SfsConfig::new(cores_per_host),
            affinity: None,
            ewma_alpha: 0.2,
            seed: 0xC105_7E4D,
            vnodes: 64,
        }
    }

    /// Enable the warm-container affinity model.
    pub fn with_affinity(mut self, keep_alive: SimDuration, cold_start: SimDuration) -> Cluster {
        self.affinity = Some(Affinity {
            keep_alive,
            cold_start,
        });
        self
    }

    /// Dispatch `workload` across the cluster under `placement` and run
    /// every host to completion with this cluster's SFS configuration.
    pub fn run(&self, placement: Placement, workload: &Workload) -> ClusterRun {
        self.run_with(placement, &self.sfs, workload)
    }

    /// As [`Cluster::run`], with any per-host scheduling policy: one fresh
    /// controller is built per host from `factory` (hosts share nothing
    /// but the dispatcher, as in a real FaaS fleet). Hosts execute in
    /// parallel on the default worker count.
    pub fn run_with(
        &self,
        placement: Placement,
        factory: &(dyn ControllerFactory + Sync),
        workload: &Workload,
    ) -> ClusterRun {
        self.run_with_threads(placement, factory, workload, parallel::default_threads())
    }

    /// As [`Cluster::run_with`] with an explicit worker-thread count. The
    /// result is bit-identical for every `threads` value ≥ 1.
    pub fn run_with_threads(
        &self,
        placement: Placement,
        factory: &(dyn ControllerFactory + Sync),
        workload: &Workload,
        threads: usize,
    ) -> ClusterRun {
        let plan = self.place(placement, workload);
        let per_host: Vec<usize> = plan.per_host.iter().map(Vec::len).collect();
        let host_outcomes = parallel::run_indexed(self.hosts, threads, |h| {
            let idxs = &plan.per_host[h];
            if idxs.is_empty() {
                return Vec::new();
            }
            // Sub-workload: the host's requests (original ids preserved —
            // outcome ids stay globally unique), cold penalties applied as
            // a leading CPU phase.
            let sub = Workload {
                requests: idxs
                    .iter()
                    .map(|&i| {
                        let mut r = workload.requests[i].clone();
                        if !plan.penalty[i].is_zero() {
                            r.spec.phases.insert(0, Phase::Cpu(plan.penalty[i]));
                        }
                        r
                    })
                    .collect(),
            };
            factory.run_on(self.cores_per_host, &sub).outcomes
        });
        let mut outcomes: Vec<RequestOutcome> = host_outcomes.into_iter().flatten().collect();
        outcomes.sort_by_key(|o| o.id);
        ClusterRun {
            outcomes,
            per_host,
            placement,
            cold_starts: plan.cold_starts,
        }
    }

    /// The event-driven dispatch loop: a pure, sequential function of
    /// `(self, placement, workload)` — see the module docs for the
    /// determinism argument.
    fn place(&self, placement: Placement, workload: &Workload) -> Plan {
        let t1 = Table1Sampler::new();
        let ring = self.build_ring();
        let mut hosts: Vec<HostLoad> = (0..self.hosts)
            .map(|_| HostLoad::new(self.cores_per_host))
            .collect();
        let mut completions: BinaryHeap<Reverse<Completion>> = BinaryHeap::new();
        // Audited lookups-only (simlint D1): both maps are touched purely
        // by key — `in_flight` is inserted at dispatch and removed at the
        // predicted completion popped from the `completions` heap;
        // `last_seen` is inserted at dispatch and probed by `(host, key)`
        // for warmth. Neither is ever iterated, so hash order cannot reach
        // any placement decision; event order comes solely from the
        // arrival loop and the BinaryHeap. Locked by
        // `dispatcher_state_is_hash_order_independent` below.
        // In-flight values are `seq -> (service, long, turnaround)`.
        // lint: allow(D1, keyed insert/remove via the completions heap only; never iterated — determinism test locks it)
        let mut in_flight: HashMap<u64, (f64, bool, f64)> = HashMap::new();
        // lint: allow(D1, keyed insert/get by (host, func) only; never iterated — determinism test locks it)
        let mut last_seen: HashMap<(usize, u64), SimTime> = HashMap::new();
        let mut per_host: Vec<Vec<usize>> = vec![Vec::new(); self.hosts];
        let mut penalty = vec![SimDuration::ZERO; workload.len()];
        let mut cold_starts = 0u64;
        let mut total_depth = 0usize;
        let mut rr = 0usize;

        for (seq, &idx) in workload.arrival_order().iter().enumerate() {
            let seq = seq as u64; // dispatch sequence number: FIFO tie-break
            let r = &workload.requests[idx];
            let now = r.arrival;

            // Deliver every completion event due by now, oldest first
            // (FIFO tie-break by dispatch sequence).
            while let Some(&Reverse(c)) = completions.peek() {
                if c.at > now {
                    break;
                }
                completions.pop();
                let (service_ms, long, turnaround_ms) =
                    in_flight.remove(&c.seq).expect("completion bookkeeping");
                let h = &mut hosts[c.host];
                h.depth -= 1;
                total_depth -= 1;
                if long {
                    h.outstanding_long_ms = (h.outstanding_long_ms - service_ms).max(0.0);
                }
                h.ewma_turnaround_ms = Some(match h.ewma_turnaround_ms {
                    Some(e) => self.ewma_alpha * turnaround_ms + (1.0 - self.ewma_alpha) * e,
                    None => turnaround_ms,
                });
            }

            let predicted_long = r.duration_ms >= LONG_THRESHOLD_MS;
            let key = func_key(&t1, r);
            let host = match placement {
                Placement::RoundRobin => {
                    let h = rr % self.hosts;
                    rr += 1;
                    h
                }
                Placement::LeastLoaded => argmin_f64(&hosts, |h| h.backlog_ms(now)),
                Placement::LongToLightest => {
                    if predicted_long {
                        argmin_f64(&hosts, |h| h.outstanding_long_ms)
                    } else {
                        let h = rr % self.hosts;
                        rr += 1;
                        h
                    }
                }
                Placement::JoinShortestQueue => argmin_jsq(&hosts),
                Placement::ConsistentHash => self.ring_lookup(&ring, &hosts, key, total_depth),
            };

            // Affinity: cold unless this host served the function within
            // the keep-alive window.
            let mut service_ms = r.spec.cpu_demand().as_millis_f64();
            if let Some(aff) = self.affinity {
                let warm = last_seen
                    .get(&(host, key))
                    .is_some_and(|&t| now <= t + aff.keep_alive);
                if !warm {
                    penalty[idx] = aff.cold_start;
                    service_ms += aff.cold_start.as_millis_f64();
                    cold_starts += 1;
                }
            }

            let finish = hosts[host].admit(now, service_ms);
            hosts[host].depth += 1;
            total_depth += 1;
            if predicted_long {
                hosts[host].outstanding_long_ms += service_ms;
            }
            // The container stays warm from dispatch through (predicted)
            // finish plus the keep-alive window.
            last_seen.insert((host, key), finish);
            in_flight.insert(
                seq,
                (
                    service_ms,
                    predicted_long,
                    finish.since(now).as_millis_f64(),
                ),
            );
            completions.push(Reverse(Completion {
                at: finish,
                seq,
                host,
            }));
            per_host[host].push(idx);
        }

        Plan {
            per_host,
            penalty,
            cold_starts,
        }
    }

    /// The consistent-hash ring: `vnodes` positions per host, derived from
    /// the cluster seed by a pure function (bit-identical across runs and
    /// thread counts).
    fn build_ring(&self) -> Vec<(u64, usize)> {
        build_ring(self.hosts, self.vnodes, self.seed)
    }

    /// Bounded-load consistent hashing: walk clockwise from the key's ring
    /// position, skipping hosts whose outstanding depth exceeds 1.25× the
    /// cluster mean (counting the request being placed).
    fn ring_lookup(
        &self,
        ring: &[(u64, usize)],
        hosts: &[HostLoad],
        key: u64,
        total_depth: usize,
    ) -> usize {
        let cap = bounded_load_cap(total_depth, self.hosts);
        ring_walk(ring, hosts, key, cap, |_| true)
            // Every host at the bound (can only happen for degenerate
            // rings): fall back to the shallowest queue.
            .unwrap_or_else(|| argmin_f64(hosts, |h| h.depth as f64))
    }
}

/// The consistent-hash ring shared by [`Cluster`] and the fleet layer:
/// `vnodes` positions per host, derived from `seed` by a pure function.
pub(crate) fn build_ring(hosts: usize, vnodes: usize, seed: u64) -> Vec<(u64, usize)> {
    let seq = SeedSequencer::new(seed);
    let mut ring: Vec<(u64, usize)> = (0..hosts)
        .flat_map(|h| (0..vnodes).map(move |v| (seq.seed_for((h * vnodes + v) as u64), h)))
        .collect();
    ring.sort_unstable();
    ring
}

/// Google-style bounded-load cap: 25% above the mean outstanding depth,
/// counting the request being placed, never below 1.
pub(crate) fn bounded_load_cap(total_depth: usize, hosts: usize) -> usize {
    let cap = (((total_depth + 1) as f64 / hosts as f64) * 1.25).ceil() as usize;
    cap.max(1)
}

/// The bounded-load clockwise walk: first host at the key's ring position
/// (or after it) that `eligible` admits and whose depth is under `cap`.
/// `None` when no eligible host is under the cap — the caller owns the
/// degenerate fallback (the cluster falls back to the shallowest queue;
/// the fleet must also skip crashed / parked hosts).
pub(crate) fn ring_walk(
    ring: &[(u64, usize)],
    hosts: &[HostLoad],
    key: u64,
    cap: usize,
    eligible: impl Fn(usize) -> bool,
) -> Option<usize> {
    let h = SeedSequencer::new(key).seed_for(0);
    let start = ring.partition_point(|&(pos, _)| pos < h);
    for i in 0..ring.len() {
        let (_, host) = ring[(start + i) % ring.len()];
        if eligible(host) && hosts[host].depth < cap {
            return Some(host);
        }
    }
    None
}

/// Index of the host minimising `f`, ties to the lowest index.
///
/// Selection runs over [`f64::total_cmp`], which is total over NaN, so no
/// score value can be silently skipped: the old `v < best_v` scan was
/// NaN-blind (a NaN never beats `INFINITY`, so a NaN-scored host vanished
/// from consideration and an all-NaN slate fell through to host 0 by
/// accident rather than by rule). Under `total_cmp` every input — NaN
/// included — has one deterministic winner: ordinary scores behave exactly
/// as before (bit-identical placements for NaN-free inputs, which is every
/// shipped scoring function), and degenerate slates resolve by the total
/// order with ties to the lowest index.
fn argmin_f64(hosts: &[HostLoad], f: impl Fn(&HostLoad) -> f64) -> usize {
    argmin_f64_over(hosts.iter().enumerate(), f).expect("clusters have at least one host")
}

/// [`argmin_f64`] over an arbitrary `(index, host)` subset — the form the
/// fleet dispatcher needs (placement must skip crashed / parked / booting
/// hosts). Returns `None` for an empty slate.
pub(crate) fn argmin_f64_over<'a>(
    hosts: impl Iterator<Item = (usize, &'a HostLoad)>,
    f: impl Fn(&HostLoad) -> f64,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, h) in hosts {
        let v = f(h);
        best = match best {
            Some((_, bv)) if v.total_cmp(&bv).is_lt() => Some((i, v)),
            Some(b) => Some(b),
            None => Some((i, v)),
        };
    }
    best.map(|(i, _)| i)
}

/// Join-shortest-queue host choice: lexicographic min over (outstanding
/// depth, EWMA of recent turnarounds), ties to the lowest index.
fn argmin_jsq(hosts: &[HostLoad]) -> usize {
    argmin_jsq_over(hosts, hosts.iter().enumerate().map(|(i, _)| i))
        .expect("clusters have at least one host")
}

/// [`argmin_jsq`] over an arbitrary index subset of `hosts` — the form the
/// fleet dispatcher needs. Returns `None` for an empty slate.
pub(crate) fn argmin_jsq_over(
    hosts: &[HostLoad],
    candidates: impl Iterator<Item = usize>,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for i in candidates {
        let Some(b) = best else {
            best = Some(i);
            continue;
        };
        let (h, b_load) = (&hosts[i], &hosts[b]);
        let (he, be) = (
            h.ewma_turnaround_ms.unwrap_or(0.0),
            b_load.ewma_turnaround_ms.unwrap_or(0.0),
        );
        if h.depth < b_load.depth || (h.depth == b_load.depth && he.total_cmp(&be).is_lt()) {
            best = Some(i);
        }
    }
    best
}

/// FaaSBench's function identity: the deployed `(app, fib-N)` pair
/// (`fib-35`, `md-28`, ...), recovered from the request's app kind and its
/// Table-I fib mapping.
pub(crate) fn func_key(t1: &Table1Sampler, r: &Request) -> u64 {
    let app = match r.app {
        AppKind::Fib => 0u64,
        AppKind::Md => 1,
        AppKind::Sa => 2,
    };
    pack_func_key(app, t1.fib_n_for(r.duration_ms))
}

/// Pack an `(app id, fib N)` pair into one ring key: `app` in the high
/// bits, N in the low 8. The low field holds every N Table I can currently
/// emit (max 35), but the packing is only injective while N < 256 — a
/// future Table-1 change emitting a wider N would silently alias two
/// functions' ring positions and warm pools, so the bound is asserted here
/// rather than trusted. (Widening the shift would renumber every existing
/// key and shift the consistent-hash goldens; the guard keeps current keys
/// bit-stable while making the failure loud.)
fn pack_func_key(app: u64, fib_n: u32) -> u64 {
    assert!(
        fib_n < 256,
        "func_key packing overflow: fib N {fib_n} needs more than 8 bits; \
         widen the packing (and regenerate the consistent-hash goldens)"
    );
    (app << 8) | fib_n as u64
}

impl ClusterRun {
    /// Mean turnaround (ms) of the long-function population — the quantity
    /// the offloading proposal targets. `None` when the run has no long
    /// requests (an empty population has no mean; a bare `0.0` would be
    /// indistinguishable from a genuinely instant one).
    pub fn long_mean_ms(&self) -> Option<f64> {
        population_mean_ms(&self.outcomes, true)
    }

    /// Mean turnaround (ms) of the short population, `None` when empty.
    pub fn short_mean_ms(&self) -> Option<f64> {
        population_mean_ms(&self.outcomes, false)
    }
}

fn population_mean_ms(outcomes: &[RequestOutcome], long: bool) -> Option<f64> {
    let thr = SimDuration::from_millis_f64(LONG_THRESHOLD_MS);
    let mut sum = 0.0;
    let mut n = 0usize;
    for o in outcomes {
        if (o.ideal >= thr) == long {
            sum += o.turnaround.as_millis_f64();
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_workload::WorkloadSpec;

    fn workload(n: usize, hosts: usize, cores: usize, load: f64) -> Workload {
        WorkloadSpec::azure_sampled(n, 19)
            .with_load(hosts * cores, load)
            .generate()
    }

    #[test]
    fn all_placements_complete_everything() {
        let cluster = Cluster::new(3, 4);
        let w = workload(900, 3, 4, 0.8);
        for p in Placement::ALL {
            let run = cluster.run(p, &w);
            assert_eq!(run.outcomes.len(), 900, "{} lost requests", p.name());
            assert_eq!(run.per_host.iter().sum::<usize>(), 900);
            for (i, o) in run.outcomes.iter().enumerate() {
                assert_eq!(o.id, i as u64);
            }
            assert_eq!(run.cold_starts, 0, "no affinity model configured");
        }
    }

    #[test]
    fn round_robin_balances_counts() {
        let cluster = Cluster::new(4, 2);
        let w = workload(1_000, 4, 2, 0.7);
        let run = cluster.run(Placement::RoundRobin, &w);
        for &c in &run.per_host {
            assert_eq!(c, 250, "rotation places exactly n/hosts each");
        }
    }

    #[test]
    fn long_to_lightest_helps_long_functions() {
        // The future-work claim: steering longs to lighter hosts mitigates
        // their SFS penalty relative to blind round-robin.
        let cluster = Cluster::new(3, 4);
        let w = workload(1_500, 3, 4, 1.0);
        let rr = cluster.run(Placement::RoundRobin, &w);
        let steer = cluster.run(Placement::LongToLightest, &w);
        let (rr_long, steer_long) = (rr.long_mean_ms().unwrap(), steer.long_mean_ms().unwrap());
        assert!(
            steer_long <= rr_long * 1.05,
            "steering longs should not hurt them: {steer_long} vs {rr_long}"
        );
        let (rr_short, steer_short) = (rr.short_mean_ms().unwrap(), steer.short_mean_ms().unwrap());
        assert!(
            steer_short <= rr_short * 1.25,
            "short functions regressed: {steer_short} vs {rr_short}"
        );
    }

    #[test]
    fn any_controller_recipe_runs_per_host() {
        // The dispatcher composes with arbitrary policies: a kernel-only
        // CFS cluster completes the same request set as the SFS cluster,
        // one fresh controller per host, and placement is policy-blind
        // (the dispatcher model only uses the workload's duration labels).
        let cluster = Cluster::new(3, 4);
        let w = workload(600, 3, 4, 0.8);
        let sfs = cluster.run(Placement::JoinShortestQueue, &w);
        let cfs = cluster.run_with(Placement::JoinShortestQueue, &sfs_core::Baseline::Cfs, &w);
        assert_eq!(cfs.outcomes.len(), 600);
        assert_eq!(
            cfs.per_host, sfs.per_host,
            "placement is policy-independent"
        );
        for (a, b) in sfs.outcomes.iter().zip(cfs.outcomes.iter()) {
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn live_feedback_placements_use_every_host() {
        let cluster = Cluster::new(2, 2);
        let w = workload(600, 2, 2, 0.9);
        for p in [Placement::LeastLoaded, Placement::JoinShortestQueue] {
            let run = cluster.run(p, &w);
            assert!(
                run.per_host.iter().all(|&c| c > 100),
                "{}: {:?}",
                p.name(),
                run.per_host
            );
        }
    }

    #[test]
    fn results_are_identical_for_every_thread_count() {
        let cluster = Cluster::new(4, 2).with_affinity(
            SimDuration::from_millis(2_000),
            SimDuration::from_millis(25),
        );
        let w = workload(800, 4, 2, 0.9);
        for p in Placement::ALL {
            let one = cluster.run_with_threads(p, &cluster.sfs, &w, 1);
            for threads in [2, 4, 8] {
                let many = cluster.run_with_threads(p, &cluster.sfs, &w, threads);
                assert_eq!(one.per_host, many.per_host, "{} t={threads}", p.name());
                assert_eq!(one.cold_starts, many.cold_starts);
                assert_eq!(one.outcomes.len(), many.outcomes.len());
                for (a, b) in one.outcomes.iter().zip(many.outcomes.iter()) {
                    assert_eq!(a.id, b.id, "{} t={threads}", p.name());
                    assert_eq!(a.finished, b.finished, "{} t={threads}", p.name());
                    assert_eq!(a.rte.to_bits(), b.rte.to_bits());
                    assert_eq!(a.ctx_switches, b.ctx_switches);
                }
            }
        }
    }

    #[test]
    fn dispatcher_state_is_hash_order_independent() {
        // The dispatcher's only HashMaps (`in_flight`, `last_seen`) are
        // audited lookups-only — see the reasoned simlint allows at their
        // declarations. This locks the audit dynamically: every call to
        // `place()` builds fresh maps, and std's RandomState gives each
        // HashMap instance a different hash seed within one process, so if
        // any iteration order leaked into placement, repeated identical
        // runs would diverge. They must instead be bit-identical, under
        // every placement, with the affinity model exercising `last_seen`.
        let cluster = Cluster::new(4, 2).with_affinity(
            SimDuration::from_millis(1_000),
            SimDuration::from_millis(30),
        );
        let w = workload(800, 4, 2, 0.9);
        for p in Placement::ALL {
            let a = cluster.run(p, &w);
            let b = cluster.run(p, &w);
            assert_eq!(a.per_host, b.per_host, "{}", p.name());
            assert_eq!(a.cold_starts, b.cold_starts, "{}", p.name());
            assert_eq!(a.outcomes.len(), b.outcomes.len(), "{}", p.name());
            for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
                assert_eq!(x.id, y.id, "{}", p.name());
                assert_eq!(x.finished, y.finished, "{}", p.name());
                assert_eq!(x.turnaround, y.turnaround, "{}", p.name());
                assert_eq!(x.rte.to_bits(), y.rte.to_bits(), "{}", p.name());
            }
        }
    }

    #[test]
    fn consistent_hash_maximises_warm_hits() {
        // Locality: under the affinity model, the hash placement must pay
        // far fewer cold starts than the locality-blind queue balancer.
        let cluster = Cluster::new(6, 2).with_affinity(
            SimDuration::from_millis(1_500),
            SimDuration::from_millis(30),
        );
        let w = workload(2_000, 6, 2, 0.8);
        let hash = cluster.run(Placement::ConsistentHash, &w);
        let jsq = cluster.run(Placement::JoinShortestQueue, &w);
        assert!(hash.cold_starts > 0, "some functions must start cold");
        assert!(
            hash.cold_starts * 2 < jsq.cold_starts,
            "consistent-hash cold starts {} should be far below JSQ's {}",
            hash.cold_starts,
            jsq.cold_starts
        );
    }

    #[test]
    fn cold_starts_inflate_measured_work() {
        // The penalty is real CPU: with affinity on, total ideal time
        // grows by the charged cold starts.
        let cluster = Cluster::new(4, 2);
        let warm = cluster.run(Placement::RoundRobin, &workload(500, 4, 2, 0.7));
        let cold_cluster = Cluster::new(4, 2)
            .with_affinity(SimDuration::from_millis(500), SimDuration::from_millis(40));
        let cold = cold_cluster.run(Placement::RoundRobin, &workload(500, 4, 2, 0.7));
        assert_eq!(warm.cold_starts, 0);
        assert!(cold.cold_starts > 0);
        let total_ideal = |r: &ClusterRun| {
            r.outcomes
                .iter()
                .map(|o| o.ideal.as_millis_f64())
                .sum::<f64>()
        };
        assert!(
            total_ideal(&cold) > total_ideal(&warm),
            "cold-start CPU must show up in the executed work"
        );
    }

    #[test]
    fn empty_workload_runs_everywhere() {
        let cluster = Cluster::new(4, 2);
        let w = Workload {
            requests: Vec::new(),
        };
        for p in Placement::ALL {
            let run = cluster.run(p, &w);
            assert!(run.outcomes.is_empty());
            assert_eq!(run.per_host, vec![0; 4]);
            assert_eq!(run.long_mean_ms(), None, "empty population has no mean");
            assert_eq!(run.short_mean_ms(), None);
        }
    }

    #[test]
    fn more_hosts_than_requests() {
        let cluster = Cluster::new(8, 2);
        let w = workload(3, 8, 2, 0.5);
        for p in Placement::ALL {
            let run = cluster.run(p, &w);
            assert_eq!(run.outcomes.len(), 3, "{}", p.name());
            assert_eq!(run.per_host.iter().sum::<usize>(), 3);
            assert_eq!(run.per_host.len(), 8);
        }
    }

    #[test]
    fn empty_population_means_are_none() {
        // Regression: a run whose workload is all-short must report the
        // long mean as absent, not as a (spuriously excellent) 0.0.
        let mut spec = WorkloadSpec::azure_sampled(40, 7);
        spec.durations = sfs_workload::DurationDist::Fixed { ms: 10.0 };
        let w = spec.with_load(4, 0.5).generate();
        let run = Cluster::new(2, 2).run(Placement::RoundRobin, &w);
        assert_eq!(run.long_mean_ms(), None);
        assert!(run.short_mean_ms().is_some());
    }

    #[test]
    fn argmin_prefers_smaller_scores_and_lowest_index_ties() {
        let mut hosts: Vec<HostLoad> = (0..4).map(|_| HostLoad::new(2)).collect();
        hosts[2].outstanding_long_ms = -1.0;
        assert_eq!(argmin_f64(&hosts, |h| h.outstanding_long_ms), 2);
        hosts[2].outstanding_long_ms = 0.0;
        assert_eq!(
            argmin_f64(&hosts, |h| h.outstanding_long_ms),
            0,
            "ties resolve to the lowest index"
        );
    }

    #[test]
    fn argmin_is_nan_total() {
        // The regression the old `v < best_v` scan failed: a NaN-scored
        // host must not silently vanish from consideration, and an all-NaN
        // slate must resolve by rule, not by sentinel accident. Under
        // total_cmp, NaN orders *above* every finite value, so a finite
        // score always beats NaN, and an all-NaN slate ties to index 0.
        let hosts: Vec<HostLoad> = (0..3).map(|_| HostLoad::new(2)).collect();
        let scores = [f64::NAN, 7.0, 9.0];
        // Score by identity map via core_free trickery is awkward — score
        // through an index lookup instead.
        let by = |s: [f64; 3]| {
            argmin_f64_over(hosts.iter().enumerate(), |h| {
                s[hosts
                    .iter()
                    .position(|x| std::ptr::eq(x, h))
                    .expect("host from this slate")]
            })
        };
        assert_eq!(by(scores), Some(1), "finite beats NaN");
        assert_eq!(by([f64::NAN; 3]), Some(0), "all-NaN ties to index 0");
        assert_eq!(by([f64::NAN, f64::INFINITY, 2.0]), Some(2));
        assert_eq!(
            argmin_f64_over(hosts.iter().enumerate().filter(|_| false), |_| 0.0),
            None,
            "empty slate is None, not a panic"
        );
    }

    #[test]
    fn argmin_jsq_over_subset_skips_excluded_hosts() {
        let mut hosts: Vec<HostLoad> = (0..4).map(|_| HostLoad::new(2)).collect();
        hosts[0].depth = 0; // globally best, but excluded below
        hosts[1].depth = 3;
        hosts[2].depth = 1;
        hosts[3].depth = 1;
        hosts[3].ewma_turnaround_ms = Some(5.0);
        hosts[2].ewma_turnaround_ms = Some(9.0);
        assert_eq!(argmin_jsq(&hosts), 0);
        assert_eq!(
            argmin_jsq_over(&hosts, [1, 2, 3].into_iter()),
            Some(3),
            "depth tie breaks on the lower EWMA"
        );
        assert_eq!(argmin_jsq_over(&hosts, std::iter::empty()), None);
    }

    #[test]
    fn func_key_packs_table1_range_unchanged() {
        // The packing is pinned by the consistent-hash goldens: app id in
        // the high bits, fib N in the low 8. Table I's widest N today is
        // 35 — comfortably inside the 8-bit field the guard defends.
        assert_eq!(pack_func_key(2, 35), (2 << 8) | 35);
        assert_eq!(pack_func_key(0, 20), 20);
        assert_eq!(pack_func_key(1, 255), (1 << 8) | 255, "boundary N=255 fits");
        let t1 = Table1Sampler::new();
        for ms in [1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
            assert!(
                t1.fib_n_for(ms) < 256,
                "Table I emits an N the packing cannot hold at {ms}ms"
            );
        }
    }

    #[test]
    #[should_panic(expected = "func_key packing overflow")]
    fn func_key_overflow_is_loud_not_aliased() {
        // Regression for the silent-aliasing hazard: N = 256 would collide
        // with (app+1, 0)'s key. The pack must abort instead.
        let _ = pack_func_key(0, 256);
    }

    #[test]
    fn bounded_load_ring_respects_cap_while_alternatives_exist() {
        // Seeded property sweep over ring shapes, load vectors, and keys:
        // the clockwise walk must never land on a host at/over the cap
        // while any under-cap host exists anywhere on the ring.
        let mut rng = sfs_simcore::SimRng::seed_from_u64(0x51A6_1D0C);
        for case in 0..400 {
            let hosts_n = rng.uniform_u64(2, 9) as usize;
            let vnodes = rng.uniform_u64(1, 32) as usize;
            let ring = build_ring(hosts_n, vnodes, rng.next_u64());
            let mut hosts: Vec<HostLoad> = (0..hosts_n).map(|_| HostLoad::new(2)).collect();
            for h in &mut hosts {
                h.depth = rng.uniform_u64(0, 12) as usize;
            }
            let total: usize = hosts.iter().map(|h| h.depth).sum();
            let cap = bounded_load_cap(total, hosts_n);
            let key = rng.next_u64();
            match ring_walk(&ring, &hosts, key, cap, |_| true) {
                Some(host) => assert!(
                    hosts[host].depth < cap,
                    "case {case}: placed on host {host} at depth {} >= cap {cap}",
                    hosts[host].depth
                ),
                None => assert!(
                    hosts.iter().all(|h| h.depth >= cap),
                    "case {case}: walk gave up while an under-cap host existed"
                ),
            }
            // With the real cluster cap (mean×1.25 counting the newcomer),
            // at least one host sits below the cap, so the walk never
            // falls through when every host is eligible.
            assert!(
                ring_walk(&ring, &hosts, key, cap, |_| true).is_some(),
                "case {case}: the mean-based cap always leaves headroom"
            );
        }
    }

    #[test]
    fn bounded_load_all_at_cap_fallback_is_reachable_and_deterministic() {
        // The degenerate branch: force every host to the cap (the fleet
        // reaches this state when eligibility shrinks the slate — e.g.
        // every active host saturated during an AZ outage) and check the
        // walk reports it, twice, identically; the cluster's fallback then
        // picks the shallowest queue deterministically.
        let ring = build_ring(4, 8, 0xDEAD_BEEF);
        let mut hosts: Vec<HostLoad> = (0..4).map(|_| HostLoad::new(2)).collect();
        for h in &mut hosts {
            h.depth = 5;
        }
        assert_eq!(ring_walk(&ring, &hosts, 42, 5, |_| true), None);
        assert_eq!(ring_walk(&ring, &hosts, 42, 5, |_| true), None);
        hosts[2].depth = 4; // still >= nothing: under this cap now
        assert_eq!(ring_walk(&ring, &hosts, 42, 5, |_| true), Some(2));
        // Eligibility shrinks the slate the same way: only saturated hosts
        // eligible -> None, even though host 2 has headroom.
        assert_eq!(ring_walk(&ring, &hosts, 42, 5, |h| h != 2), None);
        // The cluster-level fallback (shallowest queue) is deterministic.
        let fb = argmin_f64(&hosts, |h| h.depth as f64);
        assert_eq!(fb, 2);
        assert_eq!(argmin_f64(&hosts, |h| h.depth as f64), fb);
    }

    #[test]
    fn host_reset_clears_modelled_state() {
        let mut h = HostLoad::new(2);
        let t0 = SimTime::ZERO;
        h.admit(t0, 100.0);
        h.admit(t0, 50.0);
        h.depth = 2;
        h.outstanding_long_ms = 100.0;
        h.ewma_turnaround_ms = Some(75.0);
        assert!(h.backlog_ms(t0) > 0.0);
        let crash_at = t0 + SimDuration::from_millis(30);
        h.reset(crash_at);
        assert_eq!(h.depth, 0);
        assert_eq!(h.outstanding_long_ms, 0.0);
        assert_eq!(h.ewma_turnaround_ms, None);
        assert_eq!(h.backlog_ms(crash_at), 0.0, "cores free up at the reset");
        // And the host admits again from the reset instant.
        let f = h.admit(crash_at, 10.0);
        assert_eq!(f, crash_at + SimDuration::from_millis(10));
    }

    #[test]
    fn outcome_ids_unique_across_hosts() {
        // Guards the sub-workload construction in run_with against id
        // collisions: every original id appears exactly once in the merge.
        let cluster = Cluster::new(5, 2);
        let w = workload(1_000, 5, 2, 0.9);
        for p in Placement::ALL {
            let run = cluster.run(p, &w);
            let mut ids: Vec<u64> = run.outcomes.iter().map(|o| o.id).collect();
            ids.dedup();
            assert_eq!(ids.len(), 1_000, "{}: duplicate outcome ids", p.name());
            assert_eq!(ids, (0..1_000).collect::<Vec<u64>>());
        }
    }
}
