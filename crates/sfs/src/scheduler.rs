//! The SFS scheduler driving a simulated machine (paper §V, Fig. 4).
//!
//! [`SfsSimulator`] reproduces the full scheduling flow:
//!
//! 1. the backend FaaS server dispatches each function to the OS (spawned
//!    under CFS) and pushes `(pid, T_inv)` into SFS's **global queue**;
//! 2. idle **SFS workers** (one per core) fetch requests and run them in
//!    **FILTER** mode by promoting the process to `SCHED_FIFO`;
//! 3. the **monitor** recomputes the time slice `S` from a sliding window
//!    of IATs every N requests (§V-C);
//! 4. then, per request: (4.1) a function finishing within `S` frees its
//!    worker; (4.2) a function exhausting `S` is **demoted to CFS**
//!    (`SCHED_NORMAL`); (4.3) a function blocking on I/O is detected by
//!    periodic status polling, demoted while it sleeps, and **re-enqueued
//!    on wake** with its unused slice (§V-D); (4.4) a worker popping a
//!    request whose queueing delay exceeds `O × S` triggers the **hybrid
//!    overload bypass**: the request (and the drain that follows) stays in
//!    CFS (§V-E).
//!
//! SFS only ever talks to the machine through `spawn`/`set_policy`/
//! `proc_state`/`cpu_time` — the same interface the real implementation has
//! via `schedtool` and `gopsutil`.

use std::collections::{HashMap, VecDeque};

use sfs_sched::{Machine, MachineParams, Notification, Pid, Policy, ProcState};
use sfs_simcore::{EventQueue, SimDuration, SimTime, TimeSeries};
use sfs_workload::Workload;

use crate::config::{QueueMode, SfsConfig};
use crate::stats::{RequestOutcome, SfsRunResult};
use crate::timeslice::SliceController;

#[derive(Debug, Clone)]
struct ReqState {
    pid: Pid,
    /// Invocation timestamp (when the FaaS server enqueued it).
    t_inv: SimTime,
    /// When the request was last pushed into the global queue.
    enqueued_at: SimTime,
    /// Remaining FILTER slice across I/O interruptions; `None` = fresh
    /// (use the current global S on next assignment).
    slice_remaining: Option<SimDuration>,
    /// Queue delay observed at the first pop (enqueue → pop), for Fig. 12a.
    first_pop_delay: Option<SimDuration>,
    demoted: bool,
    offloaded: bool,
    filter_rounds: u32,
    io_blocks: u32,
}

#[derive(Debug, Clone, Copy)]
struct Assignment {
    pid: Pid,
    req: u64,
    /// FILTER budget for this round.
    budget: SimDuration,
    /// CPU time the process had consumed when this round started.
    cpu_at_start: SimDuration,
}

#[derive(Debug, Default)]
struct Worker {
    current: Option<Assignment>,
    /// Invalidates stale slice-expiry events.
    gen: u64,
}

#[derive(Debug, Clone, Copy)]
enum SfsEv {
    /// Workload request `idx` arrives at the FaaS server.
    Arrival(usize),
    /// FILTER slice timer for worker `w` (valid only at generation `gen`).
    SliceExpiry { w: usize, gen: u64 },
    /// The periodic status-polling tick.
    Poll,
}

/// SFS running a [`Workload`] over a simulated [`Machine`].
pub struct SfsSimulator {
    cfg: SfsConfig,
    machine: Machine,
    workload: Workload,
    slice: SliceController,
    queue: VecDeque<u64>,
    /// Per-worker queues (used only in [`QueueMode::PerWorker`]).
    worker_queues: Vec<VecDeque<u64>>,
    /// Round-robin cursor for per-worker assignment.
    next_rr: usize,
    reqs: HashMap<u64, ReqState>,
    /// pid → request id for completion lookups.
    by_pid: HashMap<Pid, u64>,
    workers: Vec<Worker>,
    /// Requests blocked on I/O, awaiting wake detection by polling.
    blocked: Vec<u64>,
    events: EventQueue<SfsEv>,
    poll_armed: bool,
    outcomes: Vec<RequestOutcome>,
    queue_delay_series: TimeSeries,
    polls: u64,
    polled_tasks: u64,
    sched_actions: u64,
    offloaded_total: u64,
    demoted_total: u64,
}

impl SfsSimulator {
    /// Build a simulator for `workload` on a machine described by `mparams`.
    /// `cfg.workers` should normally equal `mparams.cores`.
    pub fn new(cfg: SfsConfig, mparams: MachineParams, workload: Workload) -> SfsSimulator {
        cfg.validate().expect("invalid SFS config");
        let slice = SliceController::new(&cfg);
        let workers = (0..cfg.workers).map(|_| Worker::default()).collect();
        let mut events = EventQueue::with_capacity(workload.len() * 2);
        for (i, r) in workload.requests.iter().enumerate() {
            events.push(r.arrival, SfsEv::Arrival(i));
        }
        SfsSimulator {
            cfg,
            machine: Machine::new(mparams),
            workload,
            slice,
            queue: VecDeque::new(),
            worker_queues: (0..cfg.workers).map(|_| VecDeque::new()).collect(),
            next_rr: 0,
            reqs: HashMap::new(),
            by_pid: HashMap::new(),
            workers,
            blocked: Vec::new(),
            events,
            poll_armed: false,
            outcomes: Vec::new(),
            queue_delay_series: TimeSeries::new("queue_delay_s"),
            polls: 0,
            polled_tasks: 0,
            sched_actions: 0,
            offloaded_total: 0,
            demoted_total: 0,
        }
    }

    /// Enable execution-trace recording on the underlying machine; the
    /// trace is returned in [`SfsRunResult::schedule_trace`].
    pub fn with_tracing(mut self) -> SfsSimulator {
        self.machine.enable_tracing();
        self
    }

    /// Run the workload to completion and return all per-request outcomes
    /// plus the controller timelines.
    pub fn run(mut self) -> SfsRunResult {
        let total = self.workload.len();
        // Reusable batch buffer: every SFS event handler schedules strictly
        // into the future (slice timers at now + budget with budget > 0,
        // polls at now + interval), so all events due at `next` can be
        // drained in one peek-based batch without missing same-instant
        // insertions — the EventQueue fast path, allocation-free in steady
        // state.
        let mut due: Vec<(SimTime, SfsEv)> = Vec::with_capacity(64);
        while self.outcomes.len() < total {
            let tm = self.machine.next_event_time();
            let ts = self.events.peek_time();
            let next = match (tm, ts) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => {
                    unreachable!("simulation stalled with {} outcomes", self.outcomes.len())
                }
            };
            let notes = self.machine.advance_to(next);
            for n in notes {
                self.on_machine_note(n);
            }
            due.clear();
            self.events.pop_batch_until(next, &mut due);
            for &(_, ev) in due.iter() {
                self.on_sfs_event(ev);
            }
        }
        self.finish()
    }

    fn finish(mut self) -> SfsRunResult {
        self.outcomes.sort_by_key(|o| o.id);
        SfsRunResult {
            outcomes: self.outcomes,
            slice_timeline: self.slice.slice_timeline().clone(),
            iat_timeline: self.slice.iat_timeline().clone(),
            queue_delay_series: self.queue_delay_series,
            polls: self.polls,
            polled_tasks: self.polled_tasks,
            sched_actions: self.sched_actions,
            offloaded: self.offloaded_total,
            demoted: self.demoted_total,
            slice_recalcs: self.slice.recalcs(),
            machine_ctx_switches: self.machine.total_ctx_switches(),
            sim_span: self.machine.now() - SimTime::ZERO,
            cores: self.machine.cores(),
            schedule_trace: self.machine.trace().cloned(),
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn on_sfs_event(&mut self, ev: SfsEv) {
        match ev {
            SfsEv::Arrival(idx) => self.on_arrival(idx),
            SfsEv::SliceExpiry { w, gen } => self.on_slice_expiry(w, gen),
            SfsEv::Poll => self.on_poll(),
        }
    }

    /// Step 1 of the flow: dispatch to the OS, enqueue `(pid, T_inv)`.
    fn on_arrival(&mut self, idx: usize) {
        let now = self.machine.now();
        let r = &self.workload.requests[idx];
        let id = r.id;
        let spec = r.spec.clone();
        let pid = self.machine.spawn(spec);
        self.by_pid.insert(pid, id);
        self.reqs.insert(
            id,
            ReqState {
                pid,
                t_inv: now,
                enqueued_at: now,
                slice_remaining: None,
                first_pop_delay: None,
                demoted: false,
                offloaded: false,
                filter_rounds: 0,
                io_blocks: 0,
            },
        );
        self.slice.on_arrival(now);
        self.enqueue_req(id);
        self.try_assign();
        self.arm_poll();
    }

    /// Route a request into the configured queue topology.
    fn enqueue_req(&mut self, id: u64) {
        match self.cfg.queue_mode {
            QueueMode::Global => self.queue.push_back(id),
            QueueMode::PerWorker => {
                let w = self.next_rr % self.worker_queues.len();
                self.next_rr += 1;
                self.worker_queues[w].push_back(id);
            }
        }
    }

    /// Steps 2 / 4.4: idle workers fetch requests; overloaded requests are
    /// left to CFS.
    fn try_assign(&mut self) {
        match self.cfg.queue_mode {
            QueueMode::Global => loop {
                let Some(w) = self.workers.iter().position(|w| w.current.is_none()) else {
                    return;
                };
                let Some(id) = self.queue.pop_front() else {
                    return;
                };
                self.assign_step(w, id);
            },
            QueueMode::PerWorker => {
                for w in 0..self.workers.len() {
                    while self.workers[w].current.is_none() {
                        let Some(id) = self.worker_queues[w].pop_front() else {
                            break;
                        };
                        self.assign_step(w, id);
                    }
                }
            }
        }
    }

    /// Handle one popped request for an idle worker `w`: overload bypass,
    /// dead-skip, exhausted-slice demotion, or FILTER promotion. The worker
    /// remains idle unless a promotion happened.
    fn assign_step(&mut self, w: usize, id: u64) {
        let now = self.machine.now();
        let s_now = self.slice.current();
        let (pid, delay, budget) = {
            let st = self.reqs.get_mut(&id).expect("queued request tracked");
            let delay = now.since(st.enqueued_at);
            if st.first_pop_delay.is_none() {
                st.first_pop_delay = Some(now.since(st.t_inv));
                self.queue_delay_series
                    .record(st.t_inv, now.since(st.t_inv).as_secs_f64());
            }
            let budget = st.slice_remaining.unwrap_or(s_now);
            (st.pid, delay, budget)
        };

        // Dead already (finished under CFS while queued after an I/O round,
        // or a zero-length race): nothing to schedule.
        if self.machine.proc_state(pid) == ProcState::Dead {
            return;
        }

        // 4.4 Overload detection: queueing delay of the request we are
        // about to schedule exceeds O × S → temporary CFS bypass.
        if self.cfg.hybrid_overload {
            let threshold = SimDuration::from_millis_f64(
                self.slice.current().as_millis_f64() * self.cfg.overload_factor,
            );
            if delay >= threshold {
                let st = self.reqs.get_mut(&id).expect("tracked");
                st.offloaded = true;
                self.offloaded_total += 1;
                // The process is already SCHED_NORMAL; leaving it to CFS
                // *is* the bypass. The worker stays free for the next
                // request, which drains the backlog fast.
                return;
            }
        }

        // Exhausted slice from previous rounds: demote instead of a
        // zero-length FILTER round.
        if budget.is_zero() {
            self.demote(id, pid);
            return;
        }

        // Step 2: promote to FIFO — the FILTER pool.
        self.machine.set_policy(
            pid,
            Policy::Fifo {
                prio: self.cfg.filter_prio,
            },
        );
        self.sched_actions += 1;
        let cpu_at_start = self.machine.cpu_time(pid);
        let st = self.reqs.get_mut(&id).expect("tracked");
        st.filter_rounds += 1;
        self.workers[w].gen += 1;
        let gen = self.workers[w].gen;
        self.workers[w].current = Some(Assignment {
            pid,
            req: id,
            budget,
            cpu_at_start,
        });
        self.events
            .push(now + budget, SfsEv::SliceExpiry { w, gen });
    }

    /// 4.2: the FILTER slice timer fired.
    fn on_slice_expiry(&mut self, w: usize, gen: u64) {
        if self.workers[w].gen != gen {
            return; // stale timer: the worker moved on
        }
        let Some(a) = self.workers[w].current else {
            return;
        };
        match self.machine.proc_state(a.pid) {
            ProcState::Dead => {
                // Completion notification is in flight at this same instant;
                // it will free the worker.
            }
            ProcState::Sleeping if self.cfg.io_aware => {
                // Blocked between polls and the timer beat the next poll:
                // treat as an I/O block (4.3).
                self.release_worker_for_io(w);
            }
            _ => {
                // Forcible preemption: demote to CFS.
                self.workers[w].current = None;
                self.workers[w].gen += 1;
                self.demote(a.req, a.pid);
                self.try_assign();
            }
        }
    }

    fn demote(&mut self, id: u64, pid: Pid) {
        self.machine.set_policy(pid, Policy::NORMAL);
        self.sched_actions += 1;
        let st = self.reqs.get_mut(&id).expect("tracked");
        st.demoted = true;
        st.slice_remaining = Some(SimDuration::ZERO);
        self.demoted_total += 1;
    }

    /// 4.3: periodic kernel-status polling (§V-D).
    fn on_poll(&mut self) {
        self.poll_armed = false;
        self.polls += 1;
        let mut freed = false;

        // Detect FILTER functions that went to sleep on I/O.
        if self.cfg.io_aware {
            for w in 0..self.workers.len() {
                let Some(a) = self.workers[w].current else {
                    continue;
                };
                self.polled_tasks += 1;
                if self.machine.proc_state(a.pid) == ProcState::Sleeping {
                    self.release_worker_for_io(w);
                    freed = true;
                }
            }
            // Detect blocked functions that became runnable again: re-add to
            // the global queue with their unused slice.
            let now = self.machine.now();
            let mut rewoken = Vec::new();
            self.blocked.retain(|&id| {
                let st = self.reqs.get(&id).expect("blocked request tracked");
                self.polled_tasks += 1;
                match self.machine.proc_state(st.pid) {
                    ProcState::Sleeping => true,
                    ProcState::Dead => false, // finished while blocked-tracked
                    _ => {
                        rewoken.push(id);
                        false
                    }
                }
            });
            for id in rewoken {
                let st = self.reqs.get_mut(&id).expect("tracked");
                st.enqueued_at = now;
                self.enqueue_req(id);
                freed = true;
            }
        }

        if freed {
            self.try_assign();
        }
        self.arm_poll();
    }

    /// Free worker `w` because its FILTER function blocked on I/O: record
    /// the unused slice, lower the function's priority, track it for wake
    /// detection, and let the worker fetch the next request.
    fn release_worker_for_io(&mut self, w: usize) {
        let Some(a) = self.workers[w].current.take() else {
            return;
        };
        self.workers[w].gen += 1;
        let used = self.machine.cpu_time(a.pid).saturating_sub(a.cpu_at_start);
        let remaining = a.budget.saturating_sub(used);
        // "reduces its priority": back to CFS while it sleeps, so that when
        // the I/O completes it is runnable (work conservation) without
        // occupying the FILTER pool.
        self.machine.set_policy(a.pid, Policy::NORMAL);
        self.sched_actions += 1;
        let st = self.reqs.get_mut(&a.req).expect("tracked");
        st.slice_remaining = Some(remaining);
        st.io_blocks += 1;
        self.blocked.push(a.req);
        self.try_assign();
    }

    fn arm_poll(&mut self) {
        let work_pending = self.workers.iter().any(|w| w.current.is_some())
            || !self.blocked.is_empty()
            || !self.queue.is_empty()
            || self.worker_queues.iter().any(|q| !q.is_empty());
        if self.cfg.io_aware && work_pending && !self.poll_armed {
            self.poll_armed = true;
            self.events
                .push(self.machine.now() + self.cfg.poll_interval, SfsEv::Poll);
        }
    }

    fn on_machine_note(&mut self, n: Notification) {
        if let Notification::Finished(rec) = n {
            let id = self.by_pid[&rec.pid];
            // Free the worker if this function was in a FILTER round.
            for w in 0..self.workers.len() {
                if self.workers[w].current.is_some_and(|a| a.pid == rec.pid) {
                    self.workers[w].current = None;
                    self.workers[w].gen += 1;
                }
            }
            let st = self.reqs.remove(&id).expect("finished request tracked");
            // Drop from queue/blocked tracking if it completed under CFS.
            self.queue.retain(|&q| q != id);
            for q in self.worker_queues.iter_mut() {
                q.retain(|&x| x != id);
            }
            self.blocked.retain(|&b| b != id);
            self.outcomes.push(RequestOutcome {
                id,
                arrival: rec.arrival,
                finished: rec.finished,
                turnaround: rec.turnaround(),
                ideal: rec.ideal,
                cpu_demand: rec.cpu_demand,
                rte: rec.rte(),
                ctx_switches: rec.ctx_switches,
                queue_delay: st.first_pop_delay.unwrap_or(SimDuration::ZERO),
                demoted: st.demoted,
                offloaded: st.offloaded,
                filter_rounds: st.filter_rounds,
                io_blocks: st.io_blocks,
            });
            self.try_assign();
        }
    }
}
