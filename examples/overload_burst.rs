//! Transient-overload demo (paper §V-E / Fig. 12): a workload with arrival
//! spikes, run with and without SFS's hybrid FILTER+CFS fallback, showing
//! the queue-delay timelines side by side.
//!
//! ```text
//! cargo run --release --example overload_burst
//! ```

use sfs_repro::metrics::timeline_chart;
use sfs_repro::sched::MachineParams;
use sfs_repro::sfs::{SfsConfig, SfsController, Sim};
use sfs_repro::workload::{IatSpec, Spike, WorkloadSpec};

const CORES: usize = 8;

/// Downsizing knob so CI can smoke-run every example quickly.
fn n_requests(default: usize) -> usize {
    std::env::var("SFS_EXAMPLE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = n_requests(5_000);
    let mut spec = WorkloadSpec::azure_sampled(n, 31);
    spec.iat = IatSpec::Bursty {
        base_mean_ms: 1.0,
        spikes: Spike::evenly_spaced(3, n / 20, 10.0, n),
    };
    let workload = spec.with_load(CORES, 0.85).generate();
    println!("workload: {n} requests with 3 injected arrival spikes\n");

    for (name, cfg) in [
        ("SFS (hybrid overload handling)", SfsConfig::new(CORES)),
        ("SFS w/o hybrid", SfsConfig::new(CORES).without_hybrid()),
    ] {
        let r = Sim::on(MachineParams::linux(CORES))
            .workload(&workload)
            .controller(SfsController::new(cfg))
            .run();
        println!("== {name}");
        println!(
            "   peak queue delay {:.2}s | mean turnaround {:.0}ms | offloaded to CFS: {}",
            r.telemetry.queue_delay_series.max_value(),
            r.mean_turnaround_ms(),
            r.telemetry.offloaded
        );
        let pts: Vec<(f64, f64)> = r
            .telemetry
            .queue_delay_series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect();
        println!("{}", timeline_chart(&pts, 72, 10));
    }

    println!(
        "With the hybrid fallback, workers detect queueing delay above O x S\n\
         and push the backlog straight to CFS, which drains it while FILTER\n\
         keeps serving fresh short functions — the delay timeline stays flat."
    );
}
