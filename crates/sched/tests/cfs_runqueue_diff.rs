//! Differential test for the index-backed CFS runqueue.
//!
//! Drives the production [`CfsRunqueue`] (4-ary heap + dense position
//! index) and a naive sorted-`Vec` reference model through randomized
//! push / pop / pop_last / remove / reweight interleavings and asserts
//! identical observable behaviour at every step: pick sequences, peeks,
//! lengths, total weights, and the monotonic `min_vruntime` floor.
//!
//! Randomised cases come from the workspace's seeded `SimRng` (no proptest
//! dependency): a fixed number of cases from fixed seeds, so failures are
//! exactly reproducible.

use sfs_sched::{CfsRunqueue, Pid};
use sfs_simcore::SimRng;

/// The naive reference: a flat list scanned linearly, plus the same
/// min_vruntime/total_weight bookkeeping the real queue promises.
#[derive(Default)]
struct RefModel {
    entries: Vec<(u64, Pid, u32)>,
    min_vruntime: u64,
    total_weight: u64,
}

impl RefModel {
    fn enqueue(&mut self, pid: Pid, v: u64, w: u32) {
        assert!(
            !self.entries.iter().any(|e| e.1 == pid),
            "model double-enqueue"
        );
        self.entries.push((v, pid, w));
        self.total_weight += w as u64;
    }

    fn pos_min(&self) -> Option<usize> {
        (0..self.entries.len()).min_by_key(|&i| (self.entries[i].0, self.entries[i].1 .0))
    }

    fn peek(&self) -> Option<(u64, Pid)> {
        self.pos_min()
            .map(|i| (self.entries[i].0, self.entries[i].1))
    }

    fn pop(&mut self) -> Option<(u64, Pid)> {
        let i = self.pos_min()?;
        let (v, p, w) = self.entries.remove(i);
        self.total_weight -= w as u64;
        if v > self.min_vruntime {
            self.min_vruntime = v;
        }
        Some((v, p))
    }

    fn pop_last(&mut self) -> Option<(u64, Pid)> {
        let i =
            (0..self.entries.len()).max_by_key(|&i| (self.entries[i].0, self.entries[i].1 .0))?;
        let (v, p, w) = self.entries.remove(i);
        self.total_weight -= w as u64;
        Some((v, p))
    }

    fn remove(&mut self, pid: Pid, v: u64) -> bool {
        match self.entries.iter().position(|e| e.1 == pid && e.0 == v) {
            Some(i) => {
                let (_, _, w) = self.entries.remove(i);
                self.total_weight -= w as u64;
                true
            }
            None => false,
        }
    }
}

/// One queued task as the driver tracks it (so removes/reweights use the
/// exact vruntime the queue was given, like the machine does).
#[derive(Clone, Copy)]
struct Queued {
    pid: Pid,
    vruntime: u64,
    weight: u32,
}

fn check_invariants(rq: &CfsRunqueue, model: &RefModel, case: u64, step: usize) {
    assert_eq!(
        rq.len(),
        model.entries.len(),
        "len (case {case} step {step})"
    );
    assert_eq!(
        rq.is_empty(),
        model.entries.is_empty(),
        "is_empty (case {case} step {step})"
    );
    assert_eq!(
        rq.total_weight(),
        model.total_weight,
        "total_weight (case {case} step {step})"
    );
    assert_eq!(
        rq.min_vruntime(),
        model.min_vruntime,
        "min_vruntime (case {case} step {step})"
    );
    assert_eq!(rq.peek(), model.peek(), "peek (case {case} step {step})");
}

#[test]
fn randomized_interleavings_match_reference_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0xCF5_D1FF)
            .derive("interleavings")
            .derive(&case.to_string());
        let mut rq = CfsRunqueue::new();
        let mut model = RefModel::default();
        let mut queued: Vec<Queued> = Vec::new();
        let mut next_pid = 0u64;
        let steps = rng.uniform_u64(50, 400) as usize;
        for step in 0..steps {
            match rng.uniform_u64(0, 99) {
                // Push a fresh task at a placed vruntime.
                0..=39 => {
                    let pid = Pid(next_pid);
                    next_pid += 1;
                    let v = rq.place_vruntime(rng.uniform_u64(0, 5_000));
                    assert_eq!(v, model.min_vruntime.max(v), "placement respects floor");
                    let w = [15u32, 1024, 88761][rng.uniform_u64(0, 2) as usize];
                    rq.enqueue(pid, v, w);
                    model.enqueue(pid, v, w);
                    queued.push(Queued {
                        pid,
                        vruntime: v,
                        weight: w,
                    });
                }
                // Pick the leftmost task.
                40..=69 => {
                    let got = rq.pop();
                    let want = model.pop();
                    assert_eq!(got, want, "pop (case {case} step {step})");
                    if let Some((_, pid)) = got {
                        queued.retain(|q| q.pid != pid);
                    }
                }
                // Steal the rightmost task.
                70..=79 => {
                    let got = rq.pop_last();
                    let want = model.pop_last();
                    assert_eq!(got, want, "pop_last (case {case} step {step})");
                    if let Some((_, pid)) = got {
                        queued.retain(|q| q.pid != pid);
                    }
                }
                // Remove a specific queued task (policy change).
                80..=89 => {
                    if queued.is_empty() {
                        continue;
                    }
                    let i = rng.uniform_u64(0, queued.len() as u64 - 1) as usize;
                    let q = queued.swap_remove(i);
                    assert!(rq.remove(q.pid, q.vruntime), "remove live entry");
                    assert!(model.remove(q.pid, q.vruntime));
                    // Removing again (or with a stale vruntime) must fail
                    // without corrupting the weights.
                    assert!(!rq.remove(q.pid, q.vruntime));
                    assert!(!rq.remove(q.pid, q.vruntime.wrapping_add(1)));
                }
                // Reweight = remove + re-enqueue at a re-placed vruntime,
                // exactly how the machine changes a queued task's nice.
                _ => {
                    if queued.is_empty() {
                        continue;
                    }
                    let i = rng.uniform_u64(0, queued.len() as u64 - 1) as usize;
                    let q = &mut queued[i];
                    assert!(rq.remove(q.pid, q.vruntime));
                    assert!(model.remove(q.pid, q.vruntime));
                    let v = rq.place_vruntime(q.vruntime);
                    let w = [15u32, 1024, 88761][rng.uniform_u64(0, 2) as usize];
                    rq.enqueue(q.pid, v, w);
                    model.enqueue(q.pid, v, w);
                    q.vruntime = v;
                    q.weight = w;
                }
            }
            check_invariants(&rq, &model, case, step);
        }
        // Drain: the remaining pick sequence must match entirely.
        loop {
            let got = rq.pop();
            let want = model.pop();
            assert_eq!(got, want, "drain (case {case})");
            if got.is_none() {
                break;
            }
        }
        check_invariants(&rq, &model, case, usize::MAX);
    }
}

#[test]
fn pick_sequence_is_globally_sorted_after_bulk_load() {
    let mut rng = SimRng::seed_from_u64(0xCF5_50B7);
    let mut rq = CfsRunqueue::new();
    let mut keys: Vec<(u64, u64)> = Vec::new();
    for pid in 0..2_000u64 {
        let v = rng.uniform_u64(0, 10_000);
        rq.enqueue(Pid(pid), v, 1024);
        keys.push((v, pid));
    }
    keys.sort_unstable();
    let picked: Vec<(u64, u64)> = std::iter::from_fn(|| rq.pop().map(|(v, p)| (v, p.0))).collect();
    assert_eq!(picked, keys);
    assert_eq!(rq.total_weight(), 0);
    assert_eq!(rq.min_vruntime(), keys.last().unwrap().0);
}
