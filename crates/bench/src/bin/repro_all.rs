//! Run every figure/table harness in sequence (the full reproduction).
//!
//! Invokes the sibling binaries from the same target directory, so build
//! them first:
//!
//! ```text
//! cargo build --release -p sfs-bench
//! cargo run   --release -p sfs-bench --bin repro_all
//! ```
//!
//! `SFS_BENCH_REQUESTS` applies to every harness (default here: 10_000;
//! pass a smaller value for a quick smoke run).

use std::process::Command;
use std::time::Instant;

const HARNESSES: [&str; 11] = [
    "fig01_azure_cdf",
    "fig02_motivation",
    "table1_durations",
    "fig06_08_loads",
    "fig09_timeslice",
    "fig10_slice_timeline",
    "fig11_io",
    "fig12_overload",
    "fig13_16_openlambda",
    "table2_overhead",
    "headline_claims",
];

const EXTRAS: [&str; 5] = [
    "ablation_queues",
    "sensitivity_window",
    "breakdown_buckets",
    "extension_slo",
    "extension_cluster",
];

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir").to_path_buf();
    let mut failures = Vec::new();
    let overall = Instant::now();

    for name in HARNESSES.iter().chain(EXTRAS.iter()) {
        let bin = dir.join(name);
        if !bin.exists() {
            eprintln!("[skip] {name}: binary not built (run cargo build -p sfs-bench first)");
            failures.push(*name);
            continue;
        }
        println!("\n================================================================");
        println!("==> {name}");
        println!("================================================================");
        let t = Instant::now();
        let status = Command::new(&bin).status();
        match status {
            Ok(s) if s.success() => {
                println!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
            }
            Ok(s) => {
                eprintln!("[{name} FAILED: {s}]");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("[{name} could not start: {e}]");
                failures.push(*name);
            }
        }
    }

    println!("\n================================================================");
    println!(
        "Reproduction suite finished in {:.1}s; {} harnesses, {} failures",
        overall.elapsed().as_secs_f64(),
        HARNESSES.len() + EXTRAS.len(),
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
    println!("CSV outputs are under results/.");
}
