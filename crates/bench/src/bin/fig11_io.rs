//! Fig. 11: handling I/O — polling intervals 1/4/8 ms vs I/O-oblivious SFS
//! (§VIII-B).
//!
//! Workload: 75% of requests get one leading I/O operation of 10–100 ms.
//! Expected shape: the three polling intervals are nearly indistinguishable;
//! I/O-oblivious SFS is clearly worse (blocked functions burn their FILTER
//! slice and get demoted).

use sfs_bench::{banner, run_sfs, save, section, turnarounds_ms, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::{cdf_chart, CdfReport};
use sfs_simcore::SimDuration;
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 11",
        "I/O handling: polling intervals vs oblivious",
        n,
        seed,
    );

    // The paper replays the Azure-sampled (bursty) arrival pattern here;
    // burstiness matters because the adaptive slice S dips during spikes,
    // which is exactly when an I/O-oblivious FILTER pool wastes slice
    // credit on sleeping functions.
    let gen = move || {
        let mut spec = WorkloadSpec::azure_replay(n, seed);
        spec.io_fraction = 0.75;
        spec.io_range_ms = (10.0, 100.0);
        spec.with_load(CORES, 0.8).generate()
    };

    let variants: Vec<(&str, SfsConfig)> = vec![
        ("SFS + 1ms", poll_cfg(1)),
        ("SFS + 4ms", poll_cfg(4)),
        ("SFS + 8ms", poll_cfg(8)),
        ("I/O-oblivious SFS", SfsConfig::new(CORES).io_oblivious()),
        // Regime probe: with the slice forced to the I/O scale (50 ms),
        // the oblivious variant burns whole slices on sleeping functions —
        // the mechanism behind the paper's Fig. 11 gap. See EXPERIMENTS.md.
        ("SFS 50ms aware", poll_cfg(4).with_fixed_slice(50)),
        (
            "SFS 50ms oblivious",
            SfsConfig::new(CORES).io_oblivious().with_fixed_slice(50),
        ),
    ];
    let mut sweep = Sweep::new("fig11", seed);
    for (label, cfg) in variants {
        sweep.scenario(label, move |_| run_sfs(cfg, CORES, &gen()));
    }
    let results = sweep.run();

    let mut report = CdfReport::new("duration_ms");
    let mut chart: Vec<(String, Vec<f64>)> = Vec::new();

    for r in &results {
        let io_blocks: u32 = r.value.outcomes.iter().map(|o| o.io_blocks).sum();
        println!(
            "{:>18}: mean {:.1} ms, io-blocks detected {}, demoted {}",
            r.label,
            r.value.mean_turnaround_ms(),
            io_blocks,
            r.value.telemetry.demoted
        );
        let durs = turnarounds_ms(&r.value.outcomes);
        report.push(r.label.clone(), durs.clone());
        chart.push((r.label.clone(), durs));
    }

    section("duration CDF quantiles (ms)");
    println!("{}", report.to_markdown());
    save("fig11_io_cdf.csv", &report.to_csv());

    section("duration CDF (log-x)");
    let refs: Vec<(&str, &[f64])> = chart
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));
}

fn poll_cfg(ms: u64) -> SfsConfig {
    let mut c = SfsConfig::new(CORES);
    c.poll_interval = SimDuration::from_millis(ms);
    c
}
