//! Cross-crate integration: workload generation → scheduling → metrics,
//! exercising the full pipeline every figure harness uses.

use sfs_repro::metrics::{headline_claims, Paired};
use sfs_repro::sched::MachineParams;
use sfs_repro::sfs::{
    Baseline, ControllerFactory, Ideal, RequestOutcome, SfsConfig, SfsController, Sim,
};
use sfs_repro::simcore::{Samples, SimDuration};
use sfs_repro::workload::{Workload, WorkloadSpec};

const CORES: usize = 8;

fn workload(n: usize, seed: u64, load: f64) -> Workload {
    WorkloadSpec::azure_sampled(n, seed)
        .with_load(CORES, load)
        .generate()
}

fn run_sfs(w: &Workload) -> Vec<RequestOutcome> {
    Sim::on(MachineParams::linux(CORES))
        .workload(w)
        .controller(SfsController::new(SfsConfig::new(CORES)))
        .run()
        .outcomes
}

fn run_with(f: &dyn ControllerFactory, cores: usize, w: &Workload) -> Vec<RequestOutcome> {
    f.run_on(cores, w).outcomes
}

fn run_ideal(w: &Workload) -> Vec<RequestOutcome> {
    Sim::on(MachineParams::linux(CORES))
        .workload(w)
        .controller(Ideal)
        .run()
        .outcomes
}

#[test]
fn every_scheduler_completes_the_same_request_set() {
    let w = workload(800, 3, 0.9);
    let ids: Vec<u64> = w.requests.iter().map(|r| r.id).collect();
    for outs in [
        run_sfs(&w),
        run_with(&Baseline::Cfs, CORES, &w),
        run_with(&Baseline::Fifo, CORES, &w),
        run_with(&Baseline::Rr, CORES, &w),
        run_with(&Baseline::Srtf, CORES, &w),
        run_ideal(&w),
    ] {
        let got: Vec<u64> = outs.iter().map(|o| o.id).collect();
        assert_eq!(got, ids, "request set mismatch");
    }
}

#[test]
fn ideal_lower_bounds_all_schedulers() {
    let w = workload(600, 5, 0.95);
    let ideal = run_ideal(&w);
    for outs in [
        run_sfs(&w),
        run_with(&Baseline::Cfs, CORES, &w),
        run_with(&Baseline::Srtf, CORES, &w),
    ] {
        for (o, i) in outs.iter().zip(ideal.iter()) {
            assert!(
                o.turnaround.as_nanos() + 1_000 >= i.turnaround.as_nanos(),
                "request {} beat IDEAL: {} < {}",
                o.id,
                o.turnaround,
                i.turnaround
            );
        }
    }
}

#[test]
fn scheduler_ordering_on_median_turnaround() {
    // The paper's qualitative ordering at high load: SRTF <= SFS << CFS,
    // and FIFO worst for the short-dominated population median.
    let w = workload(3_000, 7, 1.0);
    let median = |outs: &[RequestOutcome]| {
        let mut s = Samples::from_vec(outs.iter().map(|o| o.turnaround.as_millis_f64()).collect());
        s.percentile(50.0)
    };
    let sfs = median(&run_sfs(&w));
    let srtf = median(&run_with(&Baseline::Srtf, CORES, &w));
    let cfs = median(&run_with(&Baseline::Cfs, CORES, &w));
    let fifo = median(&run_with(&Baseline::Fifo, CORES, &w));
    assert!(
        srtf <= sfs * 1.2,
        "SRTF {srtf} should not lose to SFS {sfs}"
    );
    assert!(sfs < cfs, "SFS {sfs} must beat CFS {cfs} at the median");
    assert!(cfs < fifo, "CFS {cfs} must beat FIFO {fifo} (convoy)");
}

#[test]
fn headline_pipeline_produces_consistent_aggregates() {
    let w = workload(2_000, 11, 1.0);
    let sfs = run_sfs(&w);
    let cfs = run_with(&Baseline::Cfs, CORES, &w);
    let pairs: Vec<Paired> = sfs
        .iter()
        .zip(cfs.iter())
        .map(|(s, c)| Paired {
            ideal_ms: s.ideal.as_millis_f64(),
            treatment_ms: s.turnaround.as_millis_f64(),
            baseline_ms: c.turnaround.as_millis_f64(),
            treatment_ctx: s.ctx_switches,
            baseline_ctx: c.ctx_switches,
        })
        .collect();
    let h = headline_claims(&pairs, 1550.0);
    // Table I renormalised: ~16.4% long → ~83.6% short.
    assert!(
        (h.short_fraction - 0.836).abs() < 0.03,
        "short share {}",
        h.short_fraction
    );
    assert!(
        h.short_mean_speedup > 1.5,
        "speedup {}",
        h.short_mean_speedup
    );
    assert!(
        h.improved_fraction > 0.5,
        "improved {}",
        h.improved_fraction
    );
}

#[test]
fn sfs_median_stays_flat_across_loads() {
    // Fig. 6's signature: SFS's median is load-insensitive while CFS's grows.
    let mut sfs_medians = Vec::new();
    let mut cfs_medians = Vec::new();
    for &load in &[0.5, 0.8, 1.0] {
        let w = workload(2_500, 13, load);
        let med = |outs: &[RequestOutcome]| {
            let mut s =
                Samples::from_vec(outs.iter().map(|o| o.turnaround.as_millis_f64()).collect());
            s.percentile(50.0)
        };
        sfs_medians.push(med(&run_sfs(&w)));
        cfs_medians.push(med(&run_with(&Baseline::Cfs, CORES, &w)));
    }
    let sfs_growth = sfs_medians[2] / sfs_medians[0];
    let cfs_growth = cfs_medians[2] / cfs_medians[0];
    assert!(
        sfs_growth < 1.3,
        "SFS median grew {sfs_growth}x across loads: {sfs_medians:?}"
    );
    assert!(
        cfs_growth > sfs_growth,
        "CFS growth {cfs_growth}x should exceed SFS {sfs_growth}x"
    );
}

#[test]
fn outcomes_are_internally_consistent() {
    let w = workload(500, 17, 0.9);
    for o in run_sfs(&w) {
        assert!(o.finished >= o.arrival);
        assert_eq!(o.turnaround, o.finished - o.arrival);
        assert!(o.rte > 0.0 && o.rte <= 1.0);
        assert!(o.ideal >= o.cpu_demand);
        assert!(o.queue_delay <= o.turnaround);
        // filter_rounds == 0 is legitimate in three ways: the overload
        // bypass, a sub-millisecond race, or completion under plain CFS
        // work conservation while still queued. All are bounded by the
        // turnaround consistency checks above.
        let _ = SimDuration::ZERO;
    }
}
