//! # sfs-lint — determinism & panic-safety static analysis for this workspace
//!
//! Every PR since the seed stakes its correctness on one invariant:
//! **bit-identical results at any thread count, any event-core backend,
//! any scale**. The golden snapshots and determinism suites defend that
//! invariant *dynamically* — but a hazard no golden happens to exercise
//! (a NaN reaching a `partial_cmp().unwrap()` sort, a `HashMap` iteration
//! order leaking into output) ships silently. `sfs-lint` rules the whole
//! *class* of bug out at the source level.
//!
//! Fully dependency-free, like everything else in the workspace: a small
//! hand-written [lexer] (comments and string contents can never match a
//! rule) feeds a rule [engine] over the [ruleset](rules::RULESET):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D1` | no `HashMap`/`HashSet` in non-test code (iteration order) |
//! | `D2` | no `Instant`/`SystemTime` outside `timebench`/`perf` |
//! | `D3` | no thread spawning outside `simcore::parallel` |
//! | `P1` | no `partial_cmp(..).unwrap()` — `f64::total_cmp` instead |
//! | `P2` | no `try_into().unwrap()` in non-test code |
//! | `U1` | `unsafe` confined to `hostsched/src/sys.rs` |
//!
//! A finding is silenced only by a **reasoned** suppression:
//!
//! ```text
//! // lint: allow(D1, lookups-only by construction; never iterated)
//! // lint: allow-file(D2, live backend measures real wall-clock by design)
//! ```
//!
//! `allow` covers its own line and the next; `allow-file` the whole file.
//! A reasonless, unknown-rule, or unused allow is itself a finding.
//!
//! The pass runs three ways so it can never rot: the `simlint` binary
//! (`cargo run --bin simlint`), a root-crate test (plain `cargo test`
//! enforces it), and a dedicated CI step.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use engine::{scan_source, FileScan, Finding};
pub use rules::{Rule, RULESET};

use std::io;
use std::path::Path;

/// Result of scanning a whole workspace tree.
#[derive(Debug, Default)]
pub struct WorkspaceScan {
    /// Unsuppressed findings (must be empty for the gate to pass).
    pub findings: Vec<Finding>,
    /// Findings silenced by reasoned allows, kept visible for reporting.
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Scan every `.rs` file under `root` with the default
/// [ruleset](rules::RULESET). Findings come back in sorted-path order, so
/// output is byte-stable run to run.
pub fn scan_workspace(root: &Path) -> io::Result<WorkspaceScan> {
    let mut scan = WorkspaceScan::default();
    for path in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(&path)?;
        let rel = walk::relative_path(root, &path);
        let file = scan_source(&rel, &source, rules::RULESET);
        scan.findings.extend(file.findings);
        scan.suppressed.extend(file.suppressed);
        scan.files += 1;
    }
    Ok(scan)
}
