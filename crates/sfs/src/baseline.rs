//! Pure-kernel baselines (CFS / FIFO / RR / SRTF / IDEAL) over a workload,
//! producing the same [`RequestOutcome`] records as an SFS run so every
//! figure harness can compare apples to apples.
//!
//! These are the comparators of Fig. 2 (motivation) and the "CFS" series in
//! every evaluation figure: the FaaS server dispatches each request straight
//! to the OS and the kernel scheduler does everything.

use sfs_sched::{run_open_loop, MachineParams, Policy, SchedMode, TaskSpec};
use sfs_simcore::SimDuration;
use sfs_workload::Workload;

use crate::stats::RequestOutcome;

/// Which baseline scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Linux default: every request under `SCHED_NORMAL` nice 0.
    Cfs,
    /// Every request under `SCHED_FIFO` at one priority (convoy-prone).
    Fifo,
    /// Every request under `SCHED_RR` at one priority.
    Rr,
    /// The offline oracle.
    Srtf,
}

impl Baseline {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Cfs => "CFS",
            Baseline::Fifo => "FIFO",
            Baseline::Rr => "RR",
            Baseline::Srtf => "SRTF",
        }
    }
}

/// Run `workload` under a pure kernel scheduling policy on `cores` cores.
pub fn run_baseline(baseline: Baseline, cores: usize, workload: &Workload) -> Vec<RequestOutcome> {
    run_baseline_with(baseline, MachineParams::linux(cores), workload)
}

/// As [`run_baseline`] but with explicit machine parameters (tunable CFS
/// knobs, context-switch cost).
pub fn run_baseline_with(
    baseline: Baseline,
    mut params: MachineParams,
    workload: &Workload,
) -> Vec<RequestOutcome> {
    params.mode = match baseline {
        Baseline::Srtf => SchedMode::Srtf,
        _ => SchedMode::Linux,
    };
    let mut arrivals: Vec<_> = workload
        .requests
        .iter()
        .map(|r| {
            let mut spec: TaskSpec = r.spec.clone();
            spec.policy = match baseline {
                Baseline::Cfs | Baseline::Srtf => Policy::NORMAL,
                Baseline::Fifo => Policy::Fifo { prio: 50 },
                Baseline::Rr => Policy::Rr { prio: 50 },
            };
            (r.arrival, spec)
        })
        .collect();
    // Platform pipelines can reorder dispatches (jittered multi-server
    // hops); the machine requires monotone spawn times.
    arrivals.sort_by_key(|(at, _)| *at);
    let mut finished = run_open_loop(params, arrivals);
    finished.sort_by_key(|t| t.label);
    finished
        .into_iter()
        .map(|t| RequestOutcome {
            id: t.label,
            arrival: t.arrival,
            finished: t.finished,
            turnaround: t.turnaround(),
            ideal: t.ideal,
            cpu_demand: t.cpu_demand,
            rte: t.rte(),
            ctx_switches: t.ctx_switches,
            queue_delay: SimDuration::ZERO,
            demoted: false,
            offloaded: false,
            filter_rounds: 0,
            io_blocks: 0,
        })
        .collect()
}

/// The IDEAL scenario: infinite resources, zero contention. Turnaround is
/// the spec's isolated duration by construction.
pub fn run_ideal(workload: &Workload) -> Vec<RequestOutcome> {
    workload
        .requests
        .iter()
        .map(|r| {
            let ideal = r.spec.ideal_duration();
            RequestOutcome {
                id: r.id,
                arrival: r.arrival,
                finished: r.arrival + ideal,
                turnaround: ideal,
                ideal,
                cpu_demand: r.spec.cpu_demand(),
                rte: 1.0,
                ctx_switches: 0,
                queue_delay: SimDuration::ZERO,
                demoted: false,
                offloaded: false,
                filter_rounds: 0,
                io_blocks: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_workload::WorkloadSpec;

    fn workload() -> Workload {
        WorkloadSpec::azure_sampled(400, 21)
            .with_load(4, 0.8)
            .generate()
    }

    #[test]
    fn all_baselines_complete_every_request() {
        let w = workload();
        for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
            let out = run_baseline(b, 4, &w);
            assert_eq!(out.len(), w.len(), "{} lost requests", b.name());
            // Outcomes sorted by id and complete.
            for (i, o) in out.iter().enumerate() {
                assert_eq!(o.id, i as u64);
                assert!(o.turnaround >= SimDuration::ZERO);
                assert!(o.rte > 0.0 && o.rte <= 1.0);
            }
        }
    }

    #[test]
    fn ideal_is_a_lower_bound() {
        let w = workload();
        let ideal = run_ideal(&w);
        for b in [Baseline::Cfs, Baseline::Srtf] {
            let out = run_baseline(b, 4, &w);
            for (o, i) in out.iter().zip(ideal.iter()) {
                assert!(
                    o.turnaround >= i.turnaround,
                    "{}: request {} beat IDEAL",
                    b.name(),
                    o.id
                );
            }
        }
    }

    #[test]
    fn srtf_dominates_cfs_at_high_load() {
        let w = WorkloadSpec::azure_sampled(1_500, 3)
            .with_load(4, 1.0)
            .generate();
        let cfs = run_baseline(Baseline::Cfs, 4, &w);
        let srtf = run_baseline(Baseline::Srtf, 4, &w);
        let mean = |v: &[RequestOutcome]| {
            v.iter().map(|o| o.turnaround.as_millis_f64()).sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&srtf) < mean(&cfs),
            "SRTF must beat CFS on mean turnaround"
        );
    }

    #[test]
    fn fifo_suffers_convoy_on_short_requests() {
        let w = WorkloadSpec::azure_sampled(1_500, 5)
            .with_load(4, 1.0)
            .generate();
        let fifo = run_baseline(Baseline::Fifo, 4, &w);
        let srtf = run_baseline(Baseline::Srtf, 4, &w);
        // Compare median turnaround of short requests (most of the mass).
        let median_short = |v: &[RequestOutcome]| {
            let mut xs: Vec<f64> = v
                .iter()
                .filter(|o| o.cpu_demand < SimDuration::from_millis(100))
                .map(|o| o.turnaround.as_millis_f64())
                .collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[xs.len() / 2]
        };
        assert!(
            median_short(&fifo) > 3.0 * median_short(&srtf),
            "FIFO {} vs SRTF {}: convoy effect missing",
            median_short(&fifo),
            median_short(&srtf)
        );
    }
}
