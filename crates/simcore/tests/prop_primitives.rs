//! Property tests for the simulation primitives.

use proptest::prelude::*;
use sfs_simcore::{EventQueue, Histogram, OnlineStats, Samples, SimDuration, SimTime};

proptest! {
    /// Events pop in non-decreasing time order; equal timestamps pop FIFO.
    #[test]
    fn event_queue_total_order(times in proptest::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::ZERO + SimDuration::from_millis(t), i);
        }
        let mut prev_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= prev_time, "time went backwards");
            if Some(at) == last_time {
                prop_assert!(
                    *seen_at_time.last().unwrap() < idx,
                    "FIFO violated for simultaneous events"
                );
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = Some(at);
            prev_time = at;
        }
    }

    /// Nearest-rank quantiles are actual samples and monotone in q.
    #[test]
    fn quantiles_are_samples_and_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..400)) {
        let mut s = Samples::from_vec(xs.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q);
            prop_assert!(xs.contains(&v), "quantile {v} is not a sample");
            prop_assert!(v >= prev, "quantile not monotone");
            prev = v;
        }
        prop_assert_eq!(s.quantile(1.0), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Welford mean matches the naive mean to floating tolerance.
    #[test]
    fn online_stats_match_naive(xs in proptest::collection::vec(-1e4f64..1e4, 1..500)) {
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((o.mean() - naive).abs() < 1e-6);
        prop_assert_eq!(o.count(), xs.len() as u64);
        prop_assert!(o.min() <= o.mean() + 1e-9 && o.mean() <= o.max() + 1e-9);
    }

    /// Histogram counts everything exactly once.
    #[test]
    fn histogram_conserves_counts(xs in proptest::collection::vec(1e-3f64..1e9, 1..400)) {
        let mut h = Histogram::new(1.0, 10.0, 10);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let sum: u64 = h.buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(sum, xs.len() as u64);
        prop_assert!((h.cumulative_fraction(9) - 1.0).abs() < 1e-12);
    }
}
