//! Pre-warmed container pool.
//!
//! The paper disables OpenLambda's auto-scaling and pre-warms "enough
//! function containers to simulate a stable-phase FaaS backend" (§VI), so
//! cold starts never perturb the scheduling measurements. This module
//! provides that pool: fixed capacity, acquire-at-dispatch,
//! release-at-completion, with a FIFO wait queue and occupancy statistics so
//! experiments can verify the pool was indeed never the bottleneck.

use std::collections::VecDeque;

use sfs_simcore::{SimDuration, SimTime};

/// A fixed-capacity pre-warmed container pool.
#[derive(Debug, Clone)]
pub struct ContainerPool {
    capacity: usize,
    in_use: usize,
    /// (request id, time it started waiting).
    waiting: VecDeque<(u64, SimTime)>,
    peak_in_use: usize,
    total_waits: u64,
    total_wait_time: SimDuration,
    acquisitions: u64,
}

/// Result of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A container was available immediately.
    Granted,
    /// The pool is exhausted; the request was queued.
    Queued,
}

impl ContainerPool {
    /// A pool of `capacity` pre-warmed containers.
    pub fn new(capacity: usize) -> ContainerPool {
        assert!(capacity >= 1, "pool needs at least one container");
        ContainerPool {
            capacity,
            in_use: 0,
            waiting: VecDeque::new(),
            peak_in_use: 0,
            total_waits: 0,
            total_wait_time: SimDuration::ZERO,
            acquisitions: 0,
        }
    }

    /// Containers currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Requests waiting for a container.
    pub fn queued(&self) -> usize {
        self.waiting.len()
    }

    /// Peak simultaneous occupancy observed.
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Number of acquisitions that had to wait.
    pub fn total_waits(&self) -> u64 {
        self.total_waits
    }

    /// Total time spent waiting across all requests.
    pub fn total_wait_time(&self) -> SimDuration {
        self.total_wait_time
    }

    /// Total successful acquisitions (granted immediately or after a wait).
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// True iff the pool never blocked a request — what the paper's
    /// pre-warmed setup guarantees.
    pub fn never_blocked(&self) -> bool {
        self.total_waits == 0
    }

    /// Try to take a container for request `id` at time `now`.
    pub fn acquire(&mut self, id: u64, now: SimTime) -> Acquire {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.peak_in_use = self.peak_in_use.max(self.in_use);
            self.acquisitions += 1;
            Acquire::Granted
        } else {
            self.waiting.push_back((id, now));
            self.total_waits += 1;
            Acquire::Queued
        }
    }

    /// Release a container at time `now`; if requests are waiting, the
    /// container is handed to the head of the queue and that request id is
    /// returned (its wait is accounted).
    pub fn release(&mut self, now: SimTime) -> Option<u64> {
        assert!(self.in_use > 0, "release without acquire");
        if let Some((id, since)) = self.waiting.pop_front() {
            // Hand-off: in_use stays the same.
            self.total_wait_time += now.since(since);
            self.acquisitions += 1;
            Some(id)
        } else {
            self.in_use -= 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_simcore::SimRng;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn grants_until_capacity() {
        let mut p = ContainerPool::new(2);
        assert_eq!(p.acquire(1, at(0)), Acquire::Granted);
        assert_eq!(p.acquire(2, at(0)), Acquire::Granted);
        assert_eq!(p.acquire(3, at(0)), Acquire::Queued);
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.queued(), 1);
        assert_eq!(p.peak_in_use(), 2);
        assert!(!p.never_blocked());
    }

    #[test]
    fn release_hands_off_to_waiter() {
        let mut p = ContainerPool::new(1);
        assert_eq!(p.acquire(1, at(0)), Acquire::Granted);
        assert_eq!(p.acquire(2, at(5)), Acquire::Queued);
        let handed = p.release(at(20));
        assert_eq!(handed, Some(2));
        assert_eq!(p.in_use(), 1, "hand-off keeps the container busy");
        assert_eq!(p.total_wait_time(), SimDuration::from_millis(15));
        // No waiters: release frees the container.
        assert_eq!(p.release(at(30)), None);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_underflow_panics() {
        let mut p = ContainerPool::new(1);
        p.release(at(0));
    }

    #[test]
    fn zero_duration_wait_is_accounted_exactly() {
        // Queued and handed off at the same instant (a release and an
        // acquire colliding on one event-queue timestamp): the wait must
        // count as exactly zero — present in total_waits, absent from
        // total_wait_time — not skipped and not negative.
        let mut p = ContainerPool::new(1);
        assert_eq!(p.acquire(1, at(5)), Acquire::Granted);
        assert_eq!(p.acquire(2, at(5)), Acquire::Queued);
        assert_eq!(p.release(at(5)), Some(2));
        assert_eq!(p.total_wait_time(), SimDuration::ZERO);
        assert_eq!(p.total_waits(), 1);
        assert_eq!(p.acquisitions(), 2);
        assert_eq!(p.in_use(), 1, "hand-off keeps the container occupied");
    }

    #[test]
    fn drained_pool_resets_to_clean_idle_state() {
        // Fill, queue, drain completely: the emptied pool must grant
        // again immediately and its wait queue must be truly empty (no
        // ghost waiters after the last hand-off).
        let mut p = ContainerPool::new(2);
        assert_eq!(p.acquire(1, at(0)), Acquire::Granted);
        assert_eq!(p.acquire(2, at(0)), Acquire::Granted);
        assert_eq!(p.acquire(3, at(1)), Acquire::Queued);
        assert_eq!(p.release(at(2)), Some(3));
        assert_eq!(p.release(at(3)), None);
        assert_eq!(p.release(at(4)), None);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.queued(), 0);
        assert_eq!(p.acquire(4, at(5)), Acquire::Granted);
        assert_eq!(p.peak_in_use(), 2, "peak survives the drain");
        assert_eq!(p.total_waits(), 1);
    }

    #[test]
    fn ample_pool_never_blocks() {
        let mut p = ContainerPool::new(1_000);
        for i in 0..500 {
            assert_eq!(p.acquire(i, at(i)), Acquire::Granted);
        }
        assert!(p.never_blocked());
        assert_eq!(p.peak_in_use(), 500);
        assert_eq!(p.acquisitions(), 500);
    }

    /// Occupancy never exceeds capacity and hand-offs preserve FIFO order.
    ///
    /// Property-style cases driven by the workspace's seeded RNG (no
    /// proptest dependency); a fixed seed makes failures reproducible.
    #[test]
    fn pool_invariants() {
        let mut rng = SimRng::seed_from_u64(0xF001);
        for case in 0..64 {
            let cap = rng.uniform_u64(1, 7) as usize;
            let n_ops = rng.uniform_u64(1, 199);
            let mut p = ContainerPool::new(cap);
            let mut next_id = 0u64;
            let mut queued: std::collections::VecDeque<u64> = Default::default();
            let mut t = 0u64;
            for _ in 0..n_ops {
                t += 1;
                if rng.chance(0.5) {
                    let id = next_id;
                    next_id += 1;
                    if p.acquire(id, at(t)) == Acquire::Queued {
                        queued.push_back(id);
                    }
                } else if p.in_use() > 0 {
                    let handed = p.release(at(t));
                    if let Some(id) = handed {
                        assert_eq!(Some(id), queued.pop_front(), "FIFO hand-off (case {case})");
                    }
                }
                assert!(p.in_use() <= cap, "case {case}");
                assert_eq!(p.queued(), queued.len(), "case {case}");
            }
        }
    }
}
