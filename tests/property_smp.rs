//! Property suite for the SMP machine model: randomized workloads across
//! cores ∈ {2, 3, 4, 8} with the load balancer enabled, affinity costs on
//! and off, all driven by the workspace's seeded `SimRng` (exactly
//! reproducible, no proptest dependency).
//!
//! Invariants locked here:
//!
//! * **Task conservation under migration** — after every advance (stepped
//!   finer than the balance interval, so every balance tick is audited)
//!   each live task sits in exactly one place: running on one core, queued
//!   on exactly one runqueue, or sleeping; dead tasks are nowhere.
//! * **Per-core clock monotonicity** — a core's local clock never rewinds,
//!   across dispatches, preemptions, steals, and balance migrations.
//! * **No migration when balanced** — a perfectly even load (identical
//!   tasks, count divisible by cores) never triggers the balancer.
//! * **Work conservation** — nothing is lost or double-counted: every
//!   spawned task finishes exactly once with `cpu_time == cpu_demand`,
//!   whatever the balancer did to it.

use sfs_repro::sched::{
    KernelPolicyKind, Machine, MachineParams, Phase, Policy, SmpParams, TaskSpec,
};
use sfs_repro::simcore::{SimDuration, SimRng, SimTime};

const CORE_COUNTS: [usize; 4] = [2, 3, 4, 8];

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::seed_from_u64(0x5317_BA1A)
        .derive(test)
        .derive(&case.to_string())
}

fn smp_params(rng: &mut SimRng, affinity: bool) -> SmpParams {
    SmpParams::balanced(
        us(rng.uniform_u64(300, 2_000)),
        us(rng.uniform_u64(0, 400)),
        if affinity {
            us(rng.uniform_u64(50, 300))
        } else {
            SimDuration::ZERO
        },
    )
}

/// A bursty random mix: mostly CFS with mixed niceness and optional I/O,
/// plus the occasional RT task so the balancer runs against a busy RT core
/// now and then (the regime that actually builds queue imbalances).
fn arb_tasks(rng: &mut SimRng, n: usize) -> Vec<(SimTime, TaskSpec)> {
    let mut at = SimTime::ZERO;
    (0..n)
        .map(|i| {
            // Clustered arrivals: half the tasks arrive nearly together.
            if rng.chance(0.5) {
                at += us(rng.uniform_u64(1, 150));
            } else {
                at += us(rng.uniform_u64(500, 5_000));
            }
            let mut phases = Vec::new();
            if rng.chance(0.25) {
                phases.push(Phase::Io(us(rng.uniform_u64(100, 3_000))));
            }
            phases.push(Phase::Cpu(us(rng.uniform_u64(200, 15_000))));
            if rng.chance(0.2) {
                phases.push(Phase::Io(us(rng.uniform_u64(100, 1_000))));
                phases.push(Phase::Cpu(us(rng.uniform_u64(100, 4_000))));
            }
            let policy = if rng.chance(0.1) {
                Policy::Fifo { prio: 50 }
            } else {
                Policy::Normal {
                    nice: rng.uniform_u64(0, 10) as i8 - 5,
                }
            };
            (
                at,
                TaskSpec {
                    phases,
                    policy,
                    label: i as u64,
                },
            )
        })
        .collect()
}

/// Drive one randomized balancing run stepwise, auditing conservation and
/// per-core clock monotonicity after every advance.
fn audited_run(mut rng: SimRng, cores: usize, affinity: bool) -> (Machine, u64) {
    let smp = smp_params(&mut rng, affinity);
    let params = MachineParams {
        cores,
        kpolicy: KernelPolicyKind::Cfs,
        ..Default::default()
    }
    .with_smp(smp);
    let mut m = Machine::new(params);
    let n_tasks = rng.uniform_u64(20, 60) as usize;
    let tasks = arb_tasks(&mut rng, n_tasks);
    let n = tasks.len() as u64;

    // Step finer than the balance interval so every tick boundary gets its
    // own audit point.
    let step = SimDuration::from_nanos(smp.balance_interval.as_nanos() / 3 + 1);
    let mut clocks = vec![SimTime::ZERO; cores];
    let mut pending = tasks.into_iter().peekable();
    let mut notes = Vec::new();
    let mut now = SimTime::ZERO;
    while pending.peek().is_some() || m.live_tasks() > 0 {
        now += step;
        while pending.peek().is_some_and(|(t, _)| *t <= now) {
            let (t, spec) = pending.next().unwrap();
            notes.clear();
            m.advance_into(t, &mut notes);
            m.spawn(spec);
        }
        notes.clear();
        m.advance_into(now, &mut notes);

        m.assert_conservation();
        for (core, last) in clocks.iter_mut().enumerate() {
            let c = m.core_clock(core);
            assert!(
                c >= *last,
                "core {core} clock rewound: {c} < {last} at {now}"
            );
            *last = c;
        }
    }
    assert_eq!(m.finished().len(), n as usize, "nothing lost");
    for t in m.finished() {
        assert_eq!(
            t.cpu_time, t.cpu_demand,
            "task {} mis-accounted under migration",
            t.label
        );
    }
    let migrations = m.balance_migrations();
    (m, migrations)
}

#[test]
fn conservation_and_clock_monotonicity_under_balancing() {
    let mut migrations_seen = 0u64;
    for &cores in &CORE_COUNTS {
        for (a, &affinity) in [false, true].iter().enumerate() {
            for case in 0..4 {
                let rng = case_rng(&format!("audited_c{cores}_a{a}"), case);
                let (_, migrations) = audited_run(rng, cores, affinity);
                migrations_seen += migrations;
            }
        }
    }
    // The suite must actually exercise the balancer, not vacuously pass
    // because no imbalance ever formed.
    assert!(
        migrations_seen > 0,
        "randomized cases never triggered a balance migration"
    );
}

#[test]
fn perfectly_balanced_load_never_migrates() {
    for &cores in &CORE_COUNTS {
        for case in 0..4 {
            let mut rng = case_rng(&format!("balanced_c{cores}"), case);
            let affinity = rng.chance(0.5);
            let smp = smp_params(&mut rng, affinity);
            let params = MachineParams {
                cores,
                kpolicy: KernelPolicyKind::Cfs,
                ..Default::default()
            }
            .with_smp(smp);
            let mut m = Machine::new(params);
            // Identical pure-CPU tasks, an exact multiple of the core
            // count, all arriving at t=0: placement spreads them evenly
            // and they stay even forever.
            let per_core = rng.uniform_u64(2, 5);
            let burst = us(rng.uniform_u64(1_000, 10_000));
            for i in 0..per_core * cores as u64 {
                m.spawn(TaskSpec::cpu(i, burst));
            }
            m.run_until_quiescent();
            assert_eq!(
                m.balance_migrations(),
                0,
                "even load migrated (cores={cores}, case={case})"
            );
            assert_eq!(m.finished().len() as u64, per_core * cores as u64);
        }
    }
}

#[test]
fn affinity_cost_never_changes_what_completes() {
    // Affinity charges shift *when* things finish, never *what* finishes:
    // same workload with and without affinity cost completes the same task
    // set with identical per-task CPU accounting.
    for &cores in &CORE_COUNTS {
        for case in 0..3 {
            let mut wl_rng = case_rng(&format!("aff_wl_c{cores}"), case);
            let tasks = arb_tasks(&mut wl_rng, 30);
            let run = |aff: SimDuration| {
                let smp = SmpParams::balanced(us(700), us(100), aff);
                let params = MachineParams {
                    cores,
                    kpolicy: KernelPolicyKind::Cfs,
                    ..Default::default()
                }
                .with_smp(smp);
                let mut m = Machine::new(params);
                for (t, spec) in tasks.clone() {
                    m.advance_to(t);
                    m.spawn(spec);
                }
                m.run_until_quiescent();
                let mut labels: Vec<(u64, SimDuration)> =
                    m.finished().iter().map(|t| (t.label, t.cpu_time)).collect();
                labels.sort_unstable();
                labels
            };
            assert_eq!(run(SimDuration::ZERO), run(us(200)));
        }
    }
}
