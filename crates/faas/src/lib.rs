//! # sfs-faas — OpenLambda-like FaaS platform substrate
//!
//! The backend platform the paper ports SFS to (§VI, §IX): a gateway, a
//! pool of OpenLambda workers, HTTP sandbox servers managing pre-warmed
//! Docker-like containers, and the UDP `(pid, T_inv)` notification path to
//! SFS (Fig. 5).
//!
//! * [`pipeline`] — FCFS multi-server dispatch hops with jittered overheads;
//! * [`containers`] — the pre-warmed container pool (acquire/release, FIFO
//!   hand-off, occupancy stats);
//! * [`platform`] — [`platform::OpenLambda`]: end-to-end dispatch + run under
//!   SFS or a kernel baseline, with turnaround re-based to HTTP invocation;
//! * [`fleet`] — [`fleet::Fleet`]: multi-region composition of [`Cluster`]
//!   pools behind a global front door, with autoscaling and fault injection.

#![warn(missing_docs)]

pub mod cluster;
pub mod containers;
pub mod fleet;
pub mod pipeline;
pub mod platform;

pub use cluster::{Affinity, Cluster, ClusterRun, HostLoad, Placement};
pub use containers::{Acquire, ContainerPool};
pub use fleet::{Autoscaler, FaultSpec, Fleet, FleetRun, FrontDoor, RegionConfig, RegionStats};
pub use pipeline::{Pipeline, Stage};
pub use platform::{Dispatched, HostScheduler, OpenLambda, OpenLambdaParams};
