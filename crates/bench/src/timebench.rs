//! Minimal wall-clock benchmarking harness (criterion stand-in).
//!
//! The workspace builds hermetically with no external crates, so the
//! `benches/` targets use this std-only harness instead of criterion:
//! each benchmark auto-calibrates a batch size, runs a fixed number of
//! timed batches, and reports median / p10 / p90 nanoseconds per
//! iteration. Invoke with `cargo bench` (the targets set
//! `harness = false`) — an optional CLI argument filters benchmarks by
//! substring, mirroring criterion's behaviour.

use std::time::{Duration, Instant};

/// Target wall time for one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Number of timed batches per benchmark.
const BATCHES: usize = 25;

/// Measured distribution of per-iteration cost.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// 10th percentile ns/iter.
    pub p10_ns: f64,
    /// 90th percentile ns/iter.
    pub p90_ns: f64,
    /// Iterations per timed batch after calibration.
    pub batch_iters: u64,
}

/// A named group of benchmarks, printed as an aligned report.
pub struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Harness {
    /// Build a harness, taking an optional substring filter from argv.
    pub fn from_args() -> Harness {
        let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
        Harness { filter, ran: 0 }
    }

    /// Run one benchmark: `f` is the operation to time, called repeatedly.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if let Some(ref pat) = self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        let m = measure(&mut f);
        self.ran += 1;
        println!(
            "{name:<44} {:>12}/iter  (p10 {}, p90 {}, {} iters/batch)",
            fmt_ns(m.median_ns),
            fmt_ns(m.p10_ns),
            fmt_ns(m.p90_ns),
            m.batch_iters
        );
    }

    /// Print a trailing summary; call once at the end of `main`.
    pub fn finish(self) {
        if self.ran == 0 {
            println!("(no benchmarks matched the filter)");
        }
    }
}

/// Calibration ceiling: give up growing the batch past this many
/// iterations (guards against closures the optimizer deletes entirely).
const MAX_BATCH_ITERS: u64 = 1 << 30;

/// Time `f`, returning the per-iteration cost distribution.
pub fn measure<F: FnMut()>(f: &mut F) -> Measurement {
    // Calibrate: grow the batch until it runs for at least BATCH_TARGET.
    let mut iters: u64 = 1;
    loop {
        let t = time_batch(f, iters);
        if t >= BATCH_TARGET || iters >= MAX_BATCH_ITERS {
            break;
        }
        // Aim straight for the target with 2x headroom, at least doubling.
        let scale = BATCH_TARGET.as_secs_f64() / t.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.max(1.0) * 2.0).min(MAX_BATCH_ITERS as f64) as u64;
        iters = iters.max(2);
    }
    let mut per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| time_batch(f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| per_iter[((per_iter.len() - 1) as f64 * q).round() as usize];
    Measurement {
        median_ns: pick(0.5),
        p10_ns: pick(0.1),
        p90_ns: pick(0.9),
        batch_iters: iters,
    }
}

fn time_batch<F: FnMut()>(f: &mut F, iters: u64) -> Duration {
    // Callers are expected to `black_box` their own results inside `f`
    // (the compiler cannot see through the FnMut boundary anyway).
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed()
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_ordered_quantiles() {
        let mut x = 0u64;
        let mut f = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        };
        let m = measure(&mut f);
        assert!(m.p10_ns <= m.median_ns && m.median_ns <= m.p90_ns);
        assert!(m.median_ns > 0.0);
        assert!(m.batch_iters >= 1);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_200.0), "1.20us");
        assert_eq!(fmt_ns(3_400_000.0), "3.40ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.00s");
    }
}
