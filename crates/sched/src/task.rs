//! Task model: the unit the OS scheduler substrate schedules.
//!
//! A task is a serverless function process: an alternating sequence of CPU
//! bursts and I/O waits ([`Phase`]), plus a scheduling [`Policy`]
//! (`SCHED_FIFO` / `SCHED_RR` / `SCHED_NORMAL`, mirroring `sched(7)`).
//! The paper's workloads are mostly pure CPU (fib), optionally prefixed with
//! one I/O phase (§VIII-B "Handling I/O"), or CPU+I/O mixes (md / sa, §IX).

use sfs_simcore::{SimDuration, SimTime};

/// Process identifier within one simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// One execution phase of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A CPU burst that must be scheduled on a core for this long.
    Cpu(SimDuration),
    /// An I/O wait: the task sleeps off-CPU for this long once the wait
    /// starts (device time is not contended in this model).
    Io(SimDuration),
}

impl Phase {
    /// Span of this phase.
    pub fn duration(self) -> SimDuration {
        match self {
            Phase::Cpu(d) | Phase::Io(d) => d,
        }
    }

    /// True iff this is a CPU burst.
    pub fn is_cpu(self) -> bool {
        matches!(self, Phase::Cpu(_))
    }
}

/// Linux scheduling policy attached to a task, switchable at runtime via
/// [`crate::machine::Machine::set_policy`] (the simulator's `schedtool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// `SCHED_FIFO`: real-time, static priority 1..=99, runs until it blocks,
    /// finishes, or a higher-priority RT task preempts it.
    Fifo {
        /// Static real-time priority (1..=99, higher wins).
        prio: u8,
    },
    /// `SCHED_RR`: like FIFO but round-robins within a priority level on a
    /// fixed timeslice (`RR_TIMESLICE`, 100 ms in mainline).
    Rr {
        /// Static real-time priority (1..=99, higher wins).
        prio: u8,
    },
    /// `SCHED_NORMAL`: CFS, weighted by `nice` (-20..=19).
    Normal {
        /// Niceness (-20..=19; lower means more CPU weight).
        nice: i8,
    },
}

impl Policy {
    /// Default CFS policy (nice 0).
    pub const NORMAL: Policy = Policy::Normal { nice: 0 };

    /// True for the two real-time classes.
    pub fn is_realtime(self) -> bool {
        matches!(self, Policy::Fifo { .. } | Policy::Rr { .. })
    }

    /// RT priority if real-time.
    pub fn rt_prio(self) -> Option<u8> {
        match self {
            Policy::Fifo { prio } | Policy::Rr { prio } => Some(prio),
            Policy::Normal { .. } => None,
        }
    }
}

/// Immutable description of a task handed to [`crate::machine::Machine::spawn`].
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Execution phases, run in order. Must contain at least one CPU phase.
    pub phases: Vec<Phase>,
    /// Initial scheduling policy.
    pub policy: Policy,
    /// Opaque tag propagated to [`FinishedTask`] (request id, app kind, ...).
    pub label: u64,
}

impl TaskSpec {
    /// A pure-CPU task under CFS nice 0 — the common case in FaaSBench.
    pub fn cpu(label: u64, burst: SimDuration) -> Self {
        TaskSpec {
            phases: vec![Phase::Cpu(burst)],
            policy: Policy::NORMAL,
            label,
        }
    }

    /// A task with an initial I/O wait followed by a CPU burst (the paper's
    /// §VIII-B I/O experiment adds a single I/O op at function start).
    pub fn io_then_cpu(label: u64, io: SimDuration, burst: SimDuration) -> Self {
        TaskSpec {
            phases: vec![Phase::Io(io), Phase::Cpu(burst)],
            policy: Policy::NORMAL,
            label,
        }
    }

    /// Total CPU demand across all phases (the "service time" / the aggregate
    /// CPU time the function would consume in an ideally isolated run).
    pub fn cpu_demand(&self) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| p.is_cpu())
            .map(|p| p.duration())
            .sum()
    }

    /// Total I/O time across all phases.
    pub fn io_demand(&self) -> SimDuration {
        self.phases
            .iter()
            .filter(|p| !p.is_cpu())
            .map(|p| p.duration())
            .sum()
    }

    /// Turnaround this task would observe on an uncontended machine with
    /// infinite cores — the paper's IDEAL scenario (§IV-B).
    pub fn ideal_duration(&self) -> SimDuration {
        self.cpu_demand() + self.io_demand()
    }

    /// Validate the spec: non-empty, has CPU work, no zero-length CPU phase.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("task has no phases".into());
        }
        if self.cpu_demand().is_zero() {
            return Err("task has no CPU demand".into());
        }
        for (i, p) in self.phases.iter().enumerate() {
            if p.duration().is_zero() {
                return Err(format!("phase {i} has zero duration"));
            }
        }
        Ok(())
    }
}

/// Kernel-visible run state, as a `/proc/<pid>/stat`-style poller would see
/// it. SFS's I/O handling (§V-D) polls exactly this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// On a CPU right now ("R" running).
    Running,
    /// Waiting in a runqueue ("R" runnable; /proc does not distinguish, but
    /// the simulator exposes the distinction for diagnostics).
    Runnable,
    /// Blocked on I/O ("S"/"D" sleeping).
    Sleeping,
    /// Exited ("Z"/gone).
    Dead,
}

/// Completion record emitted when a task finishes.
#[derive(Debug, Clone)]
pub struct FinishedTask {
    /// Simulator pid.
    pub pid: Pid,
    /// The spec's opaque label.
    pub label: u64,
    /// When the task was spawned (became runnable for the first time).
    pub arrival: SimTime,
    /// First time it got a CPU.
    pub first_run: Option<SimTime>,
    /// When it completed its last phase.
    pub finished: SimTime,
    /// CPU time actually consumed (== spec demand at completion).
    pub cpu_time: SimDuration,
    /// I/O time spent sleeping.
    pub io_time: SimDuration,
    /// CPU demand from the spec (denominator-independent service time).
    pub cpu_demand: SimDuration,
    /// Ideal (isolated, infinite-resource) duration from the spec.
    pub ideal: SimDuration,
    /// Involuntary context switches suffered (slice expiries + preemptions).
    pub ctx_switches: u64,
    /// Core-to-core migrations.
    pub migrations: u64,
}

impl FinishedTask {
    /// End-to-end turnaround time (spawn → completion), the paper's
    /// "execution duration".
    pub fn turnaround(&self) -> SimDuration {
        self.finished - self.arrival
    }

    /// Run-time effectiveness (paper Eq. 1): ideal duration over turnaround.
    ///
    /// The paper computes RTE with the aggregate CPU time "measured under the
    /// IDEAL scenario" as numerator; for I/O tasks the best isolated run still
    /// includes the device wait, so the numerator is `ideal`, giving RTE = 1
    /// exactly when the task ran with zero queueing/preemption interference.
    pub fn rte(&self) -> f64 {
        let t = self.turnaround();
        if t.is_zero() {
            1.0
        } else {
            (self.ideal.as_nanos() as f64 / t.as_nanos() as f64).min(1.0)
        }
    }

    /// Time spent neither executing nor in I/O: pure scheduling wait.
    pub fn wait_time(&self) -> SimDuration {
        self.turnaround()
            .saturating_sub(self.cpu_time)
            .saturating_sub(self.io_time)
    }
}

/// Internal per-task runtime bookkeeping (crate-private mutable state).
#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub pid: Pid,
    pub label: u64,
    pub phases: Vec<Phase>,
    pub phase_idx: usize,
    /// Remaining time in the current phase.
    pub phase_rem: SimDuration,
    pub policy: Policy,
    pub state: ProcState,
    pub arrival: SimTime,
    pub first_run: Option<SimTime>,
    pub cpu_time: SimDuration,
    pub io_time: SimDuration,
    pub cpu_demand: SimDuration,
    pub ideal: SimDuration,
    pub vruntime: u64,
    pub ctx_switches: u64,
    pub migrations: u64,
    /// Core whose CFS runqueue currently owns this task (if queued/running).
    pub home_core: Option<usize>,
    /// Core this task last *executed* on (dispatch granularity), feeding the
    /// cache-affinity cost model. Unlike `home_core` this survives sleeps.
    pub last_core: Option<usize>,
    /// One-shot extra dispatch latency owed from a balance migration,
    /// consumed (reset to zero) at the next dispatch.
    pub pending_migration_cost: SimDuration,
}

impl Task {
    pub(crate) fn new(pid: Pid, spec: TaskSpec, now: SimTime) -> Task {
        let cpu_demand = spec.cpu_demand();
        let ideal = spec.ideal_duration();
        let phase_rem = spec.phases[0].duration();
        Task {
            pid,
            label: spec.label,
            phases: spec.phases,
            phase_idx: 0,
            phase_rem,
            policy: spec.policy,
            state: ProcState::Runnable,
            arrival: now,
            first_run: None,
            cpu_time: SimDuration::ZERO,
            io_time: SimDuration::ZERO,
            cpu_demand,
            ideal,
            vruntime: 0,
            ctx_switches: 0,
            migrations: 0,
            home_core: None,
            last_core: None,
            pending_migration_cost: SimDuration::ZERO,
        }
    }

    /// Current phase, if not finished.
    pub(crate) fn phase(&self) -> Option<Phase> {
        self.phases.get(self.phase_idx).copied()
    }

    /// Remaining CPU demand across the current and future phases
    /// (SRTF's sort key).
    pub(crate) fn remaining_cpu(&self) -> SimDuration {
        let mut rem = SimDuration::ZERO;
        for (i, p) in self.phases.iter().enumerate().skip(self.phase_idx) {
            if p.is_cpu() {
                if i == self.phase_idx {
                    rem += self.phase_rem;
                } else {
                    rem += p.duration();
                }
            }
        }
        rem
    }

    /// Completion record. Panics if called before the task finished.
    pub(crate) fn finished_record(&self, finished: SimTime) -> FinishedTask {
        debug_assert_eq!(self.state, ProcState::Dead);
        FinishedTask {
            pid: self.pid,
            label: self.label,
            arrival: self.arrival,
            first_run: self.first_run,
            finished,
            cpu_time: self.cpu_time,
            io_time: self.io_time,
            cpu_demand: self.cpu_demand,
            ideal: self.ideal,
            ctx_switches: self.ctx_switches,
            migrations: self.migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn spec_demand_accounting() {
        let spec = TaskSpec {
            phases: vec![
                Phase::Io(ms(20)),
                Phase::Cpu(ms(30)),
                Phase::Io(ms(5)),
                Phase::Cpu(ms(15)),
            ],
            policy: Policy::NORMAL,
            label: 7,
        };
        assert_eq!(spec.cpu_demand(), ms(45));
        assert_eq!(spec.io_demand(), ms(25));
        assert_eq!(spec.ideal_duration(), ms(70));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn spec_validation_rejects_degenerate() {
        let empty = TaskSpec {
            phases: vec![],
            policy: Policy::NORMAL,
            label: 0,
        };
        assert!(empty.validate().is_err());

        let io_only = TaskSpec {
            phases: vec![Phase::Io(ms(10))],
            policy: Policy::NORMAL,
            label: 0,
        };
        assert!(io_only.validate().is_err());

        let zero_phase = TaskSpec {
            phases: vec![Phase::Cpu(SimDuration::ZERO)],
            policy: Policy::NORMAL,
            label: 0,
        };
        assert!(zero_phase.validate().is_err());
    }

    #[test]
    fn policy_classification() {
        assert!(Policy::Fifo { prio: 50 }.is_realtime());
        assert!(Policy::Rr { prio: 10 }.is_realtime());
        assert!(!Policy::NORMAL.is_realtime());
        assert_eq!(Policy::Fifo { prio: 50 }.rt_prio(), Some(50));
        assert_eq!(Policy::NORMAL.rt_prio(), None);
    }

    #[test]
    fn remaining_cpu_tracks_partial_progress() {
        let spec = TaskSpec {
            phases: vec![Phase::Cpu(ms(30)), Phase::Io(ms(10)), Phase::Cpu(ms(20))],
            policy: Policy::NORMAL,
            label: 1,
        };
        let mut t = Task::new(Pid(1), spec, SimTime::ZERO);
        assert_eq!(t.remaining_cpu(), ms(50));
        // Simulate consuming 12ms of the first burst.
        t.phase_rem = ms(18);
        assert_eq!(t.remaining_cpu(), ms(38));
        // Move to the IO phase: only the trailing CPU burst remains.
        t.phase_idx = 1;
        t.phase_rem = ms(10);
        assert_eq!(t.remaining_cpu(), ms(20));
    }

    #[test]
    fn finished_task_metrics() {
        let ft = FinishedTask {
            pid: Pid(3),
            label: 9,
            arrival: SimTime::ZERO,
            first_run: Some(SimTime::ZERO + ms(5)),
            finished: SimTime::ZERO + ms(100),
            cpu_time: ms(40),
            io_time: ms(10),
            cpu_demand: ms(40),
            ideal: ms(50),
            ctx_switches: 3,
            migrations: 1,
        };
        assert_eq!(ft.turnaround(), ms(100));
        assert!((ft.rte() - 0.5).abs() < 1e-12);
        assert_eq!(ft.wait_time(), ms(50));
    }

    #[test]
    fn rte_clamps_at_one() {
        let ft = FinishedTask {
            pid: Pid(1),
            label: 0,
            arrival: SimTime::ZERO,
            first_run: Some(SimTime::ZERO),
            finished: SimTime::ZERO + ms(40),
            cpu_time: ms(40),
            io_time: SimDuration::ZERO,
            cpu_demand: ms(40),
            ideal: ms(40),
            ctx_switches: 0,
            migrations: 0,
        };
        assert_eq!(ft.rte(), 1.0);
        assert_eq!(ft.wait_time(), SimDuration::ZERO);
    }
}
