//! The SFS scheduling policy as a [`Controller`] (paper §V, Fig. 4).
//!
//! [`SfsController`] reproduces the full scheduling flow:
//!
//! 1. the backend FaaS server dispatches each function to the OS (spawned
//!    under CFS) and pushes `(pid, T_inv)` into SFS's **global queue**;
//! 2. idle **SFS workers** (one per core) fetch requests and run them in
//!    **FILTER** mode by promoting the process to `SCHED_FIFO`;
//! 3. the **monitor** recomputes the time slice `S` from a sliding window
//!    of IATs every N requests (§V-C);
//! 4. then, per request: (4.1) a function finishing within `S` frees its
//!    worker; (4.2) a function exhausting `S` is **demoted to CFS**
//!    (`SCHED_NORMAL`); (4.3) a function blocking on I/O is detected by
//!    periodic status polling, demoted while it sleeps, and **re-enqueued
//!    on wake** with its unused slice (§V-D); (4.4) a worker popping a
//!    request whose queueing delay exceeds `O × S` triggers the **hybrid
//!    overload bypass**: the request (and the drain that follows) stays in
//!    CFS (§V-E).
//!
//! SFS only ever talks to the machine through the [`MachineView`] ops —
//! the same interface the real implementation has via `schedtool` and
//! `gopsutil`.
//!
//! [`SfsController::with_slo`] adds the SLO-deadline hybrid variant: the
//! relative `O × S` overload test is augmented with an absolute per-request
//! deadline on age since invocation, checked both at pop time and
//! proactively at every poll tick, so aged requests are shed to CFS even
//! while all workers are busy.

// lint: allow(D1, slot_of_id is the hot-path id->slot map from PR 5; keyed insert/remove only, never iterated)
use std::collections::{HashMap, VecDeque};

use sfs_sched::{Notification, Pid, Policy, ProcState};
use sfs_simcore::{EventQueue, SimDuration, SimTime, TimeSeries};
use sfs_workload::Request;

use crate::config::{QueueMode, SfsConfig};
use crate::sim::{Controller, MachineView, Telemetry};
use crate::stats::RequestOutcome;
use crate::timeslice::SliceController;

/// Where a tracked request currently sits in SFS's own bookkeeping.
///
/// Maintained exactly at every queue transition so the completion path can
/// skip the queue scans entirely for the common case (a request that
/// finished while running a FILTER round or after being left to CFS is in
/// no SFS queue): the old design rescanned the global queue, every
/// per-worker queue, and the blocked list on *every* completion — an
/// O(requests x queue depth) term that dominated deep-backlog runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In no SFS queue (FILTER round in flight, left to CFS, or done).
    None,
    /// In the global queue or a per-worker queue.
    Queued,
    /// In the blocked (I/O wake-detection) list.
    Blocked,
}

/// Per-request state, stored in a dense slab indexed by `pid` (see
/// [`SfsController::states`]).
#[derive(Debug, Clone)]
struct ReqState {
    /// Request id — the outcome key [`Controller::annotate`] receives.
    id: u64,
    pid: Pid,
    /// Invocation timestamp (when the FaaS server enqueued it).
    t_inv: SimTime,
    /// When the request was last pushed into the global queue.
    enqueued_at: SimTime,
    /// Remaining FILTER slice across I/O interruptions; `None` = fresh
    /// (use the current global S on next assignment).
    slice_remaining: Option<SimDuration>,
    /// Queue delay observed at the first pop (enqueue → pop), for Fig. 12a.
    first_pop_delay: Option<SimDuration>,
    loc: Loc,
    demoted: bool,
    offloaded: bool,
    filter_rounds: u32,
    io_blocks: u32,
}

impl ReqState {
    /// Filler for slab holes (only reachable if a driver hands out sparse
    /// pids; [`crate::Sim`] never does).
    fn vacant() -> ReqState {
        ReqState {
            id: u64::MAX,
            pid: Pid(u64::MAX),
            t_inv: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
            slice_remaining: None,
            first_pop_delay: None,
            loc: Loc::None,
            demoted: false,
            offloaded: false,
            filter_rounds: 0,
            io_blocks: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Assignment {
    pid: Pid,
    /// Slab slot of the request in this FILTER round.
    slot: u32,
    /// FILTER budget for this round.
    budget: SimDuration,
    /// CPU time the process had consumed when this round started.
    cpu_at_start: SimDuration,
}

#[derive(Debug, Default)]
struct Worker {
    current: Option<Assignment>,
    /// Invalidates stale slice-expiry events.
    gen: u64,
}

#[derive(Debug, Clone, Copy)]
enum SfsEv {
    /// FILTER slice timer for worker `w` (valid only at generation `gen`).
    SliceExpiry { w: usize, gen: u64 },
    /// The periodic status-polling tick.
    Poll,
}

/// The paper's Smart Function Scheduler as a pluggable [`Controller`].
///
/// Build one per run with [`SfsController::new`] and hand it to
/// [`Sim::controller`](crate::Sim::controller).
pub struct SfsController {
    cfg: SfsConfig,
    /// Absolute queue-delay deadline (SLO variant); `None` = paper SFS.
    slo_deadline: Option<SimDuration>,
    slice: SliceController,
    queue: VecDeque<u32>,
    /// Per-worker queues (used only in [`QueueMode::PerWorker`]).
    worker_queues: Vec<VecDeque<u32>>,
    /// Round-robin cursor for per-worker assignment.
    next_rr: usize,
    /// Per-request state slab, indexed by `pid.0` (the *slot*). The sim
    /// spawns one process per request with densely allocated pids, so
    /// every hot-path lookup — assign, poll, demote, completion — is a
    /// plain vector index; the old `HashMap<u64, ReqState>` keyed by
    /// request id plus the `HashMap<Pid, u64>` reverse map hashed twice
    /// per touch.
    states: Vec<ReqState>,
    /// Request id → slot, consulted once per request (in
    /// [`Controller::annotate`], which only receives the outcome id).
    /// Audited lookups-only (simlint D1): one `insert` at spawn, one
    /// `remove` in `annotate`; never iterated, so hash order cannot reach
    /// any scheduling decision. A BTreeMap here would put a log-n probe on
    /// the per-request hot path PR 5 flattened.
    // lint: allow(D1, insert at spawn + remove in annotate only; never iterated; hot path per PR 5)
    slot_of_id: HashMap<u64, u32>,
    workers: Vec<Worker>,
    /// Slots blocked on I/O, awaiting wake detection by polling.
    blocked: Vec<u32>,
    /// Reusable scratch for wake detection in [`SfsController::on_poll`].
    rewoken: Vec<u32>,
    events: EventQueue<SfsEv>,
    /// Reusable batch buffer for [`Controller::on_wakeup`]: every SFS
    /// handler schedules strictly future events (slice timers at
    /// now + budget with budget > 0, polls at now + interval), so all
    /// events due now can be drained in one peek-based batch.
    due: Vec<(SimTime, SfsEv)>,
    poll_armed: bool,
    queue_delay_series: TimeSeries,
    polls: u64,
    polled_tasks: u64,
    offloaded_total: u64,
    demoted_total: u64,
}

impl SfsController {
    /// An SFS instance with the given configuration. `cfg.workers` should
    /// normally equal the machine's core count.
    ///
    /// # Panics
    /// Panics if the configuration is invalid ([`SfsConfig::validate`]).
    pub fn new(cfg: SfsConfig) -> SfsController {
        cfg.validate().expect("invalid SFS config");
        SfsController {
            cfg,
            slo_deadline: None,
            slice: SliceController::new(&cfg),
            queue: VecDeque::new(),
            worker_queues: (0..cfg.workers).map(|_| VecDeque::new()).collect(),
            next_rr: 0,
            states: Vec::new(),
            // lint: allow(D1, construction of the audited lookups-only map declared above)
            slot_of_id: HashMap::new(),
            workers: (0..cfg.workers).map(|_| Worker::default()).collect(),
            blocked: Vec::new(),
            rewoken: Vec::new(),
            events: EventQueue::new(),
            due: Vec::with_capacity(64),
            poll_armed: false,
            queue_delay_series: TimeSeries::new("queue_delay_s"),
            polls: 0,
            polled_tasks: 0,
            offloaded_total: 0,
            demoted_total: 0,
        }
    }

    /// The SLO-deadline hybrid variant: in addition to the paper's relative
    /// `O × S` overload test, any *queued* request whose age since
    /// invocation (`now − T_inv`, the same basis as
    /// [`RequestOutcome::queue_delay`]) reaches `deadline` is shed to CFS —
    /// at pop time *and* proactively at every poll tick. With the paper's
    /// rule a request can age unboundedly while all workers chew long
    /// functions; the deadline bounds how stale a request can get before
    /// the kernel takes over. The clock starts at invocation, so FILTER and
    /// I/O time from earlier rounds counts against a re-enqueued request's
    /// deadline.
    pub fn with_slo(cfg: SfsConfig, deadline: SimDuration) -> SfsController {
        assert!(!deadline.is_zero(), "SLO deadline must be positive");
        let mut c = SfsController::new(cfg);
        c.slo_deadline = Some(deadline);
        c
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Route a request into the configured queue topology.
    fn enqueue_req(&mut self, slot: u32) {
        self.states[slot as usize].loc = Loc::Queued;
        match self.cfg.queue_mode {
            QueueMode::Global => self.queue.push_back(slot),
            QueueMode::PerWorker => {
                let w = self.next_rr % self.worker_queues.len();
                self.next_rr += 1;
                self.worker_queues[w].push_back(slot);
            }
        }
    }

    /// Steps 2 / 4.4: idle workers fetch requests; overloaded requests are
    /// left to CFS.
    fn try_assign(&mut self, m: &mut MachineView<'_>) {
        match self.cfg.queue_mode {
            QueueMode::Global => loop {
                let Some(w) = self.workers.iter().position(|w| w.current.is_none()) else {
                    return;
                };
                let Some(slot) = self.queue.pop_front() else {
                    return;
                };
                self.assign_step(m, w, slot);
            },
            QueueMode::PerWorker => {
                for w in 0..self.workers.len() {
                    while self.workers[w].current.is_none() {
                        let Some(slot) = self.worker_queues[w].pop_front() else {
                            break;
                        };
                        self.assign_step(m, w, slot);
                    }
                }
            }
        }
    }

    /// Handle one popped request for an idle worker `w`: overload bypass,
    /// dead-skip, exhausted-slice demotion, or FILTER promotion. The worker
    /// remains idle unless a promotion happened.
    fn assign_step(&mut self, m: &mut MachineView<'_>, w: usize, slot: u32) {
        let now = m.now();
        let s_now = self.slice.current();
        let (pid, delay, age, budget) = {
            let st = &mut self.states[slot as usize];
            st.loc = Loc::None; // popped from its queue
            let delay = now.since(st.enqueued_at);
            if st.first_pop_delay.is_none() {
                st.first_pop_delay = Some(now.since(st.t_inv));
                if self.cfg.record_series {
                    self.queue_delay_series
                        .record(st.t_inv, now.since(st.t_inv).as_secs_f64());
                }
            }
            let budget = st.slice_remaining.unwrap_or(s_now);
            (st.pid, delay, now.since(st.t_inv), budget)
        };

        // Dead already (finished under CFS while queued after an I/O round,
        // or a zero-length race): nothing to schedule.
        if m.proc_state(pid) == ProcState::Dead {
            return;
        }

        // 4.4 Overload detection: queueing delay of the request we are
        // about to schedule exceeds O × S → temporary CFS bypass. The SLO
        // variant additionally sheds requests past their absolute deadline.
        let over_slo = self.slo_deadline.is_some_and(|d| age >= d);
        if over_slo || self.cfg.hybrid_overload {
            let threshold = SimDuration::from_millis_f64(
                self.slice.current().as_millis_f64() * self.cfg.overload_factor,
            );
            if over_slo || (self.cfg.hybrid_overload && delay >= threshold) {
                self.states[slot as usize].offloaded = true;
                self.offloaded_total += 1;
                // The process is already SCHED_NORMAL; leaving it to CFS
                // *is* the bypass. The worker stays free for the next
                // request, which drains the backlog fast.
                return;
            }
        }

        // Exhausted slice from previous rounds: demote instead of a
        // zero-length FILTER round.
        if budget.is_zero() {
            self.demote(m, slot, pid);
            return;
        }

        // Step 2: promote to FIFO — the FILTER pool.
        m.set_policy(
            pid,
            Policy::Fifo {
                prio: self.cfg.filter_prio,
            },
        );
        let cpu_at_start = m.cpu_time(pid);
        self.states[slot as usize].filter_rounds += 1;
        self.workers[w].gen += 1;
        let gen = self.workers[w].gen;
        self.workers[w].current = Some(Assignment {
            pid,
            slot,
            budget,
            cpu_at_start,
        });
        self.events
            .push(now + budget, SfsEv::SliceExpiry { w, gen });
    }

    /// 4.2: the FILTER slice timer fired.
    fn on_slice_expiry(&mut self, m: &mut MachineView<'_>, w: usize, gen: u64) {
        if self.workers[w].gen != gen {
            return; // stale timer: the worker moved on
        }
        let Some(a) = self.workers[w].current else {
            return;
        };
        match m.proc_state(a.pid) {
            ProcState::Dead => {
                // Completion notification is in flight at this same instant;
                // it will free the worker.
            }
            ProcState::Sleeping if self.cfg.io_aware => {
                // Blocked between polls and the timer beat the next poll:
                // treat as an I/O block (4.3).
                self.release_worker_for_io(m, w);
            }
            _ => {
                // Forcible preemption: demote to CFS.
                self.workers[w].current = None;
                self.workers[w].gen += 1;
                self.demote(m, a.slot, a.pid);
                self.try_assign(m);
            }
        }
    }

    fn demote(&mut self, m: &mut MachineView<'_>, slot: u32, pid: Pid) {
        m.set_policy(pid, Policy::NORMAL);
        let st = &mut self.states[slot as usize];
        st.demoted = true;
        st.slice_remaining = Some(SimDuration::ZERO);
        self.demoted_total += 1;
    }

    /// 4.3: periodic kernel-status polling (§V-D).
    fn on_poll(&mut self, m: &mut MachineView<'_>) {
        self.poll_armed = false;
        self.polls += 1;
        let mut freed = false;

        // Detect FILTER functions that went to sleep on I/O.
        if self.cfg.io_aware {
            for w in 0..self.workers.len() {
                let Some(a) = self.workers[w].current else {
                    continue;
                };
                self.polled_tasks += 1;
                if m.proc_state(a.pid) == ProcState::Sleeping {
                    self.release_worker_for_io(m, w);
                    freed = true;
                }
            }
            // Detect blocked functions that became runnable again: re-add to
            // the global queue with their unused slice.
            let now = m.now();
            let mut rewoken = std::mem::take(&mut self.rewoken);
            rewoken.clear();
            let states = &mut self.states;
            let polled = &mut self.polled_tasks;
            self.blocked.retain(|&slot| {
                let st = &mut states[slot as usize];
                *polled += 1;
                match m.proc_state(st.pid) {
                    ProcState::Sleeping => true,
                    ProcState::Dead => {
                        // Finished while blocked-tracked.
                        st.loc = Loc::None;
                        false
                    }
                    _ => {
                        rewoken.push(slot);
                        false
                    }
                }
            });
            for &slot in &rewoken {
                self.states[slot as usize].enqueued_at = now;
                self.enqueue_req(slot);
                freed = true;
            }
            self.rewoken = rewoken;
        }

        // SLO variant: proactively shed queued requests past their age
        // deadline instead of waiting for a worker to pop them. The shed
        // mirrors the pop-time bypass accounting: the request's (would-be
        // first-pop) queue delay is recorded so shed requests do not read
        // as zero-delay in the Fig. 12a-style series.
        if let Some(deadline) = self.slo_deadline {
            let now = m.now();
            let states = &mut self.states;
            let offloaded = &mut self.offloaded_total;
            let series = &mut self.queue_delay_series;
            let record_series = self.cfg.record_series;
            let mut shed = |q: &mut VecDeque<u32>| {
                q.retain(|&slot| {
                    let st = &mut states[slot as usize];
                    let age = now.since(st.t_inv);
                    if age >= deadline {
                        if st.first_pop_delay.is_none() {
                            st.first_pop_delay = Some(age);
                            if record_series {
                                series.record(st.t_inv, age.as_secs_f64());
                            }
                        }
                        st.offloaded = true;
                        st.loc = Loc::None;
                        *offloaded += 1;
                        false
                    } else {
                        true
                    }
                });
            };
            shed(&mut self.queue);
            for q in self.worker_queues.iter_mut() {
                shed(q);
            }
        }

        if freed {
            self.try_assign(m);
        }
        self.arm_poll(m);
    }

    /// Free worker `w` because its FILTER function blocked on I/O: record
    /// the unused slice, lower the function's priority, track it for wake
    /// detection, and let the worker fetch the next request.
    fn release_worker_for_io(&mut self, m: &mut MachineView<'_>, w: usize) {
        let Some(a) = self.workers[w].current.take() else {
            return;
        };
        self.workers[w].gen += 1;
        let used = m.cpu_time(a.pid).saturating_sub(a.cpu_at_start);
        let remaining = a.budget.saturating_sub(used);
        // "reduces its priority": back to CFS while it sleeps, so that when
        // the I/O completes it is runnable (work conservation) without
        // occupying the FILTER pool.
        m.set_policy(a.pid, Policy::NORMAL);
        let st = &mut self.states[a.slot as usize];
        st.slice_remaining = Some(remaining);
        st.io_blocks += 1;
        st.loc = Loc::Blocked;
        self.blocked.push(a.slot);
        self.try_assign(m);
    }

    fn arm_poll(&mut self, m: &MachineView<'_>) {
        let work_pending = self.workers.iter().any(|w| w.current.is_some())
            || !self.blocked.is_empty()
            || !self.queue.is_empty()
            || self.worker_queues.iter().any(|q| !q.is_empty());
        let poll_needed = self.cfg.io_aware || self.slo_deadline.is_some();
        if poll_needed && work_pending && !self.poll_armed {
            self.poll_armed = true;
            self.events
                .push(m.now() + self.cfg.poll_interval, SfsEv::Poll);
        }
    }
}

impl Controller for SfsController {
    fn name(&self) -> &'static str {
        if self.slo_deadline.is_some() {
            "sfs-slo"
        } else {
            "sfs"
        }
    }

    /// Step 1 of the flow: the process was dispatched to the OS; enqueue
    /// `(pid, T_inv)`.
    fn on_arrival(&mut self, m: &mut MachineView<'_>, req: &Request, pid: Pid) {
        let now = m.now();
        let id = req.id;
        // Slab slot = pid: the sim spawns one process per request with
        // densely allocated pids, so this is a plain push in practice.
        let slot = pid.0 as usize;
        if self.states.len() <= slot {
            self.states.resize_with(slot + 1, ReqState::vacant);
        }
        self.states[slot] = ReqState {
            id,
            pid,
            t_inv: now,
            enqueued_at: now,
            slice_remaining: None,
            first_pop_delay: None,
            loc: Loc::None,
            demoted: false,
            offloaded: false,
            filter_rounds: 0,
            io_blocks: 0,
        };
        self.slot_of_id.insert(id, slot as u32);
        self.slice.on_arrival(now);
        self.enqueue_req(slot as u32);
        self.try_assign(m);
        self.arm_poll(m);
    }

    fn on_notification(&mut self, m: &mut MachineView<'_>, note: &Notification) {
        if let Notification::Finished(rec) = note {
            let slot = rec.pid.0 as usize;
            debug_assert_eq!(self.states[slot].id, rec.label, "pid/slot mismatch");
            // Free the worker if this function was in a FILTER round.
            for w in 0..self.workers.len() {
                if self.workers[w].current.is_some_and(|a| a.pid == rec.pid) {
                    self.workers[w].current = None;
                    self.workers[w].gen += 1;
                }
            }
            // Drop from queue/blocked tracking if it completed under CFS
            // while still queued (e.g. after an I/O round). The location
            // flag makes the common cases — finished in a FILTER round or
            // after a bypass — free instead of scanning every queue.
            match self.states[slot].loc {
                Loc::None => {}
                Loc::Queued => {
                    let s = slot as u32;
                    self.queue.retain(|&q| q != s);
                    for q in self.worker_queues.iter_mut() {
                        q.retain(|&x| x != s);
                    }
                    self.states[slot].loc = Loc::None;
                }
                Loc::Blocked => {
                    let s = slot as u32;
                    self.blocked.retain(|&b| b != s);
                    self.states[slot].loc = Loc::None;
                }
            }
            self.try_assign(m);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    fn on_wakeup(&mut self, m: &mut MachineView<'_>) {
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        self.events.pop_batch_until(m.now(), &mut due);
        for &(_, ev) in due.iter() {
            match ev {
                SfsEv::SliceExpiry { w, gen } => self.on_slice_expiry(m, w, gen),
                SfsEv::Poll => self.on_poll(m),
            }
        }
        self.due = due;
    }

    fn annotate(&mut self, outcome: &mut RequestOutcome) {
        let slot = self
            .slot_of_id
            .remove(&outcome.id)
            .expect("finished request tracked");
        let st = &self.states[slot as usize];
        outcome.queue_delay = st.first_pop_delay.unwrap_or(SimDuration::ZERO);
        outcome.demoted = st.demoted;
        outcome.offloaded = st.offloaded;
        outcome.filter_rounds = st.filter_rounds;
        outcome.io_blocks = st.io_blocks;
    }

    fn finish(&mut self, telemetry: &mut Telemetry) {
        telemetry.polls = self.polls;
        telemetry.polled_tasks = self.polled_tasks;
        telemetry.offloaded = self.offloaded_total;
        telemetry.demoted = self.demoted_total;
        telemetry.slice_recalcs = self.slice.recalcs();
        telemetry.slice_timeline = self.slice.slice_timeline().clone();
        telemetry.iat_timeline = self.slice.iat_timeline().clone();
        telemetry.queue_delay_series = std::mem::replace(
            &mut self.queue_delay_series,
            TimeSeries::new("queue_delay_s"),
        );
    }
}

impl crate::sim::ControllerFactory for SfsConfig {
    fn build(&self) -> Box<dyn Controller> {
        Box::new(SfsController::new(*self))
    }

    fn label(&self) -> String {
        "SFS".to_string()
    }

    fn configure_machine(&self, params: &mut sfs_sched::MachineParams) {
        params.kpolicy = self.kpolicy;
    }
}
