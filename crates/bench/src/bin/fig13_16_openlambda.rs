//! Fig. 13 / 14 / 15 / 16: SFS-ported OpenLambda vs OpenLambda+CFS on a
//! 72-core host at 80/90/100% load, with the fib+md+sa mixed workload
//! (§IX-A): duration CDF, RTE CDF, percentile breakdowns with p99
//! speedups, and per-request context-switch ratios.
//!
//! Expected shape: OL+SFS nearly load-insensitive; OL+CFS degrades with
//! load; p99 speedup grows with load (paper: 1.65× / 4.04× / 7.93×); CFS
//! out-switches SFS ≥10× for most requests.

use sfs_bench::{banner, rtes, save, section, turnarounds_ms, Sweep};
use sfs_core::{Baseline, RequestOutcome, SfsConfig};
use sfs_faas::{HostScheduler, OpenLambda, OpenLambdaParams};
use sfs_metrics::{
    cdf_chart, ctx_switch_ratios, CdfReport, MarkdownTable, Paired, PercentileTable,
};
use sfs_simcore::Samples;
use sfs_workload::{IatSpec, Spike, WorkloadSpec};

const CORES: usize = 72;
const LOADS: [f64; 3] = [0.8, 0.9, 1.0];

/// The §IX-A workload at the paper's nominal `load` level.
fn gen(n: usize, seed: u64, load: f64) -> sfs_workload::Workload {
    // The replayed trace's overload spikes are concurrent-invocation
    // floods (hundreds of simultaneous requests, §V-E); on a 72-core
    // host a burst must be large relative to the core count to show up.
    let mut spec = WorkloadSpec::openlambda(n, seed);
    spec.iat = IatSpec::Bursty {
        base_mean_ms: 1.0,
        spikes: Spike::evenly_spaced(4, n / 20, 10.0, n),
    };
    // Load calibration: the paper's 80–100% levels are duration-based
    // (fib+md+sa durations include I/O), and on its real testbed they
    // bracket the consolidation-contention regime where CFS's backlog
    // spirals but SFS's FILTER drains. The simulator's idealised
    // substrate has a narrower critical window, so the paper's span is
    // mapped linearly into it (0.84..0.94 duration-based load); see
    // EXPERIMENTS.md for the calibration discussion.
    let rho = 0.84 + 0.5 * (load - 0.8);
    spec.with_duration_load(CORES, rho).generate()
}

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 13-16",
        "OpenLambda end-to-end, 72 cores, fib+md+sa",
        n,
        seed,
    );

    let mut sweep: Sweep<'_, Vec<RequestOutcome>> = Sweep::new("fig13_16", seed);
    for &load in &LOADS {
        sweep.scenario(format!("OL+SFS {:.0}%", load * 100.0), move |_| {
            let ol = OpenLambda::new(OpenLambdaParams::default());
            ol.run(
                HostScheduler::Sfs(SfsConfig::new(CORES)),
                CORES,
                &gen(n, seed, load),
            )
        });
        sweep.scenario(format!("OL+CFS {:.0}%", load * 100.0), move |_| {
            let ol = OpenLambda::new(OpenLambdaParams::default());
            ol.run(
                HostScheduler::Kernel(Baseline::Cfs),
                CORES,
                &gen(n, seed, load),
            )
        });
    }
    let results = sweep.run();

    let mut dur_report = CdfReport::new("duration_ms");
    let mut rte_report = CdfReport::new("rte");
    let mut pct = PercentileTable::new();
    let mut speedups =
        MarkdownTable::new(&["load", "OL+SFS p99 (ms)", "OL+CFS p99 (ms)", "p99 speedup"]);
    let mut ratio_summary = MarkdownTable::new(&[
        "load",
        "requests with CFS > SFS switches",
        "requests with ratio >= 10x",
    ]);
    let mut chart: Vec<(String, Vec<f64>)> = Vec::new();

    for (li, &load) in LOADS.iter().enumerate() {
        let sfs = &results[2 * li];
        let cfs = &results[2 * li + 1];
        for r in [sfs, cfs] {
            dur_report.push(r.label.clone(), turnarounds_ms(&r.value));
            rte_report.push(r.label.clone(), rtes(&r.value));
            pct.push(r.label.clone(), turnarounds_ms(&r.value));
            if (load - 1.0).abs() < 1e-9 {
                chart.push((r.label.clone(), turnarounds_ms(&r.value)));
            }
        }

        let mut s = Samples::from_vec(turnarounds_ms(&sfs.value));
        let mut c = Samples::from_vec(turnarounds_ms(&cfs.value));
        let (sp99, cp99) = (s.percentile(99.0), c.percentile(99.0));
        speedups.row(&[
            format!("{:.0}%", load * 100.0),
            format!("{sp99:.0}"),
            format!("{cp99:.0}"),
            format!("{:.2}x", cp99 / sp99),
        ]);

        // Fig. 16: per-request context-switch ratio.
        let pairs = pair(&sfs.value, &cfs.value);
        let ratios = ctx_switch_ratios(&pairs);
        let more = pairs
            .iter()
            .filter(|p| p.baseline_ctx > p.treatment_ctx)
            .count();
        let tenx = ratios.iter().filter(|&&r| r >= 10.0).count();
        ratio_summary.row(&[
            format!("{:.0}%", load * 100.0),
            format!("{:.1}%", 100.0 * more as f64 / pairs.len() as f64),
            format!("{:.1}%", 100.0 * tenx as f64 / pairs.len() as f64),
        ]);
        if (load - 1.0).abs() < 1e-9 {
            let mut csv = String::from("request,ctx_ratio\n");
            for (i, r) in ratios.iter().enumerate() {
                csv.push_str(&format!("{i},{r}\n"));
            }
            save("fig16_ctx_ratios_100.csv", &csv);
        }
    }

    section("Fig. 13 duration CDF quantiles (ms)");
    println!("{}", dur_report.to_markdown());
    save("fig13_duration_cdf.csv", &dur_report.to_csv());

    section("Fig. 14 RTE CDF quantiles");
    println!("{}", rte_report.to_markdown());
    save("fig14_rte_cdf.csv", &rte_report.to_csv());

    section("Fig. 15 percentile breakdown (ms)");
    println!("{}", pct.to_markdown());
    save("fig15_percentiles.csv", &pct.to_csv());
    section("p99 speedups (paper: 1.65x @80, 4.04x @90, 7.93x @100)");
    println!("{}", speedups.to_markdown());

    section("Fig. 16 context-switch ratios (paper: >99% of requests switch more under CFS; ~85% at 10x+)");
    println!("{}", ratio_summary.to_markdown());

    section("duration CDF at 100% (log-x)");
    let refs: Vec<(&str, &[f64])> = chart
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));
}

fn pair(sfs: &[RequestOutcome], cfs: &[RequestOutcome]) -> Vec<Paired> {
    sfs.iter()
        .zip(cfs.iter())
        .map(|(s, c)| {
            assert_eq!(s.id, c.id);
            Paired {
                ideal_ms: s.ideal.as_millis_f64(),
                treatment_ms: s.turnaround.as_millis_f64(),
                baseline_ms: c.turnaround.as_millis_f64(),
                treatment_ctx: s.ctx_switches,
                baseline_ctx: c.ctx_switches,
            }
        })
        .collect()
}
