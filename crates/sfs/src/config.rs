//! SFS configuration knobs.
//!
//! Defaults follow the paper's evaluation settings: sliding window N = 100
//! (§V-C), status-polling interval 4 ms (§V-D), overload factor O = 3
//! (§V-E), and FILTER functions at `SCHED_FIFO` priority 50.

use sfs_sched::KernelPolicyKind;
use sfs_simcore::SimDuration;

/// How the FILTER time slice `S` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceMode {
    /// The paper's adaptive heuristic: `S = mean(last N IATs) × cores`,
    /// recomputed every N enqueued requests.
    Adaptive,
    /// A statically fixed slice (the Fig. 9 sensitivity baselines).
    Fixed(SimDuration),
}

/// Queue topology for dispatching requests to SFS workers.
///
/// The paper argues for a single global queue ("a single global queue
/// guarantees natural work conservation with good load balancing", §VI) and
/// cites per-core-queue downsides. [`QueueMode::PerWorker`] exists as the
/// ablation that demonstrates those downsides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueMode {
    /// One global MPMC queue; any idle worker takes the head (the paper's
    /// design).
    Global,
    /// Static per-worker queues (requests assigned round-robin at arrival;
    /// no stealing). Exhibits load imbalance under skewed durations.
    PerWorker,
}

/// Tunables for an SFS instance.
#[derive(Debug, Clone, Copy)]
pub struct SfsConfig {
    /// Number of SFS workers; one per CPU core the FILTER pool may occupy.
    pub workers: usize,
    /// Sliding-window length N for IAT statistics (paper: 100).
    pub window_n: usize,
    /// Time slice selection.
    pub slice_mode: SliceMode,
    /// Slice used before the first adaptive recalculation.
    pub initial_slice: SimDuration,
    /// Lower/upper clamps on the adaptive slice.
    pub min_slice: SimDuration,
    /// Upper clamp on the adaptive slice.
    pub max_slice: SimDuration,
    /// Kernel-status polling interval (paper: 4 ms; Fig. 11 sweeps 1–8 ms).
    pub poll_interval: SimDuration,
    /// `true` = detect I/O blocks by polling and re-enqueue blocked
    /// functions (§V-D); `false` = the "I/O-oblivious SFS" baseline of
    /// Fig. 11 that lets blocked functions burn their slice.
    pub io_aware: bool,
    /// Enable the hybrid overload fallback to CFS (§V-E). Disabling it gives
    /// the "SFS w/o hybrid" baseline of Fig. 12.
    pub hybrid_overload: bool,
    /// Overload threshold factor O: a request whose queueing delay is at
    /// least `O × S` when popped triggers the CFS bypass (paper: 3).
    pub overload_factor: f64,
    /// Static priority FILTER functions run at under `SCHED_FIFO`.
    pub filter_prio: u8,
    /// Queue topology (global by default; per-worker is an ablation).
    pub queue_mode: QueueMode,
    /// Record per-request/timeline series (queue-delay series, slice and
    /// IAT timelines) in [`Telemetry`](crate::Telemetry). On by default —
    /// the figure harnesses need them. Streaming runs turn this off so
    /// telemetry memory stays O(1) in request count.
    pub record_series: bool,
    /// Kernel scheduling policy on the machine under SFS (paper: the
    /// stock Linux CFS+RT model). Swapping it answers "does SFS still
    /// help on an EEVDF/deadline kernel?" without touching the
    /// controller.
    pub kpolicy: KernelPolicyKind,
}

impl SfsConfig {
    /// Paper-default configuration for a machine with `workers` cores.
    pub fn new(workers: usize) -> SfsConfig {
        SfsConfig {
            workers,
            window_n: 100,
            slice_mode: SliceMode::Adaptive,
            initial_slice: SimDuration::from_millis(100),
            min_slice: SimDuration::from_millis(1),
            max_slice: SimDuration::from_secs(10),
            poll_interval: SimDuration::from_millis(4),
            io_aware: true,
            hybrid_overload: true,
            overload_factor: 3.0,
            filter_prio: 50,
            queue_mode: QueueMode::Global,
            record_series: true,
            kpolicy: KernelPolicyKind::Cfs,
        }
    }

    /// Run SFS over a different kernel scheduling policy (default: the
    /// Linux CFS+RT model).
    pub fn with_kernel_policy(mut self, kpolicy: KernelPolicyKind) -> SfsConfig {
        self.kpolicy = kpolicy;
        self
    }

    /// Streaming-run mode: skip series recording (queue-delay series, slice
    /// and IAT timelines) so telemetry memory is O(1) in request count.
    /// Scalar counters (polls, offloads, demotions, …) are unaffected.
    pub fn without_series(mut self) -> SfsConfig {
        self.record_series = false;
        self
    }

    /// Fig. 9 baseline: fixed slice of `ms` milliseconds.
    pub fn with_fixed_slice(mut self, ms: u64) -> SfsConfig {
        self.slice_mode = SliceMode::Fixed(SimDuration::from_millis(ms));
        self
    }

    /// Fig. 11 baseline: I/O-oblivious SFS.
    pub fn io_oblivious(mut self) -> SfsConfig {
        self.io_aware = false;
        self
    }

    /// Fig. 12 baseline: disable the hybrid overload fallback.
    pub fn without_hybrid(mut self) -> SfsConfig {
        self.hybrid_overload = false;
        self
    }

    /// Queue-topology ablation: static per-worker queues instead of the
    /// paper's single global queue.
    pub fn per_worker_queues(mut self) -> SfsConfig {
        self.queue_mode = QueueMode::PerWorker;
        self
    }

    /// Sanity-check invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("SFS needs at least one worker".into());
        }
        if self.window_n == 0 {
            return Err("window N must be >= 1".into());
        }
        if self.min_slice > self.max_slice {
            return Err("min_slice exceeds max_slice".into());
        }
        if self.overload_factor <= 0.0 {
            return Err("overload factor must be positive".into());
        }
        if !(1..=99).contains(&self.filter_prio) {
            return Err("SCHED_FIFO priority must be 1..=99".into());
        }
        if self.poll_interval.is_zero() {
            return Err("poll interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SfsConfig::new(12);
        assert_eq!(c.window_n, 100);
        assert_eq!(c.poll_interval, SimDuration::from_millis(4));
        assert_eq!(c.overload_factor, 3.0);
        assert!(c.io_aware);
        assert!(c.hybrid_overload);
        assert_eq!(c.slice_mode, SliceMode::Adaptive);
        assert_eq!(c.queue_mode, QueueMode::Global);
        assert_eq!(c.kpolicy, KernelPolicyKind::Cfs);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_toggle_variants() {
        let c = SfsConfig::new(4).with_fixed_slice(200);
        assert_eq!(
            c.slice_mode,
            SliceMode::Fixed(SimDuration::from_millis(200))
        );
        assert!(!SfsConfig::new(4).io_oblivious().io_aware);
        assert!(!SfsConfig::new(4).without_hybrid().hybrid_overload);
        assert_eq!(
            SfsConfig::new(4).per_worker_queues().queue_mode,
            QueueMode::PerWorker
        );
        assert!(SfsConfig::new(4).record_series);
        assert!(!SfsConfig::new(4).without_series().record_series);
        assert_eq!(
            SfsConfig::new(4)
                .with_kernel_policy(KernelPolicyKind::Eevdf)
                .kpolicy,
            KernelPolicyKind::Eevdf
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SfsConfig::new(0);
        assert!(c.validate().is_err());
        c = SfsConfig::new(1);
        c.window_n = 0;
        assert!(c.validate().is_err());
        c = SfsConfig::new(1);
        c.min_slice = SimDuration::from_secs(100);
        assert!(c.validate().is_err());
        c = SfsConfig::new(1);
        c.overload_factor = 0.0;
        assert!(c.validate().is_err());
        c = SfsConfig::new(1);
        c.filter_prio = 0;
        assert!(c.validate().is_err());
        c = SfsConfig::new(1);
        c.poll_interval = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }
}
