//! # sfs-bench — per-figure/table reproduction harnesses
//!
//! One binary per figure and table of the paper's evaluation (see
//! DESIGN.md §4 for the full index). Every binary:
//!
//! 1. describes the experiment as [`sweep::Scenario`]s and runs them on a
//!    [`sweep::Sweep`] — in parallel, with bit-identical results for any
//!    worker-thread count,
//! 2. prints the figure's series as markdown + an ASCII chart,
//! 3. writes CSV under `results/`.
//!
//! Scale knobs come from the environment so CI and laptops can downsize:
//! `SFS_BENCH_REQUESTS` (default figure-specific), `SFS_BENCH_SEED`,
//! `SFS_BENCH_THREADS` (wall-clock only — never the numbers).

#![warn(missing_docs)]

pub mod perf;
pub mod sweep;
pub mod timebench;

pub use sweep::{Scenario, Sweep, SweepResult, Trial};

use sfs_core::{ControllerFactory, RequestOutcome, RunOutcome, SfsConfig, SfsController, Sim};
use sfs_sched::MachineParams;
use sfs_simcore::SimDuration;
use sfs_workload::Workload;

/// Run `w` under SFS (`cfg`) on a default Linux machine with `cores`
/// cores — the shared harness glue for every figure binary.
pub fn run_sfs(cfg: SfsConfig, cores: usize, w: &Workload) -> RunOutcome {
    Sim::on(MachineParams::linux(cores))
        .workload(w)
        .controller(SfsController::new(cfg))
        .run()
}

/// Run `w` under any controller recipe (a [`sfs_core::Baseline`], an
/// [`SfsConfig`], or a custom factory) on `cores` cores.
pub fn run_factory(f: &dyn ControllerFactory, cores: usize, w: &Workload) -> RunOutcome {
    f.run_on(cores, w)
}

/// Parse a scale-knob override, treating an unparsable value as a hard
/// error instead of silently running the default scale. `value` is the raw
/// environment value (`None` = unset → `default`); `name` is only for the
/// error message. Pure in its inputs so tests never race on process-global
/// environment state.
pub fn parse_env_override<T: std::str::FromStr>(name: &str, value: Option<&str>, default: T) -> T {
    match value {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            panic!(
                "{name} must be a valid {}, got {raw:?}",
                std::any::type_name::<T>()
            )
        }),
    }
}

/// Number of requests for a harness, overridable via `SFS_BENCH_REQUESTS`.
/// A malformed override aborts (so a typo can't silently run — and report —
/// the default scale).
pub fn n_requests(default: usize) -> usize {
    let v = std::env::var("SFS_BENCH_REQUESTS").ok();
    parse_env_override("SFS_BENCH_REQUESTS", v.as_deref(), default)
}

/// Experiment seed, overridable via `SFS_BENCH_SEED`. A malformed override
/// aborts rather than silently pinning the default seed.
pub fn seed() -> u64 {
    let v = std::env::var("SFS_BENCH_SEED").ok();
    parse_env_override("SFS_BENCH_SEED", v.as_deref(), 0x5F5_2022)
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where unavailable. The large-run perf
/// scenario prints this so BENCH entries carry a peak-memory note proving
/// streaming runs stay O(1) in request count.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            // Format: "VmHWM:      123456 kB"
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Turnaround values (ms) of a run.
pub fn turnarounds_ms(outcomes: &[RequestOutcome]) -> Vec<f64> {
    outcomes
        .iter()
        .map(|o| o.turnaround.as_millis_f64())
        .collect()
}

/// RTE values of a run.
pub fn rtes(outcomes: &[RequestOutcome]) -> Vec<f64> {
    outcomes.iter().map(|o| o.rte).collect()
}

/// Split turnarounds into (short, long) by ideal duration at the paper's
/// 1550 ms Table-I boundary.
pub fn split_short_long(outcomes: &[RequestOutcome]) -> (Vec<f64>, Vec<f64>) {
    let thr = SimDuration::from_millis(1550);
    let mut short = Vec::new();
    let mut long = Vec::new();
    for o in outcomes {
        if o.ideal < thr {
            short.push(o.turnaround.as_millis_f64());
        } else {
            long.push(o.turnaround.as_millis_f64());
        }
    }
    (short, long)
}

/// Standard banner every harness prints.
pub fn banner(figure: &str, what: &str, n: usize, seed: u64) {
    println!("== {figure}: {what}");
    println!("   requests={n} seed={seed:#x} (SFS_BENCH_REQUESTS / SFS_BENCH_SEED to override)");
    println!();
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Save CSV via sfs-metrics and report the path.
pub fn save(filename: &str, contents: &str) {
    match sfs_metrics::write_results(filename, contents) {
        Ok(p) => println!("[saved {}]", p.display()),
        Err(e) => eprintln!("[warn] could not save {filename}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_simcore::SimTime;

    fn outcome(ideal_ms: u64, turn_ms: u64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            arrival: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_millis(turn_ms),
            turnaround: SimDuration::from_millis(turn_ms),
            ideal: SimDuration::from_millis(ideal_ms),
            cpu_demand: SimDuration::from_millis(ideal_ms),
            rte: ideal_ms as f64 / turn_ms as f64,
            ctx_switches: 0,
            migrations: 0,
            queue_delay: SimDuration::ZERO,
            demoted: false,
            offloaded: false,
            filter_rounds: 0,
            io_blocks: 0,
        }
    }

    #[test]
    fn split_uses_table1_boundary() {
        let outs = vec![
            outcome(100, 200),
            outcome(1549, 2000),
            outcome(1550, 1600),
            outcome(3000, 3000),
        ];
        let (s, l) = split_short_long(&outs);
        assert_eq!(s.len(), 2);
        assert_eq!(l.len(), 2);
        assert_eq!(s, vec![200.0, 2000.0]);
    }

    #[test]
    fn env_overrides_parse() {
        // No env set in tests: defaults pass through.
        assert_eq!(n_requests(1234), 1234);
        assert_eq!(seed(), 0x5F5_2022);
    }

    #[test]
    fn env_overrides_accept_valid_values() {
        assert_eq!(
            parse_env_override("SFS_BENCH_REQUESTS", Some("5000"), 1234usize),
            5000
        );
        assert_eq!(
            parse_env_override("SFS_BENCH_SEED", Some("42"), 0x5F5_2022u64),
            42
        );
        assert_eq!(parse_env_override("SFS_BENCH_SEED", None, 7u64), 7);
    }

    #[test]
    fn malformed_requests_override_is_a_hard_error() {
        // Regression: "20O0" (typo'd zero) used to silently run — and
        // banner — the default scale.
        let err = std::panic::catch_unwind(|| {
            parse_env_override("SFS_BENCH_REQUESTS", Some("20O0"), 2000usize)
        })
        .expect_err("malformed SFS_BENCH_REQUESTS must abort");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(
            msg.contains("SFS_BENCH_REQUESTS"),
            "names the variable: {msg}"
        );
        assert!(msg.contains("20O0"), "names the bad value: {msg}");
    }

    #[test]
    fn malformed_seed_override_is_a_hard_error() {
        let err =
            std::panic::catch_unwind(|| parse_env_override("SFS_BENCH_SEED", Some("0xlol"), 0u64))
                .expect_err("malformed SFS_BENCH_SEED must abort");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("SFS_BENCH_SEED"), "names the variable: {msg}");
        assert!(msg.contains("0xlol"), "names the bad value: {msg}");
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            let bytes = rss.expect("VmHWM should parse on linux");
            // A running test process has at least a megabyte resident.
            assert!(bytes > 1 << 20, "implausible peak RSS {bytes}");
        }
    }

    #[test]
    fn extractors_match_fields() {
        let outs = vec![outcome(10, 20), outcome(30, 30)];
        assert_eq!(turnarounds_ms(&outs), vec![20.0, 30.0]);
        assert_eq!(rtes(&outs), vec![0.5, 1.0]);
    }
}
