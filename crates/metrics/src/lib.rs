//! # sfs-metrics — experiment reporting
//!
//! Shared reporting machinery for the per-figure bench harnesses:
//!
//! * [`report`] — CDF reports, percentile tables, markdown/CSV tables;
//! * [`compare`] — headline-claim aggregation (83% / 49.6× / 1.29×) and
//!   Fig.-16 context-switch ratios;
//! * [`ascii`] — terminal charts so `cargo run -p sfs-bench --bin figXX`
//!   shows the figure's shape without a plotting stack.

#![warn(missing_docs)]

pub mod ascii;
pub mod compare;
pub mod report;
pub mod slo;

pub use ascii::{cdf_chart, timeline_chart};
pub use compare::{ctx_switch_ratios, headline_claims, percentile_speedup, HeadlineClaims, Paired};
pub use report::{
    CdfReport, MarkdownTable, PercentileTable, Series, CDF_FRACTIONS, PAPER_PERCENTILES,
};
pub use slo::{evaluate_slo, tightest_bound, SloReport, SloRule};

use std::fs;
use std::path::Path;

/// Write experiment output under `results/` (created if missing), returning
/// the path written. Harnesses call this for every CSV they print.
pub fn write_results(filename: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(filename);
    fs::write(&path, contents)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn write_results_creates_file() {
        let p = super::write_results("test_metrics_write.csv", "a,b\n1,2\n").unwrap();
        let back = std::fs::read_to_string(&p).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
        std::fs::remove_file(p).unwrap();
    }
}
