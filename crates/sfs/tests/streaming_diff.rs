//! Differential suite: [`Sim::run_streaming`] against the classic
//! [`Sim::run`] replay path.
//!
//! Streaming mode changes *retention*, never *behaviour*: requests are
//! pulled lazily from the workload stream, outcome records go to a sink
//! instead of a vector, the machine drops completion records, and the task
//! table is compacted at quiescent points. Every outcome and every scalar
//! counter must nevertheless be bit-identical to the classic run over the
//! same workload — this suite locks that equivalence across policies and
//! workload families.

use sfs_core::{KernelOnly, OutcomeSummary, RequestOutcome, SfsConfig, SfsController, Sim};
use sfs_sched::MachineParams;
use sfs_workload::WorkloadSpec;

fn assert_outcomes_identical(classic: &[RequestOutcome], streamed: &mut [RequestOutcome]) {
    streamed.sort_by_key(|o| o.id);
    assert_eq!(classic.len(), streamed.len());
    for (c, s) in classic.iter().zip(streamed.iter()) {
        assert_eq!(c.id, s.id);
        assert_eq!(c.arrival, s.arrival);
        assert_eq!(c.finished, s.finished, "req {}", c.id);
        assert_eq!(c.turnaround, s.turnaround);
        assert_eq!(c.ideal, s.ideal);
        assert_eq!(c.cpu_demand, s.cpu_demand);
        assert_eq!(c.rte.to_bits(), s.rte.to_bits());
        assert_eq!(c.ctx_switches, s.ctx_switches);
        assert_eq!(c.migrations, s.migrations);
        assert_eq!(c.queue_delay, s.queue_delay);
        assert_eq!(c.demoted, s.demoted);
        assert_eq!(c.offloaded, s.offloaded);
        assert_eq!(c.filter_rounds, s.filter_rounds);
        assert_eq!(c.io_blocks, s.io_blocks);
    }
}

fn diff_sfs(spec: &WorkloadSpec, cores: usize) {
    let workload = spec.generate();
    let classic = Sim::on(MachineParams::linux(cores))
        .workload(&workload)
        .controller(SfsController::new(SfsConfig::new(cores)))
        .run();

    let mut streamed: Vec<RequestOutcome> = Vec::new();
    let run = Sim::on(MachineParams::linux(cores))
        .controller(SfsController::new(SfsConfig::new(cores).without_series()))
        .run_streaming(spec.stream(), |o| streamed.push(o));

    assert_outcomes_identical(&classic.outcomes, &mut streamed);
    assert_eq!(run.requests as usize, classic.outcomes.len());
    assert_eq!(run.sched_actions, classic.sched_actions);
    assert_eq!(run.machine_ctx_switches, classic.machine_ctx_switches);
    assert_eq!(run.sim_span, classic.sim_span);
    assert_eq!(run.telemetry.polls, classic.telemetry.polls);
    assert_eq!(run.telemetry.polled_tasks, classic.telemetry.polled_tasks);
    assert_eq!(run.telemetry.offloaded, classic.telemetry.offloaded);
    assert_eq!(run.telemetry.demoted, classic.telemetry.demoted);
    assert_eq!(run.telemetry.slice_recalcs, classic.telemetry.slice_recalcs);
    // without_series: the streaming run must not have accumulated
    // per-request series.
    assert!(run.telemetry.queue_delay_series.is_empty());
    assert!(run.telemetry.slice_timeline.is_empty());
}

#[test]
fn sfs_streaming_matches_classic_azure() {
    // Long enough past COMPACT_TASK_TABLE_LEN (1024) that quiescent-point
    // compaction actually fires and must prove itself transparent.
    diff_sfs(&WorkloadSpec::azure_sampled(3_000, 7).with_load(4, 0.9), 4);
}

#[test]
fn sfs_streaming_matches_classic_bursty_replay() {
    diff_sfs(&WorkloadSpec::azure_replay(2_500, 11), 4);
}

#[test]
fn sfs_streaming_matches_classic_io_and_cold_families() {
    let mut io = WorkloadSpec::azure_sampled(1_500, 13).with_load(4, 0.8);
    io.io_fraction = 0.75;
    diff_sfs(&io, 4);
    diff_sfs(
        &WorkloadSpec::cold_start_mix(1_500, 17).with_load(4, 0.8),
        4,
    );
}

#[test]
fn kernel_only_streaming_matches_classic() {
    let spec = WorkloadSpec::azure_sampled(2_000, 19).with_load(4, 0.9);
    let workload = spec.generate();
    let classic = Sim::on(MachineParams::linux(4))
        .workload(&workload)
        .controller(KernelOnly(sfs_sched::Policy::NORMAL))
        .run();
    let mut streamed = Vec::new();
    let run = Sim::on(MachineParams::linux(4))
        .controller(KernelOnly(sfs_sched::Policy::NORMAL))
        .run_streaming(spec.stream(), |o| streamed.push(o));
    assert_outcomes_identical(&classic.outcomes, &mut streamed);
    assert_eq!(run.machine_ctx_switches, classic.machine_ctx_switches);
    assert_eq!(run.sim_span, classic.sim_span);
}

#[test]
fn outcome_summary_sink_matches_exact_percentiles() {
    // The full O(1)-memory reporting path: stream → OutcomeSummary, then
    // compare its sketched percentiles against exact Samples over the
    // classic run's outcome vector.
    let spec = WorkloadSpec::azure_sampled(4_000, 23).with_load(4, 0.9);
    let workload = spec.generate();
    let classic = Sim::on(MachineParams::linux(4))
        .workload(&workload)
        .controller(SfsController::new(SfsConfig::new(4)))
        .run();
    let mut summary = OutcomeSummary::new();
    let run = Sim::on(MachineParams::linux(4))
        .controller(SfsController::new(SfsConfig::new(4).without_series()))
        .run_streaming(spec.stream(), |o| summary.observe(&o));
    assert_eq!(summary.requests, run.requests);

    let mut exact = sfs_simcore::Samples::from_vec(
        classic
            .outcomes
            .iter()
            .map(|o| o.turnaround.as_millis_f64())
            .collect(),
    );
    for p in [50.0, 90.0, 99.0, 99.9] {
        let (e, s) = (exact.percentile(p), summary.turnaround_ms.percentile(p));
        assert!((s - e).abs() <= 0.011 * e, "p{p}: sketch {s} vs exact {e}");
    }
    let exact_mean = classic
        .outcomes
        .iter()
        .map(|o| o.turnaround.as_millis_f64())
        .sum::<f64>()
        / classic.outcomes.len() as f64;
    assert!((summary.mean_turnaround_ms() - exact_mean).abs() < 1e-9);
    assert_eq!(
        summary.demoted,
        classic.outcomes.iter().filter(|o| o.demoted).count() as u64
    );
    assert_eq!(
        summary.offloaded,
        classic.outcomes.iter().filter(|o| o.offloaded).count() as u64
    );
}

#[test]
#[should_panic(expected = "analytic controllers are not supported")]
fn analytic_controllers_are_rejected_in_streaming_mode() {
    let spec = WorkloadSpec::azure_sampled(10, 1);
    let _ = Sim::on(MachineParams::linux(2))
        .controller(sfs_core::Ideal)
        .run_streaming(spec.stream(), |_| {});
}

#[test]
#[should_panic(expected = "remove .workload")]
fn streaming_rejects_materialised_workload() {
    let spec = WorkloadSpec::azure_sampled(10, 1);
    let w = spec.generate();
    let _ = Sim::on(MachineParams::linux(2))
        .workload(&w)
        .controller(SfsController::new(SfsConfig::new(2)))
        .run_streaming(spec.stream(), |_| {});
}
