//! Function applications FaaSBench can generate.
//!
//! The paper's OpenLambda evaluation (§IX-A) uses three apps:
//!
//! * `fib` — computes a Fibonacci sequence; CPU-heavy, no I/O;
//! * `md`  — markdown generation; reads a JSON file then converts: I/O-heavy;
//! * `sa`  — sentiment analysis; loads a vocabulary file then scores text:
//!   both CPU- and I/O-intensive.
//!
//! Each app maps a sampled "function duration" (Table I) into a phase
//! structure. The standalone experiments (§VIII) use `fib` with an optional
//! injected leading I/O operation (the `IO` knob).

use sfs_sched::{Phase, Policy, TaskSpec};
use sfs_simcore::{SimDuration, SimRng};

/// Which application a request executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Pure CPU (Fibonacci).
    Fib,
    /// I/O-dominant (markdown generation): a file read then a small
    /// conversion burst.
    Md,
    /// CPU + I/O (sentiment analysis): a dictionary load then a scoring
    /// burst comparable to the I/O time.
    Sa,
}

impl AppKind {
    /// Short name used in labels and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Fib => "fib",
            AppKind::Md => "md",
            AppKind::Sa => "sa",
        }
    }

    /// Build the phase structure for a request of this app whose *total
    /// ideal duration* is `duration_ms`.
    ///
    /// * `fib`: one CPU burst of the full duration.
    /// * `md` (markdown generation, I/O-intensive): 70% I/O / 30% CPU,
    ///   interleaved as six read→convert segment pairs — a buffered file
    ///   reader blocks repeatedly, and each wake re-pays the runqueue wait
    ///   under CFS (the effect behind Fig. 13–15's I/O-app separation).
    /// * `sa` (sentiment analysis, CPU+I/O): four load→parse pairs (40% I/O)
    ///   followed by a long scoring burst (the remaining CPU).
    pub fn phases(self, duration_ms: f64) -> Vec<Phase> {
        let total = SimDuration::from_millis_f64(duration_ms.max(0.001));
        let min_cpu = SimDuration::from_micros(1);
        match self {
            AppKind::Fib => vec![Phase::Cpu(total)],
            AppKind::Md => {
                let mut phases = Vec::with_capacity(12);
                let io_seg = total.mul_f64(0.7 / 6.0);
                let cpu_seg = total.mul_f64(0.3 / 6.0);
                for _ in 0..6 {
                    phases.push(Phase::Io(io_seg.max(min_cpu)));
                    phases.push(Phase::Cpu(cpu_seg.max(min_cpu)));
                }
                phases
            }
            AppKind::Sa => {
                let mut phases = Vec::with_capacity(9);
                let io_seg = total.mul_f64(0.4 / 4.0);
                let cpu_seg = total.mul_f64(0.15 / 4.0);
                for _ in 0..4 {
                    phases.push(Phase::Io(io_seg.max(min_cpu)));
                    phases.push(Phase::Cpu(cpu_seg.max(min_cpu)));
                }
                phases.push(Phase::Cpu(total.mul_f64(0.45).max(min_cpu)));
                phases
            }
        }
    }
}

/// Mix of applications in a workload.
#[derive(Debug, Clone)]
pub enum AppMix {
    /// Only `fib` (the standalone-SFS experiments, §VIII).
    FibOnly,
    /// Weighted mix of the three OpenLambda apps (§IX). Weights need not
    /// sum to 1.
    Mixed {
        /// Relative weight of the CPU-bound `fib` app.
        fib: f64,
        /// Relative weight of the markdown-rendering `md` app.
        md: f64,
        /// Relative weight of the sentiment-analysis `sa` app.
        sa: f64,
    },
}

impl AppMix {
    /// The paper's OpenLambda workload: equal thirds of fib / md / sa.
    pub fn openlambda() -> AppMix {
        AppMix::Mixed {
            fib: 1.0,
            md: 1.0,
            sa: 1.0,
        }
    }

    /// Draw an app for one request.
    pub fn sample(&self, rng: &mut SimRng) -> AppKind {
        match self {
            AppMix::FibOnly => AppKind::Fib,
            AppMix::Mixed { fib, md, sa } => match rng.pick_weighted(&[*fib, *md, *sa]) {
                0 => AppKind::Fib,
                1 => AppKind::Md,
                _ => AppKind::Sa,
            },
        }
    }
}

/// Assemble a full [`TaskSpec`] for one request.
///
/// * `duration_ms` — the sampled ideal duration (Table I),
/// * `injected_io_ms` — the §VIII-B "IO knob": an extra I/O operation
///   prepended to the function body (`Some(x)` adds `Io(x)`),
/// * requests start under CFS (`SCHED_NORMAL`), exactly as a FaaS server
///   dispatches them; SFS later promotes them to FIFO.
pub fn build_task(
    label: u64,
    app: AppKind,
    duration_ms: f64,
    injected_io_ms: Option<f64>,
) -> TaskSpec {
    let mut phases = Vec::new();
    if let Some(io) = injected_io_ms {
        phases.push(Phase::Io(SimDuration::from_millis_f64(io)));
    }
    phases.extend(app.phases(duration_ms));
    TaskSpec {
        phases,
        policy: Policy::NORMAL,
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_is_pure_cpu() {
        let p = AppKind::Fib.phases(120.0);
        assert_eq!(p.len(), 1);
        assert!(p[0].is_cpu());
        assert_eq!(p[0].duration(), SimDuration::from_millis(120));
    }

    #[test]
    fn md_is_io_dominant_and_segmented() {
        let p = AppKind::Md.phases(120.0);
        assert_eq!(p.len(), 12, "six read->convert pairs");
        assert!(!p[0].is_cpu(), "md starts with a file read");
        let io: SimDuration = p.iter().filter(|x| !x.is_cpu()).map(|x| x.duration()).sum();
        let cpu: SimDuration = p.iter().filter(|x| x.is_cpu()).map(|x| x.duration()).sum();
        assert!(io > cpu * 2, "I/O dominates CPU for md: {io} vs {cpu}");
        let total = io + cpu;
        assert!((total.as_millis_f64() - 120.0).abs() < 0.001);
        // Interleaving: phases alternate Io, Cpu.
        for (i, ph) in p.iter().enumerate() {
            assert_eq!(ph.is_cpu(), i % 2 == 1, "md phase {i} out of order");
        }
    }

    #[test]
    fn sa_is_cpu_dominant_with_io_segments() {
        let p = AppKind::Sa.phases(100.0);
        assert_eq!(p.len(), 9, "four load->parse pairs plus a scoring burst");
        assert!(!p[0].is_cpu());
        let io: SimDuration = p.iter().filter(|x| !x.is_cpu()).map(|x| x.duration()).sum();
        let cpu: SimDuration = p.iter().filter(|x| x.is_cpu()).map(|x| x.duration()).sum();
        assert!(cpu > io, "CPU dominates for sa");
        assert!((io.as_millis_f64() - 40.0).abs() < 0.001);
        assert!(p.last().unwrap().is_cpu(), "sa ends with the scoring burst");
    }

    #[test]
    fn tiny_durations_still_have_cpu_work() {
        for app in [AppKind::Fib, AppKind::Md, AppKind::Sa] {
            let spec = build_task(0, app, 0.002, None);
            assert!(
                spec.validate().is_ok(),
                "{} spec invalid for tiny duration",
                app.name()
            );
            assert!(!spec.cpu_demand().is_zero());
        }
    }

    #[test]
    fn injected_io_prepends_phase() {
        let spec = build_task(9, AppKind::Fib, 30.0, Some(55.0));
        assert_eq!(spec.phases.len(), 2);
        assert_eq!(spec.phases[0], Phase::Io(SimDuration::from_millis(55)));
        assert_eq!(spec.ideal_duration(), SimDuration::from_millis(85));
        assert_eq!(spec.label, 9);
        assert_eq!(spec.policy, Policy::NORMAL);
    }

    #[test]
    fn app_mix_frequencies() {
        let mix = AppMix::openlambda();
        let mut rng = SimRng::seed_from_u64(17);
        let mut counts = [0usize; 3];
        let n = 60_000;
        for _ in 0..n {
            match mix.sample(&mut rng) {
                AppKind::Fib => counts[0] += 1,
                AppKind::Md => counts[1] += 1,
                AppKind::Sa => counts[2] += 1,
            }
        }
        for c in counts {
            let f = c as f64 / n as f64;
            assert!((f - 1.0 / 3.0).abs() < 0.02, "app frequency {f}");
        }
        // FibOnly never yields anything else.
        for _ in 0..100 {
            assert_eq!(AppMix::FibOnly.sample(&mut rng), AppKind::Fib);
        }
    }
}
