//! Shared scenario definitions for the golden-metrics and determinism
//! suites: a fixed matrix of small-but-representative experiment points,
//! each a pure function of `(name, n, seed)`.

use sfs_core::{
    Baseline, ControllerFactory, HistoryPriority, RequestOutcome, SfsConfig, SfsController, Sim,
    UserMlfq,
};
use sfs_faas::{Cluster, FaultSpec, Fleet, HostScheduler, OpenLambda, OpenLambdaParams, Placement};
use sfs_sched::{MachineParams, SmpParams};
use sfs_simcore::{Samples, SimDuration};
use sfs_workload::WorkloadSpec;

/// Scenario names locked by `tests/golden/*.txt` (one file each).
pub const SCENARIOS: &[&str] = &[
    "azure80_sfs",
    "azure80_cfs",
    "azure100_sfs",
    "replay_sfs",
    "diurnal_sfs",
    "correlated_sfs",
    "coldstart_sfs",
    "openlambda_sfs",
    // Controllers the policy-driven API added (PR 3).
    "azure100_history",
    "azure100_mlfq",
    "replay_slosfs",
    // Multi-host dispatch on the live-feedback cluster (PR 4). The
    // cluster runs its hosts on one worker here — the enclosing sweep
    // already spans the suite's thread matrix, and nested fan-out would
    // not change the (thread-count-invariant) numbers anyway.
    "cluster4_jsq_sfs",
    "cluster4_hash_sfs",
    "cluster4_l2l_cfs",
    // SMP machine model with the load balancer + migration/affinity costs
    // enabled (PR 6). Every other scenario runs the default (all-off)
    // `SmpParams`, which is what keeps their snapshots byte-identical to
    // the pre-SMP machine.
    "smp2_sfs",
    "smp4_sfs",
    "smp8_sfs",
    "smp4_cfs",
    "smp8_cfs",
    "smp4_burst_sfs",
    "smp4_burst_cfs",
    // Pluggable kernel policies (PR 9): each new policy locked under
    // azure replay and under an SMP overload burst at 4 cores. The CFS
    // and SRTF machines are *not* re-snapshotted — their bit-exactness
    // against the pre-refactor machine is the refactor's acceptance
    // gate, enforced by every scenario above staying byte-identical.
    "eevdf4_replay",
    "eevdf4_burst",
    "dl4_replay",
    "dl4_burst",
    "srp4_replay",
    "srp4_burst",
    // Multi-region fleet behind the global front door (PR 10): fault-free
    // autoscaled baseline, the full fault mix (crashes + stragglers +
    // correlated outage, attributably conserved), and consistent-hash
    // placement over a CFS fleet. Units run on one worker here, same
    // rationale as the cluster scenarios.
    "fleet2_jsq_sfs",
    "fleet2_faults_sfs",
    "fleet2_hash_cfs",
];

/// The fleet scenario subset (front door + autoscaler + fault injection).
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub const FLEET_SCENARIOS: &[&str] = &["fleet2_jsq_sfs", "fleet2_faults_sfs", "fleet2_hash_cfs"];

/// The SMP-enabled scenario subset (SFS vs CFS at cores ∈ {2,4,8} under
/// azure replay, plus an overload burst pair at 4 cores).
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub const SMP_SCENARIOS: &[&str] = &[
    "smp2_sfs",
    "smp4_sfs",
    "smp8_sfs",
    "smp4_cfs",
    "smp8_cfs",
    "smp4_burst_sfs",
    "smp4_burst_cfs",
];

/// The kernel-policy scenario subset (EEVDF / deadline-class / SRP
/// baselines, replay + SMP overload burst each).
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub const KPOLICY_SCENARIOS: &[&str] = &[
    "eevdf4_replay",
    "eevdf4_burst",
    "dl4_replay",
    "dl4_burst",
    "srp4_replay",
    "srp4_burst",
];

/// Request count: small enough for CI, large enough for stable shapes.
pub const N: usize = 1_200;
/// Fixed master seed for the whole suite.
pub const SEED: u64 = 0x5EED_601D;

fn sfs(cores: usize, w: sfs_workload::Workload) -> Vec<RequestOutcome> {
    Sim::on(MachineParams::linux(cores))
        .workload(&w)
        .controller(SfsController::new(SfsConfig::new(cores)))
        .run()
        .outcomes
}

fn run_factory(
    f: &dyn ControllerFactory,
    cores: usize,
    w: sfs_workload::Workload,
) -> Vec<RequestOutcome> {
    f.run_on(cores, &w).outcomes
}

/// Run one named scenario to completion.
pub fn run_scenario(name: &str) -> Vec<RequestOutcome> {
    match name {
        "azure80_sfs" => sfs(
            8,
            WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 0.8)
                .generate(),
        ),
        "azure80_cfs" => run_factory(
            &Baseline::Cfs,
            8,
            WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 0.8)
                .generate(),
        ),
        "azure100_sfs" => sfs(
            8,
            WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 1.0)
                .generate(),
        ),
        "replay_sfs" => sfs(
            8,
            WorkloadSpec::azure_replay(N, SEED)
                .with_load(8, 0.85)
                .generate(),
        ),
        "diurnal_sfs" => sfs(
            8,
            WorkloadSpec::diurnal(N, SEED).with_load(8, 0.85).generate(),
        ),
        "correlated_sfs" => sfs(
            8,
            WorkloadSpec::correlated_bursts(N, SEED)
                .with_load(8, 0.85)
                .generate(),
        ),
        "coldstart_sfs" => sfs(
            8,
            WorkloadSpec::cold_start_mix(N, SEED)
                .with_load(8, 0.85)
                .generate(),
        ),
        "openlambda_sfs" => {
            let w = WorkloadSpec::openlambda(N, SEED)
                .with_duration_load(24, 0.88)
                .generate();
            OpenLambda::new(OpenLambdaParams::default()).run(
                HostScheduler::Sfs(SfsConfig::new(24)),
                24,
                &w,
            )
        }
        "azure100_history" => {
            let w = WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 1.0)
                .generate();
            Sim::on(MachineParams::linux(8))
                .workload(&w)
                .controller(HistoryPriority::new())
                .run()
                .outcomes
        }
        "azure100_mlfq" => {
            let w = WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 1.0)
                .generate();
            Sim::on(MachineParams::linux(8))
                .workload(&w)
                .controller(UserMlfq::default())
                .run()
                .outcomes
        }
        "replay_slosfs" => {
            let w = WorkloadSpec::azure_replay(N, SEED)
                .with_load(8, 0.85)
                .generate();
            Sim::on(MachineParams::linux(8))
                .workload(&w)
                .controller(SfsController::with_slo(
                    SfsConfig::new(8),
                    SimDuration::from_millis(250),
                ))
                .run()
                .outcomes
        }
        "cluster4_jsq_sfs" => cluster_scenario(Placement::JoinShortestQueue, None),
        "cluster4_hash_sfs" => cluster_scenario(Placement::ConsistentHash, None),
        "cluster4_l2l_cfs" => cluster_scenario(Placement::LongToLightest, Some(Baseline::Cfs)),
        "smp2_sfs" => smp_scenario(2, None, false),
        "smp4_sfs" => smp_scenario(4, None, false),
        "smp8_sfs" => smp_scenario(8, None, false),
        "smp4_cfs" => smp_scenario(4, Some(Baseline::Cfs), false),
        "smp8_cfs" => smp_scenario(8, Some(Baseline::Cfs), false),
        "smp4_burst_sfs" => smp_scenario(4, None, true),
        "smp4_burst_cfs" => smp_scenario(4, Some(Baseline::Cfs), true),
        "eevdf4_replay" => kpolicy_scenario(Baseline::Eevdf, false),
        "eevdf4_burst" => kpolicy_scenario(Baseline::Eevdf, true),
        "dl4_replay" => kpolicy_scenario(Baseline::Deadline, false),
        "dl4_burst" => kpolicy_scenario(Baseline::Deadline, true),
        "srp4_replay" => kpolicy_scenario(Baseline::Srp, false),
        "srp4_burst" => kpolicy_scenario(Baseline::Srp, true),
        "fleet2_jsq_sfs" | "fleet2_faults_sfs" | "fleet2_hash_cfs" => {
            run_fleet_scenario_threads(name, 1)
        }
        other => panic!("unknown scenario {other:?}"),
    }
}

/// The standard "SMP on" machine: balance every 4ms, 30µs migration
/// penalty, 15µs cross-core resume cost.
pub fn smp_on() -> SmpParams {
    SmpParams::balanced(
        SimDuration::from_millis(4),
        SimDuration::from_micros(30),
        SimDuration::from_micros(15),
    )
}

/// SFS (or a kernel baseline) on a balancing SMP machine: azure replay at
/// 0.85 load, or an overload burst (sampled traces at 1.5× capacity) when
/// `burst` is set.
fn smp_scenario(cores: usize, baseline: Option<Baseline>, burst: bool) -> Vec<RequestOutcome> {
    let w = if burst {
        WorkloadSpec::azure_sampled(N, SEED)
            .with_load(cores, 1.5)
            .generate()
    } else {
        WorkloadSpec::azure_replay(N, SEED)
            .with_load(cores, 0.85)
            .generate()
    };
    let params = MachineParams::linux(cores).with_smp(smp_on());
    let sim = Sim::on(params).workload(&w);
    let run = match baseline {
        Some(b) => sim.boxed_controller(b.build()).run(),
        None => sim
            .controller(SfsController::new(SfsConfig::new(cores)))
            .run(),
    };
    run.outcomes
}

/// A kernel-policy baseline on a 4-core machine: azure replay at 0.85
/// load on the plain machine, or an overload burst (sampled traces at
/// 1.5× capacity) on the balancing SMP machine when `burst` is set.
///
/// Policy selection normally flows through
/// [`Baseline::configure_machine`]; with `SFS_KPOLICY_EXPLICIT` set in
/// the environment it flows through the [`Sim::kernel_policy`] builder
/// instead. CI runs the golden suite both ways — the snapshots must not
/// care which plumbing path picked the policy.
fn kpolicy_scenario(b: Baseline, burst: bool) -> Vec<RequestOutcome> {
    let cores = 4;
    let w = if burst {
        WorkloadSpec::azure_sampled(N, SEED)
            .with_load(cores, 1.5)
            .generate()
    } else {
        WorkloadSpec::azure_replay(N, SEED)
            .with_load(cores, 0.85)
            .generate()
    };
    let mut params = MachineParams::linux(cores);
    if burst {
        params = params.with_smp(smp_on());
    }
    let explicit = std::env::var_os("SFS_KPOLICY_EXPLICIT").is_some_and(|v| !v.is_empty());
    if !explicit {
        b.configure_machine(&mut params);
    }
    let mut sim = Sim::on(params).workload(&w);
    if explicit {
        sim = sim.kernel_policy(b.kernel_policy());
    }
    sim.boxed_controller(b.build()).run().outcomes
}

/// A 2-region × 4-host × 4-core fleet under the warm-container affinity
/// model with the default front door and autoscaler; `faulted` adds the
/// full fault mix (crashes + stragglers + a correlated AZ outage) and the
/// run must still conserve every request. Only completed outcomes feed
/// the fingerprint/metrics lock — shed or lost requests shift the
/// completed count, so conservation drift still trips the snapshot.
#[allow(dead_code)] // each test binary compiles its own copy of this module
pub fn run_fleet_scenario_threads(name: &str, threads: usize) -> Vec<RequestOutcome> {
    match name {
        "fleet2_jsq_sfs" => fleet_scenario(Placement::JoinShortestQueue, None, false, threads),
        "fleet2_faults_sfs" => fleet_scenario(Placement::JoinShortestQueue, None, true, threads),
        "fleet2_hash_cfs" => fleet_scenario(
            Placement::ConsistentHash,
            Some(Baseline::Cfs),
            false,
            threads,
        ),
        other => panic!("unknown fleet scenario {other:?}"),
    }
}

fn fleet_scenario(
    placement: Placement,
    baseline: Option<Baseline>,
    faulted: bool,
    threads: usize,
) -> Vec<RequestOutcome> {
    let w = WorkloadSpec::azure_sampled(N, SEED)
        .with_load(32, 0.9)
        .generate();
    let mut fleet = Fleet::new(2, 4, 4).with_affinity(
        SimDuration::from_millis(5_000),
        SimDuration::from_millis(40),
    );
    if faulted {
        fleet = fleet.with_faults(
            FaultSpec::parse("crash:3+straggler:2+outage:1").expect("literal fault spec"),
        );
    }
    let run = match baseline {
        Some(b) => fleet.run_with_threads(placement, &b, &w, threads),
        None => fleet.run_with_threads(placement, &fleet.sfs, &w, threads),
    };
    assert!(run.conservation_holds(), "fleet scenario lost requests");
    run.outcomes
}

/// A 4-host × 4-core cluster under the warm-container affinity model;
/// `baseline` swaps the per-host policy from SFS to a kernel baseline.
fn cluster_scenario(placement: Placement, baseline: Option<Baseline>) -> Vec<RequestOutcome> {
    let w = WorkloadSpec::azure_sampled(N, SEED)
        .with_load(16, 0.9)
        .generate();
    let cluster = Cluster::new(4, 4).with_affinity(
        SimDuration::from_millis(5_000),
        SimDuration::from_millis(40),
    );
    let run = match baseline {
        Some(b) => cluster.run_with_threads(placement, &b, &w, 1),
        None => cluster.run_with_threads(placement, &cluster.sfs, &w, 1),
    };
    run.outcomes
}

/// FNV-1a over every outcome's exact fields: any bit-level drift in any
/// request changes the fingerprint.
pub fn fingerprint(outcomes: &[RequestOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.arrival.as_nanos());
        mix(o.finished.as_nanos());
        mix(o.turnaround.as_nanos());
        mix(o.rte.to_bits());
        mix(o.ctx_switches);
        mix(o.queue_delay.as_nanos());
        mix(o.demoted as u64);
        mix(o.offloaded as u64);
        mix(o.filter_rounds as u64);
        mix(o.io_blocks as u64);
    }
    h
}

/// The headline metrics of a run, exactly formatted: a decimal rendering
/// for humans plus the raw IEEE-754 bits as the machine-checked lock.
pub fn metrics_report(name: &str, outcomes: &[RequestOutcome]) -> String {
    let durs: Vec<f64> = outcomes
        .iter()
        .map(|o| o.turnaround.as_millis_f64())
        .collect();
    let mut samples = Samples::from_vec(durs.clone());
    let p50 = samples.percentile(50.0);
    let p99 = samples.percentile(99.0);
    let mean = durs.iter().sum::<f64>() / durs.len().max(1) as f64;
    let span_s = outcomes
        .iter()
        .map(|o| o.finished.as_nanos())
        .max()
        .unwrap_or(1) as f64
        / 1e9;
    let throughput = outcomes.len() as f64 / span_s;
    let f = |v: f64| format!("{v} bits={:#018x}", v.to_bits());
    format!(
        "scenario={name}\nrequests={}\np50_ms={}\np99_ms={}\nmean_ms={}\nthroughput_rps={}\nfingerprint={:#018x}\n",
        outcomes.len(),
        f(p50),
        f(p99),
        f(mean),
        f(throughput),
        fingerprint(outcomes),
    )
}
