//! Per-bucket breakdown: SFS-vs-CFS speedup for each Table-I duration
//! class at 100% load. Deepens the headline claim by showing *where* the
//! short-function win comes from (the shorter the bucket, the larger the
//! speedup) and how the crossover approaches 1× at the long bucket.

use sfs_bench::{banner, run_factory, run_sfs, save, section, Sweep};
use sfs_core::{Baseline, RequestOutcome, SfsConfig};
use sfs_metrics::MarkdownTable;
use sfs_simcore::Samples;
use sfs_workload::{WorkloadSpec, TABLE1};

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(20_000);
    let seed = sfs_bench::seed();
    banner(
        "Breakdown",
        "SFS vs CFS speedup per Table-I duration bucket",
        n,
        seed,
    );

    let gen = move || {
        WorkloadSpec::azure_sampled(n, seed)
            .with_load(CORES, 1.0)
            .generate()
    };
    let mut sweep: Sweep<'_, (Vec<RequestOutcome>, Option<sfs_workload::Workload>)> =
        Sweep::new("breakdown_buckets", seed);
    sweep.scenario("SFS", move |_| {
        (run_sfs(SfsConfig::new(CORES), CORES, &gen()).outcomes, None)
    });
    sweep.scenario("CFS", move |_| {
        // The CFS trial keeps its workload so the bucketing below doesn't
        // regenerate it a third time on the main thread.
        let w = gen();
        (run_factory(&Baseline::Cfs, CORES, &w).outcomes, Some(w))
    });
    let results = sweep.run();
    let (sfs, cfs) = (&results[0].value.0, &results[1].value.0);
    let w = results[1]
        .value
        .1
        .as_ref()
        .expect("CFS trial keeps workload");

    let mut table = MarkdownTable::new(&[
        "bucket",
        "requests",
        "SFS p50 (ms)",
        "CFS p50 (ms)",
        "median speedup",
        "mean speedup",
    ]);
    for b in TABLE1.iter() {
        let (lo, hi) = b.range_ms;
        let idx: Vec<usize> = w
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.duration_ms >= lo && r.duration_ms < hi)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let mut s_p = Samples::from_vec(
            idx.iter()
                .map(|&i| sfs[i].turnaround.as_millis_f64())
                .collect(),
        );
        let mut c_p = Samples::from_vec(
            idx.iter()
                .map(|&i| cfs[i].turnaround.as_millis_f64())
                .collect(),
        );
        let mut speedups: Vec<f64> = idx
            .iter()
            .map(|&i| {
                cfs[i].turnaround.as_millis_f64() / sfs[i].turnaround.as_millis_f64().max(1e-9)
            })
            .collect();
        speedups.sort_by(f64::total_cmp);
        let median = speedups[speedups.len() / 2];
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let label = if hi >= 3500.0 {
            format!(">= {lo:.0} ms")
        } else {
            format!("{lo:.0}-{hi:.0} ms")
        };
        table.row(&[
            label,
            format!("{}", idx.len()),
            format!("{:.1}", s_p.percentile(50.0)),
            format!("{:.1}", c_p.percentile(50.0)),
            format!("{median:.1}x"),
            format!("{mean:.1}x"),
        ]);
    }

    section("per-bucket comparison at 100% load");
    println!("{}", table.to_markdown());
    save("breakdown_buckets.csv", &table.to_csv());
    println!(
        "Expected: monotone — the shortest bucket gains the most; the\n\
         >=1550ms bucket approaches (or dips below) 1x, the paper's trade-off."
    );
}
