//! End-to-end benchmarks: simulate a 400-request Azure-sampled workload
//! per scheduling policy, measuring simulator throughput (how fast this
//! reproduction regenerates the paper's experiments).
//!
//! Uses the in-repo `sfs_bench::timebench` harness (std-only) instead of
//! criterion. Run with `cargo bench --bench end_to_end`.

use std::hint::black_box;

use sfs_bench::timebench::Harness;
use sfs_core::{run_baseline, Baseline, SfsConfig, SfsSimulator};
use sfs_sched::MachineParams;
use sfs_workload::{Workload, WorkloadSpec};

const CORES: usize = 8;
const REQUESTS: usize = 400;

fn workload() -> Workload {
    WorkloadSpec::azure_sampled(REQUESTS, 42)
        .with_load(CORES, 0.9)
        .generate()
}

fn bench_baselines(h: &mut Harness) {
    let w = workload();
    for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
        h.bench(&format!("end_to_end/baseline/{}", b.name()), || {
            black_box(run_baseline(b, CORES, &w));
        });
    }
    h.bench("end_to_end/sfs", || {
        let sim = SfsSimulator::new(
            SfsConfig::new(CORES),
            MachineParams::linux(CORES),
            w.clone(),
        );
        black_box(sim.run().outcomes.len());
    });
}

fn bench_workload_generation(h: &mut Harness) {
    let spec = WorkloadSpec::azure_sampled(10_000, 7).with_load(16, 0.8);
    h.bench("workload/generate_10k", || {
        black_box(spec.generate().len());
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_baselines(&mut h);
    bench_workload_generation(&mut h);
    h.finish();
}
