//! # sfs-simcore — discrete-event simulation substrate
//!
//! Foundation crate for the SFS reproduction. Provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a deterministic discrete-event queue with stable
//!   FIFO tie-breaking for simultaneous events,
//! * [`rng`] — seeded, reproducible random number generation helpers,
//! * [`parallel`] — deterministic trial fan-out: SplitMix64 seed
//!   sequencing plus scoped-thread execution whose results are
//!   bit-identical for every worker-thread count,
//! * [`stats`] — online statistics, exact percentile/CDF estimation, and
//!   log-scale histograms used by every experiment harness,
//! * [`window`] — the fixed-capacity sliding window behind SFS's
//!   inter-arrival-time (IAT) based time-slice adaptation (paper §V-C),
//! * [`series`] — time-series recording for timeline figures (Fig. 10, 12a).
//!
//! Everything here is deterministic: the same seed produces bit-identical
//! experiment output, which is what lets the bench harnesses regenerate the
//! paper's figures reproducibly.

#![warn(missing_docs)]

pub mod events;
pub mod parallel;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod window;

pub use events::{EventCore, EventQueue};
pub use parallel::SeedSequencer;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{Cdf, Histogram, OnlineStats, QuantileSketch, Samples};
pub use time::{SimDuration, SimTime};
pub use window::SlidingWindow;
