//! Edge-case contracts of the [`Controller`] + [`Sim`] API: default-hook
//! controllers degrade to kernel-only scheduling, notifications coinciding
//! with controller timers are delivered in the documented order, and empty
//! workloads terminate cleanly for every stock policy.

use std::cell::RefCell;
use std::rc::Rc;

use sfs_core::{
    Controller, HistoryPriority, Ideal, KernelOnly, MachineView, RunOutcome, SfsConfig,
    SfsController, Sim, UserMlfq,
};
use sfs_sched::{MachineParams, Notification, Pid, Policy};
use sfs_simcore::{SimDuration, SimTime};
use sfs_workload::{Request, Workload, WorkloadSpec};

fn workload(n: usize, seed: u64) -> Workload {
    WorkloadSpec::azure_sampled(n, seed)
        .with_load(4, 0.9)
        .generate()
}

/// A controller with every hook left at its default.
struct Null;
impl Controller for Null {}

#[test]
fn do_nothing_controller_equals_kernel_only() {
    // A controller that never changes policy is indistinguishable from
    // KernelOnly(spec policy): FaaSBench specs dispatch under
    // `SCHED_NORMAL`, so both runs are plain CFS — bit-identical.
    let w = workload(600, 3);
    assert!(w.requests.iter().all(|r| r.spec.policy == Policy::NORMAL));
    let null = Sim::on(MachineParams::linux(4))
        .workload(&w)
        .controller(Null)
        .run();
    let kernel = Sim::on(MachineParams::linux(4))
        .workload(&w)
        .controller(KernelOnly(Policy::NORMAL))
        .run();
    assert_eq!(null.outcomes.len(), kernel.outcomes.len());
    for (a, b) in null.outcomes.iter().zip(kernel.outcomes.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.finished, b.finished);
        assert_eq!(a.rte.to_bits(), b.rte.to_bits());
        assert_eq!(a.ctx_switches, b.ctx_switches);
    }
    assert_eq!(null.sched_actions, 0);
    assert_eq!(kernel.sched_actions, 0);
    assert_eq!(null.machine_ctx_switches, kernel.machine_ctx_switches);
}

/// Records the hook-call sequence around one coinciding instant.
struct Probe {
    wake_at: Option<SimTime>,
    log: Rc<RefCell<Vec<String>>>,
}

impl Controller for Probe {
    fn on_arrival(&mut self, m: &mut MachineView<'_>, req: &Request, _pid: Pid) {
        self.log
            .borrow_mut()
            .push(format!("arrival {} @{}", req.id, m.now()));
    }

    fn on_notification(&mut self, m: &mut MachineView<'_>, note: &Notification) {
        if let Notification::Finished(rec) = note {
            self.log
                .borrow_mut()
                .push(format!("finished {} @{}", rec.label, m.now()));
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.wake_at
    }

    fn on_wakeup(&mut self, m: &mut MachineView<'_>) {
        if self.wake_at.is_some_and(|at| m.now() >= at) {
            self.wake_at = None;
            self.log.borrow_mut().push(format!("wakeup @{}", m.now()));
        }
    }
}

#[test]
fn notification_at_exactly_next_wakeup_is_delivered_first() {
    // One 40 ms CPU task on an otherwise idle machine finishes at exactly
    // t = 40 ms; the controller also asks to wake at t = 40 ms. The sim
    // must advance to the instant once, deliver the Finished notification,
    // then fire the wakeup — and lose neither.
    let w = Workload {
        requests: vec![Request {
            id: 0,
            arrival: SimTime::ZERO,
            app: sfs_workload::AppKind::Fib,
            duration_ms: 40.0,
            injected_io_ms: None,
            cold_start_ms: None,
            spec: sfs_sched::TaskSpec::cpu(0, SimDuration::from_millis(40)),
        }],
    };
    let log = Rc::new(RefCell::new(Vec::new()));
    let probe = Probe {
        wake_at: Some(SimTime::ZERO + SimDuration::from_millis(40)),
        log: Rc::clone(&log),
    };
    let mut params = MachineParams::linux(1);
    params.ctx_switch_cost = SimDuration::ZERO;
    let run = Sim::on(params).workload(&w).controller(probe).run();
    assert_eq!(run.outcomes.len(), 1);
    assert_eq!(
        run.outcomes[0].finished,
        SimTime::ZERO + SimDuration::from_millis(40)
    );
    let log = log.borrow();
    assert_eq!(
        *log,
        vec![
            "arrival 0 @0.000ms".to_string(),
            "finished 0 @40.000ms".to_string(),
            "wakeup @40.000ms".to_string(),
        ],
        "expected arrival, then notification-before-wakeup at the tie"
    );
}

/// Violates the wakeup timing contract: a permanently stale wakeup time.
struct StaleWakeup;
impl Controller for StaleWakeup {
    fn next_wakeup(&self) -> Option<SimTime> {
        Some(SimTime::ZERO)
    }
}

#[test]
#[should_panic(expected = "simulation stalled")]
fn stale_next_wakeup_panics_instead_of_spinning_forever() {
    let w = workload(5, 1);
    let _ = Sim::on(MachineParams::linux(2))
        .workload(&w)
        .controller(StaleWakeup)
        .run();
}

#[test]
fn zero_request_workloads_terminate_for_every_stock_policy() {
    let empty = Workload { requests: vec![] };
    let runs: Vec<(&str, RunOutcome)> = vec![
        (
            "sfs",
            Sim::on(MachineParams::linux(2))
                .workload(&empty)
                .controller(SfsController::new(SfsConfig::new(2)))
                .run(),
        ),
        (
            "slo-sfs",
            Sim::on(MachineParams::linux(2))
                .workload(&empty)
                .controller(SfsController::with_slo(
                    SfsConfig::new(2),
                    SimDuration::from_millis(100),
                ))
                .run(),
        ),
        (
            "kernel",
            Sim::on(MachineParams::linux(2))
                .workload(&empty)
                .controller(KernelOnly(Policy::NORMAL))
                .run(),
        ),
        (
            "ideal",
            Sim::on(MachineParams::linux(2))
                .workload(&empty)
                .controller(Ideal)
                .run(),
        ),
        (
            "history",
            Sim::on(MachineParams::linux(2))
                .workload(&empty)
                .controller(HistoryPriority::new())
                .run(),
        ),
        (
            "mlfq",
            Sim::on(MachineParams::linux(2))
                .workload(&empty)
                .controller(UserMlfq::default())
                .run(),
        ),
    ];
    for (name, r) in &runs {
        assert!(r.outcomes.is_empty(), "{name}: outcomes not empty");
        assert_eq!(r.sched_actions, 0, "{name}");
        assert_eq!(r.machine_ctx_switches, 0, "{name}");
        assert_eq!(r.sim_span, SimDuration::ZERO, "{name}");
        assert_eq!(r.telemetry.polls, 0, "{name}");
    }
}
