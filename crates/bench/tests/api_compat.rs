//! Golden-compat gate for the policy-driven API redesign.
//!
//! The `Controller` + `Sim` redesign must be a pure refactor of the
//! simulation semantics: every pre-redesign golden snapshot has to be
//! reproduced bit-exactly by the new API. (The one-release deprecated
//! shims that delegated to `Sim` were removed after their grace release;
//! the snapshot gate on the `Sim` paths below is what actually pins the
//! behaviour.) Regenerating snapshots (`SFS_GOLDEN_UPDATE`) is *not* an
//! acceptable fix for a failure here.

mod support;

use std::path::PathBuf;

/// The scenarios whose snapshots predate the API redesign: any drift in
/// them means the redesign changed simulation behaviour.
const PRE_REDESIGN: &[&str] = &[
    "azure80_sfs",
    "azure80_cfs",
    "azure100_sfs",
    "replay_sfs",
    "diurnal_sfs",
    "correlated_sfs",
    "coldstart_sfs",
    "openlambda_sfs",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn new_api_reproduces_pre_redesign_snapshots_bit_exactly() {
    assert_eq!(
        &support::SCENARIOS[..PRE_REDESIGN.len()],
        PRE_REDESIGN,
        "pre-redesign scenarios must stay first (and unrenamed) in the suite"
    );
    for &name in PRE_REDESIGN {
        let report = support::metrics_report(name, &support::run_scenario(name));
        let path = golden_dir().join(format!("{name}.txt"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        assert_eq!(
            expected, report,
            "{name}: the new Sim/Controller API drifted from the pre-redesign snapshot"
        );
    }
}
