//! Inter-arrival-time (IAT) generators.
//!
//! FaaSBench supports (paper §VII): Poisson and uniform IATs, plus
//! trace-style bursty arrivals (the Azure-sampled replay exhibits transient
//! overload spikes — five of them over the 10k-request window in Fig. 12a).
//! Since the raw Azure per-invocation timestamps are not available, the
//! bursty generator reproduces the *load pattern*: a base Poisson process
//! with superimposed spike windows during which the arrival rate multiplies.

use sfs_simcore::{SimDuration, SimRng, SimTime};

/// How inter-arrival times are drawn.
#[derive(Debug, Clone)]
pub enum IatSpec {
    /// Exponential IATs with the given mean (a Poisson arrival process).
    Poisson {
        /// Mean inter-arrival time in milliseconds.
        mean_ms: f64,
    },
    /// Uniform IATs on `[lo, hi)` ms.
    Uniform {
        /// Lower bound of the IAT range, milliseconds.
        lo_ms: f64,
        /// Upper bound of the IAT range, milliseconds.
        hi_ms: f64,
    },
    /// Fixed (deterministic) IAT.
    Fixed {
        /// The constant inter-arrival time, milliseconds.
        iat_ms: f64,
    },
    /// Poisson base process with spike windows: during a spike, the mean IAT
    /// is divided by `factor` (arrival rate multiplies by `factor`).
    Bursty {
        /// Mean IAT of the base Poisson process, milliseconds.
        base_mean_ms: f64,
        /// Transient overload windows superimposed on the base process.
        spikes: Vec<Spike>,
    },
    /// Sinusoidally rate-modulated Poisson process (diurnal load): the
    /// arrival rate swings by `±amplitude` around its base level over
    /// `cycles` full day-cycles across the workload, so load ramps up and
    /// down smoothly instead of stepping.
    Diurnal {
        /// Mean IAT of the unmodulated process, milliseconds.
        base_mean_ms: f64,
        /// Relative swing of the arrival rate, in `[0, 1)`.
        amplitude: f64,
        /// Number of full sine cycles across the workload.
        cycles: f64,
    },
    /// Two-state Markov-modulated Poisson process: *correlated* bursts.
    /// Unlike [`IatSpec::Bursty`], whose spike windows sit at scheduled
    /// request indices, burst onsets here are random and self-sustaining —
    /// once a burst starts, it tends to persist (geometric dwell times),
    /// reproducing the clustered-arrival correlation of production FaaS
    /// traces.
    MarkovBursty {
        /// Mean IAT of the calm state, milliseconds.
        base_mean_ms: f64,
        /// Arrival-rate multiplier while bursting (> 1).
        burst_factor: f64,
        /// Per-arrival probability of entering a burst from calm.
        p_enter: f64,
        /// Per-arrival probability of leaving a burst back to calm.
        p_exit: f64,
    },
}

/// A transient overload window for [`IatSpec::Bursty`], expressed over
/// request *indices* (matching Fig. 12a's x-axis, "request submission ID").
#[derive(Debug, Clone, Copy)]
pub struct Spike {
    /// First request index of the spike.
    pub start_idx: usize,
    /// Number of requests arriving at the spiked rate.
    pub len: usize,
    /// Arrival-rate multiplier (> 1).
    pub factor: f64,
}

impl Spike {
    /// Evenly spread `count` spikes of `len` requests and `factor` rate gain
    /// across a workload of `total` requests (Fig. 12a uses five).
    pub fn evenly_spaced(count: usize, len: usize, factor: f64, total: usize) -> Vec<Spike> {
        (0..count)
            .map(|i| Spike {
                start_idx: (i + 1) * total / (count + 1),
                len,
                factor,
            })
            .collect()
    }
}

impl IatSpec {
    /// The mean IAT of the base process in milliseconds (spikes excluded).
    pub fn base_mean_ms(&self) -> f64 {
        match self {
            IatSpec::Poisson { mean_ms } => *mean_ms,
            IatSpec::Uniform { lo_ms, hi_ms } => (lo_ms + hi_ms) / 2.0,
            IatSpec::Fixed { iat_ms } => *iat_ms,
            IatSpec::Bursty { base_mean_ms, .. } => *base_mean_ms,
            IatSpec::Diurnal { base_mean_ms, .. } => *base_mean_ms,
            IatSpec::MarkovBursty { base_mean_ms, .. } => *base_mean_ms,
        }
    }

    /// Mean IAT per request including spike compression, relative to the
    /// base mean, for a workload of `n` requests: spiked requests arrive
    /// `factor`× faster, shrinking the average.
    pub fn compression_factor(&self, n: usize) -> f64 {
        match self {
            IatSpec::Bursty { spikes, .. } if n > 0 => {
                let mut weighted = 0.0f64;
                let mut covered = 0usize;
                for s in spikes {
                    let len = s.len.min(n.saturating_sub(s.start_idx));
                    covered += len;
                    weighted += len as f64 / s.factor.max(1.0);
                }
                let base = n.saturating_sub(covered.min(n)) as f64;
                (base + weighted) / n as f64
            }
            IatSpec::Diurnal {
                amplitude, cycles, ..
            } if n > 0 => {
                // Exact per-request expectation: arrival i draws with mean
                // base / (1 + a·sin θ_i), so the average IAT shrink is the
                // mean of 1/(1 + a·sin θ) over the sampled phases (→
                // 1/√(1−a²) for whole cycles as n grows).
                let a = amplitude.clamp(0.0, 0.999);
                (0..n)
                    .map(|i| 1.0 / (1.0 + a * phase_sin(i, n, *cycles)))
                    .sum::<f64>()
                    / n as f64
            }
            IatSpec::MarkovBursty {
                burst_factor,
                p_enter,
                p_exit,
                ..
            } if n > 0 => {
                // Stationary expectation of the two-state chain: the burst
                // state holds a π = p_enter/(p_enter+p_exit) share of
                // arrivals, each `burst_factor`× faster. Realised load
                // varies by seed (that is the point of correlated bursts);
                // the expectation is what load targeting corrects for.
                let denom = p_enter + p_exit;
                if denom <= 0.0 {
                    1.0
                } else {
                    let pi_burst = p_enter / denom;
                    (1.0 - pi_burst) + pi_burst / burst_factor.max(1.0)
                }
            }
            _ => 1.0,
        }
    }

    /// Scale the base rate so that mean service `mean_service_ms` over
    /// `cores` cores yields utilisation `rho` (`ρ = λ/(cµ)`, paper Eq. 2):
    /// `mean_IAT = mean_service / (cores × rho)`. For bursty processes,
    /// pass the workload size via [`IatSpec::for_target_load_n`] so spike
    /// compression is corrected; this variant assumes no compression.
    pub fn for_target_load(self, mean_service_ms: f64, cores: usize, rho: f64) -> IatSpec {
        self.for_target_load_n(mean_service_ms, cores, rho, 0)
    }

    /// As [`IatSpec::for_target_load`], correcting the bursty base rate so
    /// the *average* offered load over `n` requests equals `rho` even
    /// though spikes compress arrivals.
    pub fn for_target_load_n(
        self,
        mean_service_ms: f64,
        cores: usize,
        rho: f64,
        n: usize,
    ) -> IatSpec {
        assert!(rho > 0.0 && cores > 0);
        let correction = 1.0 / self.compression_factor(n);
        let target_mean = mean_service_ms / (cores as f64 * rho) * correction;
        match self {
            IatSpec::Poisson { .. } => IatSpec::Poisson {
                mean_ms: target_mean,
            },
            IatSpec::Uniform { lo_ms, hi_ms } => {
                let old_mean = (lo_ms + hi_ms) / 2.0;
                let k = target_mean / old_mean;
                IatSpec::Uniform {
                    lo_ms: lo_ms * k,
                    hi_ms: hi_ms * k,
                }
            }
            IatSpec::Fixed { .. } => IatSpec::Fixed {
                iat_ms: target_mean,
            },
            IatSpec::Bursty { spikes, .. } => IatSpec::Bursty {
                base_mean_ms: target_mean,
                spikes,
            },
            IatSpec::Diurnal {
                amplitude, cycles, ..
            } => IatSpec::Diurnal {
                base_mean_ms: target_mean,
                amplitude,
                cycles,
            },
            IatSpec::MarkovBursty {
                burst_factor,
                p_enter,
                p_exit,
                ..
            } => IatSpec::MarkovBursty {
                base_mean_ms: target_mean,
                burst_factor,
                p_enter,
                p_exit,
            },
        }
    }

    /// Generate `n` arrival instants starting at t = 0.
    pub fn arrivals(&self, n: usize, rng: &mut SimRng) -> Vec<SimTime> {
        let mut out = Vec::with_capacity(n);
        let mut t = SimTime::ZERO;
        // Markov burst state, advanced per arrival for MarkovBursty.
        let mut bursting = false;
        for i in 0..n {
            let iat_ms = self.next_iat_ms(i, n, &mut bursting, rng);
            t += SimDuration::from_millis_f64(iat_ms);
            out.push(t);
        }
        out
    }

    /// Lazy equivalent of [`IatSpec::arrivals`]: an iterator yielding the
    /// same `n` instants, bit-identical draw for draw, without allocating
    /// the vector. The iterator owns `rng` — hand it the `"iat"`-derived
    /// stream exactly as `arrivals` would have received it.
    pub fn arrival_iter(&self, n: usize, rng: SimRng) -> ArrivalIter {
        ArrivalIter {
            spec: self.clone(),
            rng,
            n,
            i: 0,
            t: SimTime::ZERO,
            bursting: false,
        }
    }

    /// Draw the IAT (ms) for arrival `i` of `n`. The single sampling path
    /// shared by [`IatSpec::arrivals`] and [`ArrivalIter`], so eager and
    /// lazy generation cannot drift apart.
    fn next_iat_ms(&self, i: usize, n: usize, bursting: &mut bool, rng: &mut SimRng) -> f64 {
        match self {
            IatSpec::Poisson { mean_ms } => rng.exponential(*mean_ms),
            IatSpec::Uniform { lo_ms, hi_ms } => rng.uniform(*lo_ms, *hi_ms),
            IatSpec::Fixed { iat_ms } => *iat_ms,
            IatSpec::Bursty {
                base_mean_ms,
                spikes,
            } => {
                let in_spike = spikes
                    .iter()
                    .find(|s| i >= s.start_idx && i < s.start_idx + s.len);
                let mean = match in_spike {
                    Some(s) => base_mean_ms / s.factor.max(1.0),
                    None => *base_mean_ms,
                };
                rng.exponential(mean)
            }
            IatSpec::Diurnal {
                base_mean_ms,
                amplitude,
                cycles,
            } => {
                let a = amplitude.clamp(0.0, 0.999);
                let rate = 1.0 + a * phase_sin(i, n, *cycles);
                rng.exponential(base_mean_ms / rate)
            }
            IatSpec::MarkovBursty {
                base_mean_ms,
                burst_factor,
                p_enter,
                p_exit,
            } => {
                *bursting = if *bursting {
                    !rng.chance(*p_exit)
                } else {
                    rng.chance(*p_enter)
                };
                let mean = if *bursting {
                    base_mean_ms / burst_factor.max(1.0)
                } else {
                    *base_mean_ms
                };
                rng.exponential(mean)
            }
        }
    }
}

/// Lazy arrival-instant stream (see [`IatSpec::arrival_iter`]). Arrivals
/// are non-decreasing, so the stream is already in dispatch order.
#[derive(Debug, Clone)]
pub struct ArrivalIter {
    spec: IatSpec,
    rng: SimRng,
    n: usize,
    i: usize,
    t: SimTime,
    bursting: bool,
}

impl Iterator for ArrivalIter {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.i >= self.n {
            return None;
        }
        let iat_ms = self
            .spec
            .next_iat_ms(self.i, self.n, &mut self.bursting, &mut self.rng);
        self.i += 1;
        self.t += SimDuration::from_millis_f64(iat_ms);
        Some(self.t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.n - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ArrivalIter {}

/// Sine of the diurnal phase for arrival `i` of `n` over `cycles` cycles.
#[inline]
fn phase_sin(i: usize, n: usize, cycles: f64) -> f64 {
    (2.0 * std::f64::consts::PI * cycles * i as f64 / n as f64).sin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_have_target_mean_iat() {
        let spec = IatSpec::Poisson { mean_ms: 20.0 };
        let mut rng = SimRng::seed_from_u64(3);
        let n = 100_000;
        let arr = spec.arrivals(n, &mut rng);
        assert_eq!(arr.len(), n);
        let span_ms = arr.last().unwrap().as_millis_f64();
        let mean = span_ms / n as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean IAT {mean}");
        // Strictly increasing arrivals.
        for w in arr.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn uniform_arrivals_bounded() {
        let spec = IatSpec::Uniform {
            lo_ms: 5.0,
            hi_ms: 15.0,
        };
        let mut rng = SimRng::seed_from_u64(5);
        let arr = spec.arrivals(10_000, &mut rng);
        let mut prev = SimTime::ZERO;
        for &a in &arr {
            let iat = (a - prev).as_millis_f64();
            assert!((5.0..15.0).contains(&iat), "IAT {iat} out of range");
            prev = a;
        }
    }

    #[test]
    fn fixed_arrivals_exact() {
        let spec = IatSpec::Fixed { iat_ms: 7.0 };
        let mut rng = SimRng::seed_from_u64(1);
        let arr = spec.arrivals(4, &mut rng);
        let times: Vec<f64> = arr.iter().map(|a| a.as_millis_f64()).collect();
        assert_eq!(times, vec![7.0, 14.0, 21.0, 28.0]);
    }

    #[test]
    fn target_load_sets_eq2_rate() {
        // mean service 480ms, 12 cores, rho 0.8 → mean IAT = 480/(9.6) = 50ms.
        let spec = IatSpec::Poisson { mean_ms: 1.0 }.for_target_load(480.0, 12, 0.8);
        match spec {
            IatSpec::Poisson { mean_ms } => assert!((mean_ms - 50.0).abs() < 1e-9),
            _ => panic!("variant changed"),
        }
        // Uniform keeps its shape, scales its mean.
        let u = IatSpec::Uniform {
            lo_ms: 10.0,
            hi_ms: 30.0,
        }
        .for_target_load(100.0, 4, 0.5);
        match u {
            IatSpec::Uniform { lo_ms, hi_ms } => {
                assert!(((lo_ms + hi_ms) / 2.0 - 50.0).abs() < 1e-9);
                assert!((hi_ms / lo_ms - 3.0).abs() < 1e-9, "shape preserved");
            }
            _ => panic!("variant changed"),
        }
    }

    #[test]
    fn bursty_spikes_compress_iats() {
        let spikes = Spike::evenly_spaced(1, 2_000, 10.0, 10_000);
        assert_eq!(spikes.len(), 1);
        let s0 = spikes[0];
        assert_eq!(s0.start_idx, 5_000);
        let spec = IatSpec::Bursty {
            base_mean_ms: 50.0,
            spikes,
        };
        let mut rng = SimRng::seed_from_u64(11);
        let arr = spec.arrivals(10_000, &mut rng);
        let mean_iat =
            |lo: usize, hi: usize| (arr[hi - 1] - arr[lo]).as_millis_f64() / (hi - lo - 1) as f64;
        let base = mean_iat(0, 5_000);
        let spike = mean_iat(5_000, 7_000);
        assert!(
            spike * 5.0 < base,
            "spike mean {spike} should be ~10x below base {base}"
        );
    }

    #[test]
    fn compression_factor_accounts_for_spikes() {
        // 10,000 requests; one spike of 2,000 at 10x: mean per-request IAT
        // factor = (8000 + 2000/10) / 10000 = 0.82.
        let spec = IatSpec::Bursty {
            base_mean_ms: 50.0,
            spikes: vec![Spike {
                start_idx: 4_000,
                len: 2_000,
                factor: 10.0,
            }],
        };
        assert!((spec.compression_factor(10_000) - 0.82).abs() < 1e-12);
        // Non-bursty processes never compress.
        assert_eq!(
            IatSpec::Poisson { mean_ms: 1.0 }.compression_factor(10_000),
            1.0
        );
        assert_eq!(IatSpec::Fixed { iat_ms: 1.0 }.compression_factor(0), 1.0);
        // A spike hanging past the end only counts its covered portion.
        let tail = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes: vec![Spike {
                start_idx: 9_500,
                len: 2_000,
                factor: 5.0,
            }],
        };
        let f = tail.compression_factor(10_000);
        assert!((f - (9_500.0 + 500.0 / 5.0) / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn target_load_n_corrects_bursty_average() {
        // With correction, the realised average offered load matches the
        // target despite the spikes.
        let n = 30_000;
        let spikes = Spike::evenly_spaced(3, n / 10, 10.0, n);
        let spec = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes,
        }
        .for_target_load_n(100.0, 4, 0.8, n);
        let mut rng = SimRng::seed_from_u64(3);
        let arr = spec.arrivals(n, &mut rng);
        let span_ms = arr.last().unwrap().as_millis_f64();
        // offered = total work / (span * cores) = n*100 / (span*4).
        let offered = n as f64 * 100.0 / (span_ms * 4.0);
        assert!(
            (offered - 0.8).abs() < 0.05,
            "corrected offered load {offered} vs target 0.8"
        );
    }

    #[test]
    fn diurnal_rate_swings_and_load_targeting_corrects() {
        let n = 40_000;
        let spec = IatSpec::Diurnal {
            base_mean_ms: 10.0,
            amplitude: 0.6,
            cycles: 2.0,
        };
        let mut rng = SimRng::seed_from_u64(29);
        let arr = spec.arrivals(n, &mut rng);
        // First quarter of a cycle is the rate crest (shorter IATs), the
        // third quarter the trough: their realised means must separate.
        let mean_iat =
            |lo: usize, hi: usize| (arr[hi - 1] - arr[lo]).as_millis_f64() / (hi - lo - 1) as f64;
        let crest = mean_iat(0, n / 4);
        let trough = mean_iat(n / 4, n / 2);
        assert!(
            crest * 1.5 < trough,
            "diurnal crest {crest} should be well below trough {trough}"
        );
        // Eq.-2 targeting must hit the average load despite the modulation.
        let targeted = spec.for_target_load_n(100.0, 4, 0.8, n);
        let mut rng = SimRng::seed_from_u64(31);
        let arr = targeted.arrivals(n, &mut rng);
        let offered = n as f64 * 100.0 / (arr.last().unwrap().as_millis_f64() * 4.0);
        assert!(
            (offered - 0.8).abs() < 0.05,
            "diurnal corrected offered load {offered} vs target 0.8"
        );
    }

    #[test]
    fn markov_bursts_are_correlated_and_targeting_corrects() {
        let n = 60_000;
        let spec = IatSpec::MarkovBursty {
            base_mean_ms: 10.0,
            burst_factor: 8.0,
            p_enter: 0.002,
            p_exit: 0.02,
        };
        let mut rng = SimRng::seed_from_u64(37);
        let arr = spec.arrivals(n, &mut rng);
        let iats: Vec<f64> = arr
            .windows(2)
            .map(|w| (w[1] - w[0]).as_millis_f64())
            .collect();
        // Burst arrivals (IAT far below base mean) must cluster: the chance
        // that a short IAT follows a short IAT must far exceed the chance it
        // follows a long one — the correlation scheduled spikes don't have.
        let short = |x: f64| x < 10.0 / 8.0;
        let (mut ss, mut s_total, mut ls, mut l_total) = (0u64, 0u64, 0u64, 0u64);
        for w in iats.windows(2) {
            if short(w[0]) {
                s_total += 1;
                ss += short(w[1]) as u64;
            } else {
                l_total += 1;
                ls += short(w[1]) as u64;
            }
        }
        let p_after_short = ss as f64 / s_total as f64;
        let p_after_long = ls as f64 / l_total as f64;
        assert!(
            p_after_short > 2.0 * p_after_long,
            "bursts not correlated: P(short|short)={p_after_short} vs P(short|long)={p_after_long}"
        );
        // The stationary-expectation correction keeps the average load on
        // target (within the wider tolerance this stochastic process needs).
        let targeted = spec.for_target_load_n(100.0, 4, 0.8, n);
        let mut rng = SimRng::seed_from_u64(41);
        let arr = targeted.arrivals(n, &mut rng);
        let offered = n as f64 * 100.0 / (arr.last().unwrap().as_millis_f64() * 4.0);
        assert!(
            (offered - 0.8).abs() < 0.12,
            "markov corrected offered load {offered} vs target 0.8"
        );
    }

    #[test]
    fn new_variants_report_base_mean_and_compression() {
        let d = IatSpec::Diurnal {
            base_mean_ms: 5.0,
            amplitude: 0.5,
            cycles: 1.0,
        };
        assert_eq!(d.base_mean_ms(), 5.0);
        // Whole-cycle analytic value: 1/√(1−a²) ≈ 1.1547 for a = 0.5.
        let f = d.compression_factor(100_000);
        assert!((f - 1.0 / (1.0 - 0.25f64).sqrt()).abs() < 1e-3, "got {f}");
        let m = IatSpec::MarkovBursty {
            base_mean_ms: 5.0,
            burst_factor: 10.0,
            p_enter: 0.01,
            p_exit: 0.03,
        };
        assert_eq!(m.base_mean_ms(), 5.0);
        // π_burst = 0.25 → factor = 0.75 + 0.25/10 = 0.775.
        assert!((m.compression_factor(1_000) - 0.775).abs() < 1e-12);
        // Amplitude 0 / factor 1 degrade to plain Poisson behaviour.
        let flat = IatSpec::Diurnal {
            base_mean_ms: 5.0,
            amplitude: 0.0,
            cycles: 3.0,
        };
        assert!((flat.compression_factor(10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evenly_spaced_spikes_cover_interior() {
        let spikes = Spike::evenly_spaced(5, 300, 8.0, 10_000);
        assert_eq!(spikes.len(), 5);
        let idxs: Vec<usize> = spikes.iter().map(|s| s.start_idx).collect();
        assert_eq!(idxs, vec![1666, 3333, 5000, 6666, 8333]);
        for s in &spikes {
            assert!(s.start_idx + s.len < 10_000);
        }
    }
}
