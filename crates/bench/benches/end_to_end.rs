//! End-to-end benchmarks: simulate a 400-request Azure-sampled workload
//! per scheduling policy, measuring simulator throughput (how fast this
//! reproduction regenerates the paper's experiments).
//!
//! Uses the in-repo `sfs_bench::timebench` harness (std-only) instead of
//! criterion. Run with `cargo bench --bench end_to_end`.

use std::hint::black_box;

use sfs_bench::timebench::Harness;
use sfs_bench::{run_factory, run_sfs};
use sfs_core::{Baseline, SfsConfig};
use sfs_workload::{Workload, WorkloadSpec};

const CORES: usize = 8;
const REQUESTS: usize = 400;

fn workload() -> Workload {
    WorkloadSpec::azure_sampled(REQUESTS, 42)
        .with_load(CORES, 0.9)
        .generate()
}

fn bench_baselines(h: &mut Harness) {
    let w = workload();
    for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
        h.bench(&format!("end_to_end/baseline/{}", b.name()), || {
            black_box(run_factory(&b, CORES, &w).outcomes.len());
        });
    }
    h.bench("end_to_end/sfs", || {
        black_box(run_sfs(SfsConfig::new(CORES), CORES, &w).outcomes.len());
    });
}

fn bench_workload_generation(h: &mut Harness) {
    let spec = WorkloadSpec::azure_sampled(10_000, 7).with_load(16, 0.8);
    h.bench("workload/generate_10k", || {
        black_box(spec.generate().len());
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_baselines(&mut h);
    bench_workload_generation(&mut h);
    h.finish();
}
