//! Time-series recording for timeline figures.
//!
//! Fig. 10 (adapted time slice vs. IAT over the workload) and Fig. 12a
//! (queuing delay per request submission) are timelines rather than CDFs;
//! this module records `(time, value)` pairs and can downsample them to a
//! fixed number of points for printing.

use crate::time::SimTime;

/// An append-only `(SimTime, f64)` series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    label: String,
}

impl TimeSeries {
    /// An empty series with a human-readable label (used in CSV headers).
    pub fn new(label: impl Into<String>) -> Self {
        TimeSeries {
            points: Vec::new(),
            label: label.into(),
        }
    }

    /// Record one observation. Timestamps need not be strictly increasing
    /// (e.g. per-request series indexed by submission order), but most
    /// producers push monotonically.
    pub fn record(&mut self, t: SimTime, value: f64) {
        self.points.push((t, value));
    }

    /// Series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff nothing recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrow all points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Largest recorded value (0 if empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean_value(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Downsample to at most `n` points by averaging fixed-size chunks.
    /// Chunk timestamps are the first timestamp in each chunk.
    pub fn downsample(&self, n: usize) -> Vec<(SimTime, f64)> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        if self.points.len() <= n {
            return self.points.clone();
        }
        let chunk = self.points.len().div_ceil(n);
        self.points
            .chunks(chunk)
            .map(|c| {
                let t = c[0].0;
                let mean = c.iter().map(|&(_, v)| v).sum::<f64>() / c.len() as f64;
                (t, mean)
            })
            .collect()
    }

    /// Render as CSV `time_ms,<label>` lines.
    pub fn to_csv(&self) -> String {
        let mut out = format!("time_ms,{}\n", self.label);
        for &(t, v) in &self.points {
            out.push_str(&format!("{},{}\n", t.as_millis_f64(), v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn records_and_summarises() {
        let mut s = TimeSeries::new("queue_delay");
        s.record(at(0), 1.0);
        s.record(at(10), 3.0);
        s.record(at(20), 2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), 3.0);
        assert!((s.mean_value() - 2.0).abs() < 1e-12);
        assert_eq!(s.label(), "queue_delay");
    }

    #[test]
    fn downsample_averages_chunks() {
        let mut s = TimeSeries::new("x");
        for i in 0..10 {
            s.record(at(i), i as f64);
        }
        let d = s.downsample(5);
        assert_eq!(d.len(), 5);
        // Chunks of 2: means 0.5, 2.5, 4.5, 6.5, 8.5.
        assert!((d[0].1 - 0.5).abs() < 1e-12);
        assert!((d[4].1 - 8.5).abs() < 1e-12);
        assert_eq!(d[0].0, at(0));
        assert_eq!(d[1].0, at(2));
    }

    #[test]
    fn downsample_small_series_passthrough() {
        let mut s = TimeSeries::new("x");
        s.record(at(1), 9.0);
        assert_eq!(s.downsample(10), vec![(at(1), 9.0)]);
        assert!(s.downsample(0).is_empty());
        let empty = TimeSeries::new("e");
        assert!(empty.downsample(4).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn csv_output_shape() {
        let mut s = TimeSeries::new("v");
        s.record(at(5), 1.25);
        let csv = s.to_csv();
        assert_eq!(csv, "time_ms,v\n5,1.25\n");
    }
}
