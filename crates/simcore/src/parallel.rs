//! Deterministic parallel trial execution.
//!
//! Experiment sweeps run many *independent* trials (one per scenario ×
//! seed × config point). This module fans them out over
//! [`std::thread::scope`] while guaranteeing that the results — down to
//! the last bit — do not depend on the number of worker threads or on
//! the order in which trials happen to complete:
//!
//! * every trial receives its own RNG stream, derived from the master
//!   seed by a [`SeedSequencer`] (a pure SplitMix64 function of
//!   `(master, trial_index)` — no shared mutable RNG state);
//! * results are written into a slot indexed by the trial number, so the
//!   output vector is always in submission order;
//! * trials never communicate; each one is a pure function of its index
//!   and seed.
//!
//! Consequently `run_indexed(n, 1, f)` and `run_indexed(n, 64, f)` return
//! identical vectors, which is what lets `repro_all --threads 8` reproduce
//! the single-threaded figures exactly. The discipline mirrors
//! deterministic-concurrency runtimes: parallelism changes wall-clock
//! time, never the numbers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::SimRng;

/// SplitMix64 finalizer: bijective 64-bit mixing.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives per-trial seeds from a master seed.
///
/// `seed_for(i)` is a pure function of `(master, i)`: unlike drawing
/// seeds from a shared RNG, it does not depend on how many trials ran
/// before, on which thread asks, or on completion order. Two sequencer
/// instances with the same master seed agree forever, and streams for
/// different trial indices are decorrelated by two rounds of SplitMix64
/// mixing.
#[derive(Debug, Clone, Copy)]
pub struct SeedSequencer {
    master: u64,
}

impl SeedSequencer {
    /// A sequencer rooted at `master`.
    pub fn new(master: u64) -> SeedSequencer {
        SeedSequencer { master }
    }

    /// The master seed this sequencer was rooted at.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed for trial `index` (order-independent).
    pub fn seed_for(&self, index: u64) -> u64 {
        // Double mixing keeps nearby (master, index) pairs far apart even
        // for small sequential inputs.
        mix64(mix64(self.master) ^ mix64(index.wrapping_add(0x6a09_e667_f3bc_c909)))
    }

    /// A ready-made RNG for trial `index`.
    pub fn rng_for(&self, index: u64) -> SimRng {
        SimRng::seed_from_u64(self.seed_for(index))
    }
}

/// Number of worker threads to use: `SFS_BENCH_THREADS` if set (≥ 1),
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("SFS_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run `f(0..n)` across `threads` workers and return the results in index
/// order.
///
/// Work is distributed by an atomic cursor (dynamic load balancing: long
/// trials do not hold back short ones), but each result lands in the slot
/// of its trial index, so the returned vector is identical for every
/// thread count. A panic in any trial propagates to the caller.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("unpoisoned result slot") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("every trial index was claimed exactly once")
        })
        .collect()
}

/// As [`run_indexed`], additionally handing each trial its sequenced RNG
/// (`f(index, rng)` with `rng = SeedSequencer::new(master).rng_for(index)`).
pub fn run_seeded<T, F>(n: usize, threads: usize, master: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, SimRng) -> T + Sync,
{
    let seq = SeedSequencer::new(master);
    run_indexed(n, threads, |i| f(i, seq.rng_for(i as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_pure_and_distinct() {
        let a = SeedSequencer::new(42);
        let b = SeedSequencer::new(42);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1_000u64 {
            assert_eq!(a.seed_for(i), b.seed_for(i));
            assert!(seen.insert(a.seed_for(i)), "seed collision at {i}");
        }
        assert_ne!(
            SeedSequencer::new(1).seed_for(0),
            SeedSequencer::new(2).seed_for(0)
        );
        assert_eq!(a.master(), 42);
    }

    #[test]
    fn adjacent_trials_get_decorrelated_streams() {
        let seq = SeedSequencer::new(7);
        let mut r0 = seq.rng_for(0);
        let mut r1 = seq.rng_for(1);
        let a: Vec<u64> = (0..32).map(|_| r0.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| r1.next_u64()).collect();
        assert_ne!(a, b);
        // rng_for is stateless: a fresh call replays the same stream.
        let mut r0_again = seq.rng_for(0);
        let a_again: Vec<u64> = (0..32).map(|_| r0_again.next_u64()).collect();
        assert_eq!(a, a_again);
    }

    #[test]
    fn run_indexed_preserves_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_indexed(57, threads, |i| i * i);
            assert_eq!(got, expect, "threads={threads}");
        }
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_seeded_results_are_thread_count_invariant() {
        // Each trial draws from its own stream; aggregate bits must match
        // across thread counts.
        let run = |threads| {
            run_seeded(24, threads, 0xBEEF, |i, mut rng| {
                let mut acc = 0u64;
                for _ in 0..=(i % 7) {
                    acc ^= rng.next_u64();
                }
                acc
            })
        };
        let single = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), single, "threads={threads}");
        }
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
