//! # sfs-workload — FaaSBench
//!
//! The paper's workload generator (§VII), rebuilt: FaaS workloads modelled
//! after the Azure Functions 2019 traces.
//!
//! * [`table1`] — Table I duration distribution with the fib-N mapping;
//! * [`iat`] — Poisson / uniform / fixed / bursty inter-arrival processes,
//!   with Eq.-2-based load targeting (`ρ = λ/(cµ)`);
//! * [`apps`] — the `fib` / `md` / `sa` applications and the I/O knob;
//! * [`azure`] — the synthetic Azure duration population behind Fig. 1.
//!
//! [`WorkloadSpec::generate`] assembles these into a deterministic list of
//! `(arrival, TaskSpec)` pairs that every experiment harness replays.

#![warn(missing_docs)]

pub mod apps;
pub mod azure;
pub mod iat;
pub mod table1;
pub mod trace;

pub use apps::{build_task, AppKind, AppMix};
pub use iat::{ArrivalIter, IatSpec, Spike};
pub use table1::{DurationBucket, Table1Sampler, LONG_THRESHOLD_MS, TABLE1};
pub use trace::{from_csv, to_csv, TraceError};

use sfs_sched::TaskSpec;
use sfs_simcore::{SimDuration, SimRng, SimTime};

/// How function durations are drawn.
#[derive(Debug, Clone)]
pub enum DurationDist {
    /// The paper's Table I (Azure Day-1 multimodal distribution).
    AzureTable1,
    /// Every request has the same duration (microbenchmarks).
    Fixed {
        /// The constant ideal duration, milliseconds.
        ms: f64,
    },
    /// Log-uniform on `[lo, hi)` ms.
    LogUniform {
        /// Lower bound of the duration range, milliseconds.
        lo_ms: f64,
        /// Upper bound of the duration range, milliseconds.
        hi_ms: f64,
    },
}

impl DurationDist {
    fn sample(&self, t1: &Table1Sampler, rng: &mut SimRng) -> f64 {
        match self {
            DurationDist::AzureTable1 => t1.sample_ms(rng),
            DurationDist::Fixed { ms } => *ms,
            DurationDist::LogUniform { lo_ms, hi_ms } => {
                (lo_ms.ln() + rng.unit() * (hi_ms.ln() - lo_ms.ln())).exp()
            }
        }
    }

    /// Analytic mean (ms), used for load targeting.
    pub fn mean_ms(&self) -> f64 {
        match self {
            DurationDist::AzureTable1 => Table1Sampler::new().mean_ms(),
            DurationDist::Fixed { ms } => *ms,
            DurationDist::LogUniform { lo_ms, hi_ms } => (hi_ms - lo_ms) / (hi_ms / lo_ms).ln(),
        }
    }
}

/// Full description of a generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of requests.
    pub n_requests: usize,
    /// Duration distribution.
    pub durations: DurationDist,
    /// Arrival process. Use [`WorkloadSpec::with_load`] to target a
    /// utilisation instead of setting a rate by hand.
    pub iat: IatSpec,
    /// Application mix.
    pub apps: AppMix,
    /// Fraction of requests that get one injected leading I/O operation
    /// (the §VIII-B experiment sets 0.75).
    pub io_fraction: f64,
    /// Injected I/O duration range in ms (paper: 10–100 ms, uniform).
    pub io_range_ms: (f64, f64),
    /// Fraction of requests that pay a cold start: container spin-up burns
    /// CPU *before* the function body runs. 0 disables (the paper's
    /// pre-warmed setup).
    pub cold_start_fraction: f64,
    /// Heavy-tailed cold-start penalty, Pareto `(scale_ms, alpha)`: most
    /// spin-ups are near `scale_ms`, a few dominate the tail.
    pub cold_start_pareto: (f64, f64),
    /// Master RNG seed: same seed → identical workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The standalone-SFS workload family (§VIII): Table-I durations,
    /// fib-only, Poisson arrivals, no injected I/O. Call
    /// [`WorkloadSpec::with_load`] to pick the utilisation level.
    pub fn azure_sampled(n_requests: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            n_requests,
            durations: DurationDist::AzureTable1,
            iat: IatSpec::Poisson { mean_ms: 50.0 },
            apps: AppMix::FibOnly,
            io_fraction: 0.0,
            io_range_ms: (10.0, 100.0),
            cold_start_fraction: 0.0,
            cold_start_pareto: (50.0, 1.8),
            seed,
        }
    }

    /// Diurnal-load scenario: the Azure-sampled population under a
    /// sinusoidally modulated arrival rate (two day-cycles across the
    /// workload, ±60% rate swing). Exercises the slice controller's
    /// tracking of slow load ramps rather than step spikes.
    pub fn diurnal(n_requests: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            iat: IatSpec::Diurnal {
                base_mean_ms: 1.0,
                amplitude: 0.6,
                cycles: 2.0,
            },
            ..WorkloadSpec::azure_sampled(n_requests, seed)
        }
    }

    /// Correlated-burst scenario: a two-state Markov-modulated Poisson
    /// arrival process whose bursts start at random and persist (mean
    /// burst length 1/p_exit = 200 requests, 8× rate), unlike the
    /// scheduled spike windows of [`WorkloadSpec::azure_replay`].
    pub fn correlated_bursts(n_requests: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            iat: IatSpec::MarkovBursty {
                base_mean_ms: 1.0,
                burst_factor: 8.0,
                p_enter: 0.004,
                p_exit: 0.005,
            },
            ..WorkloadSpec::azure_sampled(n_requests, seed)
        }
    }

    /// Heavy-tailed cold-start mix: 30% of requests pay a Pareto(50 ms,
    /// α = 1.8) CPU spin-up before the function body — the un-pre-warmed
    /// regime the paper's setup deliberately avoids, where short functions
    /// can be shadowed by their own container start.
    pub fn cold_start_mix(n_requests: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            cold_start_fraction: 0.3,
            ..WorkloadSpec::azure_sampled(n_requests, seed)
        }
    }

    /// The OpenLambda workload family (§IX): Table-I durations over an even
    /// fib/md/sa mix, replaying the trace-like bursty arrival pattern.
    pub fn openlambda(n_requests: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            apps: AppMix::openlambda(),
            ..WorkloadSpec::azure_replay(n_requests, seed)
        }
    }

    /// The trace-replay workload family (§VII): Table-I durations with the
    /// replayed Azure IAT pattern. The released trace statistics do not
    /// include raw timestamps, so the replay is modelled as a Poisson base
    /// process with five transient overload spikes — the load signature the
    /// paper's own Fig. 12a shows for this workload.
    pub fn azure_replay(n_requests: usize, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            iat: IatSpec::Bursty {
                base_mean_ms: 1.0,
                spikes: Spike::evenly_spaced(5, n_requests / 50, 5.0, n_requests),
            },
            ..WorkloadSpec::azure_sampled(n_requests, seed)
        }
    }

    /// Retarget the arrival process so the *CPU* load on `cores` cores is
    /// `rho` (per Eq. 2 the service rate is per-core CPU work; I/O phases do
    /// not occupy cores). Returns the modified spec.
    pub fn with_load(mut self, cores: usize, rho: f64) -> WorkloadSpec {
        let cpu_mean = self.mean_cpu_ms();
        let n = self.n_requests;
        self.iat = self.iat.for_target_load_n(cpu_mean, cores, rho, n);
        self
    }

    /// Retarget the arrival process so the *duration-based* load is `rho`:
    /// the paper's OpenLambda load levels count the full function duration
    /// (CPU + I/O), so for the fib/md/sa mix the CPU utilisation is lower
    /// than the nominal level (§IX).
    pub fn with_duration_load(mut self, cores: usize, rho: f64) -> WorkloadSpec {
        let mean = self.durations.mean_ms();
        let n = self.n_requests;
        self.iat = self.iat.for_target_load_n(mean, cores, rho, n);
        self
    }

    /// Mean per-request CPU demand (ms), analytic: duration mean scaled by
    /// the CPU share of the app mix (injected I/O is pure sleep and adds
    /// no CPU), plus the expected cold-start CPU when the mix has one.
    pub fn mean_cpu_ms(&self) -> f64 {
        let d = self.durations.mean_ms();
        let cpu_share = match &self.apps {
            AppMix::FibOnly => 1.0,
            AppMix::Mixed { fib, md, sa } => {
                let total = fib + md + sa;
                (fib * 1.0 + md * 0.3 + sa * 0.6) / total
            }
        };
        d * cpu_share + self.cold_start_fraction * self.mean_cold_start_ms()
    }

    /// Analytic mean of one cold-start penalty (ms): Pareto mean
    /// `scale·α/(α−1)` for `α > 1` (undefined-mean tails are clamped to
    /// the scale so load targeting stays finite).
    fn mean_cold_start_ms(&self) -> f64 {
        let (scale, alpha) = self.cold_start_pareto;
        if alpha > 1.0 {
            scale * alpha / (alpha - 1.0)
        } else {
            scale
        }
    }

    /// Generate the workload deterministically.
    pub fn generate(&self) -> Workload {
        Workload {
            requests: self.stream().collect(),
        }
    }

    /// Lazy, allocation-free equivalent of [`WorkloadSpec::generate`]: an
    /// iterator yielding the same [`Request`]s, bit-identical draw for draw
    /// (locked by the `stream_matches_generate_*` tests), without ever
    /// materialising the request vector. This is what makes 10M-request
    /// runs possible: arrivals are non-decreasing by construction, so the
    /// stream is already in dispatch order and can feed
    /// `Sim::run_streaming` directly.
    ///
    /// Each per-request attribute draws from its own derived RNG stream
    /// (`durations`, `iat`, `apps`, `io`, `cold_start` — the same
    /// derivation order as `generate`), so interleaving the draws per
    /// request instead of per attribute cannot change any value.
    pub fn stream(&self) -> WorkloadStream {
        let mut master = SimRng::seed_from_u64(self.seed);
        let rng_dur = master.derive("durations");
        let rng_iat = master.derive("iat");
        let rng_app = master.derive("apps");
        let rng_io = master.derive("io");
        // Derived after the original four so pre-existing scenario streams
        // are unchanged by the cold-start extension.
        let rng_cold = master.derive("cold_start");
        WorkloadStream {
            arrivals: self.iat.arrival_iter(self.n_requests, rng_iat),
            rng_dur,
            rng_app,
            rng_io,
            rng_cold,
            t1: Table1Sampler::new(),
            durations: self.durations.clone(),
            apps: self.apps.clone(),
            io_fraction: self.io_fraction,
            io_range_ms: self.io_range_ms,
            cold_start_fraction: self.cold_start_fraction,
            cold_start_pareto: self.cold_start_pareto,
            next_id: 0,
        }
    }
}

/// Lazy request stream (see [`WorkloadSpec::stream`]).
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    arrivals: iat::ArrivalIter,
    rng_dur: SimRng,
    rng_app: SimRng,
    rng_io: SimRng,
    rng_cold: SimRng,
    t1: Table1Sampler,
    durations: DurationDist,
    apps: AppMix,
    io_fraction: f64,
    io_range_ms: (f64, f64),
    cold_start_fraction: f64,
    cold_start_pareto: (f64, f64),
    next_id: u64,
}

impl Iterator for WorkloadStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let arrival = self.arrivals.next()?;
        let i = self.next_id;
        self.next_id += 1;
        let duration_ms = self.durations.sample(&self.t1, &mut self.rng_dur);
        let app = self.apps.sample(&mut self.rng_app);
        let injected = if self.io_fraction > 0.0 && self.rng_io.chance(self.io_fraction) {
            Some(self.rng_io.uniform(self.io_range_ms.0, self.io_range_ms.1))
        } else {
            None
        };
        let cold =
            if self.cold_start_fraction > 0.0 && self.rng_cold.chance(self.cold_start_fraction) {
                let (scale, alpha) = self.cold_start_pareto;
                Some(self.rng_cold.pareto(scale, alpha))
            } else {
                None
            };
        let mut spec = build_task(i, app, duration_ms, injected);
        if let Some(cold_ms) = cold {
            // Container spin-up burns CPU before everything else, the
            // injected I/O knob included.
            spec.phases.insert(
                0,
                sfs_sched::Phase::Cpu(SimDuration::from_millis_f64(cold_ms)),
            );
        }
        Some(Request {
            id: i,
            arrival,
            app,
            duration_ms,
            injected_io_ms: injected,
            cold_start_ms: cold,
            spec,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.arrivals.size_hint()
    }
}

impl ExactSizeIterator for WorkloadStream {}

/// One generated function invocation request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Sequential request id (== the TaskSpec label).
    pub id: u64,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Application kind.
    pub app: AppKind,
    /// Sampled ideal duration (ms), before any injected I/O.
    pub duration_ms: f64,
    /// Injected leading I/O (ms) if the I/O knob selected this request.
    pub injected_io_ms: Option<f64>,
    /// Cold-start CPU penalty (ms) if this request drew one.
    pub cold_start_ms: Option<f64>,
    /// The runnable task spec.
    pub spec: TaskSpec,
}

impl Request {
    /// Whether this request belongs to the paper's "long" population
    /// (Table I's ≥ 1550 ms bucket).
    pub fn is_long(&self) -> bool {
        self.duration_ms >= LONG_THRESHOLD_MS
    }
}

/// A fully materialised workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Indices of `requests` in stable `(arrival, index)` order — the
    /// order a FaaS server dispatches them to the OS.
    ///
    /// This is the one arrival-glue every runner shares: platform
    /// pipelines can produce slightly out-of-order request lists (jittered
    /// multi-server hops), while the machine requires monotone spawn
    /// times. The sort is stable, so simultaneous arrivals dispatch in
    /// request-id order — the same tie-break a deterministic event queue
    /// seeded in index order would apply.
    pub fn arrival_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.requests.len()).collect();
        order.sort_by_key(|&i| self.requests[i].arrival);
        order
    }

    /// `(arrival, spec)` pairs in dispatch order (see
    /// [`Workload::arrival_order`]) for [`sfs_sched::run_open_loop`].
    pub fn arrivals(&self) -> impl Iterator<Item = (SimTime, TaskSpec)> + '_ {
        self.arrival_order()
            .into_iter()
            .map(|i| (self.requests[i].arrival, self.requests[i].spec.clone()))
    }

    /// As [`Workload::arrivals`], with every spec's dispatch policy
    /// overridden to `policy` — the shared glue for kernel-only runs that
    /// used to be copy-pasted across baseline and platform runners.
    pub fn arrivals_with_policy(
        &self,
        policy: sfs_sched::Policy,
    ) -> impl Iterator<Item = (SimTime, TaskSpec)> + '_ {
        self.arrivals().map(move |(at, mut spec)| {
            spec.policy = policy;
            (at, spec)
        })
    }

    /// Total CPU demand (ms) across all requests.
    pub fn total_cpu_ms(&self) -> f64 {
        self.requests
            .iter()
            .map(|r| r.spec.cpu_demand().as_millis_f64())
            .sum()
    }

    /// Empirical offered CPU load over `cores` cores: total CPU demand over
    /// the arrival span.
    pub fn offered_load(&self, cores: usize) -> f64 {
        if self.requests.len() < 2 {
            return 0.0;
        }
        let span =
            (self.requests.last().unwrap().arrival - self.requests[0].arrival).as_millis_f64();
        if span <= 0.0 {
            return f64::INFINITY;
        }
        self.total_cpu_ms() / (span * cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::azure_sampled(500, 42).with_load(12, 0.8);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.requests.iter().zip(b.requests.iter()) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.duration_ms.to_bits(), y.duration_ms.to_bits());
            assert_eq!(x.app, y.app);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::azure_sampled(100, 1).generate();
        let b = WorkloadSpec::azure_sampled(100, 2).generate();
        let same = a
            .requests
            .iter()
            .zip(b.requests.iter())
            .filter(|(x, y)| x.duration_ms == y.duration_ms)
            .count();
        assert!(same < 5, "seeds produced nearly identical workloads");
    }

    #[test]
    fn with_load_hits_target_utilisation() {
        for rho in [0.5, 0.8, 1.0] {
            let spec = WorkloadSpec::azure_sampled(20_000, 7).with_load(12, rho);
            let w = spec.generate();
            let got = w.offered_load(12);
            assert!(
                (got - rho).abs() / rho < 0.1,
                "target {rho} vs offered {got}"
            );
        }
    }

    #[test]
    fn io_knob_injects_expected_fraction() {
        let mut spec = WorkloadSpec::azure_sampled(10_000, 3);
        spec.io_fraction = 0.75;
        let w = spec.generate();
        let with_io = w
            .requests
            .iter()
            .filter(|r| r.injected_io_ms.is_some())
            .count();
        let frac = with_io as f64 / w.len() as f64;
        assert!((frac - 0.75).abs() < 0.02, "io fraction {frac}");
        for r in &w.requests {
            if let Some(io) = r.injected_io_ms {
                assert!((10.0..100.0).contains(&io), "io {io} out of paper range");
                assert!(!r.spec.phases[0].is_cpu(), "injected IO must lead");
            }
        }
    }

    #[test]
    fn long_short_split_matches_table1() {
        let w = WorkloadSpec::azure_sampled(50_000, 11).generate();
        let long = w.requests.iter().filter(|r| r.is_long()).count();
        let frac = long as f64 / w.len() as f64;
        // Paper: ~17% long (15.7/95.6 = 16.4% after renormalisation).
        assert!((frac - 0.164).abs() < 0.01, "long fraction {frac}");
    }

    #[test]
    fn openlambda_mix_has_io_phases() {
        let w = WorkloadSpec::openlambda(3_000, 5).generate();
        let md = w.requests.iter().filter(|r| r.app == AppKind::Md).count();
        let sa = w.requests.iter().filter(|r| r.app == AppKind::Sa).count();
        assert!(md > 800 && sa > 800, "mix not even: md={md} sa={sa}");
        for r in &w.requests {
            assert!(r.spec.validate().is_ok());
            if r.app != AppKind::Fib {
                assert!(r.spec.io_demand().as_nanos() > 0);
            }
        }
    }

    #[test]
    fn cold_start_mix_is_heavy_tailed_and_prepends_cpu() {
        let w = WorkloadSpec::cold_start_mix(20_000, 7).generate();
        let cold: Vec<f64> = w.requests.iter().filter_map(|r| r.cold_start_ms).collect();
        let frac = cold.len() as f64 / w.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "cold fraction {frac}");
        // Pareto tail: every draw ≥ scale, and the tail dominates the bulk.
        assert!(cold.iter().all(|&c| c >= 50.0));
        let mut sorted = cold.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let max = *sorted.last().unwrap();
        assert!(
            max > 20.0 * median,
            "tail not heavy: max {max} vs median {median}"
        );
        for r in &w.requests {
            if let Some(c) = r.cold_start_ms {
                let p0 = &r.spec.phases[0];
                assert!(p0.is_cpu(), "cold start must lead as CPU");
                assert!((p0.duration().as_millis_f64() - c).abs() < 1e-6);
            }
        }
        // Load targeting accounts for the extra CPU.
        let spec = WorkloadSpec::cold_start_mix(20_000, 7).with_load(8, 0.8);
        let got = spec.generate().offered_load(8);
        assert!((got - 0.8).abs() / 0.8 < 0.1, "offered {got} vs 0.8");
    }

    #[test]
    fn new_scenario_families_generate_deterministically() {
        for spec in [
            WorkloadSpec::diurnal(1_000, 11).with_load(8, 0.85),
            WorkloadSpec::correlated_bursts(1_000, 11).with_load(8, 0.85),
            WorkloadSpec::cold_start_mix(1_000, 11).with_load(8, 0.85),
        ] {
            let a = spec.generate();
            let b = spec.generate();
            assert_eq!(a.len(), 1_000);
            for (x, y) in a.requests.iter().zip(b.requests.iter()) {
                assert_eq!(x.arrival, y.arrival);
                assert_eq!(x.duration_ms.to_bits(), y.duration_ms.to_bits());
                assert_eq!(
                    x.cold_start_ms.map(f64::to_bits),
                    y.cold_start_ms.map(f64::to_bits)
                );
                assert!(x.spec.validate().is_ok());
            }
        }
    }

    #[test]
    fn warm_scenarios_are_unchanged_by_the_cold_start_extension() {
        // The cold-start stream is derived after the original four, so a
        // zero-fraction workload must be identical to the pre-extension
        // generator output (locked by the golden suite downstream).
        let w = WorkloadSpec::azure_sampled(500, 42)
            .with_load(12, 0.8)
            .generate();
        assert!(w.requests.iter().all(|r| r.cold_start_ms.is_none()));
    }

    #[test]
    fn arrival_order_is_stable_on_ties_and_sorts_disorder() {
        let mut w = WorkloadSpec::azure_sampled(6, 3).generate();
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        // Jittered platform dispatch: out of order, with a tie at 10 ms.
        let times = [t(30), t(10), t(10), t(5), t(20), t(10)];
        for (r, &at) in w.requests.iter_mut().zip(times.iter()) {
            r.arrival = at;
        }
        assert_eq!(w.arrival_order(), vec![3, 1, 2, 5, 4, 0]);
        let dispatched: Vec<(SimTime, u64)> =
            w.arrivals().map(|(at, spec)| (at, spec.label)).collect();
        assert_eq!(
            dispatched,
            vec![
                (t(5), 3),
                (t(10), 1),
                (t(10), 2),
                (t(10), 5),
                (t(20), 4),
                (t(30), 0)
            ]
        );
    }

    #[test]
    fn arrivals_with_policy_overrides_every_spec() {
        let w = WorkloadSpec::azure_sampled(20, 9).generate();
        let fifo = sfs_sched::Policy::Fifo { prio: 42 };
        for (i, (at, spec)) in w.arrivals_with_policy(fifo).enumerate() {
            assert_eq!(spec.policy, fifo);
            assert_eq!(at, w.requests[i].arrival);
            // Phases untouched by the override.
            assert_eq!(spec.phases, w.requests[i].spec.phases);
        }
    }

    #[test]
    fn arrival_order_of_empty_workload_is_empty() {
        let w = Workload { requests: vec![] };
        assert!(w.arrival_order().is_empty());
        assert_eq!(w.arrivals().count(), 0);
    }

    fn assert_streams_match(spec: &WorkloadSpec) {
        let eager = spec.generate();
        let lazy: Vec<Request> = spec.stream().collect();
        assert_eq!(eager.len(), lazy.len());
        for (e, l) in eager.requests.iter().zip(lazy.iter()) {
            assert_eq!(e.id, l.id);
            assert_eq!(e.arrival, l.arrival, "req {}", e.id);
            assert_eq!(e.duration_ms.to_bits(), l.duration_ms.to_bits());
            assert_eq!(e.app, l.app);
            assert_eq!(
                e.injected_io_ms.map(f64::to_bits),
                l.injected_io_ms.map(f64::to_bits)
            );
            assert_eq!(
                e.cold_start_ms.map(f64::to_bits),
                l.cold_start_ms.map(f64::to_bits)
            );
            assert_eq!(e.spec.phases, l.spec.phases);
            assert_eq!(e.spec.policy, l.spec.policy);
            assert_eq!(e.spec.label, l.spec.label);
        }
    }

    #[test]
    fn stream_matches_generate_across_all_families() {
        // Every workload family, including the ones with per-arrival RNG
        // state (MarkovBursty) and total-n-dependent phase (Diurnal), and
        // every optional per-request draw (io, cold start).
        let mut with_io = WorkloadSpec::azure_sampled(800, 3);
        with_io.io_fraction = 0.75;
        for spec in [
            WorkloadSpec::azure_sampled(800, 42).with_load(8, 0.9),
            WorkloadSpec::azure_replay(800, 7),
            WorkloadSpec::openlambda(800, 5),
            WorkloadSpec::diurnal(800, 11).with_load(8, 0.85),
            WorkloadSpec::correlated_bursts(800, 11).with_load(8, 0.85),
            WorkloadSpec::cold_start_mix(800, 13),
            with_io,
            WorkloadSpec {
                iat: IatSpec::Uniform {
                    lo_ms: 1.0,
                    hi_ms: 5.0,
                },
                ..WorkloadSpec::azure_sampled(200, 17)
            },
            WorkloadSpec {
                iat: IatSpec::Fixed { iat_ms: 2.5 },
                durations: DurationDist::LogUniform {
                    lo_ms: 1.0,
                    hi_ms: 1_000.0,
                },
                ..WorkloadSpec::azure_sampled(200, 19)
            },
        ] {
            assert_streams_match(&spec);
        }
    }

    #[test]
    fn stream_is_in_dispatch_order_and_sized() {
        let spec = WorkloadSpec::azure_replay(2_000, 23);
        let mut stream = spec.stream();
        assert_eq!(stream.len(), 2_000);
        let mut prev = SimTime::ZERO;
        let mut n = 0usize;
        for r in &mut stream {
            assert!(r.arrival >= prev, "arrivals must be non-decreasing");
            prev = r.arrival;
            n += 1;
        }
        assert_eq!(n, 2_000);
        assert_eq!(stream.len(), 0);
    }

    #[test]
    fn no_family_generates_zero_demand_requests() {
        // RequestOutcome::slowdown ratios against a 1 ns floor for
        // zero-ideal requests; this asserts the floor is never exercised by
        // shipped generators — every request carries positive demand.
        for spec in [
            WorkloadSpec::azure_sampled(2_000, 1),
            WorkloadSpec::azure_replay(2_000, 2),
            WorkloadSpec::openlambda(2_000, 3),
            WorkloadSpec::diurnal(2_000, 4),
            WorkloadSpec::correlated_bursts(2_000, 5),
            WorkloadSpec::cold_start_mix(2_000, 6),
        ] {
            for r in spec.stream() {
                let demand = r.spec.cpu_demand() + r.spec.io_demand();
                assert!(
                    demand.as_nanos() > 0,
                    "zero-demand request {} in {:?}",
                    r.id,
                    spec.iat
                );
                assert!(r.duration_ms > 0.0);
            }
        }
    }

    #[test]
    fn mean_cpu_reflects_app_mix() {
        let fib = WorkloadSpec::azure_sampled(1, 0).mean_cpu_ms();
        let ol = WorkloadSpec::openlambda(1, 0).mean_cpu_ms();
        // The OL mix has only (1 + 0.3 + 0.6)/3 ≈ 63% CPU share.
        assert!((ol / fib - 0.6333).abs() < 0.01);
    }
}
