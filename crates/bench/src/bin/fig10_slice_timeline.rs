//! Fig. 10: timeline of the adapted time slice vs the window-mean IAT over
//! the whole workload (§VIII-B).
//!
//! Expected shape: S tracks the IAT signal scaled by the core count —
//! when arrivals speed up the slice tightens, and vice versa.

use sfs_bench::{banner, run_sfs, save, section, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::timeline_chart;
use sfs_workload::{IatSpec, Spike, WorkloadSpec};

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner("Fig. 10", "time-slice adaptation timeline vs IAT", n, seed);

    // A bursty arrival process makes the adaptation visible (the paper's
    // replayed trace has rate variation; a constant-rate Poisson would give
    // a flat line).
    let mut sweep = Sweep::new("fig10", seed);
    sweep.scenario("SFS timeline", move |_| {
        let mut spec = WorkloadSpec::azure_sampled(n, seed);
        spec.iat = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes: Spike::evenly_spaced(4, n / 12, 4.0, n),
        };
        let w = spec.with_load(CORES, 0.8).generate();
        run_sfs(SfsConfig::new(CORES), CORES, &w)
    });
    let r = sweep.run().remove(0).value;

    section(&format!(
        "slice recalculations: {} (every 100 arrivals)",
        r.telemetry.slice_recalcs
    ));

    let slice_pts: Vec<(f64, f64)> = r
        .telemetry
        .slice_timeline
        .points()
        .iter()
        .map(|&(t, v)| (t.as_secs_f64(), v))
        .collect();
    let iat_pts: Vec<(f64, f64)> = r
        .telemetry
        .iat_timeline
        .points()
        .iter()
        .map(|&(t, v)| (t.as_secs_f64(), v))
        .collect();

    section("time slice S (ms) over time");
    println!("{}", timeline_chart(&slice_pts, 72, 12));
    section("window-mean IAT (ms) over time");
    println!("{}", timeline_chart(&iat_pts, 72, 12));

    // Correlation check: S should equal IAT × cores at every recalc point.
    let max_rel_err = slice_pts
        .iter()
        .zip(iat_pts.iter())
        .map(|(&(_, s), &(_, iat))| {
            let predicted = iat * CORES as f64;
            ((s - predicted) / predicted).abs()
        })
        .fold(0.0f64, f64::max);
    println!("max |S - IAT*c| relative error: {max_rel_err:.4} (0 = exact Eq. 2 coupling)");

    save(
        "fig10_slice_timeline.csv",
        &r.telemetry.slice_timeline.to_csv(),
    );
    save("fig10_iat_timeline.csv", &r.telemetry.iat_timeline.to_csv());
}
