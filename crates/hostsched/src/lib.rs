//! # sfs-host — live-Linux scheduling backend
//!
//! The real-OS counterpart of the simulator: the repro target's
//! `schedtool`/`gopsutil` toolchain rebuilt on `libc`:
//!
//! * [`sys`] — `sched_setscheduler(2)` / `setpriority(2)` /
//!   `sched_setaffinity(2)` wrappers and `/proc/<tid>/stat` parsing;
//! * [`function`] — calibrated busy-loop "function" threads;
//! * [`live`] — a demo-grade live SFS (FILTER promote → slice → demote),
//!   with a `nice`-based fallback when CAP_SYS_NICE is unavailable, and the
//!   Table-II poll-cost measurement.
//!
//! Figures are generated from the deterministic simulator; this crate
//! demonstrates that the mechanism drives a real kernel and measures the
//! real polling overhead.

pub mod function;
pub mod live;
pub mod sys;

pub use function::{LiveFunction, LiveOutcome, LiveSpec};
pub use live::{measure_poll_cost, run_live_sfs, LiveRun, LiveSfsConfig, PriorityLever};
pub use sys::{
    gettid, get_policy, parse_stat_line, pin_to_cpu, probe_rt_permission, read_thread_stat,
    set_policy, HostPolicy, ThreadStat, Tid,
};
