//! A minimal hand-written Rust lexer for lint-grade pattern matching.
//!
//! The lexer's contract is deliberately narrow: it produces the stream of
//! **identifiers and punctuation** a rule matcher needs, with comment and
//! string-literal *contents* guaranteed never to appear as tokens (so a
//! fixture string like `"partial_cmp(x).unwrap()"` or a comment mentioning
//! `HashMap` can never fire a rule). It is not a full Rust lexer — numeric
//! literal values, operator multi-chars, and token spans beyond the line
//! number are all out of scope, because no rule needs them.
//!
//! Line comments are additionally scanned for suppression directives
//! (`// lint: allow(RULE, reason)` / `// lint: allow-file(RULE, reason)`);
//! see [`Directive`]. Directives inside block comments or strings are
//! ignored — only a real `//` comment can suppress a finding.

/// One lexed token: an identifier/keyword or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `partial_cmp`, …).
    Ident(String),
    /// A single punctuation character (`:`, `(`, `.`, `#`, …).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            TokenKind::Punct(_) => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Scope of a suppression directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveScope {
    /// `allow(...)`: suppresses findings on the directive's line or the
    /// line immediately below it (the comment-above idiom).
    Line,
    /// `allow-file(...)`: suppresses the rule for the whole file.
    File,
}

/// A parsed `// lint: ...` suppression directive.
///
/// The reason string is **required**: `allow(D1)` with no reason is a
/// malformed directive, which the engine reports as a finding of its own
/// rather than honouring it. A suppression that cannot say *why* it is
/// safe is exactly the kind of entropy the linter exists to prevent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Line- or file-scoped.
    pub scope: DirectiveScope,
    /// The rule id being allowed (e.g. `D1`).
    pub rule: String,
    /// The human reason. Empty only when `malformed` is set.
    pub reason: String,
    /// If set, the directive could not be parsed; the message says why.
    pub malformed: Option<String>,
}

/// Output of [`lex`]: the token stream plus any suppression directives.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Identifier/punctuation tokens in source order.
    pub tokens: Vec<Token>,
    /// Suppression directives in source order.
    pub directives: Vec<Directive>,
}

/// Lex `source`, stripping comments, string/char literals, and numeric
/// literals, and collecting `// lint:` directives from line comments.
pub fn lex(source: &str) -> LexOutput {
    let b = source.as_bytes();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let text = &source[start..j];
                if let Some(d) = parse_directive(text, line) {
                    out.directives.push(d);
                }
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 1u32;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'"' => i = skip_string(b, i + 1, &mut line),
            b'\'' => i = skip_char_or_lifetime(b, i, &mut line),
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                i = skip_raw_or_byte_string(b, i, &mut line);
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(source[start..i].to_string()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal, including suffixes (1_000u64, 1.5e-3).
                // A '.' is part of the number only when followed by a
                // digit, so `x.0.unwrap()`-style tuple access still lexes
                // its '.' tokens.
                i += 1;
                while i < b.len() {
                    if b[i] == b'_' || b[i].is_ascii_alphanumeric() {
                        i += 1;
                    } else if b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        i += 2;
                    } else {
                        break;
                    }
                }
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// After an opening `"`, skip to just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escape may hide a newline (`\` line continuation) —
                // the line counter must still see it.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// `'` starts either a char literal or a lifetime; only the literal has a
/// closing quote. Lifetimes are dropped entirely (no rule matches them).
fn skip_char_or_lifetime(b: &[u8], i: usize, line: &mut u32) -> usize {
    let next = b.get(i + 1).copied();
    match next {
        Some(b'\\') => {
            // Escaped char literal: skip escape then scan to closing quote.
            let mut j = i + 3;
            while j < b.len() && b[j] != b'\'' {
                if b[j] == b'\n' {
                    *line += 1;
                }
                j += 1;
            }
            j + 1
        }
        Some(c) if c != b'\'' => {
            if b.get(i + 2).copied() == Some(b'\'') {
                // 'x' char literal.
                i + 3
            } else {
                // Lifetime: consume the quote, the ident chars get lexed
                // next pass — but a lifetime name must not become an Ident
                // token (it could collide with a rule ident), so consume
                // them here and emit nothing.
                let mut j = i + 1;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                j
            }
        }
        _ => i + 1,
    }
}

/// Does position `i` start a raw/byte string (`r"`, `r#"`, `br"`, `b"` …)?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"' && j > i
}

/// Skip a raw/byte string starting at `i` (which satisfies
/// [`is_raw_or_byte_string`]). Returns the index past the closing quote.
fn skip_raw_or_byte_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    if raw {
        // Scan for `"` followed by `hashes` '#'s; no escapes in raw strings.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
                j += 1;
            } else if b[j] == b'"'
                && b[j + 1..].len() >= hashes
                && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
            {
                return j + 1 + hashes;
            } else {
                j += 1;
            }
        }
        j
    } else {
        // b"..." byte string: ordinary escape rules.
        skip_string(b, j, line)
    }
}

/// Parse a line-comment body for a `lint:` directive. Returns `None` for
/// ordinary comments; returns a malformed [`Directive`] (with `malformed`
/// set) when the comment clearly attempts a directive but gets it wrong.
fn parse_directive(text: &str, line: u32) -> Option<Directive> {
    let t = text.trim();
    let rest = t.strip_prefix("lint:")?.trim_start();
    let (scope, body) = if let Some(r) = rest.strip_prefix("allow-file") {
        (DirectiveScope::File, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (DirectiveScope::Line, r)
    } else {
        return Some(malformed(
            line,
            "unknown lint directive (expected `allow` or `allow-file`)",
        ));
    };
    let body = body.trim_start();
    let inner = match body
        .strip_prefix('(')
        .and_then(|r| r.rfind(')').map(|p| &r[..p]))
    {
        Some(x) => x,
        None => {
            return Some(malformed(
                line,
                "malformed lint directive: expected `(<rule>, <reason>)`",
            ))
        }
    };
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty() {
        return Some(malformed(line, "lint allow is missing a rule id"));
    }
    if reason.is_empty() {
        return Some(Directive {
            line,
            scope,
            rule: rule.to_string(),
            reason: String::new(),
            malformed: Some(format!(
                "lint allow({rule}) carries no reason — a suppression must say why it is safe"
            )),
        });
    }
    Some(Directive {
        line,
        scope,
        rule: rule.to_string(),
        reason: reason.to_string(),
        malformed: None,
    })
}

fn malformed(line: u32, msg: &str) -> Directive {
    Directive {
        line,
        scope: DirectiveScope::Line,
        rule: String::new(),
        reason: String::new(),
        malformed: Some(msg.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                TokenKind::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_yield_no_tokens() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let s = "HashMap::new()"; // trailing SystemTime note
            let r = r#"partial_cmp(x).unwrap()"#;
            let b = b"unsafe";
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"partial_cmp".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_do_not_become_idents_but_char_literals_are_skipped() {
        let ids = idents("fn f<'static_like>(x: &'static_like str, c: char) { let y = 'y'; }");
        assert!(!ids.contains(&"static_like".to_string()), "{ids:?}");
        assert!(!ids.contains(&"y".to_string()) || ids.contains(&"y".to_string()));
        // The binding ident `y` *is* lexed; the literal 'y' is not — so `y`
        // appears exactly once.
        assert_eq!(ids.iter().filter(|s| s.as_str() == "y").count(), 1);
    }

    #[test]
    fn escaped_char_literal_does_not_derail() {
        let ids = idents(r"let nl = '\n'; let q = '\''; after");
        assert!(ids.contains(&"after".to_string()), "{ids:?}");
    }

    #[test]
    fn line_numbers_track_strings_and_comments() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].ident(), Some("b"));
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn line_numbers_track_backslash_continuations_in_strings() {
        // `\` at end of line inside a string hides the newline from the
        // escape handler; the line counter must still advance.
        let src = "let u = \"line one\\\n   continued\";\nafter";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.ident() == Some("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn numeric_literals_keep_method_dots() {
        let toks = lex("x.0.foo(); 1.5e-3; 1_000u64.bar()");
        let ids: Vec<_> = toks.tokens.iter().filter_map(|t| t.ident()).collect();
        assert!(ids.contains(&"foo"));
        assert!(ids.contains(&"bar"));
        assert!(!ids.contains(&"e"));
        assert!(!ids.contains(&"u64"));
    }

    #[test]
    fn directive_parses_with_reason() {
        let out = lex("let x = 1; // lint: allow(D1, lookups only, never iterated)\n");
        assert_eq!(out.directives.len(), 1);
        let d = &out.directives[0];
        assert_eq!(d.rule, "D1");
        assert_eq!(d.scope, DirectiveScope::Line);
        assert_eq!(d.reason, "lookups only, never iterated");
        assert!(d.malformed.is_none());
    }

    #[test]
    fn directive_file_scope() {
        let out = lex("// lint: allow-file(D2, live backend reads wall-clock by design)\n");
        assert_eq!(out.directives[0].scope, DirectiveScope::File);
    }

    #[test]
    fn directive_without_reason_is_malformed() {
        for src in [
            "// lint: allow(D1)\n",
            "// lint: allow(D1, )\n",
            "// lint: allow()\n",
        ] {
            let out = lex(src);
            assert_eq!(out.directives.len(), 1, "{src}");
            assert!(out.directives[0].malformed.is_some(), "{src}");
        }
    }

    #[test]
    fn directive_in_string_or_block_comment_is_ignored() {
        let out = lex("let s = \"// lint: allow(D1, nope)\"; /* lint: allow(D1, nope) */");
        assert!(out.directives.is_empty());
    }

    #[test]
    fn ordinary_comments_are_not_directives() {
        let out = lex("// just a note about lint rules\n// lints: nothing\n");
        assert!(out.directives.is_empty());
    }
}
