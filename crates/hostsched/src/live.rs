//! A live, demo-grade SFS on real Linux threads.
//!
//! The production-fidelity implementation in this repo is the simulator
//! (`sfs-core`); this module demonstrates the same FILTER mechanism on a
//! running kernel: promote a function thread to `SCHED_FIFO`, let it run up
//! to the slice, demote it to `SCHED_OTHER`, poll `/proc` for completion.
//! When the process lacks CAP_SYS_NICE it falls back to `nice`-based
//! priorities (-10 for FILTER, +5 after demotion), which preserves the
//! ordering on CFS even though it cannot fully stop preemption.

// lint: allow-file(D2, live backend schedules real kernel threads; elapsed wall-clock is the measured quantity)

use std::time::{Duration, Instant};

use crate::function::{LiveFunction, LiveOutcome, LiveSpec};
use crate::sys::{probe_rt_permission, set_policy, HostPolicy};

/// Priority lever available in this environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityLever {
    /// Full `SCHED_FIFO`/`SCHED_OTHER` switching (CAP_SYS_NICE present).
    RealTime,
    /// `nice`-based approximation (no CAP_SYS_NICE).
    NiceOnly,
}

impl PriorityLever {
    /// Detect what this environment allows.
    pub fn detect() -> PriorityLever {
        if probe_rt_permission() {
            PriorityLever::RealTime
        } else {
            PriorityLever::NiceOnly
        }
    }

    fn filter_policy(self) -> HostPolicy {
        match self {
            PriorityLever::RealTime => HostPolicy::Fifo(50),
            PriorityLever::NiceOnly => HostPolicy::Nice(-10),
        }
    }

    fn demoted_policy(self) -> HostPolicy {
        match self {
            PriorityLever::RealTime => HostPolicy::Normal,
            PriorityLever::NiceOnly => HostPolicy::Nice(5),
        }
    }
}

/// Configuration for the live scheduler.
#[derive(Debug, Clone, Copy)]
pub struct LiveSfsConfig {
    /// Concurrent FILTER slots (the paper's per-core workers).
    pub workers: usize,
    /// FILTER time slice.
    pub slice: Duration,
    /// Status polling interval (paper: 4 ms).
    pub poll_interval: Duration,
}

impl Default for LiveSfsConfig {
    fn default() -> Self {
        LiveSfsConfig {
            workers: 1,
            slice: Duration::from_millis(100),
            poll_interval: Duration::from_millis(4),
        }
    }
}

/// Outcome of a live batch run.
#[derive(Debug)]
pub struct LiveRun {
    /// Per-function outcomes in submission order.
    pub outcomes: Vec<LiveOutcome>,
    /// Which priority lever was used.
    pub lever: PriorityLever,
    /// Number of FILTER promotions issued.
    pub promotions: u64,
    /// Number of slice-expiry demotions issued.
    pub demotions: u64,
    /// Number of status polls performed.
    pub polls: u64,
}

struct Slot {
    idx: usize,
    started: Instant,
}

/// Run a batch of live functions under SFS-style scheduling: functions are
/// queued FIFO; up to `cfg.workers` run promoted at a time; a function
/// exceeding `cfg.slice` is demoted to the background policy and the slot
/// moves on. Blocks until all functions complete.
pub fn run_live_sfs(cfg: LiveSfsConfig, specs: Vec<LiveSpec>) -> LiveRun {
    let lever = PriorityLever::detect();
    // The monitor must outrank FILTER functions or a spinning SCHED_FIFO
    // function starves it on a fully-loaded (or single-core) machine and no
    // demotion can ever happen — the same requirement the real SFS has.
    let monitor_tid = crate::sys::gettid();
    if lever == PriorityLever::RealTime {
        let _ = set_policy(monitor_tid, HostPolicy::Fifo(90));
    }
    let total = specs.len();
    let functions: Vec<LiveFunction> = specs.into_iter().map(LiveFunction::spawn).collect();
    // Newly spawned functions start under the demoted/background policy so
    // that queued work cannot out-compete FILTER work.
    for f in &functions {
        let _ = set_policy(f.tid, lever.demoted_policy());
    }

    let mut queue: std::collections::VecDeque<usize> = (0..total).collect();
    let mut slots: Vec<Slot> = Vec::new();
    let mut promotions = 0u64;
    let mut demotions = 0u64;
    let mut polls = 0u64;

    loop {
        // Reap finished / expired slots.
        let mut keep = Vec::new();
        for slot in slots.drain(..) {
            let f = &functions[slot.idx];
            if f.is_done() {
                continue; // worker freed
            }
            if slot.started.elapsed() >= cfg.slice {
                let _ = set_policy(f.tid, lever.demoted_policy());
                demotions += 1;
                continue; // demoted: CFS finishes it
            }
            keep.push(slot);
        }
        slots = keep;

        // Fill free slots from the queue.
        while slots.len() < cfg.workers {
            let Some(idx) = queue.pop_front() else { break };
            let f = &functions[idx];
            if f.is_done() {
                continue;
            }
            let _ = set_policy(f.tid, lever.filter_policy());
            promotions += 1;
            slots.push(Slot {
                idx,
                started: Instant::now(),
            });
        }

        if queue.is_empty() && slots.is_empty() && functions.iter().all(|f| f.is_done()) {
            break;
        }
        polls += 1;
        std::thread::sleep(cfg.poll_interval);
    }

    if lever == PriorityLever::RealTime {
        let _ = set_policy(monitor_tid, HostPolicy::Normal);
    }
    let outcomes = functions.into_iter().map(|f| f.join()).collect();
    LiveRun {
        outcomes,
        lever,
        promotions,
        demotions,
        polls,
    }
}

/// Measure the real cost of one status poll (`/proc/<tid>/stat` read +
/// parse), the dominant SFS overhead in Table II.
pub fn measure_poll_cost(iterations: u32) -> Duration {
    use crate::sys::{gettid, read_thread_stat};
    let tid = gettid();
    // Warm up the dentry cache like a steady-state monitor.
    let _ = read_thread_stat(tid);
    let start = Instant::now();
    for _ in 0..iterations {
        let st = read_thread_stat(tid).expect("own stat readable");
        std::hint::black_box(st);
    }
    start.elapsed() / iterations.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lever_detection_is_consistent() {
        let a = PriorityLever::detect();
        let b = PriorityLever::detect();
        assert_eq!(a, b);
    }

    #[test]
    fn live_sfs_completes_all_functions() {
        let specs = vec![
            LiveSpec::cpu_ms(20),
            LiveSpec::cpu_ms(20),
            LiveSpec::cpu_ms(20),
        ];
        let run = run_live_sfs(LiveSfsConfig::default(), specs);
        assert_eq!(run.outcomes.len(), 3);
        // On a loaded/multicore host a queued function may complete under
        // the background policy before its FILTER turn, so promotions can
        // be fewer than submissions — but at least the first gets a round.
        assert!(
            (1..=3).contains(&run.promotions),
            "promotions {} out of range",
            run.promotions
        );
        assert_eq!(run.demotions, 0, "20ms bursts fit a 100ms slice");
    }

    #[test]
    fn long_function_is_demoted() {
        let cfg = LiveSfsConfig {
            workers: 1,
            slice: Duration::from_millis(30),
            poll_interval: Duration::from_millis(2),
        };
        let run = run_live_sfs(cfg, vec![LiveSpec::cpu_ms(120), LiveSpec::cpu_ms(5)]);
        assert!(
            run.demotions >= 1,
            "a 120ms function must exceed the 30ms slice"
        );
        assert_eq!(run.outcomes.len(), 2);
    }

    #[test]
    fn poll_cost_is_microseconds_scale() {
        let cost = measure_poll_cost(200);
        // A /proc read is micros, not millis; fail only on gross anomalies.
        assert!(
            cost < Duration::from_millis(2),
            "poll cost {cost:?} implausibly high"
        );
        assert!(cost > Duration::from_nanos(100));
    }
}
