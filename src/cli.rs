//! Strict parsers for the `sfs` CLI's structured flags.
//!
//! The PR 7 contract for `SFS_BENCH_*` environment overrides applies to
//! CLI sub-arguments too: a malformed value **aborts naming the flag and
//! the offending value** — it never falls through to a default or
//! half-parses a spec. Every parser here returns `Err(message)` where the
//! message starts with the flag spelling (`--cluster: ...`), so the binary
//! can print it verbatim; the messages are pinned by unit tests.

use sfs_faas::{FaultSpec, Fleet, Placement};
use sfs_sched::SmpParams;
use sfs_simcore::SimDuration;

/// A parsed `--cluster` spec.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Host count.
    pub hosts: usize,
    /// Cores per host.
    pub cores: usize,
    /// Dispatcher placement policy.
    pub placement: Placement,
    /// `(keep_alive_ms, cold_start_ms)` when `affinity=...` was given.
    pub affinity: Option<(u64, u64)>,
}

/// A parsed `--fleet` spec.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Region count.
    pub regions: usize,
    /// Initial hosts per region.
    pub hosts: usize,
    /// Cores per host.
    pub cores: usize,
    /// Intra-region placement policy.
    pub placement: Placement,
    /// `(keep_alive_ms, cold_start_ms)` when `affinity=...` was given.
    pub affinity: Option<(u64, u64)>,
    /// Fault scenario when `faults=...` was given.
    pub faults: Option<FaultSpec>,
    /// Front-door spill threshold override (ms backlog per core).
    pub spill_ms: Option<f64>,
    /// Front-door shed threshold override (ms backlog per core).
    pub shed_ms: Option<f64>,
    /// Fleet seed override.
    pub seed: Option<u64>,
}

impl FleetSpec {
    /// Materialise the [`Fleet`] this spec describes.
    pub fn build(&self) -> Fleet {
        let mut fleet = Fleet::new(self.regions, self.hosts, self.cores);
        if let Some((keep_ms, cold_ms)) = self.affinity {
            fleet = fleet.with_affinity(
                SimDuration::from_millis(keep_ms),
                SimDuration::from_millis(cold_ms),
            );
        }
        if let Some(f) = self.faults {
            fleet = fleet.with_faults(f);
        }
        if let Some(s) = self.spill_ms {
            fleet.front_door.spill_backlog_ms = s;
        }
        if let Some(s) = self.shed_ms {
            fleet.front_door.shed_backlog_ms = s;
        }
        if let Some(s) = self.seed {
            fleet.seed = s;
        }
        fleet
    }
}

/// Split one `key=value` term of `flag`'s spec, or fail naming the term.
fn key_value<'a>(flag: &str, part: &'a str) -> Result<(&'a str, &'a str), String> {
    part.split_once('=')
        .ok_or_else(|| format!("{flag}: `{part}` is not key=value"))
}

/// Parse a count ≥ 1, or fail naming the flag, key, and offending value.
fn count(flag: &str, key: &str, v: &str) -> Result<usize, String> {
    v.parse()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{flag}: {key}=`{v}` is not a count >= 1"))
}

/// Parse a non-negative integer (milliseconds / microseconds / seed).
fn num_u64(flag: &str, key: &str, v: &str) -> Result<u64, String> {
    v.parse()
        .map_err(|_| format!("{flag}: {key}=`{v}` is not a non-negative integer"))
}

/// Parse a non-negative float (threshold milliseconds).
fn num_ms(flag: &str, key: &str, v: &str) -> Result<f64, String> {
    v.parse()
        .ok()
        .filter(|x: &f64| x.is_finite() && *x >= 0.0)
        .ok_or_else(|| format!("{flag}: {key}=`{v}` is not a non-negative number of ms"))
}

fn placement(flag: &str, v: &str) -> Result<Placement, String> {
    Placement::parse(v).ok_or_else(|| {
        format!(
            "{flag}: placement=`{v}` is not one of round-robin|least-loaded|long-to-lightest|\
             join-shortest-queue|consistent-hash (rr|ll|l2l|jsq|hash)"
        )
    })
}

fn affinity_pair(flag: &str, v: &str) -> Result<(u64, u64), String> {
    let err = || format!("{flag}: affinity=`{v}` is not KEEPMS:COLDMS");
    let (keep, cold) = v.split_once(':').ok_or_else(err)?;
    Ok((
        keep.parse().map_err(|_| err())?,
        cold.parse().map_err(|_| err())?,
    ))
}

/// Parse `--cluster hosts=N,cores=M,placement=P[,affinity=KEEPMS:COLDMS]`
/// (each key optional; defaults 4 hosts × 8 cores, round-robin, no
/// affinity model — a 1-host cluster then matches the plain `--sched` run
/// exactly). A bare `--cluster` (value "true") takes every default.
pub fn parse_cluster_spec(spec: &str) -> Result<ClusterSpec, String> {
    const FLAG: &str = "--cluster";
    let mut parsed = ClusterSpec {
        hosts: 4,
        cores: 8,
        placement: Placement::RoundRobin,
        affinity: None,
    };
    if spec != "true" {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = key_value(FLAG, part)?;
            match k {
                "hosts" => parsed.hosts = count(FLAG, k, v)?,
                "cores" => parsed.cores = count(FLAG, k, v)?,
                "placement" => parsed.placement = placement(FLAG, v)?,
                "affinity" => parsed.affinity = Some(affinity_pair(FLAG, v)?),
                _ => {
                    return Err(format!(
                        "{FLAG}: unknown key `{k}` (expected hosts, cores, placement, affinity)"
                    ))
                }
            }
        }
    }
    Ok(parsed)
}

/// Parse `--fleet regions=N,hosts=M[,cores=C][,placement=P]
/// [,affinity=KEEPMS:COLDMS][,faults=crash:A+straggler:B+outage:C]
/// [,spill=MS][,shed=MS][,seed=S]`. A bare `--fleet` (value "true") takes
/// every default: 2 regions × 4 hosts × 2 cores, round-robin.
pub fn parse_fleet_spec(spec: &str) -> Result<FleetSpec, String> {
    const FLAG: &str = "--fleet";
    let mut parsed = FleetSpec {
        regions: 2,
        hosts: 4,
        cores: 2,
        placement: Placement::RoundRobin,
        affinity: None,
        faults: None,
        spill_ms: None,
        shed_ms: None,
        seed: None,
    };
    if spec != "true" {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = key_value(FLAG, part)?;
            match k {
                "regions" => parsed.regions = count(FLAG, k, v)?,
                "hosts" => parsed.hosts = count(FLAG, k, v)?,
                "cores" => parsed.cores = count(FLAG, k, v)?,
                "placement" => parsed.placement = placement(FLAG, v)?,
                "affinity" => parsed.affinity = Some(affinity_pair(FLAG, v)?),
                "faults" => {
                    parsed.faults =
                        Some(FaultSpec::parse(v).map_err(|e| format!("{FLAG}: faults: {e}"))?)
                }
                "spill" => parsed.spill_ms = Some(num_ms(FLAG, k, v)?),
                "shed" => parsed.shed_ms = Some(num_ms(FLAG, k, v)?),
                "seed" => parsed.seed = Some(num_u64(FLAG, k, v)?),
                _ => {
                    return Err(format!(
                        "{FLAG}: unknown key `{k}` (expected regions, hosts, cores, placement, \
                         affinity, faults, spill, shed, seed)"
                    ))
                }
            }
        }
    }
    Ok(parsed)
}

/// Parse `--smp balance=MS[,migration=US][,affinity=US]`. A bare `--smp`
/// (value "true") uses the bench suite's standard knobs: balance every
/// 4 ms, 30 µs migration penalty, 15 µs cross-core resume cost.
pub fn parse_smp_spec(spec: &str) -> Result<SmpParams, String> {
    const FLAG: &str = "--smp";
    let mut balance_ms = 4u64;
    let mut migration_us = 30u64;
    let mut affinity_us = 15u64;
    if spec != "true" {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = key_value(FLAG, part)?;
            match k {
                "balance" => balance_ms = num_u64(FLAG, k, v)?,
                "migration" => migration_us = num_u64(FLAG, k, v)?,
                "affinity" => affinity_us = num_u64(FLAG, k, v)?,
                _ => {
                    return Err(format!(
                        "{FLAG}: unknown key `{k}` (expected balance, migration, affinity)"
                    ))
                }
            }
        }
    }
    Ok(SmpParams::balanced(
        SimDuration::from_millis(balance_ms),
        SimDuration::from_micros(migration_us),
        SimDuration::from_micros(affinity_us),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_spec_parses_full_and_bare_forms() {
        let c = parse_cluster_spec("hosts=8,cores=4,placement=jsq,affinity=10000:50").unwrap();
        assert_eq!(c.hosts, 8);
        assert_eq!(c.cores, 4);
        assert_eq!(c.placement, Placement::JoinShortestQueue);
        assert_eq!(c.affinity, Some((10_000, 50)));
        let d = parse_cluster_spec("true").unwrap();
        assert_eq!((d.hosts, d.cores), (4, 8));
        assert_eq!(d.placement, Placement::RoundRobin);
        assert!(d.affinity.is_none());
    }

    #[test]
    fn cluster_spec_errors_name_flag_key_and_value() {
        // The satellite-bug regression: these used to collapse into one
        // unspecific message (or half-parse); now each names the flag and
        // the offending value, pinned here verbatim.
        assert_eq!(
            parse_cluster_spec("hosts=abc").unwrap_err(),
            "--cluster: hosts=`abc` is not a count >= 1"
        );
        assert_eq!(
            parse_cluster_spec("hosts=0").unwrap_err(),
            "--cluster: hosts=`0` is not a count >= 1"
        );
        assert_eq!(
            parse_cluster_spec("hosts=4,garbage").unwrap_err(),
            "--cluster: `garbage` is not key=value"
        );
        assert_eq!(
            parse_cluster_spec("hsots=4").unwrap_err(),
            "--cluster: unknown key `hsots` (expected hosts, cores, placement, affinity)"
        );
        assert_eq!(
            parse_cluster_spec("affinity=10").unwrap_err(),
            "--cluster: affinity=`10` is not KEEPMS:COLDMS"
        );
        assert_eq!(
            parse_cluster_spec("affinity=abc:50").unwrap_err(),
            "--cluster: affinity=`abc:50` is not KEEPMS:COLDMS"
        );
        let e = parse_cluster_spec("placement=zigzag").unwrap_err();
        assert!(
            e.starts_with("--cluster: placement=`zigzag` is not one of"),
            "{e}"
        );
    }

    #[test]
    fn smp_spec_parses_and_rejects_strictly() {
        assert!(parse_smp_spec("true").is_ok());
        assert!(parse_smp_spec("balance=8,migration=40,affinity=20").is_ok());
        assert_eq!(
            parse_smp_spec("balance=abc").unwrap_err(),
            "--smp: balance=`abc` is not a non-negative integer"
        );
        assert_eq!(
            parse_smp_spec("balance=4,,junk").unwrap_err(),
            "--smp: `junk` is not key=value"
        );
        assert_eq!(
            parse_smp_spec("tick=4").unwrap_err(),
            "--smp: unknown key `tick` (expected balance, migration, affinity)"
        );
    }

    #[test]
    fn fleet_spec_parses_full_and_bare_forms() {
        let f = parse_fleet_spec(
            "regions=3,hosts=8,cores=4,placement=hash,affinity=5000:40,\
             faults=crash:2+straggler:1+outage:1,spill=100,shed=2000,seed=7",
        )
        .unwrap();
        assert_eq!((f.regions, f.hosts, f.cores), (3, 8, 4));
        assert_eq!(f.placement, Placement::ConsistentHash);
        assert_eq!(f.affinity, Some((5_000, 40)));
        let faults = f.faults.unwrap();
        assert_eq!(
            (faults.crashes, faults.stragglers, faults.outages),
            (2, 1, 1)
        );
        assert_eq!(f.spill_ms, Some(100.0));
        assert_eq!(f.shed_ms, Some(2_000.0));
        assert_eq!(f.seed, Some(7));
        let fleet = f.build();
        assert_eq!(fleet.regions.len(), 3);
        assert_eq!(fleet.front_door.spill_backlog_ms, 100.0);
        assert_eq!(fleet.seed, 7);
        assert!(fleet.affinity.is_some() && fleet.faults.is_some());

        let bare = parse_fleet_spec("true").unwrap();
        assert_eq!((bare.regions, bare.hosts, bare.cores), (2, 4, 2));
        assert!(bare.faults.is_none());
        let fleet = bare.build();
        assert_eq!(fleet.regions.len(), 2);
        assert!(fleet.faults.is_none());
    }

    #[test]
    fn fleet_spec_errors_name_flag_key_and_value() {
        assert_eq!(
            parse_fleet_spec("regions=zero").unwrap_err(),
            "--fleet: regions=`zero` is not a count >= 1"
        );
        assert_eq!(
            parse_fleet_spec("spill=-1").unwrap_err(),
            "--fleet: spill=`-1` is not a non-negative number of ms"
        );
        assert_eq!(
            parse_fleet_spec("seed=x").unwrap_err(),
            "--fleet: seed=`x` is not a non-negative integer"
        );
        assert_eq!(
            parse_fleet_spec("faults=meteor:1").unwrap_err(),
            "--fleet: faults: unknown fault kind `meteor` in `meteor:1` \
             (expected crash/straggler/outage)"
        );
        assert_eq!(
            parse_fleet_spec("faults=crash:x").unwrap_err(),
            "--fleet: faults: fault count `x` in `crash:x` is not a number"
        );
        assert_eq!(
            parse_fleet_spec("warp=9").unwrap_err(),
            "--fleet: unknown key `warp` (expected regions, hosts, cores, placement, \
             affinity, faults, spill, shed, seed)"
        );
    }
}
