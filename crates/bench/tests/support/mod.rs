//! Shared scenario definitions for the golden-metrics and determinism
//! suites: a fixed matrix of small-but-representative experiment points,
//! each a pure function of `(name, n, seed)`.

use sfs_core::{
    Baseline, ControllerFactory, HistoryPriority, RequestOutcome, SfsConfig, SfsController, Sim,
    UserMlfq,
};
use sfs_faas::{HostScheduler, OpenLambda, OpenLambdaParams};
use sfs_sched::MachineParams;
use sfs_simcore::{Samples, SimDuration};
use sfs_workload::WorkloadSpec;

/// Scenario names locked by `tests/golden/*.txt` (one file each).
pub const SCENARIOS: &[&str] = &[
    "azure80_sfs",
    "azure80_cfs",
    "azure100_sfs",
    "replay_sfs",
    "diurnal_sfs",
    "correlated_sfs",
    "coldstart_sfs",
    "openlambda_sfs",
    // Controllers the policy-driven API added (PR 3).
    "azure100_history",
    "azure100_mlfq",
    "replay_slosfs",
];

/// Request count: small enough for CI, large enough for stable shapes.
pub const N: usize = 1_200;
/// Fixed master seed for the whole suite.
pub const SEED: u64 = 0x5EED_601D;

fn sfs(cores: usize, w: sfs_workload::Workload) -> Vec<RequestOutcome> {
    Sim::on(MachineParams::linux(cores))
        .workload(&w)
        .controller(SfsController::new(SfsConfig::new(cores)))
        .run()
        .outcomes
}

fn run_factory(
    f: &dyn ControllerFactory,
    cores: usize,
    w: sfs_workload::Workload,
) -> Vec<RequestOutcome> {
    f.run_on(cores, &w).outcomes
}

/// Run one named scenario to completion.
pub fn run_scenario(name: &str) -> Vec<RequestOutcome> {
    match name {
        "azure80_sfs" => sfs(
            8,
            WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 0.8)
                .generate(),
        ),
        "azure80_cfs" => run_factory(
            &Baseline::Cfs,
            8,
            WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 0.8)
                .generate(),
        ),
        "azure100_sfs" => sfs(
            8,
            WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 1.0)
                .generate(),
        ),
        "replay_sfs" => sfs(
            8,
            WorkloadSpec::azure_replay(N, SEED)
                .with_load(8, 0.85)
                .generate(),
        ),
        "diurnal_sfs" => sfs(
            8,
            WorkloadSpec::diurnal(N, SEED).with_load(8, 0.85).generate(),
        ),
        "correlated_sfs" => sfs(
            8,
            WorkloadSpec::correlated_bursts(N, SEED)
                .with_load(8, 0.85)
                .generate(),
        ),
        "coldstart_sfs" => sfs(
            8,
            WorkloadSpec::cold_start_mix(N, SEED)
                .with_load(8, 0.85)
                .generate(),
        ),
        "openlambda_sfs" => {
            let w = WorkloadSpec::openlambda(N, SEED)
                .with_duration_load(24, 0.88)
                .generate();
            OpenLambda::new(OpenLambdaParams::default()).run(
                HostScheduler::Sfs(SfsConfig::new(24)),
                24,
                &w,
            )
        }
        "azure100_history" => {
            let w = WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 1.0)
                .generate();
            Sim::on(MachineParams::linux(8))
                .workload(&w)
                .controller(HistoryPriority::new())
                .run()
                .outcomes
        }
        "azure100_mlfq" => {
            let w = WorkloadSpec::azure_sampled(N, SEED)
                .with_load(8, 1.0)
                .generate();
            Sim::on(MachineParams::linux(8))
                .workload(&w)
                .controller(UserMlfq::default())
                .run()
                .outcomes
        }
        "replay_slosfs" => {
            let w = WorkloadSpec::azure_replay(N, SEED)
                .with_load(8, 0.85)
                .generate();
            Sim::on(MachineParams::linux(8))
                .workload(&w)
                .controller(SfsController::with_slo(
                    SfsConfig::new(8),
                    SimDuration::from_millis(250),
                ))
                .run()
                .outcomes
        }
        other => panic!("unknown scenario {other:?}"),
    }
}

/// FNV-1a over every outcome's exact fields: any bit-level drift in any
/// request changes the fingerprint.
pub fn fingerprint(outcomes: &[RequestOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for o in outcomes {
        mix(o.id);
        mix(o.arrival.as_nanos());
        mix(o.finished.as_nanos());
        mix(o.turnaround.as_nanos());
        mix(o.rte.to_bits());
        mix(o.ctx_switches);
        mix(o.queue_delay.as_nanos());
        mix(o.demoted as u64);
        mix(o.offloaded as u64);
        mix(o.filter_rounds as u64);
        mix(o.io_blocks as u64);
    }
    h
}

/// The headline metrics of a run, exactly formatted: a decimal rendering
/// for humans plus the raw IEEE-754 bits as the machine-checked lock.
pub fn metrics_report(name: &str, outcomes: &[RequestOutcome]) -> String {
    let durs: Vec<f64> = outcomes
        .iter()
        .map(|o| o.turnaround.as_millis_f64())
        .collect();
    let mut samples = Samples::from_vec(durs.clone());
    let p50 = samples.percentile(50.0);
    let p99 = samples.percentile(99.0);
    let mean = durs.iter().sum::<f64>() / durs.len().max(1) as f64;
    let span_s = outcomes
        .iter()
        .map(|o| o.finished.as_nanos())
        .max()
        .unwrap_or(1) as f64
        / 1e9;
    let throughput = outcomes.len() as f64 / span_s;
    let f = |v: f64| format!("{v} bits={:#018x}", v.to_bits());
    format!(
        "scenario={name}\nrequests={}\np50_ms={}\np99_ms={}\nmean_ms={}\nthroughput_rps={}\nfingerprint={:#018x}\n",
        outcomes.len(),
        f(p50),
        f(p99),
        f(mean),
        f(throughput),
        fingerprint(outcomes),
    )
}
