//! Execution trace recording: who ran where, when, under which policy.
//!
//! When enabled on a [`crate::Machine`], every contiguous run of a task on
//! a core is recorded as a [`Segment`]. Traces power Gantt-style terminal
//! rendering (`render_gantt`), schedule audits in tests (no overlapping
//! segments per core, per-task segment time equals charged CPU time), and
//! post-hoc analysis of FILTER/CFS phase structure.

use sfs_simcore::{SimDuration, SimTime};

use crate::task::{Pid, Policy};

/// One contiguous execution of a task on a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The task.
    pub pid: Pid,
    /// Core it ran on.
    pub core: usize,
    /// Execution start (after any context-switch cost).
    pub start: SimTime,
    /// Execution end.
    pub end: SimTime,
    /// Policy the task ran under during this segment.
    pub policy: Policy,
}

impl Segment {
    /// Wall time of this segment.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// An append-only schedule trace.
#[derive(Debug, Clone, Default)]
pub struct ScheduleTrace {
    segments: Vec<Segment>,
}

impl ScheduleTrace {
    /// Empty trace.
    pub fn new() -> ScheduleTrace {
        ScheduleTrace::default()
    }

    /// Record one segment (zero-length segments are dropped).
    pub fn record(&mut self, seg: Segment) {
        if seg.end > seg.start {
            self.segments.push(seg);
        }
    }

    /// All segments in record order (chronological per core).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True iff no segments recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total execution time recorded for a task.
    pub fn task_time(&self, pid: Pid) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.pid == pid)
            .map(|s| s.duration())
            .sum()
    }

    /// Total busy time recorded for a core.
    pub fn core_busy(&self, core: usize) -> SimDuration {
        self.segments
            .iter()
            .filter(|s| s.core == core)
            .map(|s| s.duration())
            .sum()
    }

    /// Verify that no two segments overlap on the same core. Returns the
    /// first offending pair if any.
    pub fn find_overlap(&self) -> Option<(Segment, Segment)> {
        let mut by_core: std::collections::BTreeMap<usize, Vec<Segment>> = Default::default();
        for &s in &self.segments {
            by_core.entry(s.core).or_default().push(s);
        }
        for (_, mut segs) in by_core {
            segs.sort_by_key(|s| s.start);
            for w in segs.windows(2) {
                if w[1].start < w[0].end {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }

    /// Render an ASCII Gantt chart: one row per core, `width` columns over
    /// `[t0, t1)`. Each cell shows the last task occupying it (digit = pid
    /// mod 10, uppercase letter if running under an RT policy); '.' = idle.
    pub fn render_gantt(&self, t0: SimTime, t1: SimTime, width: usize) -> String {
        if t1 <= t0 || width == 0 || self.segments.is_empty() {
            return String::from("(empty trace)\n");
        }
        let cores = self.segments.iter().map(|s| s.core).max().unwrap_or(0) + 1;
        let span = (t1 - t0).as_nanos() as f64;
        let mut rows = vec![vec!['.'; width]; cores];
        for s in &self.segments {
            if s.end <= t0 || s.start >= t1 {
                continue;
            }
            let a = ((s.start.as_nanos().saturating_sub(t0.as_nanos())) as f64 / span
                * width as f64) as usize;
            let b =
                (((s.end.as_nanos().saturating_sub(t0.as_nanos())) as f64 / span * width as f64)
                    .ceil() as usize)
                    .min(width);
            let digit = (s.pid.0 % 10).to_string().chars().next().unwrap();
            let ch = if s.policy.is_realtime() {
                // A-J for RT tasks, keyed by the same digit.
                (b'A' + (s.pid.0 % 10) as u8) as char
            } else {
                digit
            };
            for cell in rows[s.core][a..b.max(a + 1).min(width)].iter_mut() {
                *cell = ch;
            }
        }
        let mut out = String::new();
        for (c, row) in rows.iter().enumerate() {
            out.push_str(&format!("core{c:2} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "       {}..{} ('.'=idle, digit=CFS pid%10, letter=RT pid%10)\n",
            t0, t1
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn seg(pid: u64, core: usize, s: u64, e: u64) -> Segment {
        Segment {
            pid: Pid(pid),
            core,
            start: at(s),
            end: at(e),
            policy: Policy::NORMAL,
        }
    }

    #[test]
    fn records_and_aggregates() {
        let mut t = ScheduleTrace::new();
        t.record(seg(1, 0, 0, 10));
        t.record(seg(2, 0, 10, 30));
        t.record(seg(1, 1, 5, 15));
        assert_eq!(t.len(), 3);
        assert_eq!(t.task_time(Pid(1)), SimDuration::from_millis(20));
        assert_eq!(t.core_busy(0), SimDuration::from_millis(30));
        assert_eq!(t.core_busy(1), SimDuration::from_millis(10));
    }

    #[test]
    fn zero_length_segments_dropped() {
        let mut t = ScheduleTrace::new();
        t.record(seg(1, 0, 5, 5));
        assert!(t.is_empty());
    }

    #[test]
    fn overlap_detection() {
        let mut t = ScheduleTrace::new();
        t.record(seg(1, 0, 0, 10));
        t.record(seg(2, 0, 10, 20)); // touching is fine
        t.record(seg(3, 1, 5, 15)); // other core is fine
        assert!(t.find_overlap().is_none());
        t.record(seg(4, 0, 19, 25)); // overlaps pid 2 on core 0
        let (a, b) = t.find_overlap().expect("overlap must be found");
        assert_eq!(a.pid, Pid(2));
        assert_eq!(b.pid, Pid(4));
    }

    #[test]
    fn gantt_renders_rows_per_core() {
        let mut t = ScheduleTrace::new();
        t.record(seg(1, 0, 0, 50));
        t.record(Segment {
            pid: Pid(2),
            core: 1,
            start: at(25),
            end: at(100),
            policy: Policy::Fifo { prio: 50 },
        });
        let g = t.render_gantt(at(0), at(100), 40);
        assert!(g.contains("core 0"));
        assert!(g.contains("core 1"));
        assert!(g.contains('1'), "CFS pid digit shown");
        assert!(g.contains('C'), "RT pid letter shown (2 -> 'C')");
        assert!(g.contains('.'), "idle cells shown");
    }

    #[test]
    fn gantt_handles_empty_and_degenerate() {
        let t = ScheduleTrace::new();
        assert_eq!(t.render_gantt(at(0), at(10), 10), "(empty trace)\n");
        let mut t = ScheduleTrace::new();
        t.record(seg(1, 0, 0, 10));
        assert_eq!(t.render_gantt(at(10), at(10), 10), "(empty trace)\n");
    }
}
