//! Scenario matrix: SFS vs CFS on the workload families beyond the
//! paper's evaluation — diurnal load ramps, correlated (Markov-modulated)
//! bursts, and a heavy-tailed cold-start mix — plus the policy matrix the
//! `Controller` API opened up: the history-informed static-priority
//! strawman, the user-space MLFQ, and SLO-deadline SFS on the same
//! families.
//!
//! Expected shape: SFS's short-function advantage survives every family;
//! diurnal ramps are the easiest (the slice controller tracks them),
//! correlated bursts lean hardest on the hybrid bypass, and the cold-start
//! mix erodes part of the short-function win because spin-up CPU makes
//! "short" requests long in disguise. Among the new policies, the strawman
//! collapses toward FIFO (history cannot split a multimodal app), MLFQ
//! lands between CFS and SFS, and SLO-SFS tracks SFS while bounding queue
//! age.

use sfs_bench::{banner, rtes, run_factory, run_sfs, save, section, turnarounds_ms, Sweep};
use sfs_core::{
    Baseline, Controller, ControllerFactory, HistoryPriority, RequestOutcome, SfsConfig,
    SfsController, Sim, UserMlfq,
};
use sfs_metrics::{cdf_chart, MarkdownTable, PercentileTable};
use sfs_sched::{MachineParams, SmpParams};
use sfs_simcore::SimDuration;
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;
const LOAD: f64 = 0.85;

/// The three extension families, by name.
fn family(name: &str, n: usize, seed: u64) -> WorkloadSpec {
    match name {
        "diurnal" => WorkloadSpec::diurnal(n, seed),
        "correlated" => WorkloadSpec::correlated_bursts(n, seed),
        "cold-start" => WorkloadSpec::cold_start_mix(n, seed),
        other => unreachable!("unknown family {other}"),
    }
}

struct Cell {
    outcomes: Vec<RequestOutcome>,
    offloaded: u64,
    demoted: u64,
}

/// The controllers the policy-driven API added, as factories.
struct NewPolicy(&'static str);

impl ControllerFactory for NewPolicy {
    fn build(&self) -> Box<dyn Controller> {
        match self.0 {
            "HIST" => Box::new(HistoryPriority::new()),
            "MLFQ" => Box::new(UserMlfq::default()),
            "SLO-SFS" => Box::new(SfsController::with_slo(
                SfsConfig::new(CORES),
                SimDuration::from_millis(250),
            )),
            other => unreachable!("unknown policy {other}"),
        }
    }

    fn label(&self) -> String {
        self.0.to_string()
    }
}

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Matrix",
        "SFS vs CFS on diurnal / correlated-burst / cold-start workloads",
        n,
        seed,
    );

    let mut sweep: Sweep<'_, Cell> = Sweep::new("matrix_scenarios", seed);
    for fam in ["diurnal", "correlated", "cold-start"] {
        sweep.scenario(format!("SFS {fam}"), move |_| {
            let w = family(fam, n, seed).with_load(CORES, LOAD).generate();
            let r = run_sfs(SfsConfig::new(CORES), CORES, &w);
            Cell {
                offloaded: r.telemetry.offloaded,
                demoted: r.telemetry.demoted,
                outcomes: r.outcomes,
            }
        });
        sweep.scenario(format!("CFS {fam}"), move |_| {
            let w = family(fam, n, seed).with_load(CORES, LOAD).generate();
            Cell {
                outcomes: run_factory(&Baseline::Cfs, CORES, &w).outcomes,
                offloaded: 0,
                demoted: 0,
            }
        });
    }
    let results = sweep.run();

    let mut pct = PercentileTable::new();
    let mut summary = MarkdownTable::new(&[
        "scenario",
        "mean (ms)",
        "fraction RTE >= 0.95",
        "offloaded",
        "demoted",
    ]);
    let mut chart: Vec<(String, Vec<f64>)> = Vec::new();
    for r in &results {
        let durs = turnarounds_ms(&r.value.outcomes);
        let rt = rtes(&r.value.outcomes);
        let mean = durs.iter().sum::<f64>() / durs.len().max(1) as f64;
        let at95 = rt.iter().filter(|&&x| x >= 0.95).count() as f64 / rt.len().max(1) as f64;
        summary.row(&[
            r.label.clone(),
            format!("{mean:.1}"),
            format!("{at95:.3}"),
            format!("{}", r.value.offloaded),
            format!("{}", r.value.demoted),
        ]);
        pct.push(r.label.clone(), durs.clone());
        chart.push((r.label.clone(), durs));
    }

    section(&format!("scenario matrix @{:.0}% load", LOAD * 100.0));
    println!("{}", summary.to_markdown());
    save("matrix_scenarios.csv", &summary.to_csv());

    section("percentiles (ms)");
    println!("{}", pct.to_markdown());
    save("matrix_scenarios_percentiles.csv", &pct.to_csv());

    // Per-family headline: mean speedup of the short population.
    section("short-function (<1550 ms ideal) mean speedup, SFS vs CFS");
    for (fi, fam) in ["diurnal", "correlated", "cold-start"].iter().enumerate() {
        let sfs = &results[2 * fi].value.outcomes;
        let cfs = &results[2 * fi + 1].value.outcomes;
        let mean_short = |v: &[RequestOutcome]| {
            let xs: Vec<f64> = v
                .iter()
                .filter(|o| o.ideal.as_millis_f64() < 1550.0)
                .map(|o| o.turnaround.as_millis_f64())
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        println!(
            "{fam:>11}: SFS {:.1} ms vs CFS {:.1} ms ({:.1}x)",
            mean_short(sfs),
            mean_short(cfs),
            mean_short(cfs) / mean_short(sfs)
        );
    }

    section("duration CDF (log-x)");
    let refs: Vec<(&str, &[f64])> = chart
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));

    // ------------------------------------------------------------------
    // Policy matrix: the controllers the Sim/Controller API made cheap to
    // add, across the same three workload families.
    // ------------------------------------------------------------------
    let mut psweep: Sweep<'_, Vec<RequestOutcome>> = Sweep::new("policy_matrix", seed);
    for fam in ["diurnal", "correlated", "cold-start"] {
        for policy in ["HIST", "MLFQ", "SLO-SFS"] {
            psweep.scenario(format!("{policy} {fam}"), move |_| {
                let w = family(fam, n, seed).with_load(CORES, LOAD).generate();
                run_factory(&NewPolicy(policy), CORES, &w).outcomes
            });
        }
    }
    let presults = psweep.run();

    let mut ptable = MarkdownTable::new(&[
        "policy / family",
        "mean (ms)",
        "short mean (ms)",
        "long mean (ms)",
        "fraction RTE >= 0.95",
    ]);
    for r in &presults {
        let mean_of = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let durs = turnarounds_ms(&r.value);
        let (short, long): (Vec<f64>, Vec<f64>) = {
            let mut s = Vec::new();
            let mut l = Vec::new();
            for o in &r.value {
                if o.ideal.as_millis_f64() < 1550.0 {
                    s.push(o.turnaround.as_millis_f64());
                } else {
                    l.push(o.turnaround.as_millis_f64());
                }
            }
            (s, l)
        };
        let rt = rtes(&r.value);
        let at95 = rt.iter().filter(|&&x| x >= 0.95).count() as f64 / rt.len().max(1) as f64;
        ptable.row(&[
            r.label.clone(),
            format!("{:.1}", mean_of(&durs)),
            format!("{:.1}", mean_of(&short)),
            format!("{:.1}", mean_of(&long)),
            format!("{at95:.3}"),
        ]);
    }
    section("policy matrix: new controllers on the same families");
    println!("{}", ptable.to_markdown());
    save("matrix_policies.csv", &ptable.to_csv());

    // ------------------------------------------------------------------
    // SMP matrix: SFS vs CFS with the machine's load balancer, migration
    // penalty, and cache-affinity cost enabled, at 2/4/8 cores under
    // azure replay. Every section above runs the default (all-off)
    // SmpParams; this one turns the SMP machinery on. CI diffs this
    // section's stdout byte-for-byte at --threads 1 vs 8.
    // ------------------------------------------------------------------
    let smp = SmpParams::balanced(
        SimDuration::from_millis(4),
        SimDuration::from_micros(30),
        SimDuration::from_micros(15),
    );
    let mut ssweep: Sweep<'_, Vec<RequestOutcome>> = Sweep::new("smp_matrix", seed);
    for &cores in &[2usize, 4, 8] {
        for policy in ["SFS", "CFS"] {
            ssweep.scenario(format!("{policy} smp{cores}"), move |_| {
                let w = WorkloadSpec::azure_replay(n, seed)
                    .with_load(cores, LOAD)
                    .generate();
                let sim = Sim::on(MachineParams::linux(cores).with_smp(smp)).workload(&w);
                let run = match policy {
                    "SFS" => sim
                        .controller(SfsController::new(SfsConfig::new(cores)))
                        .run(),
                    _ => sim.boxed_controller(Baseline::Cfs.build()).run(),
                };
                run.outcomes
            });
        }
    }
    let sresults = ssweep.run();

    let mut stable = MarkdownTable::new(&[
        "policy / cores",
        "mean (ms)",
        "p99 (ms)",
        "short mean (ms)",
        "fraction RTE >= 0.95",
        "mean migrations/req",
    ]);
    for r in &sresults {
        let mean_of = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let durs = turnarounds_ms(&r.value);
        let mut sorted = durs.clone();
        sorted.sort_by(f64::total_cmp);
        let p99 = sorted[((sorted.len() as f64 * 0.99) as usize).min(sorted.len() - 1)];
        let short: Vec<f64> = r
            .value
            .iter()
            .filter(|o| o.ideal.as_millis_f64() < 1550.0)
            .map(|o| o.turnaround.as_millis_f64())
            .collect();
        let rt = rtes(&r.value);
        let at95 = rt.iter().filter(|&&x| x >= 0.95).count() as f64 / rt.len().max(1) as f64;
        let migs =
            r.value.iter().map(|o| o.migrations as f64).sum::<f64>() / r.value.len().max(1) as f64;
        stable.row(&[
            r.label.clone(),
            format!("{:.1}", mean_of(&durs)),
            format!("{p99:.1}"),
            format!("{:.1}", mean_of(&short)),
            format!("{at95:.3}"),
            format!("{migs:.2}"),
        ]);
    }
    section("SMP matrix: balance tick + migration/affinity costs on");
    println!("{}", stable.to_markdown());
    save("matrix_smp.csv", &stable.to_csv());
}
