//! The performance-tracking subsystem: a fixed scenario matrix measured
//! with calibrated batches, emitted as a schema-versioned `BENCH_sim.json`.
//!
//! The golden/determinism suites pin *what* the simulator computes; this
//! module pins *how fast*. [`suite`] builds the scenario matrix (end-to-end
//! SFS/CFS/cluster/azure-replay runs at pinned seeds plus hot-loop
//! microbenchmarks), [`run_suite`] measures it with
//! [`timebench::measure_with`](crate::timebench::measure_with)-calibrated
//! batches, and [`BenchReport::to_json`] serialises the result:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "requests": 2000,
//!   "seed": 99950626,
//!   "scenarios": {
//!     "sim/sfs_azure": {
//!       "median_ns_per_req": 4321.0,
//!       "p10_ns_per_req": 4100.2,
//!       "p90_ns_per_req": 4700.9,
//!       "throughput_rps": 231428.5
//!     }
//!   }
//! }
//! ```
//!
//! A baseline lives at `results/BENCH_baseline.json`; [`compare`] diffs a
//! fresh run against it with a tolerance band (CI uses a wide 2x band to
//! absorb runner noise; the strict local workflow is documented in
//! ARCHITECTURE.md). The JSON reader is [`parse_json`], a minimal
//! hand-rolled parser — the workspace builds with no external crates.

// lint: allow-file(K1, the pick-path microbenchmarks construct a runqueue directly to time one operation in isolation)

use std::time::Duration;

use sfs_core::{
    Baseline, Controller, ControllerFactory, MachineView, OutcomeSummary, RequestOutcome,
    SfsConfig, SfsController, Sim,
};
use sfs_faas::{Cluster, FaultSpec, Fleet, Placement};
use sfs_sched::{
    CfsRunqueue, FinishedTask, KernelPolicyKind, Machine, MachineParams, Notification, Phase, Pid,
    Policy, SmpParams, TaskSpec,
};
use sfs_simcore::{SimDuration, SimTime};
use sfs_workload::{AppKind, Request, WorkloadSpec};

use crate::timebench::{measure_with, MeasureConfig, Measurement};

/// Version of the `BENCH_sim.json` schema this module emits and reads.
pub const SCHEMA_VERSION: u64 = 1;

/// One point of the perf matrix: a name, the number of work items one
/// timed iteration performs, and the operation itself.
pub struct PerfScenario {
    /// Scenario name (`sim/...` for end-to-end runs where an item is one
    /// request, `micro/...` for hot-loop benchmarks where an item is one
    /// operation).
    pub name: &'static str,
    /// Work items per timed iteration (divides the per-iteration time).
    pub items: u64,
    /// Measurement tunables for this scenario.
    pub cfg: MeasureConfig,
    body: Box<dyn FnMut()>,
}

/// Measured result of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Scenario name.
    pub name: String,
    /// Median nanoseconds per work item (request or operation).
    pub median_ns_per_req: f64,
    /// 10th-percentile ns per item across batches.
    pub p10_ns_per_req: f64,
    /// 90th-percentile ns per item across batches.
    pub p90_ns_per_req: f64,
    /// Work items per second at the median (`1e9 / median_ns_per_req`).
    pub throughput_rps: f64,
}

/// A full suite run: the measured matrix plus its provenance knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version of the serialised form.
    pub schema_version: u64,
    /// `SFS_PERF_REQUESTS` scale the `sim/` scenarios ran at.
    pub requests: u64,
    /// Master seed the workloads derive from.
    pub seed: u64,
    /// Per-scenario measurements, in suite order.
    pub scenarios: Vec<PerfRecord>,
}

/// Batch tunables for end-to-end `sim/` scenarios: long batches, fewer of
/// them (one iteration is a whole run).
fn sim_cfg() -> MeasureConfig {
    MeasureConfig {
        batch_target: Duration::from_millis(30),
        batches: 11,
    }
}

/// Cores used by the single-host `sim/` scenarios.
const SIM_CORES: usize = 4;

/// Scale of the `sim/sfs_azure_10m` streaming scenario:
/// `SFS_PERF_LARGE_REQUESTS`, default 10M. CI overrides with a reduced
/// scale (the scenario's point is that ns/req is flat in the scale).
pub fn large_requests() -> usize {
    let v = std::env::var("SFS_PERF_LARGE_REQUESTS").ok();
    crate::parse_env_override("SFS_PERF_LARGE_REQUESTS", v.as_deref(), 10_000_000)
}
/// Requests per iteration of the `micro/sfs_dispatch` burst (fixed so the
/// microbenchmarks are comparable across `SFS_PERF_REQUESTS` scales).
const DISPATCH_BURST: usize = 512;

/// The fixed scenario matrix at `requests` scale rooted at `seed`.
///
/// `sim/` scenarios measure whole simulation runs (ns per request);
/// `micro/` scenarios measure the hot loops the PR-5 overhaul targets
/// (ns per operation): the CFS pick path at two occupancies and the SFS
/// dispatch path under an overload burst.
pub fn suite(requests: usize, seed: u64) -> Vec<PerfScenario> {
    let mut v: Vec<PerfScenario> = Vec::new();
    // `requests` is shadowed by the dispatch microbenchmark's request pool
    // below; scenarios defined after it use this copy.
    let req_count = requests;

    // -- End-to-end simulation scenarios (one item = one request). ------
    let w_azure = WorkloadSpec::azure_sampled(requests, seed)
        .with_load(SIM_CORES, 0.9)
        .generate();
    let sfs = SfsConfig::new(SIM_CORES);
    v.push(PerfScenario {
        name: "sim/sfs_azure",
        items: requests as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            let run = Sim::on(MachineParams::linux(SIM_CORES))
                .workload(&w_azure)
                .controller(SfsController::new(sfs))
                .run();
            std::hint::black_box(run.outcomes.len());
        }),
    });

    let w_cfs = WorkloadSpec::azure_sampled(requests, seed)
        .with_load(SIM_CORES, 0.9)
        .generate();
    v.push(PerfScenario {
        name: "sim/cfs_azure",
        items: requests as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            let run = Baseline::Cfs.run_on(SIM_CORES, &w_cfs);
            std::hint::black_box(run.outcomes.len());
        }),
    });

    let w_replay = WorkloadSpec::azure_replay(requests, seed)
        .with_load(SIM_CORES, 0.85)
        .generate();
    v.push(PerfScenario {
        name: "sim/sfs_azure_replay",
        items: requests as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            let run = Sim::on(MachineParams::linux(SIM_CORES))
                .workload(&w_replay)
                .controller(SfsController::new(sfs))
                .run();
            std::hint::black_box(run.outcomes.len());
        }),
    });

    let w_cluster = WorkloadSpec::azure_sampled(requests, seed)
        .with_load(4 * SIM_CORES, 0.9)
        .generate();
    let cluster = Cluster::new(4, SIM_CORES);
    v.push(PerfScenario {
        name: "sim/cluster4_ll_sfs",
        items: requests as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            // One worker thread: the scenario measures simulator cost, not
            // the host fan-out (which the cluster-matrix CI job covers).
            let run = cluster.run_with_threads(Placement::LeastLoaded, &cluster.sfs, &w_cluster, 1);
            std::hint::black_box(run.outcomes.len());
        }),
    });

    // The multi-region fleet end to end — front door, autoscaler, and
    // fault injector over 2 regions x 4 hosts — priced per *offered*
    // request (shed/lost requests still cost routing work).
    let w_fleet = WorkloadSpec::azure_sampled(requests, seed)
        .with_load(2 * 4 * SIM_CORES, 0.9)
        .generate();
    let fleet = Fleet::new(2, 4, SIM_CORES)
        .with_affinity(
            SimDuration::from_millis(10_000),
            SimDuration::from_millis(50),
        )
        .with_faults(FaultSpec::parse("crash:2+straggler:2+outage:1").expect("literal fault spec"));
    v.push(PerfScenario {
        name: "sim/fleet2x4_jsq_sfs",
        items: requests as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            // One worker thread, same rationale as the cluster scenario
            // (the fleet-matrix CI job covers the fan-out).
            let run = fleet.run_with_threads(Placement::JoinShortestQueue, &fleet.sfs, &w_fleet, 1);
            std::hint::black_box(run.outcomes.len() + run.shed.len() + run.lost.len());
        }),
    });

    // -- Hot-loop microbenchmarks (one item = one operation). -----------
    for &occ in &[64usize, 4096] {
        let name: &'static str = match occ {
            64 => "micro/cfs_pick_64",
            _ => "micro/cfs_pick_4096",
        };
        let mut rq = CfsRunqueue::new();
        for i in 0..occ {
            rq.enqueue(Pid(i as u64), (i as u64) * 1_000, 1024);
        }
        let mut top = (occ as u64) * 1_000;
        v.push(PerfScenario {
            name,
            items: 1,
            cfg: MeasureConfig::default(),
            body: Box::new(move || {
                // Pick the leftmost task, then re-enqueue it at the tail —
                // one pick cycle at constant occupancy.
                let (_, pid) = rq.pop().expect("non-empty");
                top += 1_000;
                rq.enqueue(pid, top, 1024);
                std::hint::black_box(rq.total_weight());
            }),
        });
    }

    // The EEVDF pick path in steady state: one core, a deep runqueue of
    // equal-weight tasks with effectively infinite CPU demand, each timed
    // operation advancing one minimum-granularity slice — so every
    // operation is one charge + eligibility scan + deadline-ordered pick
    // cycle at constant occupancy. Prices the virtual-deadline machinery
    // against micro/cfs_pick_*.
    let mut eevdf_machine = Machine::new(MachineParams {
        cores: 1,
        kpolicy: KernelPolicyKind::Eevdf,
        ..Default::default()
    });
    for i in 0..256u64 {
        eevdf_machine.spawn(TaskSpec {
            phases: vec![Phase::Cpu(SimDuration::from_millis(1 << 30))],
            policy: Policy::NORMAL,
            label: i,
        });
    }
    let eevdf_tick = SimDuration::from_micros(750);
    let mut eevdf_now = SimTime::ZERO;
    v.push(PerfScenario {
        name: "micro/eevdf_pick",
        items: 1,
        cfg: MeasureConfig::default(),
        body: Box::new(move || {
            eevdf_now += eevdf_tick;
            eevdf_machine.advance_to(eevdf_now);
            std::hint::black_box(eevdf_machine.total_ctx_switches());
        }),
    });

    // The deadline-class pick path: admitted CBS servers cycling through
    // budget exhaustion and deadline postponement over a background band.
    // Each timed operation advances one server runtime, so one operation
    // is one budget-exhaust + postpone + earliest-deadline repick.
    let mut dl_machine = Machine::new(MachineParams {
        cores: 1,
        kpolicy: KernelPolicyKind::Deadline,
        ..Default::default()
    });
    for i in 0..64u64 {
        dl_machine.spawn(TaskSpec {
            phases: vec![Phase::Cpu(SimDuration::from_millis(1 << 30))],
            policy: Policy::NORMAL,
            label: i,
        });
    }
    let dl_tick = SimDuration::from_millis(4);
    let mut dl_now = SimTime::ZERO;
    v.push(PerfScenario {
        name: "micro/dl_pick",
        items: 1,
        cfg: MeasureConfig::default(),
        body: Box::new(move || {
            dl_now += dl_tick;
            dl_machine.advance_to(dl_now);
            std::hint::black_box(dl_machine.total_ctx_switches());
        }),
    });

    // The SfsScheduler dispatch path in isolation: one full request
    // lifecycle through the controller's hooks per operation — arrival
    // (enqueue + worker pop + FILTER promotion), completion handling
    // (worker free + queue-membership check), annotation — against a
    // machine holding a fixed pool of live processes with time frozen, so
    // the controller's own bookkeeping is all that's measured.
    let cores = 4;
    let pool = 64u64;
    let mut machine = Machine::new(MachineParams::linux(cores));
    let mut requests: Vec<(Pid, Request)> = Vec::new();
    for i in 0..pool {
        let spec = TaskSpec {
            phases: vec![Phase::Cpu(SimDuration::from_millis(1 << 30))],
            policy: Policy::NORMAL,
            label: i,
        };
        let pid = machine.spawn(spec.clone());
        requests.push((
            pid,
            Request {
                id: i,
                arrival: SimTime::ZERO,
                app: AppKind::Fib,
                duration_ms: 1.0,
                injected_io_ms: None,
                cold_start_ms: None,
                spec,
            },
        ));
    }
    let mut ctl = SfsController::new(SfsConfig::new(cores));
    let mut actions = 0u64;
    let mut i = 0usize;
    let mut now = SimTime::ZERO;
    v.push(PerfScenario {
        name: "micro/sfs_dispatch",
        items: 1,
        cfg: MeasureConfig::default(),
        body: Box::new(move || {
            let (pid, req) = &requests[i % pool as usize];
            let pid = *pid;
            i += 1;
            // Advance a tick (tiny against the pool's day-long CPU phases,
            // so the machine stays quiescent) and fire due controller
            // timers, keeping the cycle stationary: every slice timer the
            // promotion below arms eventually pops as a stale no-op.
            now += SimDuration::from_micros(500);
            machine.advance_to(now);
            let mut view = MachineView::new(&mut machine, &mut actions);
            ctl.on_wakeup(&mut view);
            ctl.on_arrival(&mut view, req, pid);
            let rec = FinishedTask {
                pid,
                label: req.id,
                arrival: SimTime::ZERO,
                first_run: Some(SimTime::ZERO),
                finished: SimTime::ZERO,
                cpu_time: SimDuration::from_millis(1),
                io_time: SimDuration::ZERO,
                cpu_demand: SimDuration::from_millis(1),
                ideal: SimDuration::from_millis(1),
                ctx_switches: 0,
                migrations: 0,
            };
            ctl.on_notification(&mut view, &Notification::Finished(Box::new(rec)));
            let mut outcome = RequestOutcome {
                id: req.id,
                arrival: SimTime::ZERO,
                finished: SimTime::ZERO,
                turnaround: SimDuration::from_millis(1),
                ideal: SimDuration::from_millis(1),
                cpu_demand: SimDuration::from_millis(1),
                rte: 1.0,
                ctx_switches: 0,
                migrations: 0,
                queue_delay: SimDuration::ZERO,
                demoted: false,
                offloaded: false,
                filter_rounds: 0,
                io_blocks: 0,
            };
            ctl.annotate(&mut outcome);
            std::hint::black_box(outcome.queue_delay);
        }),
    });

    // The SMP balance tick in steady state: eight FIFO hogs pin every
    // core (no slice events — FIFO runs to block), a large CFS backlog
    // sits queued, and each timed operation advances exactly one balance
    // interval, firing one Balance event. The backlog equalises within
    // the first few (untimed warm-up irrelevant: calibration batches
    // absorb it) ticks, so the measured cost is the pure per-tick scan —
    // the price every SMP machine pays each interval whether or not it
    // migrates.
    let smp_cores = 8;
    let tick = SimDuration::from_millis(1);
    let mut smp_machine = Machine::new(MachineParams::linux(smp_cores).with_smp(
        SmpParams::balanced(tick, SimDuration::ZERO, SimDuration::ZERO),
    ));
    for i in 0..smp_cores as u64 {
        smp_machine.spawn(TaskSpec {
            phases: vec![Phase::Cpu(SimDuration::from_millis(1 << 30))],
            policy: Policy::Fifo { prio: 50 },
            label: i,
        });
    }
    for i in 0..256u64 {
        smp_machine.spawn(TaskSpec {
            phases: vec![Phase::Cpu(SimDuration::from_millis(1 << 20))],
            policy: Policy::NORMAL,
            label: 1_000 + i,
        });
    }
    let mut smp_now = SimTime::ZERO;
    v.push(PerfScenario {
        name: "micro/smp_balance_tick",
        items: 1,
        cfg: MeasureConfig::default(),
        body: Box::new(move || {
            smp_now += tick;
            smp_machine.advance_to(smp_now);
            std::hint::black_box(smp_machine.balance_migrations());
        }),
    });

    // End-to-end SFS on the SMP-enabled machine (balance tick + migration
    // + affinity costs on), same workload shape as sim/sfs_azure so the
    // two medians directly price the SMP machinery.
    let w_smp = WorkloadSpec::azure_sampled(req_count, seed)
        .with_load(SIM_CORES, 0.9)
        .generate();
    let smp_on = SmpParams::balanced(
        SimDuration::from_millis(4),
        SimDuration::from_micros(30),
        SimDuration::from_micros(15),
    );
    v.push(PerfScenario {
        name: "sim/sfs_azure_smp4",
        items: req_count as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            let run = Sim::on(MachineParams::linux(SIM_CORES).with_smp(smp_on))
                .workload(&w_smp)
                .controller(SfsController::new(sfs))
                .run();
            std::hint::black_box(run.outcomes.len());
        }),
    });

    // The same path end-to-end: a deep-backlog burst on 2 cores at 3x
    // load, where most requests travel enqueue -> pop -> overload bypass.
    let w_burst = WorkloadSpec::azure_sampled(DISPATCH_BURST, seed ^ 0xD15)
        .with_load(2, 3.0)
        .generate();
    let burst_cfg = SfsConfig::new(2);
    v.push(PerfScenario {
        name: "sim/sfs_overload_burst",
        items: DISPATCH_BURST as u64,
        cfg: sim_cfg(),
        body: Box::new(move || {
            let run = Sim::on(MachineParams::linux(2))
                .workload(&w_burst)
                .controller(SfsController::new(burst_cfg))
                .run();
            std::hint::black_box(run.telemetry.offloaded);
        }),
    });

    // -- The large-run capstone: streaming end to end. ------------------
    // Lazy workload stream -> Sim::run_streaming -> OutcomeSummary sketch
    // sink: nothing is ever materialised per request, so memory is
    // O(peak concurrency) while the scale climbs to 10M
    // (`SFS_PERF_LARGE_REQUESTS`; CI runs reduced). Unlike the scenarios
    // above, workload generation runs *inside* the timed body — at 10M
    // there is nowhere to precompute it — so its ns/req additionally
    // carries the generator; staying within ~1.3x of sim/sfs_azure is the
    // flat-scaling guarantee this scenario locks. One iteration is a whole
    // run (tens of seconds at full scale), so batches are few.
    let large_n = large_requests();
    let spec_large = WorkloadSpec::azure_sampled(large_n, seed).with_load(SIM_CORES, 0.9);
    let sfs_stream = SfsConfig::new(SIM_CORES).without_series();
    v.push(PerfScenario {
        name: "sim/sfs_azure_10m",
        items: large_n as u64,
        cfg: MeasureConfig {
            batch_target: Duration::from_millis(30),
            batches: 3,
        },
        body: Box::new(move || {
            let mut summary = OutcomeSummary::new();
            let run = Sim::on(MachineParams::linux(SIM_CORES))
                .controller(SfsController::new(sfs_stream))
                .run_streaming(spec_large.stream(), |o| summary.observe(&o));
            assert_eq!(run.requests, large_n as u64);
            std::hint::black_box(summary.turnaround_ms.count());
        }),
    });

    v
}

/// Measure every scenario (in order), reporting progress through
/// `progress` (scenario name, its measurement).
pub fn run_suite(
    scenarios: Vec<PerfScenario>,
    requests: usize,
    seed: u64,
    mut progress: impl FnMut(&str, &PerfRecord),
) -> BenchReport {
    let mut out = Vec::with_capacity(scenarios.len());
    for mut s in scenarios {
        let m: Measurement = measure_with(&mut s.body, &s.cfg);
        let rec = PerfRecord {
            name: s.name.to_string(),
            median_ns_per_req: m.median_ns / s.items as f64,
            p10_ns_per_req: m.p10_ns / s.items as f64,
            p90_ns_per_req: m.p90_ns / s.items as f64,
            throughput_rps: 1e9 * s.items as f64 / m.median_ns.max(1e-9),
        };
        progress(s.name, &rec);
        out.push(rec);
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        requests: requests as u64,
        seed,
        scenarios: out,
    }
}

impl BenchReport {
    /// Serialise to the `BENCH_sim.json` schema (stable key order).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"scenarios\": {\n");
        for (i, r) in self.scenarios.iter().enumerate() {
            s.push_str(&format!("    \"{}\": {{\n", r.name));
            s.push_str(&format!(
                "      \"median_ns_per_req\": {:.1},\n",
                r.median_ns_per_req
            ));
            s.push_str(&format!(
                "      \"p10_ns_per_req\": {:.1},\n",
                r.p10_ns_per_req
            ));
            s.push_str(&format!(
                "      \"p90_ns_per_req\": {:.1},\n",
                r.p90_ns_per_req
            ));
            s.push_str(&format!(
                "      \"throughput_rps\": {:.1}\n",
                r.throughput_rps
            ));
            s.push_str(if i + 1 == self.scenarios.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Parse a serialised report, validating the schema version.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let root = parse_json(text)?;
        let version = root
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("missing schema_version")? as u64;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {SCHEMA_VERSION}; \
                 regenerate the file with the current perf_suite"
            ));
        }
        let field = |obj: &Json, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_num)
                .ok_or(format!("missing numeric field {key:?}"))
        };
        let scen_obj = root.get("scenarios").ok_or("missing scenarios")?;
        let Json::Obj(pairs) = scen_obj else {
            return Err("scenarios is not an object".into());
        };
        let mut scenarios = Vec::with_capacity(pairs.len());
        for (name, rec) in pairs {
            scenarios.push(PerfRecord {
                name: name.clone(),
                median_ns_per_req: field(rec, "median_ns_per_req")?,
                p10_ns_per_req: field(rec, "p10_ns_per_req")?,
                p90_ns_per_req: field(rec, "p90_ns_per_req")?,
                throughput_rps: field(rec, "throughput_rps")?,
            });
        }
        Ok(BenchReport {
            schema_version: version,
            requests: root.get("requests").and_then(Json::as_num).unwrap_or(0.0) as u64,
            seed: root.get("seed").and_then(Json::as_num).unwrap_or(0.0) as u64,
            scenarios,
        })
    }
}

/// Result of diffing a fresh run against a baseline.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// One human line per scenario present in both reports.
    pub lines: Vec<String>,
    /// Scenarios whose median regressed past the tolerance band.
    pub regressions: Vec<String>,
}

/// Diff `current` against `baseline`: a scenario regresses when its median
/// exceeds `tolerance x` the baseline's. Scenarios missing on either side
/// are reported but never fail (the matrix may grow between PRs).
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Comparison {
    assert!(tolerance >= 1.0, "tolerance is a ratio >= 1");
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for cur in &current.scenarios {
        let Some(base) = baseline.scenarios.iter().find(|b| b.name == cur.name) else {
            lines.push(format!("{:<24} (new scenario, no baseline)", cur.name));
            continue;
        };
        let ratio = cur.median_ns_per_req / base.median_ns_per_req.max(1e-9);
        let verdict = if ratio > tolerance {
            regressions.push(format!(
                "{}: {:.1} ns/item vs baseline {:.1} ({:.2}x > {:.2}x band)",
                cur.name, cur.median_ns_per_req, base.median_ns_per_req, ratio, tolerance
            ));
            "REGRESSED"
        } else if ratio < 1.0 / tolerance {
            "improved"
        } else {
            "ok"
        };
        lines.push(format!(
            "{:<24} {:>10.1} ns/item  baseline {:>10.1}  ratio {:>5.2}x  {}",
            cur.name, cur.median_ns_per_req, base.median_ns_per_req, ratio, verdict
        ));
    }
    for base in &baseline.scenarios {
        if !current.scenarios.iter().any(|c| c.name == base.name) {
            lines.push(format!("{:<24} (baseline only, not run)", base.name));
        }
    }
    Comparison { lines, regressions }
}

// ----------------------------------------------------------------------
// Minimal JSON reader (objects, strings, numbers) for the BENCH schema.
// ----------------------------------------------------------------------

/// A parsed JSON value — only the shapes the BENCH schema uses.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A number (all JSON numbers read as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` on other shapes or a missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a JSON document (objects / strings / numbers only — the BENCH
/// schema needs nothing else; arrays, booleans and null are rejected).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unsupported JSON at byte {pos}: {:?}", *c as char)),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        pairs.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let start = *pos;
    while *pos < b.len() && b[*pos] != b'"' {
        if b[*pos] == b'\\' {
            return Err("escape sequences unsupported".into());
        }
        *pos += 1;
    }
    if *pos >= b.len() {
        return Err("unterminated string".into());
    }
    let s = std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .to_string();
    *pos += 1;
    Ok(s)
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            requests: 400,
            seed: 7,
            scenarios: vec![
                PerfRecord {
                    name: "sim/a".into(),
                    median_ns_per_req: 1000.0,
                    p10_ns_per_req: 900.0,
                    p90_ns_per_req: 1100.0,
                    throughput_rps: 1e6,
                },
                PerfRecord {
                    name: "micro/b".into(),
                    median_ns_per_req: 50.5,
                    p10_ns_per_req: 49.5,
                    p90_ns_per_req: 52.5,
                    throughput_rps: 19.8e6,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless_at_emitted_precision() {
        let r = report();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut r = report();
        r.schema_version = SCHEMA_VERSION + 1;
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn compare_flags_only_out_of_band_regressions() {
        let base = report();
        let mut cur = report();
        cur.scenarios[0].median_ns_per_req = 1900.0; // 1.9x: inside 2x band
        cur.scenarios[1].median_ns_per_req = 150.0; // ~3x: regression
        let c = compare(&cur, &base, 2.0);
        assert_eq!(c.regressions.len(), 1);
        assert!(c.regressions[0].contains("micro/b"), "{:?}", c.regressions);
        // Scenario drift is reported, never fatal.
        cur.scenarios.push(PerfRecord {
            name: "sim/new".into(),
            median_ns_per_req: 1.0,
            p10_ns_per_req: 1.0,
            p90_ns_per_req: 1.0,
            throughput_rps: 1e9,
        });
        let c = compare(&cur, &base, 2.0);
        assert_eq!(c.regressions.len(), 1);
        assert!(c.lines.iter().any(|l| l.contains("no baseline")));
    }

    #[test]
    fn minimal_parser_handles_the_schema_shapes() {
        let v = parse_json(r#"{"a": 1.5, "b": {"c": -2e3, "d": "x"}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_num), Some(1.5));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_num),
            Some(-2000.0)
        );
        assert!(parse_json("[1, 2]").is_err());
        assert!(parse_json("{\"a\": true}").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
    }

    #[test]
    fn suite_names_are_unique_and_stable() {
        let s = suite(16, 1);
        let names: Vec<&str> = s.iter().map(|p| p.name).collect();
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len(), "duplicate scenario names");
        assert!(names.contains(&"micro/cfs_pick_4096"));
        assert!(names.contains(&"micro/sfs_dispatch"));
        assert!(names.contains(&"sim/cluster4_ll_sfs"));
        assert!(names.contains(&"micro/smp_balance_tick"));
        assert!(names.contains(&"micro/eevdf_pick"));
        assert!(names.contains(&"micro/dl_pick"));
        assert!(names.contains(&"sim/sfs_azure_smp4"));
        assert!(names.contains(&"sim/sfs_azure_10m"));
    }

    #[test]
    fn large_scenario_streams_at_tiny_scale() {
        // The capstone scenario's body at a toy scale: exercises the full
        // stream -> run_streaming -> sketch pipeline inside the perf
        // harness shape without the 10M cost.
        let spec = WorkloadSpec::azure_sampled(300, 5).with_load(4, 0.9);
        let mut summary = OutcomeSummary::new();
        let run = Sim::on(MachineParams::linux(4))
            .controller(SfsController::new(SfsConfig::new(4).without_series()))
            .run_streaming(spec.stream(), |o| summary.observe(&o));
        assert_eq!(run.requests, 300);
        assert_eq!(summary.requests, 300);
        assert!(summary.turnaround_ms.percentile(50.0) > 0.0);
    }
}
