//! Criterion microbenchmarks for the scheduler substrate's hot paths:
//! CFS runqueue operations at various occupancies, RT queue operations,
//! time-slice adaptation, and FaaSBench sampling throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sfs_core::{SfsConfig, SliceController};
use sfs_sched::{CfsRunqueue, Pid, RtRunqueue};
use sfs_simcore::{SimDuration, SimRng, SimTime};
use sfs_workload::Table1Sampler;

fn bench_cfs_runqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("cfs_runqueue");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("enqueue_pop", n), &n, |b, &n| {
            // Pre-build a queue of n tasks; measure one enqueue + pop cycle
            // against that occupancy.
            let mut rq = CfsRunqueue::new();
            for i in 0..n {
                rq.enqueue(Pid(i as u64), (i as u64) * 1_000, 1024);
            }
            let mut v = (n as u64) * 1_000;
            b.iter(|| {
                v += 1;
                rq.enqueue(Pid(u64::MAX), v, 1024);
                let popped = rq.pop().expect("non-empty");
                // Reinsert the popped entry to keep occupancy stable.
                rq.enqueue(popped.1, v + 1, 1024);
                let back = rq.pop().expect("non-empty");
                black_box(back);
            });
        });
    }
    g.finish();
}

fn bench_rt_runqueue(c: &mut Criterion) {
    c.bench_function("rt_runqueue/push_pop_64prios", |b| {
        let mut rq = RtRunqueue::new();
        for i in 0..512u64 {
            rq.push_back(Pid(i), (i % 64) as u8 + 1);
        }
        let mut i = 512u64;
        b.iter(|| {
            i += 1;
            rq.push_back(Pid(i), (i % 64) as u8 + 1);
            black_box(rq.pop());
        });
    });
}

fn bench_timeslice(c: &mut Criterion) {
    c.bench_function("timeslice/on_arrival_n100", |b| {
        let cfg = SfsConfig::new(16);
        let mut sc = SliceController::new(&cfg);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(800);
            sc.on_arrival(t);
            black_box(sc.current());
        });
    });
}

fn bench_workload_gen(c: &mut Criterion) {
    c.bench_function("faasbench/table1_sample", |b| {
        let s = Table1Sampler::new();
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| black_box(s.sample_ms(&mut rng)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cfs_runqueue, bench_rt_runqueue, bench_timeslice, bench_workload_gen
}
criterion_main!(benches);
