//! Property-style invariants for every registered kernel policy.
//!
//! The [`KernelPolicy`] contract promises that any policy — the ported
//! CFS/SRTF pair and the new EEVDF/deadline/SRP disciplines alike — keeps
//! the machine's bookkeeping sound: no task is lost or duplicated, CPU
//! time charged equals CPU demand (with contention off), timestamps are
//! causally ordered, and the conservation walk (each live task in exactly
//! one place) holds at arbitrary mid-run instants, including across
//! `set_policy` churn. Each case is seeded through `SimRng`, so failures
//! reproduce exactly.

use std::collections::BTreeSet;

use sfs_repro::sched::{
    KernelPolicyKind, Machine, MachineParams, Phase, Policy, ProcState, SmpParams, TaskSpec,
};
use sfs_repro::simcore::{SimDuration, SimRng, SimTime};

const CORES: [usize; 4] = [1, 2, 4, 8];
const SEEDS: [u64; 3] = [2, 13, 777];

fn case_rng(kind: KernelPolicyKind, cores: usize, seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
        .derive(kind.name())
        .derive(&cores.to_string())
}

fn random_policy(rng: &mut SimRng) -> Policy {
    match rng.uniform_u64(0, 3) {
        0 => Policy::Normal {
            nice: rng.uniform_u64(0, 10) as i8 - 5,
        },
        1 => Policy::NORMAL,
        2 => Policy::Fifo {
            prio: rng.uniform_u64(1, 99) as u8,
        },
        _ => Policy::Rr {
            prio: rng.uniform_u64(1, 99) as u8,
        },
    }
}

fn random_spec(rng: &mut SimRng, label: u64) -> TaskSpec {
    let mut phases = Vec::new();
    if rng.chance(0.25) {
        phases.push(Phase::Io(SimDuration::from_micros(
            rng.uniform_u64(100, 8_000),
        )));
    }
    phases.push(Phase::Cpu(SimDuration::from_micros(
        rng.uniform_u64(100, 12_000),
    )));
    if rng.chance(0.3) {
        phases.push(Phase::Io(SimDuration::from_micros(
            rng.uniform_u64(100, 4_000),
        )));
        phases.push(Phase::Cpu(SimDuration::from_micros(
            rng.uniform_u64(100, 6_000),
        )));
    }
    TaskSpec {
        phases,
        policy: random_policy(rng),
        label,
    }
}

/// Drive one machine through a randomized spawn/set_policy timeline with
/// conservation checks at every step, then verify the terminal invariants.
fn check_kind(kind: KernelPolicyKind, cores: usize, seed: u64, smp: SmpParams) {
    let mut rng = case_rng(kind, cores, seed);
    let params = MachineParams {
        cores,
        kpolicy: kind,
        ..Default::default()
    }
    .with_smp(smp);
    let mut m = Machine::new(params);
    let n_tasks = rng.uniform_u64(20, 60);
    let mut pids = Vec::new();
    let mut demand = Vec::new();
    let mut t = SimTime::ZERO;
    let mut last_cpu_seen = Vec::new();
    for i in 0..n_tasks {
        t += SimDuration::from_micros(rng.uniform_u64(0, 3_000));
        m.advance_to(t);
        let spec = random_spec(&mut rng, i);
        demand.push(spec.cpu_demand());
        pids.push(m.spawn(spec));
        last_cpu_seen.push(SimDuration::ZERO);
        // Mid-run churn: flip a random live task's policy, then verify the
        // machine is still internally consistent and utime never rewinds.
        if rng.chance(0.3) {
            let target = pids[rng.uniform_u64(0, pids.len() as u64 - 1) as usize];
            m.set_policy(target, random_policy(&mut rng));
        }
        m.assert_conservation();
        for (idx, &pid) in pids.iter().enumerate() {
            let now_cpu = m.cpu_time(pid);
            assert!(
                now_cpu >= last_cpu_seen[idx],
                "{kind} cores={cores} seed={seed}: utime of {pid} went backwards"
            );
            last_cpu_seen[idx] = now_cpu;
        }
    }
    let notes = m.run_until_quiescent();
    m.assert_conservation();

    let ctx = format!("{kind} cores={cores} seed={seed}");
    assert_eq!(
        m.finished().len(),
        pids.len(),
        "{ctx}: every spawned task must finish"
    );
    assert_eq!(m.live_tasks(), 0, "{ctx}: machine must quiesce empty");
    let unique: BTreeSet<_> = m.finished().iter().map(|f| f.pid).collect();
    assert_eq!(unique.len(), pids.len(), "{ctx}: duplicate completions");
    for f in m.finished() {
        assert_eq!(
            f.cpu_time, demand[f.pid.0 as usize],
            "{ctx}: {} charged {} for demand {}",
            f.pid, f.cpu_time, f.cpu_demand
        );
        let first = f.first_run.expect("every task has a CPU phase");
        assert!(first >= f.arrival, "{ctx}: {} ran before arrival", f.pid);
        assert!(
            f.finished >= first,
            "{ctx}: {} finished before first run",
            f.pid
        );
        assert_eq!(m.proc_state(f.pid), ProcState::Dead, "{ctx}: zombie state");
    }
    // Every completion surfaced exactly once as a notification too.
    let note_finishes = notes
        .iter()
        .filter(|n| matches!(n, sfs_repro::sched::Notification::Finished(_)))
        .count();
    assert!(
        note_finishes <= pids.len(),
        "{ctx}: more Finished notifications than tasks"
    );
}

#[test]
fn every_policy_conserves_tasks_and_time() {
    for kind in KernelPolicyKind::ALL {
        for cores in CORES {
            for seed in SEEDS {
                check_kind(kind, cores, seed, SmpParams::default());
            }
        }
    }
}

#[test]
fn every_policy_survives_smp_balancing() {
    let smp = SmpParams::balanced(
        SimDuration::from_millis(1),
        SimDuration::from_micros(300),
        SimDuration::from_micros(100),
    );
    for kind in KernelPolicyKind::ALL {
        for cores in [2, 8] {
            check_kind(kind, cores, 99, smp);
        }
    }
}

#[test]
fn every_policy_is_deterministic() {
    // Same seed, same schedule — byte-identical completion records.
    for kind in KernelPolicyKind::ALL {
        let run = || {
            let params = MachineParams {
                cores: 4,
                kpolicy: kind,
                ..Default::default()
            };
            let mut m = Machine::new(params);
            let mut rng = case_rng(kind, 4, 5150);
            let mut t = SimTime::ZERO;
            for i in 0..40 {
                t += SimDuration::from_micros(rng.uniform_u64(0, 2_500));
                m.advance_to(t);
                m.spawn(random_spec(&mut rng, i));
            }
            m.run_until_quiescent();
            format!("{:?}", m.finished())
        };
        assert_eq!(run(), run(), "{kind}: nondeterministic schedule");
    }
}
