//! Differential suite for the kernel-policy refactor.
//!
//! The `reference` module below embeds the machine as it existed *before*
//! the scheduling disciplines were extracted behind the [`KernelPolicy`]
//! trait: a verbatim port of the pre-refactor `machine.rs` (hard-wired
//! `SchedMode::{Linux, Srtf}` dispatch, CFS/RT/SRTF logic inlined), with
//! only the observability extras (tracing, streaming retention) stripped.
//!
//! The driver generates randomized workloads — mixed CPU/IO phase shapes,
//! mixed `SCHED_NORMAL`/`SCHED_FIFO`/`SCHED_RR` policies, and mid-run
//! `set_policy` promotions/demotions at random instants — and replays the
//! identical operation sequence on both machines. Every notification, every
//! completion record, and the machine-wide context-switch total must match
//! bit-for-bit. This is the lock proving the ported CFS and SRTF policies
//! are the same schedulers, not merely similar ones.

use sfs_sched::{
    KernelPolicyKind, Machine, MachineParams, Notification, Phase, Policy, SmpParams, TaskSpec,
};
use sfs_simcore::{SimDuration, SimRng, SimTime};

/// The pre-refactor machine, ported from the tree at the commit preceding
/// the kernel-policy extraction. Scheduling decisions are hard-wired per
/// `SchedMode`; everything else (event loop, accounting, contention, SMP
/// balancing) is byte-equivalent to the current machine core.
mod reference {
    #![allow(dead_code)]

    use std::collections::BTreeSet;

    use sfs_sched::smp::pick_imbalance;
    use sfs_sched::{
        weight_of_nice, CfsParams, CfsRunqueue, FinishedTask, Phase, Pid, Policy, ProcState,
        RtRunqueue, SmpParams, TaskSpec, RR_TIMESLICE,
    };
    use sfs_simcore::{EventQueue, SimDuration, SimTime};

    /// Scheduling regime for the whole machine (pre-refactor selector).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SchedMode {
        Linux,
        Srtf,
    }

    #[derive(Debug, Clone, Copy)]
    pub struct RefParams {
        pub cores: usize,
        pub cfs: CfsParams,
        pub ctx_switch_cost: SimDuration,
        pub contention_beta: f64,
        pub contention_cap: f64,
        pub mode: SchedMode,
        pub smp: SmpParams,
    }

    impl Default for RefParams {
        fn default() -> Self {
            RefParams {
                cores: 4,
                cfs: CfsParams::default(),
                ctx_switch_cost: SimDuration::from_micros(5),
                contention_beta: 0.0,
                contention_cap: 6.0,
                mode: SchedMode::Linux,
                smp: SmpParams::default(),
            }
        }
    }

    /// Pre-refactor copy of the crate-private `Task` bookkeeping struct.
    #[derive(Debug, Clone)]
    struct Task {
        pid: Pid,
        label: u64,
        phases: Vec<Phase>,
        phase_idx: usize,
        phase_rem: SimDuration,
        policy: Policy,
        state: ProcState,
        arrival: SimTime,
        first_run: Option<SimTime>,
        cpu_time: SimDuration,
        io_time: SimDuration,
        cpu_demand: SimDuration,
        ideal: SimDuration,
        vruntime: u64,
        ctx_switches: u64,
        migrations: u64,
        home_core: Option<usize>,
        last_core: Option<usize>,
        pending_migration_cost: SimDuration,
    }

    impl Task {
        fn new(pid: Pid, spec: TaskSpec, now: SimTime) -> Task {
            let cpu_demand = spec.cpu_demand();
            let ideal = spec.ideal_duration();
            let phase_rem = spec.phases[0].duration();
            Task {
                pid,
                label: spec.label,
                phases: spec.phases,
                phase_idx: 0,
                phase_rem,
                policy: spec.policy,
                state: ProcState::Runnable,
                arrival: now,
                first_run: None,
                cpu_time: SimDuration::ZERO,
                io_time: SimDuration::ZERO,
                cpu_demand,
                ideal,
                vruntime: 0,
                ctx_switches: 0,
                migrations: 0,
                home_core: None,
                last_core: None,
                pending_migration_cost: SimDuration::ZERO,
            }
        }

        fn phase(&self) -> Option<Phase> {
            self.phases.get(self.phase_idx).copied()
        }

        fn remaining_cpu(&self) -> SimDuration {
            let mut rem = SimDuration::ZERO;
            for (i, p) in self.phases.iter().enumerate().skip(self.phase_idx) {
                if p.is_cpu() {
                    if i == self.phase_idx {
                        rem += self.phase_rem;
                    } else {
                        rem += p.duration();
                    }
                }
            }
            rem
        }

        fn finished_record(&self, finished: SimTime) -> FinishedTask {
            debug_assert_eq!(self.state, ProcState::Dead);
            FinishedTask {
                pid: self.pid,
                label: self.label,
                arrival: self.arrival,
                first_run: self.first_run,
                finished,
                cpu_time: self.cpu_time,
                io_time: self.io_time,
                cpu_demand: self.cpu_demand,
                ideal: self.ideal,
                ctx_switches: self.ctx_switches,
                migrations: self.migrations,
            }
        }
    }

    /// Same shape as the crate's `Notification`; variant Debug output is
    /// identical, which is what the differential digest compares.
    #[derive(Debug, Clone)]
    pub enum Notification {
        FirstRun(Pid, SimTime),
        Blocked(Pid, SimTime),
        Woke(Pid, SimTime),
        Finished(Box<FinishedTask>),
    }

    #[derive(Debug, Clone)]
    enum Ev {
        CoreFire { core: usize, gen: u64 },
        Wake { pid: Pid, io: SimDuration },
        Balance,
    }

    #[derive(Debug, Clone)]
    struct Core {
        current: Option<Pid>,
        gen: u64,
        last_ran: Option<Pid>,
        run_start: SimTime,
        slice_start: SimTime,
        slice_end: SimTime,
        clock: SimTime,
        cfs: CfsRunqueue,
    }

    impl Core {
        fn new() -> Core {
            Core {
                current: None,
                gen: 0,
                last_ran: None,
                run_start: SimTime::ZERO,
                slice_start: SimTime::ZERO,
                slice_end: SimTime::MAX,
                clock: SimTime::ZERO,
                cfs: CfsRunqueue::new(),
            }
        }

        fn cfs_nr(&self, running_is_cfs: bool) -> u64 {
            self.cfs.len() as u64 + u64::from(running_is_cfs)
        }
    }

    /// The pre-refactor simulated machine.
    #[derive(Debug)]
    pub struct RefMachine {
        params: RefParams,
        now: SimTime,
        tasks: Vec<Task>,
        cores: Vec<Core>,
        rt: RtRunqueue,
        srtf_pool: BTreeSet<(u64, Pid)>,
        events: EventQueue<Ev>,
        out: Vec<Notification>,
        finished: Vec<FinishedTask>,
        total_ctx_switches: u64,
        balance_migrations: u64,
        balance_armed: bool,
        live_tasks: usize,
        active_tasks: usize,
    }

    impl RefMachine {
        pub fn new(params: RefParams) -> RefMachine {
            assert!(params.cores >= 1, "machine needs at least one core");
            RefMachine {
                cores: (0..params.cores).map(|_| Core::new()).collect(),
                params,
                now: SimTime::ZERO,
                tasks: Vec::new(),
                rt: RtRunqueue::new(),
                srtf_pool: BTreeSet::new(),
                events: EventQueue::new(),
                out: Vec::new(),
                finished: Vec::new(),
                total_ctx_switches: 0,
                balance_migrations: 0,
                balance_armed: false,
                live_tasks: 0,
                active_tasks: 0,
            }
        }

        fn contention_factor(&self) -> f64 {
            if self.params.contention_beta <= 0.0 || self.active_tasks <= self.params.cores {
                return 1.0;
            }
            let ratio = self.active_tasks as f64 / self.params.cores as f64;
            (1.0 + self.params.contention_beta * ratio.log2()).min(self.params.contention_cap)
        }

        fn set_state(&mut self, pid: Pid, new: ProcState) {
            let old = self.task(pid).state;
            let was_active = matches!(old, ProcState::Runnable | ProcState::Running);
            let is_active = matches!(new, ProcState::Runnable | ProcState::Running);
            if was_active && !is_active {
                self.active_tasks -= 1;
            } else if !was_active && is_active {
                self.active_tasks += 1;
            }
            self.task_mut(pid).state = new;
        }

        pub fn finished(&self) -> &[FinishedTask] {
            &self.finished
        }

        pub fn total_ctx_switches(&self) -> u64 {
            self.total_ctx_switches
        }

        pub fn balance_migrations(&self) -> u64 {
            self.balance_migrations
        }

        pub fn assert_conservation(&self) {
            for (i, c) in self.cores.iter().enumerate() {
                if let Some(pid) = c.current {
                    assert_eq!(self.task(pid).state, ProcState::Running);
                    assert_eq!(self.task(pid).home_core, Some(i));
                }
            }
            for t in &self.tasks {
                let queued_cfs = self.cores.iter().filter(|c| c.cfs.contains(t.pid)).count();
                let queued_rt = usize::from(self.rt.contains(t.pid));
                let queued_srtf = self.srtf_pool.iter().filter(|&&(_, p)| p == t.pid).count();
                let running = self
                    .cores
                    .iter()
                    .filter(|c| c.current == Some(t.pid))
                    .count();
                let places = queued_cfs + queued_rt + queued_srtf + running;
                match t.state {
                    ProcState::Running => assert_eq!((running, places), (1, 1)),
                    ProcState::Runnable => assert_eq!((running, places), (0, 1)),
                    ProcState::Sleeping | ProcState::Dead => assert_eq!(places, 0),
                }
            }
        }

        pub fn spawn(&mut self, spec: TaskSpec) -> Pid {
            spec.validate().expect("invalid task spec");
            let pid = Pid(self.tasks.len() as u64);
            let task = Task::new(pid, spec, self.now);
            let leading_io = task.phase();
            self.live_tasks += 1;
            if self.params.smp.balancing()
                && self.params.mode == SchedMode::Linux
                && !self.balance_armed
            {
                self.balance_armed = true;
                self.events
                    .push(self.now + self.params.smp.balance_interval, Ev::Balance);
            }
            self.active_tasks += 1; // Task::new starts Runnable
            self.tasks.push(task);
            if let Some(Phase::Io(d)) = leading_io {
                self.set_state(pid, ProcState::Sleeping);
                self.events.push(self.now + d, Ev::Wake { pid, io: d });
            } else {
                self.make_runnable(pid);
            }
            pid
        }

        pub fn set_policy(&mut self, pid: Pid, policy: Policy) {
            if self.task(pid).state == ProcState::Dead || self.task(pid).policy == policy {
                self.task_mut(pid).policy = policy;
                return;
            }
            if self.params.mode == SchedMode::Srtf {
                self.task_mut(pid).policy = policy;
                return;
            }
            match self.task(pid).state {
                ProcState::Sleeping => {
                    self.task_mut(pid).policy = policy;
                }
                ProcState::Runnable => {
                    self.dequeue_runnable(pid);
                    self.task_mut(pid).policy = policy;
                    self.make_runnable(pid);
                }
                ProcState::Running => {
                    let core_id = self
                        .core_running(pid)
                        .expect("running task must occupy a core");
                    self.charge(core_id);
                    let old = self.task(pid).policy;
                    self.task_mut(pid).policy = policy;
                    if old.is_realtime() && !policy.is_realtime() {
                        self.preempt_current(core_id);
                        self.reschedule(core_id);
                    } else {
                        self.cores[core_id].slice_start = self.now;
                        self.cores[core_id].slice_end = match policy {
                            Policy::Fifo { .. } => SimTime::MAX,
                            Policy::Rr { .. } => self.now + RR_TIMESLICE,
                            Policy::Normal { nice } => {
                                let c = &self.cores[core_id];
                                let w = weight_of_nice(nice);
                                let nr = c.cfs_nr(true);
                                let total = c.cfs.total_weight() + w as u64;
                                self.now + self.params.cfs.slice(nr, w, total)
                            }
                        };
                        self.cores[core_id].gen += 1;
                        self.arm_core_event(core_id);
                    }
                }
                ProcState::Dead => unreachable!(),
            }
        }

        pub fn proc_state(&self, pid: Pid) -> ProcState {
            self.task(pid).state
        }

        pub fn cpu_time(&self, pid: Pid) -> SimDuration {
            let t = self.task(pid);
            let mut total = t.cpu_time;
            if t.state == ProcState::Running {
                if let Some(core_id) = self.core_running(pid) {
                    let c = &self.cores[core_id];
                    if self.now > c.run_start {
                        total += self.now - c.run_start;
                    }
                }
            }
            total
        }

        pub fn advance_to(&mut self, t: SimTime) -> Vec<Notification> {
            debug_assert!(t >= self.now, "time must not go backwards");
            while let Some((at, ev)) = self.events.pop_until(t) {
                self.now = at;
                self.handle(ev);
            }
            self.now = t;
            std::mem::take(&mut self.out)
        }

        pub fn run_until_quiescent(&mut self) -> Vec<Notification> {
            while let Some((at, ev)) = self.events.pop() {
                self.now = at;
                self.handle(ev);
            }
            std::mem::take(&mut self.out)
        }

        fn task(&self, pid: Pid) -> &Task {
            &self.tasks[pid.0 as usize]
        }

        fn task_mut(&mut self, pid: Pid) -> &mut Task {
            &mut self.tasks[pid.0 as usize]
        }

        fn core_running(&self, pid: Pid) -> Option<usize> {
            self.task(pid)
                .home_core
                .filter(|&c| self.cores[c].current == Some(pid))
        }

        fn weight(&self, pid: Pid) -> u32 {
            match self.task(pid).policy {
                Policy::Normal { nice } => weight_of_nice(nice),
                _ => weight_of_nice(0),
            }
        }

        fn charge(&mut self, core_id: usize) {
            let Some(pid) = self.cores[core_id].current else {
                return;
            };
            let run_start = self.cores[core_id].run_start;
            if self.now <= run_start {
                return;
            }
            let ran = self.now - run_start;
            self.cores[core_id].run_start = self.now;
            self.cores[core_id].clock = self.cores[core_id].clock.max(self.now);
            let weight = self.weight(pid);
            let is_cfs = !self.task(pid).policy.is_realtime();
            let progress = ran.mul_f64(1.0 / self.contention_factor());
            let t = self.task_mut(pid);
            t.cpu_time += ran;
            t.phase_rem = t.phase_rem.saturating_sub(progress);
            if is_cfs {
                t.vruntime += CfsParams::vruntime_delta(ran, weight);
                let v = t.vruntime;
                let leftmost = self.cores[core_id].cfs.peek().map(|(lv, _)| lv);
                let floor = leftmost.map_or(v, |lv| lv.min(v));
                self.cores[core_id].cfs.advance_min_vruntime(floor);
            }
        }

        fn make_runnable(&mut self, pid: Pid) {
            self.set_state(pid, ProcState::Runnable);
            match self.params.mode {
                SchedMode::Srtf => self.enqueue_srtf(pid),
                SchedMode::Linux => match self.task(pid).policy {
                    Policy::Fifo { prio } | Policy::Rr { prio } => {
                        self.enqueue_rt(pid, prio, false)
                    }
                    Policy::Normal { .. } => self.enqueue_cfs(pid),
                },
            }
        }

        fn dequeue_runnable(&mut self, pid: Pid) {
            debug_assert_eq!(self.task(pid).state, ProcState::Runnable);
            if self.params.mode == SchedMode::Srtf {
                let key = (self.task(pid).remaining_cpu().as_nanos(), pid);
                self.srtf_pool.remove(&key);
                return;
            }
            if self.task(pid).policy.is_realtime() {
                self.rt.remove(pid);
            } else if let Some(core_id) = self.task(pid).home_core {
                let v = self.task(pid).vruntime;
                self.cores[core_id].cfs.remove(pid, v);
            }
        }

        fn enqueue_srtf(&mut self, pid: Pid) {
            let rem = self.task(pid).remaining_cpu().as_nanos();
            self.srtf_pool.insert((rem, pid));
            if let Some(idle) = self.cores.iter().position(|c| c.current.is_none()) {
                self.reschedule(idle);
                return;
            }
            let victim = (0..self.cores.len()).max_by_key(|&i| {
                let vpid = self.cores[i].current.expect("no idle cores");
                self.remaining_running(i, vpid)
            });
            if let Some(vc) = victim {
                let vpid = self.cores[vc].current.expect("no idle cores");
                if self.remaining_running(vc, vpid) > self.task(pid).remaining_cpu().as_nanos() {
                    self.charge(vc);
                    self.preempt_current(vc);
                    self.reschedule(vc);
                }
            }
        }

        fn remaining_running(&self, core_id: usize, pid: Pid) -> u64 {
            let t = self.task(pid);
            let c = &self.cores[core_id];
            let inflight = if self.now > c.run_start {
                (self.now - c.run_start).as_nanos()
            } else {
                0
            };
            t.remaining_cpu().as_nanos().saturating_sub(inflight)
        }

        fn enqueue_rt(&mut self, pid: Pid, prio: u8, resumed: bool) {
            if resumed {
                self.rt.push_front(pid, prio);
            } else {
                self.rt.push_back(pid, prio);
            }
            if let Some(idle) = self.cores.iter().position(|c| c.current.is_none()) {
                self.reschedule(idle);
                return;
            }
            let cfs_victim = (0..self.cores.len()).find(|&i| {
                let vpid = self.cores[i].current.expect("no idle cores");
                !self.task(vpid).policy.is_realtime()
            });
            if let Some(vc) = cfs_victim {
                self.charge(vc);
                self.preempt_current(vc);
                self.reschedule(vc);
                return;
            }
            let (vc, vprio) = (0..self.cores.len())
                .map(|i| {
                    let vpid = self.cores[i].current.expect("no idle cores");
                    (i, self.task(vpid).policy.rt_prio().unwrap_or(0))
                })
                .min_by_key(|&(_, p)| p)
                .expect("at least one core");
            if self.rt.would_preempt(vprio) {
                let _ = vc;
                self.charge(vc);
                self.preempt_current(vc);
                self.reschedule(vc);
            }
        }

        fn enqueue_cfs(&mut self, pid: Pid) {
            let core_id = (0..self.cores.len())
                .min_by_key(|&i| {
                    let c = &self.cores[i];
                    let running_cfs = c
                        .current
                        .is_some_and(|p| !self.task(p).policy.is_realtime());
                    c.cfs_nr(running_cfs)
                })
                .expect("at least one core");
            let floor = self.cores[core_id]
                .cfs
                .place_vruntime(self.task(pid).vruntime);
            self.task_mut(pid).vruntime = floor;
            if self.task(pid).home_core != Some(core_id) && self.task(pid).first_run.is_some() {
                self.task_mut(pid).migrations += 1;
            }
            self.task_mut(pid).home_core = Some(core_id);
            let w = self.weight(pid);
            self.cores[core_id].cfs.enqueue(pid, floor, w);

            let core = &self.cores[core_id];
            match core.current {
                None => self.reschedule(core_id),
                Some(curr) if !self.task(curr).policy.is_realtime() => {
                    let curr_v = self.running_vruntime(core_id, curr);
                    let gran = self.params.cfs.wakeup_granularity.as_nanos();
                    if floor + gran < curr_v {
                        self.charge(core_id);
                        self.preempt_current(core_id);
                        self.reschedule(core_id);
                    } else {
                        self.refresh_current_slice(core_id);
                    }
                }
                Some(_) => {} // RT running: CFS task waits.
            }
        }

        fn refresh_current_slice(&mut self, core_id: usize) {
            let Some(pid) = self.cores[core_id].current else {
                return;
            };
            let Policy::Normal { nice } = self.task(pid).policy else {
                return;
            };
            if self.params.mode == SchedMode::Srtf {
                return;
            }
            let w = weight_of_nice(nice);
            let (nr, total) = {
                let c = &self.cores[core_id];
                (c.cfs_nr(true), c.cfs.total_weight() + w as u64)
            };
            let slice = self.params.cfs.slice(nr, w, total);
            let new_end = self.cores[core_id].slice_start + slice;
            self.cores[core_id].slice_end = new_end;
            self.cores[core_id].gen += 1;
            if new_end <= self.now {
                self.charge(core_id);
                if self.task(pid).phase_rem.is_zero() {
                    self.phase_complete(core_id, pid);
                } else {
                    self.slice_expired(core_id, pid);
                }
            } else {
                self.arm_core_event(core_id);
            }
        }

        fn running_vruntime(&self, core_id: usize, pid: Pid) -> u64 {
            let t = self.task(pid);
            let c = &self.cores[core_id];
            let inflight = if self.now > c.run_start {
                CfsParams::vruntime_delta(self.now - c.run_start, self.weight(pid))
            } else {
                0
            };
            t.vruntime + inflight
        }

        fn preempt_current(&mut self, core_id: usize) {
            let Some(pid) = self.cores[core_id].current.take() else {
                return;
            };
            self.cores[core_id].gen += 1;
            self.set_state(pid, ProcState::Runnable);
            let others_waiting = !self.rt.is_empty()
                || !self.srtf_pool.is_empty()
                || self.cores.iter().any(|c| !c.cfs.is_empty());
            if others_waiting {
                self.task_mut(pid).ctx_switches += 1;
                self.total_ctx_switches += 1;
            }
            match self.params.mode {
                SchedMode::Srtf => {
                    let rem = self.task(pid).remaining_cpu().as_nanos();
                    self.srtf_pool.insert((rem, pid));
                }
                SchedMode::Linux => match self.task(pid).policy {
                    Policy::Fifo { prio } => self.rt.push_front(pid, prio),
                    Policy::Rr { prio } => self.rt.push_front(pid, prio),
                    Policy::Normal { .. } => {
                        let floor = self.cores[core_id]
                            .cfs
                            .place_vruntime(self.task(pid).vruntime);
                        self.task_mut(pid).vruntime = floor;
                        self.task_mut(pid).home_core = Some(core_id);
                        let w = self.weight(pid);
                        self.cores[core_id].cfs.enqueue(pid, floor, w);
                    }
                },
            }
        }

        fn reschedule(&mut self, core_id: usize) {
            debug_assert!(self.cores[core_id].current.is_none());
            let next = match self.params.mode {
                SchedMode::Srtf => self.srtf_pool.pop_first().map(|(_, p)| p),
                SchedMode::Linux => {
                    if let Some((pid, _)) = self.rt.pop() {
                        Some(pid)
                    } else if let Some((_, pid)) = self.cores[core_id].cfs.pop() {
                        Some(pid)
                    } else {
                        self.steal_for(core_id)
                    }
                }
            };
            match next {
                Some(pid) => self.dispatch(core_id, pid),
                None => {
                    self.cores[core_id].gen += 1; // invalidate stale fires
                }
            }
        }

        fn steal_for(&mut self, core_id: usize) -> Option<Pid> {
            let victim = (0..self.cores.len())
                .filter(|&i| i != core_id && !self.cores[i].cfs.is_empty())
                .max_by_key(|&i| self.cores[i].cfs.len())?;
            let (v, pid) = self.cores[victim].cfs.pop_last()?;
            self.task_mut(pid).migrations += 1;
            self.task_mut(pid).home_core = Some(core_id);
            let placed = self.cores[core_id].cfs.place_vruntime(v);
            self.task_mut(pid).vruntime = placed;
            Some(pid)
        }

        fn dispatch(&mut self, core_id: usize, pid: Pid) {
            debug_assert_eq!(self.task(pid).state, ProcState::Runnable);
            debug_assert!(
                matches!(self.task(pid).phase(), Some(Phase::Cpu(_))),
                "dispatched task must be in a CPU phase"
            );
            let mut cost = if self.cores[core_id].last_ran == Some(pid) {
                SimDuration::ZERO
            } else {
                self.params.ctx_switch_cost
            };
            if !self.params.smp.affinity_cost.is_zero()
                && self.task(pid).last_core.is_some_and(|c| c != core_id)
            {
                cost += self.params.smp.affinity_cost;
            }
            cost += std::mem::take(&mut self.task_mut(pid).pending_migration_cost);
            let start = self.now + cost;
            {
                let c = &mut self.cores[core_id];
                c.current = Some(pid);
                c.last_ran = Some(pid);
                c.gen += 1;
                c.run_start = start;
                c.slice_start = start;
                c.clock = c.clock.max(start);
            }
            self.set_state(pid, ProcState::Running);
            self.task_mut(pid).home_core = Some(core_id);
            self.task_mut(pid).last_core = Some(core_id);
            if self.task(pid).first_run.is_none() {
                self.task_mut(pid).first_run = Some(self.now);
                self.out.push(Notification::FirstRun(pid, self.now));
            }
            let slice_end = match self.params.mode {
                SchedMode::Srtf => SimTime::MAX,
                SchedMode::Linux => match self.task(pid).policy {
                    Policy::Fifo { .. } => SimTime::MAX,
                    Policy::Rr { .. } => start + RR_TIMESLICE,
                    Policy::Normal { nice } => {
                        let c = &self.cores[core_id];
                        let w = weight_of_nice(nice);
                        let nr = c.cfs_nr(true);
                        let total = c.cfs.total_weight() + w as u64;
                        start + self.params.cfs.slice(nr, w, total)
                    }
                },
            };
            self.cores[core_id].slice_end = slice_end;
            self.arm_core_event(core_id);
        }

        fn arm_core_event(&mut self, core_id: usize) {
            let Some(pid) = self.cores[core_id].current else {
                return;
            };
            let f = self.contention_factor();
            let c = &self.cores[core_id];
            let phase_end = c.run_start + self.task(pid).phase_rem.mul_f64(f);
            let fire = phase_end.min(c.slice_end);
            let gen = c.gen;
            self.events.push(fire, Ev::CoreFire { core: core_id, gen });
        }

        fn handle(&mut self, ev: Ev) {
            match ev {
                Ev::CoreFire { core, gen } => {
                    if self.cores[core].gen != gen || self.cores[core].current.is_none() {
                        return; // stale
                    }
                    self.charge(core);
                    let pid = self.cores[core].current.expect("checked above");
                    if self.task(pid).phase_rem.is_zero() {
                        self.phase_complete(core, pid);
                    } else {
                        self.slice_expired(core, pid);
                    }
                }
                Ev::Wake { pid, io } => self.wake(pid, io),
                Ev::Balance => self.balance_tick(),
            }
        }

        fn balance_tick(&mut self) {
            self.balance_armed = false;
            if self.live_tasks > 0 {
                self.balance_armed = true;
                self.events
                    .push(self.now + self.params.smp.balance_interval, Ev::Balance);
            }
            let depths: Vec<u64> = self.cores.iter().map(|c| c.cfs.len() as u64).collect();
            let Some((src, dst)) = pick_imbalance(&depths, self.params.smp.balance_threshold)
            else {
                return;
            };
            let Some((v, pid)) = self.cores[src].cfs.pop_last() else {
                return;
            };
            self.task_mut(pid).migrations += 1;
            self.balance_migrations += 1;
            let mig_cost = self.params.smp.migration_cost;
            self.task_mut(pid).pending_migration_cost += mig_cost;
            let placed = self.cores[dst].cfs.place_vruntime(v);
            self.task_mut(pid).vruntime = placed;
            self.task_mut(pid).home_core = Some(dst);
            let w = self.weight(pid);
            self.cores[dst].cfs.enqueue(pid, placed, w);
            match self.cores[dst].current {
                None => self.reschedule(dst),
                Some(curr) if !self.task(curr).policy.is_realtime() => {
                    self.refresh_current_slice(dst);
                }
                Some(_) => {}
            }
        }

        fn phase_complete(&mut self, core_id: usize, pid: Pid) {
            let next_idx = self.task(pid).phase_idx + 1;
            self.task_mut(pid).phase_idx = next_idx;
            match self.task(pid).phases.get(next_idx).copied() {
                None => {
                    self.cores[core_id].current = None;
                    self.cores[core_id].gen += 1;
                    self.set_state(pid, ProcState::Dead);
                    self.task_mut(pid).home_core = None;
                    self.live_tasks -= 1;
                    let rec = self.task(pid).finished_record(self.now);
                    self.finished.push(rec.clone());
                    self.out.push(Notification::Finished(Box::new(rec)));
                    self.reschedule(core_id);
                }
                Some(Phase::Io(d)) => {
                    self.cores[core_id].current = None;
                    self.cores[core_id].gen += 1;
                    self.set_state(pid, ProcState::Sleeping);
                    self.task_mut(pid).phase_rem = d;
                    self.out.push(Notification::Blocked(pid, self.now));
                    self.events.push(self.now + d, Ev::Wake { pid, io: d });
                    self.reschedule(core_id);
                }
                Some(Phase::Cpu(d)) => {
                    self.task_mut(pid).phase_rem = d;
                    self.cores[core_id].gen += 1;
                    self.arm_core_event(core_id);
                }
            }
        }

        fn slice_expired(&mut self, core_id: usize, pid: Pid) {
            let unsliced = self.params.mode == SchedMode::Srtf
                || matches!(self.task(pid).policy, Policy::Fifo { .. });
            if unsliced && self.cores[core_id].slice_end == SimTime::MAX {
                self.cores[core_id].gen += 1;
                self.arm_core_event(core_id);
                return;
            }
            let has_competition = match self.params.mode {
                SchedMode::Srtf => false, // SRTF never slices
                SchedMode::Linux => {
                    !self.rt.is_empty()
                        || !self.cores[core_id].cfs.is_empty()
                        || self
                            .cores
                            .iter()
                            .enumerate()
                            .any(|(i, c)| i != core_id && c.cfs.len() > 1)
                }
            };
            if !has_competition {
                let renew = match self.task(pid).policy {
                    Policy::Rr { .. } => RR_TIMESLICE,
                    Policy::Normal { nice } => {
                        let w = weight_of_nice(nice);
                        self.params.cfs.slice(1, w, w as u64)
                    }
                    Policy::Fifo { .. } => SimDuration::MAX,
                };
                self.cores[core_id].slice_start = self.now;
                self.cores[core_id].slice_end = self.now.saturating_add(renew);
                self.cores[core_id].gen += 1;
                self.arm_core_event(core_id);
                return;
            }
            match self.task(pid).policy {
                Policy::Rr { prio } => {
                    self.cores[core_id].current = None;
                    self.cores[core_id].gen += 1;
                    self.set_state(pid, ProcState::Runnable);
                    self.task_mut(pid).ctx_switches += 1;
                    self.total_ctx_switches += 1;
                    self.rt.push_back(pid, prio);
                    self.reschedule(core_id);
                }
                _ => {
                    self.preempt_current(core_id);
                    self.reschedule(core_id);
                }
            }
        }

        fn wake(&mut self, pid: Pid, io: SimDuration) {
            debug_assert_eq!(self.task(pid).state, ProcState::Sleeping);
            self.task_mut(pid).io_time += io;
            let next_idx = self.task(pid).phase_idx + 1;
            self.task_mut(pid).phase_idx = next_idx;
            match self.task(pid).phases.get(next_idx).copied() {
                None => {
                    self.set_state(pid, ProcState::Dead);
                    self.task_mut(pid).home_core = None;
                    self.live_tasks -= 1;
                    let rec = self.task(pid).finished_record(self.now);
                    self.finished.push(rec.clone());
                    self.out.push(Notification::Finished(Box::new(rec)));
                }
                Some(Phase::Cpu(d)) => {
                    self.task_mut(pid).phase_rem = d;
                    self.out.push(Notification::Woke(pid, self.now));
                    self.make_runnable(pid);
                }
                Some(Phase::Io(d)) => {
                    self.task_mut(pid).phase_rem = d;
                    self.events.push(self.now + d, Ev::Wake { pid, io: d });
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Differential driver
// ----------------------------------------------------------------------

/// One controller-visible operation, applied identically to both machines.
#[derive(Debug, Clone)]
enum Op {
    /// Spawn the given spec; the n-th spawn receives pid n on both sides.
    Spawn(TaskSpec),
    /// `set_policy` on the task from the i-th spawn.
    SetPolicy(usize, Policy),
}

fn random_policy(rng: &mut SimRng) -> Policy {
    if rng.chance(0.65) {
        Policy::Normal {
            nice: rng.uniform_u64(0, 10) as i8 - 5,
        }
    } else if rng.chance(0.5) {
        Policy::Fifo {
            prio: rng.uniform_u64(1, 99) as u8,
        }
    } else {
        Policy::Rr {
            prio: rng.uniform_u64(1, 99) as u8,
        }
    }
}

fn random_spec(rng: &mut SimRng, label: u64) -> TaskSpec {
    let n_phases = rng.uniform_u64(1, 4) as usize;
    let mut phases = Vec::with_capacity(n_phases);
    for _ in 0..n_phases {
        let d = SimDuration::from_micros(rng.uniform_u64(50, 15_000));
        if rng.chance(0.7) {
            phases.push(Phase::Cpu(d));
        } else {
            phases.push(Phase::Io(d));
        }
    }
    if !phases.iter().any(|p| p.is_cpu()) {
        let d = SimDuration::from_micros(rng.uniform_u64(50, 15_000));
        *phases.last_mut().expect("n_phases >= 1") = Phase::Cpu(d);
    }
    TaskSpec {
        phases,
        policy: random_policy(rng),
        label,
    }
}

/// A randomized op timeline: ~80 spawns with mixed phase shapes and
/// policies, interleaved with policy switches (promotions, demotions,
/// priority changes) at random instants.
fn random_ops(seed: u64) -> Vec<(SimTime, Op)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut t = SimTime::ZERO;
    let mut spawned = 0usize;
    for i in 0..110u64 {
        t += SimDuration::from_micros(rng.uniform_u64(0, 4_000));
        if spawned == 0 || rng.chance(0.72) {
            ops.push((t, Op::Spawn(random_spec(&mut rng, i))));
            spawned += 1;
        } else {
            let target = rng.uniform_u64(0, spawned as u64 - 1) as usize;
            ops.push((t, Op::SetPolicy(target, random_policy(&mut rng))));
        }
    }
    ops
}

/// Debug-format digest of a notification stream. The reference module's
/// `Notification` mirrors the crate's variant-for-variant, so equal streams
/// produce equal digests and any divergence pinpoints the first differing
/// event.
fn digest<T: std::fmt::Debug>(notes: &[T]) -> Vec<String> {
    notes.iter().map(|n| format!("{n:?}")).collect()
}

struct RunResult {
    notes: Vec<String>,
    finished: Vec<String>,
    ctx_switches: u64,
}

fn run_new(
    kpolicy: KernelPolicyKind,
    cores: usize,
    smp: SmpParams,
    beta: f64,
    ops: &[(SimTime, Op)],
) -> RunResult {
    let params = MachineParams {
        cores,
        kpolicy,
        contention_beta: beta,
        ..Default::default()
    }
    .with_smp(smp);
    let mut m = Machine::new(params);
    let mut pids = Vec::new();
    let mut notes: Vec<Notification> = Vec::new();
    for (t, op) in ops {
        notes.extend(m.advance_to(*t));
        match op {
            Op::Spawn(spec) => pids.push(m.spawn(spec.clone())),
            Op::SetPolicy(i, p) => m.set_policy(pids[*i], *p),
        }
    }
    notes.extend(m.run_until_quiescent());
    m.assert_conservation();
    RunResult {
        notes: digest(&notes),
        finished: digest(m.finished()),
        ctx_switches: m.total_ctx_switches(),
    }
}

fn run_reference(
    mode: reference::SchedMode,
    cores: usize,
    smp: SmpParams,
    beta: f64,
    ops: &[(SimTime, Op)],
) -> RunResult {
    let params = reference::RefParams {
        cores,
        mode,
        contention_beta: beta,
        smp,
        ..Default::default()
    };
    let mut m = reference::RefMachine::new(params);
    let mut pids = Vec::new();
    let mut notes: Vec<reference::Notification> = Vec::new();
    for (t, op) in ops {
        notes.extend(m.advance_to(*t));
        match op {
            Op::Spawn(spec) => pids.push(m.spawn(spec.clone())),
            Op::SetPolicy(i, p) => m.set_policy(pids[*i], *p),
        }
    }
    notes.extend(m.run_until_quiescent());
    m.assert_conservation();
    RunResult {
        notes: digest(&notes),
        finished: digest(m.finished()),
        ctx_switches: m.total_ctx_switches(),
    }
}

fn assert_identical(
    kpolicy: KernelPolicyKind,
    mode: reference::SchedMode,
    cores: usize,
    smp: SmpParams,
    beta: f64,
    seed: u64,
) {
    let ops = random_ops(seed);
    let new = run_new(kpolicy, cores, smp, beta, &ops);
    let old = run_reference(mode, cores, smp, beta, &ops);
    let ctx = format!("kpolicy={kpolicy} cores={cores} beta={beta} seed={seed}");
    assert_eq!(
        new.notes.len(),
        old.notes.len(),
        "notification count diverged ({ctx})"
    );
    for (i, (n, o)) in new.notes.iter().zip(old.notes.iter()).enumerate() {
        assert_eq!(n, o, "notification {i} diverged ({ctx})");
    }
    assert_eq!(new.finished, old.finished, "completion records ({ctx})");
    assert_eq!(
        new.ctx_switches, old.ctx_switches,
        "context-switch totals ({ctx})"
    );
}

const SEEDS: [u64; 4] = [1, 7, 42, 20_220_215];

#[test]
fn cfs_port_matches_prerefactor_machine() {
    for cores in [1, 2, 4] {
        for seed in SEEDS {
            assert_identical(
                KernelPolicyKind::Cfs,
                reference::SchedMode::Linux,
                cores,
                SmpParams::default(),
                0.0,
                seed,
            );
        }
    }
}

#[test]
fn srtf_port_matches_prerefactor_machine() {
    for cores in [1, 2, 4] {
        for seed in SEEDS {
            assert_identical(
                KernelPolicyKind::Srtf,
                reference::SchedMode::Srtf,
                cores,
                SmpParams::default(),
                0.0,
                seed,
            );
        }
    }
}

#[test]
fn cfs_port_matches_with_smp_balancing() {
    let smp = SmpParams::balanced(
        SimDuration::from_millis(1),
        SimDuration::from_micros(500),
        SimDuration::from_micros(200),
    );
    for cores in [2, 4] {
        for seed in SEEDS {
            assert_identical(
                KernelPolicyKind::Cfs,
                reference::SchedMode::Linux,
                cores,
                smp,
                0.0,
                seed,
            );
        }
    }
}

#[test]
fn srtf_port_ignores_smp_balancing_like_prerefactor() {
    // The old machine only armed the balance tick in Linux mode; the new
    // one gates it on `participates_in_balance`, which SRTF declines. The
    // schedules must agree with balancing knobs turned all the way up.
    let smp = SmpParams::balanced(
        SimDuration::from_millis(1),
        SimDuration::from_millis(1),
        SimDuration::from_micros(200),
    );
    for seed in SEEDS {
        assert_identical(
            KernelPolicyKind::Srtf,
            reference::SchedMode::Srtf,
            4,
            smp,
            0.0,
            seed,
        );
    }
}

#[test]
fn cfs_port_matches_under_contention() {
    for seed in SEEDS {
        assert_identical(
            KernelPolicyKind::Cfs,
            reference::SchedMode::Linux,
            2,
            SmpParams::default(),
            0.5,
            seed,
        );
    }
}
