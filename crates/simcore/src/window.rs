//! Fixed-capacity sliding window.
//!
//! SFS adapts its FILTER time slice from the mean of the last `N` observed
//! inter-arrival times (paper §V-C, `S = mean(IAT_N) × c`, N = 100). This is
//! the ring buffer behind that adaptation, kept O(1) per insert with a
//! running sum.

use std::collections::VecDeque;

/// A sliding window over the last `capacity` `f64` observations with an O(1)
/// running mean.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    buf: VecDeque<f64>,
    capacity: usize,
    sum: f64,
    /// Total observations ever pushed (not just retained).
    pushed: u64,
    /// Evictions since `sum` was last recomputed exactly from the buffer.
    evictions_since_recompute: usize,
}

impl SlidingWindow {
    /// A window retaining the last `capacity` observations. `capacity` must
    /// be at least 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "window capacity must be >= 1");
        SlidingWindow {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            sum: 0.0,
            pushed: 0,
            evictions_since_recompute: 0,
        }
    }

    /// Push an observation, evicting the oldest if the window is full.
    ///
    /// The running sum is maintained incrementally (`sum - old + new`), which
    /// accumulates floating-point error across evictions; every `capacity`
    /// evictions the sum is recomputed exactly from the buffer, bounding the
    /// drift while keeping the per-push cost O(1) amortized.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() == self.capacity {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
                self.evictions_since_recompute += 1;
            }
        }
        self.buf.push_back(x);
        self.sum += x;
        self.pushed += 1;
        if self.evictions_since_recompute >= self.capacity {
            self.sum = self.buf.iter().sum();
            self.evictions_since_recompute = 0;
        }
    }

    /// Number of retained observations (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True iff the window holds `capacity` observations.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of observations ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Mean of retained observations (0 if empty).
    ///
    /// Backed by the incrementally maintained sum, which [`push`] recomputes
    /// exactly every `capacity` evictions — so over arbitrarily long runs the
    /// error stays bounded by at most `capacity` incremental updates (see the
    /// long-run drift test).
    ///
    /// [`push`]: SlidingWindow::push
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Exact mean recomputed from the buffer (for drift checks / tests).
    pub fn mean_exact(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.buf.iter().sum::<f64>() / self.buf.len() as f64
        }
    }

    /// Iterate retained values, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Clear all retained observations (keeps the capacity and push count).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
        self.evictions_since_recompute = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn mean_of_partial_window() {
        let mut w = SlidingWindow::new(4);
        assert_eq!(w.mean(), 0.0);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
        assert!((w.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eviction_keeps_last_n() {
        let mut w = SlidingWindow::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            w.push(x);
        }
        assert!(w.is_full());
        assert_eq!(w.total_pushed(), 5);
        let kept: Vec<f64> = w.iter().collect();
        assert_eq!(kept, vec![3.0, 4.0, 5.0]);
        assert!((w.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_contents_not_history() {
        let mut w = SlidingWindow::new(2);
        w.push(10.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.total_pushed(), 1);
        assert_eq!(w.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::new(0);
    }

    // Property-style cases driven by the crate's own seeded RNG (no
    // proptest dependency); a fixed seed makes failures reproducible.

    #[test]
    fn incremental_mean_matches_exact() {
        let mut rng = SimRng::seed_from_u64(0x51D0);
        for case in 0..64 {
            let cap = rng.uniform_u64(1, 63) as usize;
            let n = rng.uniform_u64(1, 499) as usize;
            let values: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 1e6)).collect();
            let mut w = SlidingWindow::new(cap);
            for &v in &values {
                w.push(v);
            }
            let expect = w.mean_exact();
            assert!(
                (w.mean() - expect).abs() <= 1e-6 * expect.max(1.0),
                "case {case}"
            );
            assert_eq!(w.len(), values.len().min(cap), "case {case}");
        }
    }

    #[test]
    fn long_run_mean_does_not_drift() {
        // 1e7 pushes of mixed-magnitude values: a purely incremental sum
        // accumulates catastrophic cancellation error (large values enter
        // and leave the window, each eviction rounding the running sum);
        // the periodic exact recompute must keep the reported mean within
        // 1e-9 (relative) of a from-scratch mean at all times.
        let mut rng = SimRng::seed_from_u64(0x51D2);
        let mut w = SlidingWindow::new(100);
        let mut checks = 0u32;
        for i in 0..10_000_000u64 {
            // Alternate tiny and huge magnitudes so eviction rounding error
            // is large relative to the retained sum.
            let x = if i % 2 == 0 {
                rng.uniform(1e-3, 1.0)
            } else {
                rng.uniform(1e6, 1e9)
            };
            w.push(x);
            if i % 999_983 == 0 {
                let exact = w.mean_exact();
                let got = w.mean();
                assert!(
                    (got - exact).abs() <= 1e-9 * exact.abs().max(1.0),
                    "push {i}: incremental mean {got} drifted from exact {exact}"
                );
                checks += 1;
            }
        }
        let exact = w.mean_exact();
        assert!(
            (w.mean() - exact).abs() <= 1e-9 * exact.abs().max(1.0),
            "final mean {} drifted from exact {exact}",
            w.mean()
        );
        assert!(checks >= 10);
        assert_eq!(w.total_pushed(), 10_000_000);
    }

    #[test]
    fn window_retains_suffix() {
        let mut rng = SimRng::seed_from_u64(0x51D1);
        for case in 0..64 {
            let cap = rng.uniform_u64(1, 31) as usize;
            let n = rng.uniform_u64(1, 199) as usize;
            let values: Vec<f64> = (0..n).map(|_| rng.uniform(-1e3, 1e3)).collect();
            let mut w = SlidingWindow::new(cap);
            for &v in &values {
                w.push(v);
            }
            let kept: Vec<f64> = w.iter().collect();
            let start = values.len().saturating_sub(cap);
            assert_eq!(kept, values[start..].to_vec(), "case {case}");
        }
    }
}
