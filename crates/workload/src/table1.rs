//! The paper's Table I: Azure-derived function duration distribution.
//!
//! Probability table mapping duration ranges to `fib` parameter `N`s
//! (paper §VII, Table I). Ranges are non-contiguous in the original — the
//! gaps each carry < 1% probability in the Azure Day-1 trace and are
//! dropped — so the weights below sum to 95.6% and are renormalised when
//! sampling. Within a range we sample log-uniformly, which matches both the
//! heavy-tailed shape of the trace and the geometric spacing of fib costs.

use sfs_simcore::SimRng;

/// One row of Table I.
#[derive(Debug, Clone, Copy)]
pub struct DurationBucket {
    /// Raw probability from the paper (percent).
    pub probability_pct: f64,
    /// Duration range in milliseconds, `[lo, hi)`.
    pub range_ms: (f64, f64),
    /// Corresponding `fib` N range (inclusive).
    pub fib_n: (u32, u32),
}

/// Table I rows. The open-ended "≥ 1550 ms" bucket is capped at 3500 ms,
/// consistent with `fib` N = 35 being its largest generator (fib grows by
/// the golden ratio per step, so N=34..35 spans ≈ 1.55–3.5 s under the
/// paper's "N 20–26 finishes in < 45 ms" calibration).
pub const TABLE1: [DurationBucket; 5] = [
    DurationBucket {
        probability_pct: 40.6,
        range_ms: (2.0, 50.0),
        fib_n: (20, 26),
    },
    DurationBucket {
        probability_pct: 9.8,
        range_ms: (50.0, 100.0),
        fib_n: (27, 28),
    },
    DurationBucket {
        probability_pct: 6.8,
        range_ms: (100.0, 200.0),
        fib_n: (29, 29),
    },
    DurationBucket {
        probability_pct: 22.7,
        range_ms: (200.0, 400.0),
        fib_n: (30, 31),
    },
    DurationBucket {
        probability_pct: 15.7,
        range_ms: (1550.0, 3500.0),
        fib_n: (34, 35),
    },
];

/// Fraction of requests the paper calls "short" (the 83% that SFS speeds
/// up): everything below the ≥ 1550 ms bucket. 1 − 15.7/95.6 ≈ 0.836.
pub fn short_fraction() -> f64 {
    let total: f64 = TABLE1.iter().map(|b| b.probability_pct).sum();
    1.0 - TABLE1.last().unwrap().probability_pct / total
}

/// The boundary (ms) between the paper's "83% short" and "17% long"
/// populations under Table I.
pub const LONG_THRESHOLD_MS: f64 = 1550.0;

/// Sampler over Table I.
#[derive(Debug, Clone)]
pub struct Table1Sampler {
    weights: Vec<f64>,
}

impl Default for Table1Sampler {
    fn default() -> Self {
        Self::new()
    }
}

impl Table1Sampler {
    /// Sampler with the paper's probabilities.
    pub fn new() -> Self {
        Table1Sampler {
            weights: TABLE1.iter().map(|b| b.probability_pct).collect(),
        }
    }

    /// Sample one function duration in milliseconds (log-uniform within the
    /// chosen bucket) together with the bucket index.
    pub fn sample_with_bucket(&self, rng: &mut SimRng) -> (f64, usize) {
        let idx = rng.pick_weighted(&self.weights);
        let (lo, hi) = TABLE1[idx].range_ms;
        let x = (lo.ln() + rng.unit() * (hi.ln() - lo.ln())).exp();
        (x, idx)
    }

    /// Sample one duration in milliseconds.
    pub fn sample_ms(&self, rng: &mut SimRng) -> f64 {
        self.sample_with_bucket(rng).0
    }

    /// The `fib` N a duration corresponds to (FaaSBench's knob): the N whose
    /// bucket contains the duration, interpolated geometrically inside the
    /// bucket.
    pub fn fib_n_for(&self, duration_ms: f64) -> u32 {
        for b in TABLE1.iter() {
            if duration_ms < b.range_ms.1 || b.range_ms.1 >= 3500.0 {
                let (nlo, nhi) = b.fib_n;
                if nlo == nhi {
                    return nlo;
                }
                let (lo, hi) = b.range_ms;
                let frac =
                    ((duration_ms.max(lo).ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0);
                return nlo + (frac * (nhi - nlo) as f64).round() as u32;
            }
        }
        TABLE1.last().unwrap().fib_n.1
    }

    /// Analytic mean duration (ms) under the renormalised table — used to
    /// convert a target utilisation into a Poisson arrival rate without
    /// Monte-Carlo estimation. Mean of log-uniform on `[a,b]` is
    /// `(b−a)/ln(b/a)`.
    pub fn mean_ms(&self) -> f64 {
        let total: f64 = self.weights.iter().sum();
        TABLE1
            .iter()
            .map(|b| {
                let (a, bb) = b.range_ms;
                let m = (bb - a) / (bb / a).ln();
                b.probability_pct / total * m
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_probabilities_match_paper() {
        let total: f64 = TABLE1.iter().map(|b| b.probability_pct).sum();
        assert!((total - 95.6).abs() < 1e-9, "raw weights sum to 95.6%");
        assert!((short_fraction() - 0.8357).abs() < 0.001);
    }

    #[test]
    fn sampled_durations_fall_in_ranges_with_right_frequencies() {
        let s = Table1Sampler::new();
        let mut rng = SimRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            let (d, idx) = s.sample_with_bucket(&mut rng);
            let (lo, hi) = TABLE1[idx].range_ms;
            assert!(d >= lo && d < hi, "duration {d} outside bucket {idx}");
            counts[idx] += 1;
        }
        let total: f64 = TABLE1.iter().map(|b| b.probability_pct).sum();
        for (i, b) in TABLE1.iter().enumerate() {
            let expect = b.probability_pct / total;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "bucket {i}: frequency {got} vs expected {expect}"
            );
        }
    }

    #[test]
    fn fib_n_mapping_is_monotone_and_in_range() {
        let s = Table1Sampler::new();
        assert_eq!(s.fib_n_for(2.0), 20);
        assert_eq!(s.fib_n_for(45.0), 26);
        assert!((27..=28).contains(&s.fib_n_for(70.0)));
        assert_eq!(s.fib_n_for(150.0), 29);
        assert!((30..=31).contains(&s.fib_n_for(300.0)));
        assert!((34..=35).contains(&s.fib_n_for(2000.0)));
        assert_eq!(s.fib_n_for(999999.0), 35);
        // Monotone in duration.
        let mut prev = 0;
        for d in [
            3.0, 10.0, 40.0, 60.0, 90.0, 150.0, 250.0, 390.0, 1600.0, 3400.0,
        ] {
            let n = s.fib_n_for(d);
            assert!(n >= prev, "fib N not monotone at {d}");
            prev = n;
        }
    }

    #[test]
    fn analytic_mean_matches_monte_carlo() {
        let s = Table1Sampler::new();
        let analytic = s.mean_ms();
        let mut rng = SimRng::seed_from_u64(13);
        let n = 300_000;
        let mc: f64 = (0..n).map(|_| s.sample_ms(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (analytic - mc).abs() / analytic < 0.02,
            "analytic {analytic} vs MC {mc}"
        );
        // The mean should be near 480ms: short-dominated but tail-weighted.
        assert!(analytic > 400.0 && analytic < 560.0, "mean {analytic}");
    }
}
