//! The simulated multicore machine.
//!
//! An event-driven engine that schedules tasks (see [`crate::TaskSpec`]) over `c` cores under
//! a pluggable kernel discipline ([`crate::policy::KernelPolicy`]): the
//! faithful Linux model (global RT runqueue over per-core CFS runqueues
//! with idle pull-balancing), an SRTF oracle, EEVDF, a CBS deadline class,
//! or a preemption-ceiling policy. External controllers (the SFS
//! scheduler, bench harnesses) drive it through four operations, mirroring
//! what a user-space scheduler can actually do on Linux:
//!
//! * [`Machine::spawn`] — dispatch a function process (FaaS server → OS),
//! * [`Machine::set_policy`] — `schedtool`: switch a live process between
//!   `SCHED_FIFO` and `SCHED_NORMAL` (how SFS implements FILTER, §VI),
//! * [`Machine::proc_state`] / [`Machine::cpu_time`] — `/proc` polling
//!   (how SFS detects I/O blocking, §V-D),
//! * [`Machine::advance_to`] — advance virtual time, collecting
//!   notifications (task blocked / woke / finished) the controller reacts to.
//!
//! The split of responsibilities: the machine owns time, cores, task
//! lifecycle, accounting, and event delivery; *which task runs where, for
//! how long* is the policy's. Hooks return [`Placed`] decisions the
//! machine executes, so a policy never re-enters the event loop.
//!
//! Determinism: all ties break on event insertion order ([`sfs_simcore::EventQueue`])
//! and core index, so identical inputs give bit-identical schedules.

use sfs_simcore::{EventQueue, SimDuration, SimTime};

use crate::policy::cfs::CfsParams;
use crate::policy::{KernelCtx, KernelPolicy, KernelPolicyKind, Placed, PreemptKind};
use crate::smp::SmpParams;
use crate::task::{FinishedTask, Phase, Pid, Policy, ProcState, Task, TaskSpec};
use crate::trace::{ScheduleTrace, Segment};

/// Machine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineParams {
    /// Number of CPU cores.
    pub cores: usize,
    /// CFS tunables.
    pub cfs: CfsParams,
    /// Direct + indirect cost charged on every dispatch of a *different*
    /// task than the core last ran (register/TLB/cache disturbance). The
    /// paper's short-function amplification partly comes from this cost
    /// recurring on every CFS slice boundary.
    pub ctx_switch_cost: SimDuration,
    /// Consolidation-contention coefficient (0 disables). The paper's
    /// premise is that deep consolidation inflates execution duration
    /// beyond pure queueing (§I: cache/CPU/memory contention). When more
    /// CPU tasks are live-runnable than cores, every running task's service
    /// rate is inflated by `1 + beta × log2(active / cores)` — hundreds of
    /// co-live containers thrash caches and memory bandwidth, so a deep
    /// backlog drains at far below nominal throughput. Schedulers that
    /// bound effective concurrency (SFS's FILTER) avoid the inflation.
    pub contention_beta: f64,
    /// Upper bound on the contention inflation factor.
    pub contention_cap: f64,
    /// Kernel scheduling discipline (built at machine construction; use
    /// [`Machine::with_kernel_policy`] to supply a custom policy value).
    pub kpolicy: KernelPolicyKind,
    /// SMP behaviour: periodic load balancing, migration penalty, and
    /// cache-affinity cost. The all-zero default disables every mechanism,
    /// making the machine bit-exact with the pre-SMP model.
    pub smp: SmpParams,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            cores: 4,
            cfs: CfsParams::default(),
            ctx_switch_cost: SimDuration::from_micros(5),
            contention_beta: 0.0,
            contention_cap: 6.0,
            kpolicy: KernelPolicyKind::Cfs,
            smp: SmpParams::default(),
        }
    }
}

impl MachineParams {
    /// Linux-model machine (RT over per-core CFS) with `cores` cores and
    /// default tunables.
    pub fn linux(cores: usize) -> Self {
        MachineParams {
            cores,
            kpolicy: KernelPolicyKind::Cfs,
            ..Default::default()
        }
    }

    /// SRTF-oracle machine with `cores` cores.
    pub fn srtf(cores: usize) -> Self {
        MachineParams {
            cores,
            kpolicy: KernelPolicyKind::Srtf,
            ..Default::default()
        }
    }

    /// The same machine with the given SMP behaviour knobs.
    pub fn with_smp(mut self, smp: SmpParams) -> Self {
        self.smp = smp;
        self
    }

    /// The same machine under the given kernel policy.
    pub fn with_kpolicy(mut self, kpolicy: KernelPolicyKind) -> Self {
        self.kpolicy = kpolicy;
        self
    }
}

/// Events the machine reports back to its controller.
#[derive(Debug, Clone)]
pub enum Notification {
    /// Task got a CPU for the first time.
    FirstRun(Pid, SimTime),
    /// Task entered an I/O wait (kernel state → sleeping).
    Blocked(Pid, SimTime),
    /// Task finished its I/O wait (kernel state → runnable).
    Woke(Pid, SimTime),
    /// Task completed; full accounting attached.
    Finished(Box<FinishedTask>),
}

#[derive(Debug, Clone)]
enum Ev {
    /// The running task on `core` reaches its slice or phase boundary.
    /// Ignored if the core's generation has moved on.
    CoreFire { core: usize, gen: u64 },
    /// I/O completion for a sleeping task.
    Wake { pid: Pid, io: SimDuration },
    /// Periodic SMP load-balance tick (only scheduled when
    /// [`SmpParams::balance_interval`] is non-zero and the kernel policy
    /// participates in balancing).
    Balance,
}

/// Per-core dispatch state: what runs, since when, until when. Runqueues
/// live in the kernel policy; this is the machine-owned remainder a
/// [`KernelCtx`] exposes to hooks.
#[derive(Debug, Clone)]
pub(crate) struct CoreSched {
    pub(crate) current: Option<Pid>,
    /// Invalidates in-flight CoreFire events when the assignment changes.
    gen: u64,
    /// Task the core last executed (context-switch cost bookkeeping).
    last_ran: Option<Pid>,
    /// When the current task started consuming CPU (after switch cost).
    /// Reset at every accounting boundary (`charge`).
    pub(crate) run_start: SimTime,
    /// When the current slice began (dispatch or slice renewal) — the base
    /// for recomputing `slice_end` when runqueue membership changes.
    slice_start: SimTime,
    slice_end: SimTime,
    /// Core-local clock: the latest instant this core's accounting
    /// advanced (dispatch or charge). Monotone per core; lags the machine
    /// clock while the core idles.
    clock: SimTime,
}

impl CoreSched {
    fn new() -> CoreSched {
        CoreSched {
            current: None,
            gen: 0,
            last_ran: None,
            run_start: SimTime::ZERO,
            slice_start: SimTime::ZERO,
            slice_end: SimTime::MAX,
            clock: SimTime::ZERO,
        }
    }
}

/// The simulated machine. See module docs.
#[derive(Debug)]
pub struct Machine {
    params: MachineParams,
    now: SimTime,
    tasks: Vec<Task>,
    cores: Vec<CoreSched>,
    /// The pluggable kernel discipline (owns every runqueue).
    kpolicy: Box<dyn KernelPolicy>,
    events: EventQueue<Ev>,
    out: Vec<Notification>,
    finished: Vec<FinishedTask>,
    total_ctx_switches: u64,
    /// Tasks migrated by the periodic balance tick (a subset of the
    /// per-task `migrations` total, which also counts wakeup placement
    /// moves and idle steals).
    balance_migrations: u64,
    /// Whether a [`Ev::Balance`] event is currently pending.
    balance_armed: bool,
    live_tasks: usize,
    /// Runnable + running CPU tasks (excludes sleepers and the dead);
    /// drives the consolidation-contention inflation.
    active_tasks: usize,
    /// Whether completion records accumulate in `finished` (default). The
    /// streaming path turns this off: records still flow out through
    /// `Notification::Finished`, but the machine holds no per-task history,
    /// keeping memory O(live tasks) instead of O(total tasks).
    retain_finished: bool,
    /// Optional execution trace (who ran where, when).
    trace: Option<ScheduleTrace>,
}

impl Machine {
    /// A machine at t = 0 with the given parameters; the kernel policy is
    /// built from [`MachineParams::kpolicy`].
    pub fn new(params: MachineParams) -> Machine {
        let kpolicy = params.kpolicy.build(params.cores);
        Machine::with_kernel_policy(params, kpolicy)
    }

    /// A machine at t = 0 driven by a caller-supplied kernel-policy value —
    /// the extension point for disciplines not in
    /// [`KernelPolicyKind`]. `params.kpolicy` is ignored.
    pub fn with_kernel_policy(params: MachineParams, kpolicy: Box<dyn KernelPolicy>) -> Machine {
        assert!(params.cores >= 1, "machine needs at least one core");
        Machine {
            cores: (0..params.cores).map(|_| CoreSched::new()).collect(),
            params,
            now: SimTime::ZERO,
            tasks: Vec::new(),
            kpolicy,
            events: EventQueue::new(),
            out: Vec::new(),
            finished: Vec::new(),
            total_ctx_switches: 0,
            balance_migrations: 0,
            balance_armed: false,
            live_tasks: 0,
            active_tasks: 0,
            retain_finished: true,
            trace: None,
        }
    }

    /// The kernel policy's display name (`cfs`, `srtf`, `eevdf`, ...).
    pub fn kernel_policy_name(&self) -> &'static str {
        self.kpolicy.name()
    }

    /// Split borrow: the policy value and the capability context it runs
    /// against (disjoint fields of `self`).
    fn policy_ctx(&mut self) -> (&mut dyn KernelPolicy, KernelCtx<'_>) {
        let Machine {
            kpolicy,
            tasks,
            cores,
            params,
            now,
            ..
        } = self;
        (
            kpolicy.as_mut(),
            KernelCtx {
                now: *now,
                cfs: &params.cfs,
                smp: &params.smp,
                tasks,
                cores: cores.as_mut_slice(),
            },
        )
    }

    /// Execute a policy placement decision.
    fn apply_placed(&mut self, placed: Placed) {
        match placed {
            Placed::Queued => {}
            Placed::RescheduleIdle(core_id) => self.reschedule(core_id),
            Placed::Preempt(core_id) => {
                self.charge(core_id);
                self.preempt_current(core_id, PreemptKind::Preempted);
                self.reschedule(core_id);
            }
            Placed::RefreshSlice(core_id) => self.refresh_current_slice(core_id),
        }
    }

    /// Control completion-record retention. With `false`, completions are
    /// only delivered through [`Notification::Finished`] and
    /// [`Machine::finished`] stays empty — the streaming-run mode where
    /// memory must not grow with request count.
    pub fn set_retain_finished(&mut self, retain: bool) {
        self.retain_finished = retain;
    }

    /// Length of the internal task table (total tasks spawned since the
    /// last [`Machine::compact`]). Streaming drivers watch this to decide
    /// when compacting is worthwhile.
    pub fn task_table_len(&self) -> usize {
        self.tasks.len()
    }

    /// Reclaim per-task memory at a quiescent point. Requires
    /// `live_tasks() == 0`; panics otherwise.
    ///
    /// Drops the task table (keeping its allocation) and restarts pid
    /// numbering from 0, so a long streaming run's memory is bounded by its
    /// peak *concurrency*, not its total request count. This is behaviour-
    /// transparent: with no live task there is no pending `Wake`
    /// (sleepers are live), `CoreFire` carries `(core, gen)` rather than a
    /// pid, per-pid tie-breaks only ever compare co-live tasks (whose
    /// relative order a fresh numbering preserves), and clearing each
    /// core's `last_ran` reproduces the always-charge-context-cost outcome
    /// that distinct pids would produce anyway. Skipped while tracing
    /// (trace segments refer to pids) or while completion records are
    /// retained (records would alias reused pids).
    pub fn compact(&mut self) {
        assert_eq!(self.live_tasks, 0, "compact() requires a quiescent machine");
        if self.trace.is_some() || self.retain_finished {
            return;
        }
        self.tasks.clear();
        for c in &mut self.cores {
            c.last_ran = None;
        }
    }

    /// Enable execution-trace recording (who ran where, when, under which
    /// policy). Cheap: one record per accounting boundary.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(ScheduleTrace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&ScheduleTrace> {
        self.trace.as_ref()
    }

    /// Current consolidation inflation factor (≥ 1).
    pub fn contention_factor(&self) -> f64 {
        if self.params.contention_beta <= 0.0 || self.active_tasks <= self.params.cores {
            return 1.0;
        }
        let ratio = self.active_tasks as f64 / self.params.cores as f64;
        (1.0 + self.params.contention_beta * ratio.log2()).min(self.params.contention_cap)
    }

    /// Transition a task's kernel state, maintaining the active count.
    fn set_state(&mut self, pid: Pid, new: ProcState) {
        let old = self.task(pid).state;
        let was_active = matches!(old, ProcState::Runnable | ProcState::Running);
        let is_active = matches!(new, ProcState::Runnable | ProcState::Running);
        if was_active && !is_active {
            self.active_tasks -= 1;
        } else if !was_active && is_active {
            self.active_tasks += 1;
        }
        self.task_mut(pid).state = new;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.params.cores
    }

    /// Tasks spawned but not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.live_tasks
    }

    /// Completion records so far (in completion order).
    pub fn finished(&self) -> &[FinishedTask] {
        &self.finished
    }

    /// Consume the machine, returning all completion records.
    pub fn into_finished(self) -> Vec<FinishedTask> {
        self.finished
    }

    /// Machine-wide involuntary context-switch count.
    pub fn total_ctx_switches(&self) -> u64 {
        self.total_ctx_switches
    }

    // ------------------------------------------------------------------
    // Per-core (SMP) read-only queries
    // ------------------------------------------------------------------

    /// Number of cores — alias of [`Machine::cores`], matching the
    /// `nr_cpu_ids` spelling controllers expect.
    pub fn nr_cores(&self) -> usize {
        self.params.cores
    }

    /// Queued (runnable, not running) fair-class tasks on `core`'s local
    /// runqueue — the per-CPU depth `/proc/schedstat` exposes. Tasks in a
    /// machine-global band (RT queue, SRTF pool, ...) are not counted here.
    pub fn core_depth(&self, core: usize) -> usize {
        self.kpolicy.queue_depth(core)
    }

    /// The task currently running on `core`, if any.
    pub fn running_on(&self, core: usize) -> Option<Pid> {
        self.cores[core].current
    }

    /// `core`'s local clock: the latest instant its accounting advanced
    /// (a dispatch or a charge). Monotone per core; lags [`Machine::now`]
    /// while the core idles.
    pub fn core_clock(&self, core: usize) -> SimTime {
        self.cores[core].clock
    }

    /// The core `pid` last executed on (the `processor` field of
    /// `/proc/<pid>/stat`), or `None` before its first dispatch.
    pub fn last_ran_core(&self, pid: Pid) -> Option<usize> {
        self.task(pid).last_core
    }

    /// Number of tasks queued in the policy's machine-global priority band
    /// (the RT queue under the Linux model).
    pub fn rt_depth(&self) -> usize {
        self.kpolicy.rt_depth()
    }

    /// Tasks migrated by the periodic balance tick so far (a subset of the
    /// per-task migration totals, which also count wakeup placement moves
    /// and idle steals).
    pub fn balance_migrations(&self) -> u64 {
        self.balance_migrations
    }

    /// Walk every task and runqueue and panic on any conservation
    /// violation: each live task must be in exactly one place (running on
    /// one core, queued on exactly one runqueue, or sleeping), and dead
    /// tasks must be nowhere. Diagnostic hook for the SMP property suite;
    /// O(tasks × cores), so not for hot loops.
    pub fn assert_conservation(&self) {
        for (i, c) in self.cores.iter().enumerate() {
            if let Some(pid) = c.current {
                assert_eq!(
                    self.task(pid).state,
                    ProcState::Running,
                    "core {i} runs {pid} but its state disagrees"
                );
                assert_eq!(
                    self.task(pid).home_core,
                    Some(i),
                    "core {i} runs {pid} but its home core disagrees"
                );
            }
        }
        for t in &self.tasks {
            let queued = self.kpolicy.queued_places(t.pid);
            let running = self
                .cores
                .iter()
                .filter(|c| c.current == Some(t.pid))
                .count();
            let places = queued + running;
            match t.state {
                ProcState::Running => assert_eq!(
                    (running, places),
                    (1, 1),
                    "{}: running task on {running} cores, {places} places",
                    t.pid
                ),
                ProcState::Runnable => assert_eq!(
                    (running, places),
                    (0, 1),
                    "{}: runnable task queued in {places} places",
                    t.pid
                ),
                ProcState::Sleeping | ProcState::Dead => assert_eq!(
                    places, 0,
                    "{}: off-runqueue task found in {places} places",
                    t.pid
                ),
            }
        }
    }

    // ------------------------------------------------------------------
    // Controller-facing operations
    // ------------------------------------------------------------------

    /// Spawn a task at the current time; it becomes runnable immediately.
    pub fn spawn(&mut self, spec: TaskSpec) -> Pid {
        spec.validate().expect("invalid task spec");
        let pid = Pid(self.tasks.len() as u64);
        let task = Task::new(pid, spec, self.now);
        let leading_io = task.phase();
        self.live_tasks += 1;
        // First live task (re-)arms the periodic balance tick; it re-arms
        // itself until the machine quiesces, so `run_until_quiescent`
        // still terminates.
        if self.params.smp.balancing()
            && self.kpolicy.participates_in_balance()
            && !self.balance_armed
        {
            self.balance_armed = true;
            self.events
                .push(self.now + self.params.smp.balance_interval, Ev::Balance);
        }
        self.active_tasks += 1; // Task::new starts Runnable
        self.tasks.push(task);
        // A task whose first phase is I/O sleeps immediately (it was started
        // and instantly blocked); schedule its wake.
        if let Some(Phase::Io(d)) = leading_io {
            self.set_state(pid, ProcState::Sleeping);
            self.events.push(self.now + d, Ev::Wake { pid, io: d });
        } else {
            self.make_runnable(pid);
        }
        pid
    }

    /// `schedtool`: change a live task's scheduling policy. No-op on dead
    /// tasks. Under policies that ignore the class field (the SRTF oracle)
    /// only the bookkeeping is updated.
    pub fn set_policy(&mut self, pid: Pid, policy: Policy) {
        if self.task(pid).state == ProcState::Dead || self.task(pid).policy == policy {
            self.task_mut(pid).policy = policy;
            return;
        }
        if self.kpolicy.policy_change_inert() {
            self.task_mut(pid).policy = policy;
            return;
        }
        match self.task(pid).state {
            ProcState::Sleeping => {
                self.task_mut(pid).policy = policy;
            }
            ProcState::Runnable => {
                self.dequeue_runnable(pid);
                self.task_mut(pid).policy = policy;
                self.make_runnable(pid);
            }
            ProcState::Running => {
                let core_id = self
                    .core_running(pid)
                    .expect("running task must occupy a core");
                self.charge(core_id);
                let old = self.task(pid).policy;
                self.task_mut(pid).policy = policy;
                if self.kpolicy.demotes_on_change(old, policy) {
                    // Demotion (Linux's RT → CFS, SFS FILTER expiry):
                    // deliberate preemption; the task is requeued and the
                    // core repicks (possibly the same task if nothing
                    // waits).
                    self.preempt_current(core_id, PreemptKind::Preempted);
                    self.reschedule(core_id);
                } else {
                    // Promotion or same-class change: keep the core,
                    // recompute the slice from now.
                    self.cores[core_id].slice_start = self.now;
                    let (kp, mut ctx) = self.policy_ctx();
                    let dur = kp.slice_for(&mut ctx, core_id, pid);
                    self.cores[core_id].slice_end = self.now.saturating_add(dur);
                    self.cores[core_id].gen += 1;
                    self.arm_core_event(core_id);
                }
            }
            ProcState::Dead => unreachable!(),
        }
    }

    /// `/proc/<pid>/stat`-style state poll.
    pub fn proc_state(&self, pid: Pid) -> ProcState {
        self.task(pid).state
    }

    /// `/proc/<pid>/stat` utime: CPU time consumed so far, charged up to the
    /// last accounting boundary plus the in-flight run (as a real kernel
    /// exposes via clock-tick accounting).
    pub fn cpu_time(&self, pid: Pid) -> SimDuration {
        let t = self.task(pid);
        let mut total = t.cpu_time;
        if t.state == ProcState::Running {
            if let Some(core_id) = self.core_running(pid) {
                let c = &self.cores[core_id];
                if self.now > c.run_start {
                    total += self.now - c.run_start;
                }
            }
        }
        total
    }

    /// The task's current policy (as `sched_getscheduler` would report).
    pub fn policy_of(&self, pid: Pid) -> Policy {
        self.task(pid).policy
    }

    /// Earliest pending internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Advance virtual time to `t`, processing all internal events due at or
    /// before `t`, and return notifications generated along the way.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<Notification> {
        let mut out = Vec::new();
        self.advance_into(t, &mut out);
        out
    }

    /// As [`Machine::advance_to`], appending the notifications to a
    /// caller-owned buffer instead of allocating a fresh vector — the
    /// drain-and-reuse fast path for hot simulation loops (`Sim::run`
    /// clears and refills one buffer per step, so steady-state advancing
    /// performs zero notification-buffer allocations; the machine's
    /// internal staging vector keeps its capacity across calls too).
    ///
    /// The internal event loop stays incremental (peek + pop per event)
    /// rather than batch-popping: machine handlers legitimately schedule
    /// follow-up events (wakes, slice renewals) that must be observed
    /// within the same `advance` span.
    /// Delivery contract: every event due at or before `t` is processed
    /// within this call — **including events a handler schedules for
    /// exactly `t` while the span is being processed** (e.g. an I/O block
    /// at `t - d` scheduling its wake at `t`). The loop therefore re-polls
    /// the queue after every handler instead of batch-popping the due
    /// prefix; a batch pop would silently defer same-instant follow-ups to
    /// the next call, which controllers observe as a late notification.
    /// `tests/machine_scenarios.rs` pins this with end-of-span regression
    /// cases.
    pub fn advance_into(&mut self, t: SimTime, out: &mut Vec<Notification>) {
        debug_assert!(t >= self.now, "time must not go backwards");
        while let Some((at, ev)) = self.events.pop_until(t) {
            self.now = at;
            self.handle(ev);
        }
        // The contract above, enforced: nothing due within the span may
        // survive it.
        debug_assert!(
            self.events.peek_time().map_or(true, |next| next > t),
            "advance_into deferred a due event past its span"
        );
        self.now = t;
        out.append(&mut self.out);
    }

    /// Drain all pending events (run to quiescence).
    pub fn run_until_quiescent(&mut self) -> Vec<Notification> {
        while let Some((at, ev)) = self.events.pop() {
            self.now = at;
            self.handle(ev);
        }
        std::mem::take(&mut self.out)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn task(&self, pid: Pid) -> &Task {
        &self.tasks[pid.0 as usize]
    }

    fn task_mut(&mut self, pid: Pid) -> &mut Task {
        &mut self.tasks[pid.0 as usize]
    }

    fn core_running(&self, pid: Pid) -> Option<usize> {
        self.task(pid)
            .home_core
            .filter(|&c| self.cores[c].current == Some(pid))
    }

    /// Charge the running task on `core` for CPU consumed up to `self.now`.
    fn charge(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current else {
            return;
        };
        let run_start = self.cores[core_id].run_start;
        if self.now <= run_start {
            return;
        }
        let ran = self.now - run_start;
        self.cores[core_id].run_start = self.now;
        self.cores[core_id].clock = self.cores[core_id].clock.max(self.now);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(Segment {
                pid,
                core: core_id,
                start: run_start,
                end: self.now,
                policy: self.tasks[pid.0 as usize].policy,
            });
        }
        // Under consolidation contention, wall time on the core advances the
        // task's work more slowly (cache/memory interference); utime still
        // ticks at wall rate, exactly like a thrashing real process.
        let progress = ran.mul_f64(1.0 / self.contention_factor());
        let t = self.task_mut(pid);
        t.cpu_time += ran;
        t.phase_rem = t.phase_rem.saturating_sub(progress);
        // Policy-side accounting (vruntime, deadline budgets, ...).
        let (kp, mut ctx) = self.policy_ctx();
        kp.task_tick(&mut ctx, core_id, pid, ran);
    }

    /// Make a runnable task eligible for dispatch, with preemption checks.
    fn make_runnable(&mut self, pid: Pid) {
        self.set_state(pid, ProcState::Runnable);
        let (kp, mut ctx) = self.policy_ctx();
        let placed = kp.enqueue(&mut ctx, pid);
        self.apply_placed(placed);
    }

    /// Remove a Runnable (queued) task from whatever structure holds it.
    fn dequeue_runnable(&mut self, pid: Pid) {
        debug_assert_eq!(self.task(pid).state, ProcState::Runnable);
        let (kp, mut ctx) = self.policy_ctx();
        kp.dequeue(&mut ctx, pid);
    }

    /// Recompute the running task's slice after its core's runqueue
    /// membership changed, if the policy slices it; preempt immediately if
    /// the new slice is already exhausted.
    fn refresh_current_slice(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current else {
            return;
        };
        let (kp, mut ctx) = self.policy_ctx();
        let Some(slice) = kp.refresh_slice(&mut ctx, core_id, pid) else {
            return;
        };
        let new_end = self.cores[core_id].slice_start.saturating_add(slice);
        self.cores[core_id].slice_end = new_end;
        self.cores[core_id].gen += 1;
        if new_end <= self.now {
            self.charge(core_id);
            if self.task(pid).phase_rem.is_zero() {
                self.phase_complete(core_id, pid);
            } else {
                self.slice_expired(core_id, pid);
            }
        } else {
            self.arm_core_event(core_id);
        }
    }

    /// Stop the current task on `core` (already charged) and put it back on
    /// its runqueue as Runnable. Counts an involuntary context switch if
    /// some other task is waiting to use a core.
    fn preempt_current(&mut self, core_id: usize, why: PreemptKind) {
        let Some(pid) = self.cores[core_id].current.take() else {
            return;
        };
        self.cores[core_id].gen += 1;
        self.set_state(pid, ProcState::Runnable);
        let others_waiting = {
            let (kp, ctx) = self.policy_ctx();
            kp.has_waiters(&ctx)
        };
        if others_waiting {
            self.task_mut(pid).ctx_switches += 1;
            self.total_ctx_switches += 1;
        }
        let (kp, mut ctx) = self.policy_ctx();
        kp.requeue_preempted(&mut ctx, core_id, pid, why);
    }

    /// Pick and dispatch the next task for an empty core.
    fn reschedule(&mut self, core_id: usize) {
        debug_assert!(self.cores[core_id].current.is_none());
        let next = {
            let (kp, mut ctx) = self.policy_ctx();
            kp.pick_next(&mut ctx, core_id)
        };
        match next {
            Some(pid) => self.dispatch(core_id, pid),
            None => {
                self.cores[core_id].gen += 1; // invalidate stale fires
            }
        }
    }

    /// Put `pid` on `core` and arm its boundary event.
    fn dispatch(&mut self, core_id: usize, pid: Pid) {
        debug_assert_eq!(self.task(pid).state, ProcState::Runnable);
        debug_assert!(
            matches!(self.task(pid).phase(), Some(Phase::Cpu(_))),
            "dispatched task must be in a CPU phase"
        );
        let mut cost = if self.cores[core_id].last_ran == Some(pid) {
            SimDuration::ZERO
        } else {
            self.params.ctx_switch_cost
        };
        // Cache-affinity: resuming on a different core than the task last
        // executed on costs a cold-cache refill on top of the switch.
        if !self.params.smp.affinity_cost.is_zero()
            && self.task(pid).last_core.is_some_and(|c| c != core_id)
        {
            cost += self.params.smp.affinity_cost;
        }
        // One-shot penalty deposited by the balance tick when it force-
        // migrated this task.
        cost += std::mem::take(&mut self.task_mut(pid).pending_migration_cost);
        let start = self.now + cost;
        {
            let c = &mut self.cores[core_id];
            c.current = Some(pid);
            c.last_ran = Some(pid);
            c.gen += 1;
            c.run_start = start;
            c.slice_start = start;
            // `max`: a dispatch pre-pays its switch cost (`start` is in the
            // future); if it is preempted before then and the core turns
            // over at a cheaper cost, the earlier start must not rewind
            // the core clock.
            c.clock = c.clock.max(start);
        }
        self.set_state(pid, ProcState::Running);
        self.task_mut(pid).home_core = Some(core_id);
        self.task_mut(pid).last_core = Some(core_id);
        if self.task(pid).first_run.is_none() {
            self.task_mut(pid).first_run = Some(self.now);
            self.out.push(Notification::FirstRun(pid, self.now));
        }
        // Slice: the policy decides the quantum; `SimDuration::MAX`
        // saturates to an unsliced (run-to-block) assignment.
        let dur = {
            let (kp, mut ctx) = self.policy_ctx();
            kp.slice_for(&mut ctx, core_id, pid)
        };
        self.cores[core_id].slice_end = start.saturating_add(dur);
        self.arm_core_event(core_id);
    }

    /// (Re-)arm the boundary event for the core's current assignment. The
    /// phase boundary is projected with the *current* contention factor;
    /// if contention changes before it fires, the fire handler re-charges
    /// and re-arms, converging on the true boundary.
    fn arm_core_event(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current else {
            return;
        };
        let f = self.contention_factor();
        let c = &self.cores[core_id];
        let phase_end = c.run_start + self.task(pid).phase_rem.mul_f64(f);
        let fire = phase_end.min(c.slice_end);
        let gen = c.gen;
        self.events.push(fire, Ev::CoreFire { core: core_id, gen });
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::CoreFire { core, gen } => {
                if self.cores[core].gen != gen || self.cores[core].current.is_none() {
                    return; // stale
                }
                self.charge(core);
                let pid = self.cores[core].current.expect("checked above");
                if self.task(pid).phase_rem.is_zero() {
                    self.phase_complete(core, pid);
                } else {
                    self.slice_expired(core, pid);
                }
            }
            Ev::Wake { pid, io } => self.wake(pid, io),
            Ev::Balance => self.balance_tick(),
        }
    }

    /// Periodic load balance: ask the policy to migrate (at most) one task
    /// between its queues when their depths diverge past the threshold
    /// (the kernel's conservative `load_balance` envelope: one pull per
    /// tick, never across a trivial imbalance). The migrated task is
    /// charged [`SmpParams::migration_cost`] at its next dispatch.
    fn balance_tick(&mut self) {
        self.balance_armed = false;
        if self.live_tasks > 0 {
            self.balance_armed = true;
            self.events
                .push(self.now + self.params.smp.balance_interval, Ev::Balance);
        }
        if !self.kpolicy.participates_in_balance() {
            return;
        }
        let placed = {
            let (kp, mut ctx) = self.policy_ctx();
            kp.balance(&mut ctx)
        };
        let Some(placed) = placed else {
            return;
        };
        self.balance_migrations += 1;
        self.apply_placed(placed);
    }

    /// The running task finished its current CPU phase.
    fn phase_complete(&mut self, core_id: usize, pid: Pid) {
        let next_idx = self.task(pid).phase_idx + 1;
        self.task_mut(pid).phase_idx = next_idx;
        match self.task(pid).phases.get(next_idx).copied() {
            None => {
                // Done.
                self.cores[core_id].current = None;
                self.cores[core_id].gen += 1;
                self.set_state(pid, ProcState::Dead);
                self.task_mut(pid).home_core = None;
                self.live_tasks -= 1;
                let rec = self.task(pid).finished_record(self.now);
                if self.retain_finished {
                    self.finished.push(rec.clone());
                }
                self.out.push(Notification::Finished(Box::new(rec)));
                {
                    let (kp, mut ctx) = self.policy_ctx();
                    kp.on_task_exit(&mut ctx, pid);
                }
                self.reschedule(core_id);
            }
            Some(Phase::Io(d)) => {
                // Voluntary block: off-CPU, schedule the wake.
                self.cores[core_id].current = None;
                self.cores[core_id].gen += 1;
                self.set_state(pid, ProcState::Sleeping);
                self.task_mut(pid).phase_rem = d;
                self.out.push(Notification::Blocked(pid, self.now));
                self.events.push(self.now + d, Ev::Wake { pid, io: d });
                self.reschedule(core_id);
            }
            Some(Phase::Cpu(d)) => {
                // Back-to-back CPU phases: continue running seamlessly.
                self.task_mut(pid).phase_rem = d;
                self.cores[core_id].gen += 1;
                self.arm_core_event(core_id);
            }
        }
    }

    /// The running task exhausted its slice.
    fn slice_expired(&mut self, core_id: usize, pid: Pid) {
        // Unsliced assignments (FIFO, the SRTF oracle, ...) can only get
        // here via a stale phase-end projection (contention rose after
        // arming): re-arm with the current factor instead of preempting.
        if self.cores[core_id].slice_end == SimTime::MAX {
            self.cores[core_id].gen += 1;
            self.arm_core_event(core_id);
            return;
        }
        let has_competition = {
            let (kp, ctx) = self.policy_ctx();
            kp.has_competition(&ctx, core_id)
        };
        if !has_competition {
            // Nothing else would run; extend the slice in place without a
            // context switch (the kernel's check_preempt_tick finds no
            // competitor).
            let renew = {
                let (kp, mut ctx) = self.policy_ctx();
                kp.slice_for(&mut ctx, core_id, pid)
            };
            self.cores[core_id].slice_start = self.now;
            self.cores[core_id].slice_end = self.now.saturating_add(renew);
            self.cores[core_id].gen += 1;
            self.arm_core_event(core_id);
            return;
        }
        self.preempt_current(core_id, PreemptKind::SliceExpired);
        self.reschedule(core_id);
    }

    /// I/O completed: account sleep time and requeue.
    fn wake(&mut self, pid: Pid, io: SimDuration) {
        debug_assert_eq!(self.task(pid).state, ProcState::Sleeping);
        self.task_mut(pid).io_time += io;
        let next_idx = self.task(pid).phase_idx + 1;
        self.task_mut(pid).phase_idx = next_idx;
        match self.task(pid).phases.get(next_idx).copied() {
            None => {
                // Task ended with an I/O phase.
                self.set_state(pid, ProcState::Dead);
                self.task_mut(pid).home_core = None;
                self.live_tasks -= 1;
                let rec = self.task(pid).finished_record(self.now);
                if self.retain_finished {
                    self.finished.push(rec.clone());
                }
                self.out.push(Notification::Finished(Box::new(rec)));
                let (kp, mut ctx) = self.policy_ctx();
                kp.on_task_exit(&mut ctx, pid);
            }
            Some(Phase::Cpu(d)) => {
                self.task_mut(pid).phase_rem = d;
                self.out.push(Notification::Woke(pid, self.now));
                self.make_runnable(pid);
            }
            Some(Phase::Io(d)) => {
                // Back-to-back I/O phases: keep sleeping.
                self.task_mut(pid).phase_rem = d;
                self.events.push(self.now + d, Ev::Wake { pid, io: d });
            }
        }
    }
}
