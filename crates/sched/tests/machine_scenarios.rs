//! Scenario tests for the machine: hand-computable schedules exercising
//! nice weights, migrations, mixed policies, SRTF with I/O, and the
//! external-control (schedtool/procfs) surface under adversarial timing.

use sfs_sched::{
    run_open_loop, KernelPolicyKind, Machine, MachineParams, Notification, Phase, Policy,
    ProcState, TaskSpec,
};
use sfs_simcore::{SimDuration, SimTime};

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

fn at(v: u64) -> SimTime {
    SimTime::ZERO + ms(v)
}

fn exact(cores: usize) -> MachineParams {
    MachineParams {
        cores,
        ctx_switch_cost: SimDuration::ZERO,
        kpolicy: KernelPolicyKind::Cfs,
        ..Default::default()
    }
}

#[test]
fn nice_weights_shift_cpu_share() {
    // A nice -5 task against a nice 5 task on one core: the heavy task gets
    // weight 3121 vs 335, ~90% of the CPU, so it finishes far earlier.
    let heavy = TaskSpec {
        phases: vec![Phase::Cpu(ms(100))],
        policy: Policy::Normal { nice: -5 },
        label: 0,
    };
    let light = TaskSpec {
        phases: vec![Phase::Cpu(ms(100))],
        policy: Policy::Normal { nice: 5 },
        label: 1,
    };
    let done = run_open_loop(exact(1), [(at(0), heavy), (at(0), light)]);
    let h = done.iter().find(|t| t.label == 0).unwrap();
    let l = done.iter().find(|t| t.label == 1).unwrap();
    assert!(
        h.finished < l.finished,
        "heavy task must finish first: {} vs {}",
        h.finished,
        l.finished
    );
    // The heavy task should finish in well under 150ms (it owns ~90%).
    assert!(h.finished < at(150), "heavy finished at {}", h.finished);
    assert_eq!(l.finished, at(200), "total work conserved");
}

#[test]
fn task_migrates_to_idle_core() {
    // Two tasks overlap on core placement, then one core frees up: the
    // queued task must migrate and record it.
    let mut m = Machine::new(exact(2));
    let _a = m.spawn(TaskSpec::cpu(0, ms(100)));
    let _b = m.spawn(TaskSpec::cpu(1, ms(10)));
    let _c = m.spawn(TaskSpec::cpu(2, ms(10)));
    let _d = m.spawn(TaskSpec::cpu(3, ms(100)));
    m.run_until_quiescent();
    // All complete; makespan reflects work conservation on 2 cores:
    // 220ms total / 2 = 110ms.
    let makespan = m.finished().iter().map(|t| t.finished).max().unwrap();
    assert!(makespan <= at(112), "makespan {makespan}");
}

#[test]
fn rt_task_starves_cfs_until_block() {
    let rt = TaskSpec {
        phases: vec![Phase::Cpu(ms(50)), Phase::Io(ms(20)), Phase::Cpu(ms(50))],
        policy: Policy::Fifo { prio: 50 },
        label: 0,
    };
    let cfs = TaskSpec::cpu(1, ms(30));
    let done = run_open_loop(exact(1), [(at(0), rt), (at(0), cfs)]);
    let c = done.iter().find(|t| t.label == 1).unwrap();
    // CFS only runs inside the RT task's 20ms I/O window [50,70), then
    // resumes after the RT task finishes at 120.
    assert_eq!(c.finished, at(130));
    let r = done.iter().find(|t| t.label == 0).unwrap();
    assert_eq!(r.finished, at(120));
}

#[test]
fn srtf_accounts_remaining_after_io() {
    // SRTF keys on *remaining CPU*: a task that already burned most of its
    // demand outranks a fresh medium task.
    let phased = TaskSpec {
        phases: vec![Phase::Cpu(ms(80)), Phase::Io(ms(50)), Phase::Cpu(ms(10))],
        policy: Policy::NORMAL,
        label: 0,
    };
    let fresh = TaskSpec::cpu(1, ms(45));
    let done = run_open_loop(
        MachineParams {
            cores: 1,
            ctx_switch_cost: SimDuration::ZERO,
            kpolicy: KernelPolicyKind::Srtf,
            ..Default::default()
        },
        [(at(0), phased), (at(100), fresh)],
    );
    // phased: cpu 0-80, io 80-130. fresh arrives at 100, starts (only
    // runnable), has 45ms demand. phased wakes at 130 with 10ms remaining
    // < fresh's 15ms remaining → preempts; fresh resumes after.
    let p = done.iter().find(|t| t.label == 0).unwrap();
    assert_eq!(p.finished, at(140));
    let f = done.iter().find(|t| t.label == 1).unwrap();
    assert_eq!(f.finished, at(155));
}

#[test]
fn set_policy_on_queued_task_requeues_correctly() {
    // A CFS task waiting behind an RT hog is promoted to FIFO: it must jump
    // into the RT queue and run as soon as the hog blocks/finishes.
    let mut m = Machine::new(exact(1));
    let _hog = m.spawn(TaskSpec {
        phases: vec![Phase::Cpu(ms(100))],
        policy: Policy::Fifo { prio: 60 },
        label: 0,
    });
    let waiting = m.spawn(TaskSpec::cpu(1, ms(10)));
    m.advance_to(at(5));
    assert_eq!(m.proc_state(waiting), ProcState::Runnable);
    m.set_policy(waiting, Policy::Fifo { prio: 50 });
    m.run_until_quiescent();
    let w = m.finished().iter().find(|t| t.label == 1).unwrap();
    assert_eq!(
        w.finished,
        at(110),
        "promoted task runs right after the hog"
    );
}

#[test]
fn set_policy_on_dead_task_is_a_noop() {
    let mut m = Machine::new(exact(1));
    let a = m.spawn(TaskSpec::cpu(0, ms(5)));
    m.run_until_quiescent();
    assert_eq!(m.proc_state(a), ProcState::Dead);
    m.set_policy(a, Policy::Fifo { prio: 99 }); // must not panic or revive
    assert_eq!(m.proc_state(a), ProcState::Dead);
    assert_eq!(m.finished().len(), 1);
}

#[test]
fn equal_priority_fifo_does_not_preempt() {
    let mk = |label| TaskSpec {
        phases: vec![Phase::Cpu(ms(50))],
        policy: Policy::Fifo { prio: 50 },
        label,
    };
    let done = run_open_loop(exact(1), [(at(0), mk(0)), (at(10), mk(1))]);
    let first = done.iter().find(|t| t.label == 0).unwrap();
    assert_eq!(first.finished, at(50));
    assert_eq!(first.ctx_switches, 0, "same-prio arrival must not preempt");
    let second = done.iter().find(|t| t.label == 1).unwrap();
    assert_eq!(second.finished, at(100));
}

#[test]
fn mixed_rr_and_fifo_share_by_priority() {
    // RR at prio 60 outranks FIFO at prio 40 entirely.
    let rr = TaskSpec {
        phases: vec![Phase::Cpu(ms(150))],
        policy: Policy::Rr { prio: 60 },
        label: 0,
    };
    let fifo = TaskSpec {
        phases: vec![Phase::Cpu(ms(30))],
        policy: Policy::Fifo { prio: 40 },
        label: 1,
    };
    let done = run_open_loop(exact(1), [(at(0), rr), (at(0), fifo)]);
    assert_eq!(
        done.iter().find(|t| t.label == 0).unwrap().finished,
        at(150)
    );
    assert_eq!(
        done.iter().find(|t| t.label == 1).unwrap().finished,
        at(180)
    );
}

#[test]
fn wakeup_preemption_favours_lagging_sleeper() {
    // An I/O task that slept re-enters with the queue's min vruntime; the
    // long-running current task has accumulated far more vruntime, so the
    // waker preempts (wakeup_granularity hysteresis notwithstanding).
    let sleeper = TaskSpec {
        phases: vec![Phase::Cpu(ms(2)), Phase::Io(ms(50)), Phase::Cpu(ms(2))],
        policy: Policy::NORMAL,
        label: 0,
    };
    let hog = TaskSpec::cpu(1, ms(500));
    let done = run_open_loop(exact(1), [(at(0), sleeper), (at(0), hog)]);
    let s = done.iter().find(|t| t.label == 0).unwrap();
    // Without wakeup preemption the sleeper would wait out a full slice
    // (~12-24ms) after waking at ~52ms; with it, it finishes promptly.
    assert!(
        s.finished < at(80),
        "sleeper delayed too long: {}",
        s.finished
    );
}

#[test]
fn zero_length_advance_and_empty_machine_are_safe() {
    let mut m = Machine::new(exact(2));
    assert!(m.next_event_time().is_none());
    let notes = m.advance_to(at(0));
    assert!(notes.is_empty());
    let notes = m.run_until_quiescent();
    assert!(notes.is_empty());
    assert_eq!(m.live_tasks(), 0);
    assert_eq!(m.total_ctx_switches(), 0);
}

#[test]
fn live_task_count_tracks_lifecycle() {
    let mut m = Machine::new(exact(1));
    let _a = m.spawn(TaskSpec::cpu(0, ms(10)));
    let _b = m.spawn(TaskSpec::io_then_cpu(1, ms(30), ms(10)));
    assert_eq!(m.live_tasks(), 2);
    m.advance_to(at(15));
    assert_eq!(m.live_tasks(), 1, "pure-CPU task finished");
    m.run_until_quiescent();
    assert_eq!(m.live_tasks(), 0);
}

#[test]
fn contention_factor_reflects_active_tasks() {
    let mut params = exact(2);
    params.contention_beta = 1.0;
    params.contention_cap = 3.0;
    let mut m = Machine::new(params);
    assert_eq!(m.contention_factor(), 1.0);
    for i in 0..2 {
        m.spawn(TaskSpec::cpu(i, ms(100)));
    }
    assert_eq!(m.contention_factor(), 1.0, "at capacity: no inflation");
    for i in 2..8 {
        m.spawn(TaskSpec::cpu(i, ms(100)));
    }
    // 8 active on 2 cores → 1 + log2(4) = 3.0 (at the cap).
    assert!((m.contention_factor() - 3.0).abs() < 1e-9);
    m.run_until_quiescent();
    assert_eq!(m.contention_factor(), 1.0, "all done: inflation gone");
}

#[test]
fn advance_into_delivers_events_at_exact_span_end() {
    // Regression for the end-of-span edge: a handler that runs *during* an
    // advance may schedule a follow-up event for exactly the span-end
    // instant `t` (here: the CPU-phase completion at t=10 schedules the I/O
    // wake at t=20 while `advance_to(20)` is in flight). The delivery
    // contract says that wake belongs to *this* span — a batch pop of the
    // events due at call entry would silently defer it to the next call.
    let mut m = Machine::new(exact(1));
    let a = m.spawn(TaskSpec {
        phases: vec![Phase::Cpu(ms(10)), Phase::Io(ms(10)), Phase::Cpu(ms(5))],
        policy: Policy::NORMAL,
        label: 0,
    });

    // Span 1 ends exactly at the block instant: Blocked(10) is due at the
    // boundary and must not leak into the next call.
    let notes = m.advance_to(at(10));
    assert!(
        notes
            .iter()
            .any(|n| matches!(n, Notification::Blocked(p, t) if *p == a && *t == at(10))),
        "Blocked at exact span end must be in-span: {notes:?}"
    );
    assert_eq!(m.proc_state(a), ProcState::Sleeping);

    // Span 2 ends exactly at the wake instant; the Wake event was pushed by
    // the Blocked handler mid-advance in a fully incremental run, but here
    // it proves the boundary case: due == t is delivered, never deferred.
    let notes = m.advance_to(at(20));
    assert!(
        notes
            .iter()
            .any(|n| matches!(n, Notification::Woke(p, t) if *p == a && *t == at(20))),
        "Woke at exact span end must be in-span: {notes:?}"
    );
    // And the wake's *consequence* (the dispatch) also lands in-span: the
    // task is already Running when the call returns, so a zero-length
    // follow-up advance observes nothing new.
    assert_eq!(m.proc_state(a), ProcState::Running);
    let notes = m.advance_to(at(20));
    assert!(
        notes.is_empty(),
        "span-end events must not replay: {notes:?}"
    );

    m.run_until_quiescent();
    assert_eq!(m.finished().len(), 1);
}

#[test]
fn advance_into_single_call_spans_handler_scheduled_boundary_event() {
    // The single-call variant of the edge: one advance covers block AND
    // wake, where the wake event is created by a handler *inside* the span
    // for the exact instant the span ends.
    let mut m = Machine::new(exact(1));
    let a = m.spawn(TaskSpec {
        phases: vec![Phase::Cpu(ms(10)), Phase::Io(ms(10)), Phase::Cpu(ms(5))],
        policy: Policy::NORMAL,
        label: 0,
    });
    let notes = m.advance_to(at(20));
    let blocked = notes
        .iter()
        .position(|n| matches!(n, Notification::Blocked(p, _) if *p == a));
    let woke = notes
        .iter()
        .position(|n| matches!(n, Notification::Woke(p, t) if *p == a && *t == at(20)));
    assert!(
        blocked.is_some() && woke.is_some(),
        "both Blocked and the handler-scheduled end-of-span Woke belong to \
         one span: {notes:?}"
    );
    assert!(blocked < woke, "stream order follows simulated time");
}

#[test]
fn heavily_oversubscribed_machine_terminates() {
    // 400 tasks on 2 cores with default CFS settings: a stress test for the
    // event engine's termination and bookkeeping.
    let arrivals: Vec<_> = (0..400)
        .map(|i| (at(i / 4), TaskSpec::cpu(i, ms(1 + (i % 30)))))
        .collect();
    let done = run_open_loop(exact(2), arrivals);
    assert_eq!(done.len(), 400);
    let total: SimDuration = done.iter().map(|t| t.cpu_time).sum();
    let expect: u64 = (0..400u64).map(|i| 1 + (i % 30)).sum();
    assert_eq!(total, ms(expect));
}
