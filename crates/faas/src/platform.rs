//! The OpenLambda-like platform: dispatch pipeline + scheduler + accounting.
//!
//! End-to-end runner for the §IX experiments: HTTP invocation → gateway →
//! OpenLambda worker → HTTP sandbox server → OS dispatch (+ UDP notification
//! of `(pid, T_inv)` to SFS) → scheduled execution. Turnaround is measured
//! from the HTTP invocation, so platform overhead is part of every
//! distribution exactly as in Fig. 13–15.

use std::sync::Arc;

use sfs_core::{Baseline, Controller, ControllerFactory, RequestOutcome, SfsConfig, Sim};
use sfs_sched::MachineParams;
use sfs_simcore::{SimDuration, SimRng, SimTime};
use sfs_workload::Workload;

use crate::containers::{Acquire, ContainerPool};
use crate::pipeline::{Pipeline, Stage};

/// Platform deployment parameters (defaults model the paper's 72-core
/// m5.metal OpenLambda deployment).
#[derive(Debug, Clone)]
pub struct OpenLambdaParams {
    /// Gateway HTTP routing overhead per request.
    pub gateway_latency: SimDuration,
    /// OpenLambda worker pool size.
    pub ol_workers: usize,
    /// Per-request OL worker processing overhead.
    pub ol_worker_overhead: SimDuration,
    /// HTTP sandbox server pool size.
    pub sandbox_servers: usize,
    /// Per-request sandbox dispatch overhead.
    pub sandbox_overhead: SimDuration,
    /// UDP `(pid, T_inv)` notification delay to SFS.
    pub udp_notify_delay: SimDuration,
    /// Relative jitter on every hop's service time.
    pub jitter: f64,
    /// Pre-warmed container pool size.
    pub containers: usize,
    /// Consolidation-contention coefficient passed to the machine (the
    /// paper's premise: deep consolidation inflates execution duration;
    /// see [`sfs_sched::MachineParams::contention_beta`]). Containerised
    /// Python functions feel this far more than the bare fib processes of
    /// the standalone experiments.
    pub contention_beta: f64,
    /// RNG seed for overhead jitter.
    pub seed: u64,
}

impl Default for OpenLambdaParams {
    fn default() -> Self {
        OpenLambdaParams {
            gateway_latency: SimDuration::from_micros(200),
            ol_workers: 16,
            ol_worker_overhead: SimDuration::from_micros(500),
            sandbox_servers: 32,
            sandbox_overhead: SimDuration::from_millis(1),
            udp_notify_delay: SimDuration::from_micros(50),
            jitter: 0.5,
            containers: 4_096,
            contention_beta: 0.5,
            seed: 0xFAA5,
        }
    }
}

/// A workload after platform dispatch: OS-level arrivals plus per-request
/// platform delay.
#[derive(Debug, Clone)]
pub struct Dispatched {
    /// The workload with arrivals moved to OS-dispatch times.
    pub os_workload: Workload,
    /// HTTP-invocation times (original arrivals), indexed by request id.
    pub http_arrivals: Vec<SimTime>,
    /// Pipeline delay per request (dispatch − invocation).
    pub platform_delay: Vec<SimDuration>,
    /// Peak simultaneous container occupancy (sanity: below pool size).
    pub container_peak: usize,
    /// Whether the pre-warmed pool ever blocked a dispatch.
    pub pool_blocked: bool,
}

/// Which scheduler runs on the host. Any [`ControllerFactory`] works via
/// [`HostScheduler::Custom`]; the two named variants cover the paper's
/// comparison (SFS-ported OpenLambda vs stock CFS).
#[derive(Clone)]
pub enum HostScheduler {
    /// SFS-ported OpenLambda.
    Sfs(SfsConfig),
    /// A pure kernel baseline (the paper compares against CFS).
    Kernel(Baseline),
    /// Any other user-space policy, built fresh per run.
    Custom(Arc<dyn ControllerFactory + Send + Sync>),
}

impl std::fmt::Debug for HostScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostScheduler::Sfs(cfg) => f.debug_tuple("Sfs").field(cfg).finish(),
            HostScheduler::Kernel(b) => f.debug_tuple("Kernel").field(b).finish(),
            HostScheduler::Custom(c) => f.debug_tuple("Custom").field(&c.label()).finish(),
        }
    }
}

impl ControllerFactory for HostScheduler {
    fn build(&self) -> Box<dyn Controller> {
        match self {
            HostScheduler::Sfs(cfg) => cfg.build(),
            HostScheduler::Kernel(b) => b.build(),
            HostScheduler::Custom(c) => c.build(),
        }
    }

    fn label(&self) -> String {
        match self {
            HostScheduler::Sfs(cfg) => cfg.label(),
            HostScheduler::Kernel(b) => b.label(),
            HostScheduler::Custom(c) => c.label(),
        }
    }

    fn configure_machine(&self, params: &mut MachineParams) {
        match self {
            HostScheduler::Sfs(cfg) => cfg.configure_machine(params),
            HostScheduler::Kernel(b) => b.configure_machine(params),
            HostScheduler::Custom(c) => c.configure_machine(params),
        }
    }
}

/// The platform model.
#[derive(Debug, Clone)]
pub struct OpenLambda {
    params: OpenLambdaParams,
}

impl OpenLambda {
    /// Build a platform with the given parameters.
    pub fn new(params: OpenLambdaParams) -> OpenLambda {
        assert!(params.ol_workers >= 1 && params.sandbox_servers >= 1);
        OpenLambda { params }
    }

    /// Push a workload through the dispatch pipeline (gateway → OL worker →
    /// sandbox → UDP notify), producing OS-level arrival times.
    pub fn dispatch(&self, workload: &Workload) -> Dispatched {
        let p = &self.params;
        let mut rng = SimRng::seed_from_u64(p.seed);
        let pipeline = Pipeline::new()
            .stage(Stage::new("gateway", 1_024, p.gateway_latency, p.jitter))
            .stage(Stage::new(
                "ol-worker",
                p.ol_workers,
                p.ol_worker_overhead,
                p.jitter,
            ))
            .stage(Stage::new(
                "sandbox",
                p.sandbox_servers,
                p.sandbox_overhead,
                p.jitter,
            ));
        let http_arrivals: Vec<SimTime> = workload.requests.iter().map(|r| r.arrival).collect();
        let mut dispatch_times = pipeline.process(&http_arrivals, &mut rng);
        // UDP notification to SFS lands shortly after the OS dispatch; SFS
        // only learns about the request then, so it is part of the delay.
        for t in dispatch_times.iter_mut() {
            *t += p.udp_notify_delay;
        }

        // Container accounting: each request holds a pre-warmed container
        // from dispatch to (approximately) dispatch + ideal duration. Peak
        // occupancy validates the "pool never blocks" assumption; the pool
        // is checked, not enforced, because the paper sizes it generously.
        let mut pool = ContainerPool::new(p.containers);
        let mut events: Vec<(SimTime, bool, u64)> = Vec::with_capacity(workload.len() * 2);
        for (r, &d) in workload.requests.iter().zip(dispatch_times.iter()) {
            events.push((d, true, r.id));
            events.push((d + r.spec.ideal_duration(), false, r.id));
        }
        events.sort_by_key(|&(t, is_acq, id)| (t, is_acq, id));
        let mut blocked = false;
        for (t, is_acq, id) in events {
            if is_acq {
                if pool.acquire(id, t) == Acquire::Queued {
                    blocked = true;
                }
            } else if pool.in_use() > 0 {
                pool.release(t);
            }
        }

        let mut os_workload = workload.clone();
        let mut platform_delay = Vec::with_capacity(workload.len());
        for (req, &d) in os_workload.requests.iter_mut().zip(dispatch_times.iter()) {
            platform_delay.push(d.since(req.arrival));
            req.arrival = d;
        }
        Dispatched {
            os_workload,
            http_arrivals,
            platform_delay,
            container_peak: pool.peak_in_use(),
            pool_blocked: blocked,
        }
    }

    /// Run a workload end-to-end on `cores` host cores under the chosen
    /// scheduler. Outcomes are re-based to HTTP invocation time (turnaround
    /// includes platform overhead; RTE uses the same ideal numerator as the
    /// paper, so platform overhead depresses RTE).
    pub fn run(
        &self,
        sched: HostScheduler,
        cores: usize,
        workload: &Workload,
    ) -> Vec<RequestOutcome> {
        self.run_with(&sched, cores, workload)
    }

    /// As [`OpenLambda::run`], for any controller recipe: one fresh
    /// controller is built for the host.
    pub fn run_with(
        &self,
        sched: &dyn ControllerFactory,
        cores: usize,
        workload: &Workload,
    ) -> Vec<RequestOutcome> {
        let dispatched = self.dispatch(workload);
        let mut mp = MachineParams::linux(cores);
        mp.contention_beta = self.params.contention_beta;
        sched.configure_machine(&mut mp);
        let mut outcomes = Sim::on(mp)
            .workload(&dispatched.os_workload)
            .boxed_controller(sched.build())
            .run()
            .outcomes;
        for o in outcomes.iter_mut() {
            let http = dispatched.http_arrivals[o.id as usize];
            o.arrival = http;
            o.turnaround = o.finished.since(http);
            o.rte = if o.turnaround.is_zero() {
                1.0
            } else {
                (o.ideal.as_nanos() as f64 / o.turnaround.as_nanos() as f64).min(1.0)
            };
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_workload::WorkloadSpec;

    fn small_workload() -> Workload {
        WorkloadSpec::openlambda(600, 77)
            .with_load(8, 0.8)
            .generate()
    }

    #[test]
    fn dispatch_adds_bounded_overhead() {
        let ol = OpenLambda::new(OpenLambdaParams::default());
        let w = small_workload();
        let d = ol.dispatch(&w);
        assert_eq!(d.platform_delay.len(), w.len());
        for (i, delay) in d.platform_delay.iter().enumerate() {
            assert!(
                delay.as_millis_f64() >= 0.5,
                "request {i} delay {delay} below minimum hop costs"
            );
            assert!(
                delay.as_millis_f64() < 50.0,
                "request {i} delay {delay} implausibly large"
            );
        }
        // OS arrivals remain sorted per original order shifts are tiny.
        assert!(!d.pool_blocked, "pre-warmed pool must not block");
        assert!(d.container_peak > 0);
    }

    #[test]
    fn run_rebases_turnaround_to_http_invocation() {
        let ol = OpenLambda::new(OpenLambdaParams::default());
        let w = small_workload();
        let out = ol.run(HostScheduler::Kernel(Baseline::Cfs), 8, &w);
        assert_eq!(out.len(), w.len());
        for o in &out {
            // Turnaround includes at least the pipeline overhead + ideal.
            assert!(
                o.turnaround >= o.ideal,
                "req {}: turnaround below ideal",
                o.id
            );
            assert!(o.rte <= 1.0 && o.rte > 0.0);
        }
    }

    #[test]
    fn sfs_still_beats_cfs_behind_the_platform() {
        // Fig. 13's qualitative claim at high load.
        let ol = OpenLambda::new(OpenLambdaParams::default());
        let w = WorkloadSpec::openlambda(1_200, 99)
            .with_load(8, 1.0)
            .generate();
        let sfs = ol.run(HostScheduler::Sfs(SfsConfig::new(8)), 8, &w);
        let cfs = ol.run(HostScheduler::Kernel(Baseline::Cfs), 8, &w);
        let mean = |v: &[RequestOutcome]| {
            v.iter().map(|o| o.turnaround.as_millis_f64()).sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&sfs) < mean(&cfs),
            "OL+SFS mean {} should beat OL+CFS {}",
            mean(&sfs),
            mean(&cfs)
        );
    }

    #[test]
    fn platform_overhead_depresses_rte() {
        // Even under SFS at low load, RTE < 1 because the pipeline adds
        // non-CPU latency ("overheads diminished the performance benefits").
        let ol = OpenLambda::new(OpenLambdaParams::default());
        let w = WorkloadSpec::openlambda(300, 101)
            .with_load(8, 0.5)
            .generate();
        let out = ol.run(HostScheduler::Sfs(SfsConfig::new(8)), 8, &w);
        let short = out
            .iter()
            .filter(|o| o.ideal < SimDuration::from_millis(50))
            .collect::<Vec<_>>();
        assert!(!short.is_empty());
        let perfect = short.iter().filter(|o| o.rte >= 0.999).count();
        assert!(
            perfect < short.len(),
            "platform overhead must shave RTE below 1 for some short requests"
        );
    }

    #[test]
    fn custom_controllers_run_behind_the_platform() {
        // HostScheduler::Custom plugs any ControllerFactory into the
        // OpenLambda pipeline — here the user-space MLFQ policy.
        struct Mlfq;
        impl sfs_core::ControllerFactory for Mlfq {
            fn build(&self) -> Box<dyn sfs_core::Controller> {
                Box::new(sfs_core::UserMlfq::default())
            }
            fn label(&self) -> String {
                "user-mlfq".into()
            }
        }
        let ol = OpenLambda::new(OpenLambdaParams::default());
        let w = small_workload();
        let sched = HostScheduler::Custom(Arc::new(Mlfq));
        assert_eq!(format!("{sched:?}"), "Custom(\"user-mlfq\")");
        let out = ol.run(sched, 8, &w);
        assert_eq!(out.len(), w.len());
        for o in &out {
            assert!(o.rte > 0.0 && o.rte <= 1.0);
        }
    }

    #[test]
    fn tiny_container_pool_blocks() {
        let ol = OpenLambda::new(OpenLambdaParams {
            containers: 2,
            ..Default::default()
        });
        let w = small_workload();
        let d = ol.dispatch(&w);
        assert!(d.pool_blocked, "a 2-container pool must saturate");
    }
}
