//! Workspace file walker: every `.rs` source under the repo root, in a
//! deterministic (sorted) order, skipping build products and non-source
//! trees. `std::fs` only — the walker must run on the same hermetic
//! machine as the build.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results", "related"];

/// Collect every `.rs` file under `root`, sorted by path so findings and
/// reports are byte-stable run to run.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    collect(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if ty.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated form of `path` under `root`; falls
/// back to the full path when `path` is not under `root`.
pub fn relative_path(root: &Path, path: &Path) -> String {
    match path.strip_prefix(root) {
        Ok(rel) => rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
        Err(_) => path.display().to_string(),
    }
}

/// Locate the workspace root: the nearest ancestor of `start` (inclusive)
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_path_is_slash_separated() {
        let root = Path::new("/a/b");
        assert_eq!(
            relative_path(root, Path::new("/a/b/crates/x/src/lib.rs")),
            "crates/x/src/lib.rs"
        );
        assert_eq!(
            relative_path(root, Path::new("/elsewhere/f.rs")),
            "/elsewhere/f.rs"
        );
    }
}
