//! Facade crate re-exporting the SFS reproduction workspace.
pub mod cli;

pub use sfs_core as sfs;
pub use sfs_faas as faas;
pub use sfs_host as host;
pub use sfs_metrics as metrics;
pub use sfs_sched as sched;
pub use sfs_simcore as simcore;
pub use sfs_workload as workload;
