//! Criterion end-to-end benchmarks: simulate a 400-request Azure-sampled
//! workload per scheduling policy, measuring simulator throughput (how fast
//! this reproduction regenerates the paper's experiments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sfs_core::{run_baseline, Baseline, SfsConfig, SfsSimulator};
use sfs_sched::MachineParams;
use sfs_workload::{Workload, WorkloadSpec};

const CORES: usize = 8;
const REQUESTS: usize = 400;

fn workload() -> Workload {
    WorkloadSpec::azure_sampled(REQUESTS, 42).with_load(CORES, 0.9).generate()
}

fn bench_baselines(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
        g.bench_with_input(BenchmarkId::new("baseline", b.name()), &b, |bench, &b| {
            bench.iter(|| black_box(run_baseline(b, CORES, &w)));
        });
    }
    g.bench_function("sfs", |bench| {
        bench.iter(|| {
            let sim = SfsSimulator::new(
                SfsConfig::new(CORES),
                MachineParams::linux(CORES),
                w.clone(),
            );
            black_box(sim.run().outcomes.len())
        });
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/generate_10k", |b| {
        let spec = WorkloadSpec::azure_sampled(10_000, 7).with_load(16, 0.8);
        b.iter(|| black_box(spec.generate().len()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_baselines, bench_workload_generation
}
criterion_main!(benches);
