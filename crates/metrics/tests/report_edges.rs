//! Edge-case tests for the reporting layer beyond the unit suites.

use sfs_metrics::{
    cdf_chart, ctx_switch_ratios, evaluate_slo, headline_claims, timeline_chart, CdfReport,
    MarkdownTable, Paired, PercentileTable, SloRule,
};

fn pair(ideal: f64, t: f64, b: f64, tc: u64, bc: u64) -> Paired {
    Paired {
        ideal_ms: ideal,
        treatment_ms: t,
        baseline_ms: b,
        treatment_ctx: tc,
        baseline_ctx: bc,
    }
}

#[test]
fn headline_with_all_long_population() {
    // No short requests at all: speedup defaults neutral, slowdown real.
    let pairs = vec![
        pair(2000.0, 2600.0, 2000.0, 5, 5),
        pair(3000.0, 3300.0, 3000.0, 2, 2),
    ];
    let h = headline_claims(&pairs, 1550.0);
    assert_eq!(h.short_fraction, 0.0);
    assert_eq!(h.short_mean_speedup, 1.0);
    assert!((h.long_mean_slowdown - 1.2).abs() < 1e-9);
    assert_eq!(h.improved_fraction, 0.0);
}

#[test]
fn ctx_ratio_distribution_is_complete() {
    let pairs: Vec<Paired> = (0..50)
        .map(|i| pair(10.0, 10.0, 10.0, i % 3, (i % 7) * 4))
        .collect();
    let ratios = ctx_switch_ratios(&pairs);
    assert_eq!(ratios.len(), 50);
    for r in ratios {
        assert!(r > 0.0 && r.is_finite());
    }
}

#[test]
fn single_value_series_render_everywhere() {
    let mut cdf = CdfReport::new("x");
    cdf.push("only", vec![42.0]);
    let md = cdf.to_markdown();
    assert!(md.contains("42.000"));
    let mut pt = PercentileTable::new();
    pt.push("only", vec![42.0]);
    assert_eq!(pt.value("only", 99.99), Some(42.0));
    let chart = cdf_chart(&[("s", &[42.0][..])], 30, 6);
    assert!(chart.contains('*'));
    let tl = timeline_chart(&[(0.0, 42.0)], 30, 6);
    assert!(tl.contains('*'));
}

#[test]
fn slo_grace_protects_microsecond_functions() {
    // A 0.5ms function that took 8ms: 16x slowdown but within the 10ms
    // grace — the reason the rule has an absolute allowance.
    let rule = SloRule::soft();
    let report = evaluate_slo(rule, &[(0.5, 8.0)]);
    assert!(report.met);
    // Without grace it would fail.
    let strict = SloRule {
        grace_ms: 0.0,
        ..rule
    };
    assert!(!evaluate_slo(strict, &[(0.5, 8.0)]).met);
}

#[test]
fn markdown_table_handles_empty() {
    let t = MarkdownTable::new(&["a", "b"]);
    assert!(t.is_empty());
    let md = t.to_markdown();
    assert!(md.starts_with("| a | b |"));
    assert_eq!(md.lines().count(), 2, "header + separator only");
}
