//! The paper's headline claims (§I / §VIII-A), measured:
//!
//! * "SFS improves the execution duration of 83% of the functions by 49.6×
//!   on average compared to CFS";
//! * "for the remaining 17% ... they run 1.29× longer on average under SFS".
//!
//! Runs the standalone Fig. 6 setup at 100% load and aggregates per-request
//! speedups with `sfs_metrics::headline_claims`.

use sfs_bench::{banner, run_factory, run_sfs, save, section, Sweep};
use sfs_core::{Baseline, RequestOutcome, SfsConfig};
use sfs_metrics::{headline_claims, MarkdownTable, Paired};
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(49_712);
    let seed = sfs_bench::seed();
    banner(
        "Headline",
        "83% improved 49.6x / 17% run 1.29x longer",
        n,
        seed,
    );

    let gen = move || {
        WorkloadSpec::azure_sampled(n, seed)
            .with_load(CORES, 1.0)
            .generate()
    };
    let mut sweep: Sweep<'_, Vec<RequestOutcome>> = Sweep::new("headline", seed);
    sweep.scenario("SFS", move |_| {
        run_sfs(SfsConfig::new(CORES), CORES, &gen()).outcomes
    });
    sweep.scenario("CFS", move |_| {
        run_factory(&Baseline::Cfs, CORES, &gen()).outcomes
    });
    let results = sweep.run();
    let (sfs, cfs) = (&results[0].value, &results[1].value);

    let pairs: Vec<Paired> = sfs
        .iter()
        .zip(cfs.iter())
        .map(|(s, c)| Paired {
            ideal_ms: s.ideal.as_millis_f64(),
            treatment_ms: s.turnaround.as_millis_f64(),
            baseline_ms: c.turnaround.as_millis_f64(),
            treatment_ctx: s.ctx_switches,
            baseline_ctx: c.ctx_switches,
        })
        .collect();
    let h = headline_claims(&pairs, 1550.0);

    section("measured vs paper");
    let mut t = MarkdownTable::new(&["claim", "paper", "measured"]);
    t.row(&[
        "short-function share".into(),
        "83%".into(),
        format!("{:.1}%", h.short_fraction * 100.0),
    ]);
    t.row(&[
        "short mean speedup vs CFS".into(),
        "49.6x".into(),
        format!("{:.1}x", h.short_mean_speedup),
    ]);
    t.row(&[
        "short median speedup".into(),
        "(two orders of magnitude at p-tiles)".into(),
        format!("{:.1}x", h.short_median_speedup),
    ]);
    t.row(&[
        "long mean slowdown under SFS".into(),
        "1.29x".into(),
        format!("{:.2}x", h.long_mean_slowdown),
    ]);
    t.row(&[
        "fraction of requests improved".into(),
        "~83%".into(),
        format!("{:.1}%", h.improved_fraction * 100.0),
    ]);
    println!("{}", t.to_markdown());
    save("headline_claims.csv", &t.to_csv());
}
