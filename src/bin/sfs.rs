//! `sfs` — command-line front end for the SFS reproduction.
//!
//! ```text
//! sfs gen      --requests 5000 --cores 16 --load 0.9 [--mix openlambda] [--seed N] [--out trace.csv]
//! sfs run      --sched sfs|slo-sfs|history|mlfq|cfs|fifo|rr|srtf|eevdf|dl|srp|ideal [--trace trace.csv | --requests N --load X] [--gantt]
//! sfs run      --sched ... --smp balance=MS[,migration=US][,affinity=US]   # SMP load balancer + costs
//! sfs run      --sched ... --kpolicy cfs|srtf|eevdf|dl|srp                 # kernel policy on the machine
//! sfs run      --cluster hosts=8,cores=8,placement=jsq[,affinity=10000:50] [--sched sfs] [--threads T]
//! sfs run      --fleet regions=2,hosts=8,placement=jsq[,faults=crash:2+outage:1] [--sched sfs] [--threads T]
//! sfs compare  [--requests N --cores C --load X]         # SFS vs CFS headline
//! sfs slo      [--requests N --cores C --load X]         # paper-SLO attainment
//! ```
//!
//! Every `--sched` value is a `Controller` driven by the same `Sim`
//! runner — adding a scheduler to this CLI is one match arm. `--cluster`
//! lifts any of them onto the multi-host dispatcher (`sfs_faas::Cluster`):
//! `placement` is one of round-robin|least-loaded|long-to-lightest|
//! join-shortest-queue|consistent-hash (or rr|ll|l2l|jsq|hash), the
//! optional `affinity=KEEPMS:COLDMS` key enables the warm-container
//! cold-start model, and hosts run in parallel with bit-identical output
//! at any `--threads` value. `--fleet` lifts the cluster one more level:
//! regions behind a latency-aware front door with autoscaling and
//! deterministic fault injection (`sfs_faas::Fleet`); outcomes are
//! attributed completed / shed / lost and the run stays bit-identical at
//! any `--threads` value. Sub-arg parsing is strict: a malformed value
//! aborts naming the flag, the key, and the offending value
//! (`sfs_repro::cli`).
//!
//! `--kpolicy` swaps the kernel scheduling policy on the simulated
//! machine (`sfs_sched::KernelPolicyKind`): the stock Linux CFS+RT model
//! (default), the SRTF oracle, EEVDF, the CBS deadline class, or the
//! preemption-ceiling (SRP) discipline. The `eevdf`/`dl`/`srp` `--sched`
//! values are shorthand for `--sched cfs --kpolicy <p>`: a kernel-only
//! baseline on that kernel policy.
//!
//! `--smp` turns on the machine's SMP model (periodic load-balance tick
//! plus migration/affinity costs — `sfs_sched::SmpParams`): `balance` is
//! the tick interval in ms, `migration`/`affinity` are the penalties in
//! µs. A bare `--smp` uses the bench suite's standard knobs
//! (4 ms / 30 µs / 15 µs). Without the flag the machine runs the
//! all-zero default, which is bit-exact with the pre-SMP simulator.
//!
//! Argument parsing is deliberately dependency-free (flag pairs only).

use std::collections::BTreeMap;
use std::process::exit;

use sfs_repro::cli::{self, ClusterSpec};
use sfs_repro::faas::Cluster;
use sfs_repro::metrics::{evaluate_slo, headline_claims, MarkdownTable, Paired, SloRule};
use sfs_repro::sched::{KernelPolicyKind, MachineParams};
use sfs_repro::sfs::{
    Baseline, Controller, ControllerFactory, FnFactory, HistoryPriority, Ideal, RequestOutcome,
    RunOutcome, SfsConfig, SfsController, Sim, UserMlfq,
};
use sfs_repro::simcore::SimDuration;
use sfs_repro::simcore::{Samples, SimTime};
use sfs_repro::workload::{self, Workload, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage_and_exit();
    };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "run" => cmd_run(&flags),
        "compare" => cmd_compare(&flags),
        "slo" => cmd_slo(&flags),
        "-h" | "--help" | "help" => usage_and_exit(),
        other => {
            eprintln!("unknown command: {other}");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "sfs — SFS (SC'22) reproduction CLI\n\
         \n\
         USAGE:\n\
           sfs gen     --requests N --cores C --load X [--mix fib|openlambda] [--seed S] [--out FILE]\n\
           sfs run     --sched sfs|slo-sfs|history|mlfq|cfs|fifo|rr|srtf|eevdf|dl|srp|ideal [--trace FILE | --requests N --load X] [--cores C] [--gantt]\n\
                       [--smp balance=MS[,migration=US][,affinity=US]] [--kpolicy cfs|srtf|eevdf|dl|srp]\n\
           sfs run     --cluster hosts=N,cores=M,placement=P[,affinity=KEEPMS:COLDMS] [--sched S] [--threads T] [--requests N --load X]\n\
           sfs run     --fleet regions=R,hosts=N[,cores=M][,placement=P][,affinity=KEEPMS:COLDMS][,faults=crash:A+straggler:B+outage:C][,spill=MS][,shed=MS][,seed=S]\n\
                       [--sched S] [--threads T] [--requests N --load X]\n\
           sfs compare [--requests N] [--cores C] [--load X] [--seed S]\n\
           sfs slo     [--requests N] [--cores C] [--load X] [--seed S]"
    );
    exit(2);
}

fn parse_flags(rest: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut it = rest.iter().peekable();
    while let Some(k) = it.next() {
        if let Some(name) = k.strip_prefix("--") {
            let val = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => String::from("true"),
            };
            flags.insert(name.to_string(), val);
        } else {
            eprintln!("unexpected argument: {k}");
            usage_and_exit();
        }
    }
    flags
}

/// Fetch a typed flag value, defaulting when absent. A present-but-malformed
/// value aborts naming the flag and the value — it never silently falls back
/// to the default (the same contract the `--cluster`/`--smp`/`--fleet`
/// sub-arg parsers and the `SFS_BENCH_*` env overrides follow).
fn get<T: std::str::FromStr>(flags: &BTreeMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!(
                "--{key}: value `{v}` is not a valid {}",
                std::any::type_name::<T>()
            );
            usage_and_exit();
        }),
    }
}

fn build_workload(flags: &BTreeMap<String, String>, cores: usize) -> Workload {
    if let Some(path) = flags.get("trace") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        return workload::from_csv(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1);
        });
    }
    let n = get(flags, "requests", 2_000usize);
    let seed = get(flags, "seed", 42u64);
    let load = get(flags, "load", 0.9f64);
    let spec = match flags.get("mix").map(String::as_str) {
        Some("openlambda") => WorkloadSpec::openlambda(n, seed),
        Some("replay") => WorkloadSpec::azure_replay(n, seed),
        _ => WorkloadSpec::azure_sampled(n, seed),
    };
    spec.with_load(cores, load).generate()
}

fn cmd_gen(flags: &BTreeMap<String, String>) {
    let cores = get(flags, "cores", 16usize);
    let w = build_workload(flags, cores);
    let csv = workload::to_csv(&w);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &csv).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            });
            eprintln!(
                "wrote {} requests ({:.1}s of CPU demand, offered load {:.2} on {} cores) to {path}",
                w.len(),
                w.total_cpu_ms() / 1e3,
                w.offered_load(cores),
                cores
            );
        }
        None => print!("{csv}"),
    }
}

/// Run `w` under any controller recipe on `cores` default-Linux cores.
fn run_with(f: &dyn ControllerFactory, cores: usize, w: &Workload) -> RunOutcome {
    f.run_on(cores, w)
}

fn summarise(name: &str, outs: &[RequestOutcome]) {
    let durs: Vec<f64> = outs.iter().map(|o| o.turnaround.as_millis_f64()).collect();
    let mut s = Samples::from_vec(durs.clone());
    let rte95 = outs.iter().filter(|o| o.rte >= 0.95).count() as f64 / outs.len().max(1) as f64;
    println!(
        "{name:>6}: n={} mean={:.1}ms p50={:.1}ms p99={:.1}ms RTE>=0.95: {:.1}%",
        outs.len(),
        durs.iter().sum::<f64>() / durs.len().max(1) as f64,
        s.percentile(50.0),
        s.percentile(99.0),
        rte95 * 100.0
    );
}

/// Build the controller (and machine tweaks) for a `--sched` name.
fn controller_for(
    sched: &str,
    cores: usize,
) -> Option<(String, Box<dyn Controller>, MachineParams)> {
    let mut params = MachineParams::linux(cores);
    let (name, ctl): (&str, Box<dyn Controller>) = match sched {
        "sfs" => ("SFS", Box::new(SfsController::new(SfsConfig::new(cores)))),
        "slo-sfs" => (
            "SLO",
            Box::new(SfsController::with_slo(
                SfsConfig::new(cores),
                SimDuration::from_millis(250),
            )),
        ),
        "history" => ("HIST", Box::new(HistoryPriority::new())),
        "mlfq" => ("MLFQ", Box::new(UserMlfq::default())),
        "ideal" => ("IDEAL", Box::new(Ideal)),
        "cfs" | "fifo" | "rr" | "srtf" | "eevdf" | "dl" | "srp" => {
            let b = match sched {
                "cfs" => Baseline::Cfs,
                "fifo" => Baseline::Fifo,
                "rr" => Baseline::Rr,
                "eevdf" => Baseline::Eevdf,
                "dl" => Baseline::Deadline,
                "srp" => Baseline::Srp,
                _ => Baseline::Srtf,
            };
            b.configure_machine(&mut params);
            return Some((b.name().to_string(), b.build(), params));
        }
        _ => return None,
    };
    Some((name.to_string(), ctl, params))
}

/// Build the controller *recipe* for a `--sched` name — the form cluster
/// runs need (one fresh controller per host).
fn factory_for(sched: &str, cores: usize) -> Option<Box<dyn ControllerFactory + Sync>> {
    Some(match sched {
        "sfs" => Box::new(SfsConfig::new(cores)),
        "slo-sfs" => Box::new(FnFactory::new("SLO", move || {
            Box::new(SfsController::with_slo(
                SfsConfig::new(cores),
                SimDuration::from_millis(250),
            )) as Box<dyn Controller>
        })),
        "history" => Box::new(FnFactory::new("HIST", || {
            Box::new(HistoryPriority::new()) as Box<dyn Controller>
        })),
        "mlfq" => Box::new(FnFactory::new("MLFQ", || {
            Box::new(UserMlfq::default()) as Box<dyn Controller>
        })),
        "ideal" => Box::new(FnFactory::new("IDEAL", || {
            Box::new(Ideal) as Box<dyn Controller>
        })),
        "cfs" => Box::new(Baseline::Cfs),
        "fifo" => Box::new(Baseline::Fifo),
        "rr" => Box::new(Baseline::Rr),
        "srtf" => Box::new(Baseline::Srtf),
        "eevdf" => Box::new(Baseline::Eevdf),
        "dl" => Box::new(Baseline::Deadline),
        "srp" => Box::new(Baseline::Srp),
        _ => return None,
    })
}

fn cmd_run_cluster(flags: &BTreeMap<String, String>, spec: &str) {
    let ClusterSpec {
        hosts,
        cores,
        placement,
        affinity,
    } = cli::parse_cluster_spec(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage_and_exit();
    });
    let sched = flags.get("sched").map(String::as_str).unwrap_or("sfs");
    let Some(factory) = factory_for(sched, cores) else {
        eprintln!("unknown scheduler: {sched}");
        usage_and_exit();
    };
    let threads = get(
        flags,
        "threads",
        sfs_repro::simcore::parallel::default_threads(),
    );
    let w = build_workload(flags, hosts * cores);
    let mut cluster = Cluster::new(hosts, cores);
    if let Some((keep_ms, cold_ms)) = affinity {
        cluster = cluster.with_affinity(
            SimDuration::from_millis(keep_ms),
            SimDuration::from_millis(cold_ms),
        );
    }
    let run = cluster.run_with_threads(placement, &*factory, &w, threads);
    summarise(&factory.label(), &run.outcomes);
    let fmt_mean = |m: Option<f64>| m.map_or_else(|| "n/a".into(), |v| format!("{v:.1}ms"));
    println!(
        "        cluster: {hosts} hosts x {cores} cores, placement={} ({threads} thread{})",
        placement.name(),
        if threads == 1 { "" } else { "s" },
    );
    println!(
        "        short mean={} long mean={} cold starts={}",
        fmt_mean(run.short_mean_ms()),
        fmt_mean(run.long_mean_ms()),
        run.cold_starts,
    );
    println!("        per-host requests: {:?}", run.per_host);
}

fn cmd_run_fleet(flags: &BTreeMap<String, String>, spec: &str) {
    let fleet_spec = cli::parse_fleet_spec(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage_and_exit();
    });
    let sched = flags.get("sched").map(String::as_str).unwrap_or("sfs");
    let Some(factory) = factory_for(sched, fleet_spec.cores) else {
        eprintln!("unknown scheduler: {sched}");
        usage_and_exit();
    };
    let threads = get(
        flags,
        "threads",
        sfs_repro::simcore::parallel::default_threads(),
    );
    let fleet = fleet_spec.build();
    let w = build_workload(
        flags,
        fleet_spec.regions * fleet_spec.hosts * fleet_spec.cores,
    );
    let run = fleet.run_with_threads(fleet_spec.placement, &*factory, &w, threads);
    summarise(&factory.label(), &run.outcomes);
    println!(
        "        fleet: {} regions x {} hosts x {} cores, placement={} ({threads} thread{})",
        fleet_spec.regions,
        fleet_spec.hosts,
        fleet_spec.cores,
        fleet_spec.placement.name(),
        if threads == 1 { "" } else { "s" },
    );
    println!(
        "        completed={} shed={} lost={} (conservation {})",
        run.outcomes.len(),
        run.shed.len(),
        run.lost.len(),
        if run.conservation_holds() {
            "OK"
        } else {
            "VIOLATED"
        },
    );
    println!(
        "        cold starts={} re-dispatches={} spilled={}",
        run.cold_starts, run.redispatches, run.spilled,
    );
    for (i, stats) in run.per_region.iter().enumerate() {
        println!(
            "        region {i}: placed={} cold={} crashes={} boots={} \
             reactivations={} parks={} releases={} warm-ms={:.0}",
            stats.placed,
            stats.cold_starts,
            stats.crashes,
            stats.boots,
            stats.reactivations,
            stats.parks,
            stats.releases,
            stats.warm_host_ms,
        );
    }
}

fn cmd_run(flags: &BTreeMap<String, String>) {
    if let Some(spec) = flags.get("fleet") {
        return cmd_run_fleet(flags, spec);
    }
    if let Some(spec) = flags.get("cluster") {
        return cmd_run_cluster(flags, spec);
    }
    let cores = get(flags, "cores", 16usize);
    let w = build_workload(flags, cores);
    let sched = flags.get("sched").map(String::as_str).unwrap_or("sfs");
    let gantt = flags.contains_key("gantt");
    let Some((name, ctl, mut params)) = controller_for(sched, cores) else {
        eprintln!("unknown scheduler: {sched}");
        usage_and_exit();
    };
    let smp = flags.get("smp").map(|spec| {
        cli::parse_smp_spec(spec).unwrap_or_else(|e| {
            eprintln!("{e}");
            usage_and_exit();
        })
    });
    if let Some(smp) = smp {
        params = params.with_smp(smp);
    }
    if let Some(spec) = flags.get("kpolicy") {
        let Some(kind) = KernelPolicyKind::parse(spec) else {
            eprintln!("bad --kpolicy value {spec:?} (expected cfs|srtf|eevdf|dl|srp)");
            usage_and_exit();
        };
        params = params.with_kpolicy(kind);
    }
    let mut sim = Sim::on(params).workload(&w).boxed_controller(ctl);
    if gantt {
        sim = sim.tracing();
    }
    let r = sim.run();
    summarise(&name, &r.outcomes);
    if smp.is_some() {
        let migrations: u64 = r.outcomes.iter().map(|o| o.migrations).sum();
        println!(
            "        smp: {migrations} migrations ({:.2}/request)",
            migrations as f64 / r.outcomes.len().max(1) as f64
        );
    }
    if sched == "sfs" || sched == "slo-sfs" {
        println!(
            "        demoted={} offloaded={} slice_recalcs={} polls={}",
            r.telemetry.demoted,
            r.telemetry.offloaded,
            r.telemetry.slice_recalcs,
            r.telemetry.polls
        );
    }
    if let Some(trace) = r.schedule_trace {
        let end = r
            .outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        println!("{}", trace.render_gantt(SimTime::ZERO, end, 100));
    } else if gantt {
        eprintln!("(--gantt had nothing to render: the IDEAL bound simulates no machine)");
    }
}

fn cmd_compare(flags: &BTreeMap<String, String>) {
    let cores = get(flags, "cores", 16usize);
    let w = build_workload(flags, cores);
    let sfs = run_with(&SfsConfig::new(cores), cores, &w).outcomes;
    let cfs = run_with(&Baseline::Cfs, cores, &w).outcomes;
    summarise("SFS", &sfs);
    summarise("CFS", &cfs);
    let pairs: Vec<Paired> = sfs
        .iter()
        .zip(cfs.iter())
        .map(|(s, c)| Paired {
            ideal_ms: s.ideal.as_millis_f64(),
            treatment_ms: s.turnaround.as_millis_f64(),
            baseline_ms: c.turnaround.as_millis_f64(),
            treatment_ctx: s.ctx_switches,
            baseline_ctx: c.ctx_switches,
        })
        .collect();
    let h = headline_claims(&pairs, 1550.0);
    println!(
        "\nshort ({:.1}% of requests): mean speedup {:.1}x (median {:.1}x)\n\
         long: mean slowdown {:.2}x | improved overall: {:.1}%",
        h.short_fraction * 100.0,
        h.short_mean_speedup,
        h.short_median_speedup,
        h.long_mean_slowdown,
        h.improved_fraction * 100.0
    );
}

fn cmd_slo(flags: &BTreeMap<String, String>) {
    let cores = get(flags, "cores", 16usize);
    let w = build_workload(flags, cores);
    let mut table = MarkdownTable::new(&["scheduler", "soft SLO", "hard SLO"]);
    let mut row = |name: &str, outs: &[RequestOutcome]| {
        let inv: Vec<(f64, f64)> = outs
            .iter()
            .map(|o| (o.ideal.as_millis_f64(), o.turnaround.as_millis_f64()))
            .collect();
        let soft = evaluate_slo(SloRule::soft(), &inv);
        let hard = evaluate_slo(SloRule::hard(), &inv);
        table.row(&[
            name.into(),
            format!(
                "{:.1}% {}",
                soft.attained_fraction * 100.0,
                if soft.met { "MET" } else { "missed" }
            ),
            format!(
                "{:.1}% {}",
                hard.attained_fraction * 100.0,
                if hard.met { "MET" } else { "missed" }
            ),
        ]);
    };
    row("SFS", &run_with(&SfsConfig::new(cores), cores, &w).outcomes);
    for b in [Baseline::Cfs, Baseline::Rr, Baseline::Fifo] {
        row(b.name(), &run_with(&b, cores, &w).outcomes);
    }
    println!("{}", table.to_markdown());
}
