//! The policy-driven simulation API: [`Controller`] + [`Sim`].
//!
//! The paper's core idea is a *user-space* scheduling policy driving the
//! kernel through a narrow interface. This module makes that idea the
//! experiment-facing API: a [`Controller`] is any value that reacts to
//! machine notifications using only the operations a real user-space
//! scheduler has (`schedtool`-style policy switches and `/proc` polling,
//! exposed via [`MachineView`]), and a [`Sim`] drives one controller over
//! one [`Workload`] on one [`sfs_sched::Machine`]:
//!
//! ```
//! use sfs_core::{Sim, SfsConfig, SfsController};
//! use sfs_sched::MachineParams;
//! use sfs_workload::WorkloadSpec;
//!
//! let w = WorkloadSpec::azure_sampled(200, 1).with_load(4, 0.8).generate();
//! let run = Sim::on(MachineParams::linux(4))
//!     .workload(&w)
//!     .controller(SfsController::new(SfsConfig::new(4)))
//!     .run();
//! assert_eq!(run.outcomes.len(), 200);
//! ```
//!
//! Every comparator is a controller: the paper's SFS
//! ([`crate::SfsController`]), the pure-kernel baselines
//! ([`crate::KernelOnly`]), the IDEAL bound ([`crate::Ideal`]), and any
//! new policy an experiment wants to try — see [`crate::policies`] for
//! two examples the old one-simulator-per-policy design made impractical.
//!
//! # Event ordering contract
//!
//! [`Sim::run`] is a faithful re-statement of the original `SfsSimulator`
//! loop, so ports are bit-identical: at every simulated instant the machine
//! advances first (its notifications are delivered via
//! [`Controller::on_notification`]), then due workload arrivals are spawned
//! in stable `(arrival, index)` order, then [`Controller::on_wakeup`] runs.
//! This matches the old merged event queue, where all arrival events were
//! inserted at construction and therefore always popped before same-instant
//! controller timers.

use sfs_sched::{
    FinishedTask, KernelPolicyKind, Machine, MachineParams, Notification, Pid, Policy, ProcState,
    ScheduleTrace,
};
use sfs_simcore::{SimDuration, SimTime, TimeSeries};
use sfs_workload::{Request, Workload};

use crate::stats::RequestOutcome;

/// The machine operations a user-space scheduling policy may perform,
/// mirroring what the real SFS implementation has via `schedtool` and
/// `gopsutil` (§V-A challenge 2). Controllers never see
/// [`sfs_sched::Machine::advance_to`] or `spawn` — time and dispatch belong
/// to the [`Sim`] driver, exactly as they belong to the kernel and the FaaS
/// server in the real system.
#[derive(Debug)]
pub struct MachineView<'a> {
    machine: &'a mut Machine,
    sched_actions: &'a mut u64,
}

impl<'a> MachineView<'a> {
    /// A view over `machine` that counts policy switches into
    /// `sched_actions`. [`Sim::run`] builds these internally; the public
    /// constructor exists for harnesses and benchmarks that drive a
    /// [`Controller`] hook-by-hook against a hand-built machine (e.g. the
    /// `perf_suite` dispatch microbenchmark).
    pub fn new(machine: &'a mut Machine, sched_actions: &'a mut u64) -> MachineView<'a> {
        MachineView {
            machine,
            sched_actions,
        }
    }
}

impl MachineView<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.machine.now()
    }

    /// Number of CPU cores on the machine.
    pub fn cores(&self) -> usize {
        self.machine.cores()
    }

    /// `schedtool`: switch a live process between scheduling policies.
    /// Every call is counted as one scheduling action in
    /// [`RunOutcome::sched_actions`] (the Table II overhead model).
    pub fn set_policy(&mut self, pid: Pid, policy: Policy) {
        self.machine.set_policy(pid, policy);
        *self.sched_actions += 1;
    }

    /// `/proc/<pid>/stat`-style state poll.
    pub fn proc_state(&self, pid: Pid) -> ProcState {
        self.machine.proc_state(pid)
    }

    /// `/proc/<pid>/stat` utime: CPU time consumed so far.
    pub fn cpu_time(&self, pid: Pid) -> SimDuration {
        self.machine.cpu_time(pid)
    }

    /// The task's current policy (as `sched_getscheduler` would report).
    pub fn policy_of(&self, pid: Pid) -> Policy {
        self.machine.policy_of(pid)
    }

    /// Number of CPU cores — alias of [`MachineView::cores`] matching the
    /// SMP query family (`nr_cpu_ids` in kernel terms).
    pub fn nr_cores(&self) -> usize {
        self.machine.nr_cores()
    }

    /// Queued (runnable, not running) CFS depth of one core's runqueue, as
    /// `/proc/schedstat` exposes per CPU. Read-only: a user-space scheduler
    /// may observe per-core load but never place tasks directly.
    pub fn core_depth(&self, core: usize) -> usize {
        self.machine.core_depth(core)
    }

    /// The core `pid` last executed on (the `processor` field of
    /// `/proc/<pid>/stat`), or `None` before its first dispatch.
    pub fn last_ran_core(&self, pid: Pid) -> Option<usize> {
        self.machine.last_ran_core(pid)
    }
}

/// A user-space scheduling policy reacting to machine notifications.
///
/// Implementations hold whatever bookkeeping they need (queues, windows,
/// per-process history) and act on the machine exclusively through the
/// [`MachineView`] handed to each hook. All hooks have no-op defaults; the
/// trivial controller `struct Null; impl Controller for Null {}` runs every
/// request under the policy its spec was generated with.
///
/// Timing contract: any wakeup time returned by
/// [`next_wakeup`](Controller::next_wakeup) must be strictly in the future
/// once [`on_wakeup`](Controller::on_wakeup) returns, otherwise the
/// simulation cannot make progress.
pub trait Controller {
    /// Short display name ("sfs", "cfs", ...), used in labels.
    fn name(&self) -> &'static str {
        "controller"
    }

    /// Scheduling policy the process is dispatched (spawned) under. The
    /// default keeps the workload spec's policy. This models the FaaS
    /// server's dispatch step, which a deployment controls (e.g. the
    /// baselines run everything under one kernel policy).
    fn dispatch_policy(&mut self, req: &Request) -> Policy {
        req.spec.policy
    }

    /// A request was dispatched to the OS as `pid` (step 1 of the paper's
    /// flow: the backend pushes `(pid, T_inv)` to the scheduler).
    fn on_arrival(&mut self, m: &mut MachineView<'_>, req: &Request, pid: Pid) {
        let _ = (m, req, pid);
    }

    /// A machine notification (first run / blocked / woke / finished).
    fn on_notification(&mut self, m: &mut MachineView<'_>, note: &Notification) {
        let _ = (m, note);
    }

    /// Earliest pending controller timer (poll tick, slice expiry, ...), if
    /// any. The sim advances virtual time to the minimum of machine events,
    /// workload arrivals, and this.
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }

    /// Called once per simulation step after notifications and arrivals;
    /// the controller should fire every timer due at `m.now()`.
    fn on_wakeup(&mut self, m: &mut MachineView<'_>) {
        let _ = m;
    }

    /// Merge controller-specific per-request fields (queue delay, demotion
    /// flags, ...) into a finished request's outcome record.
    fn annotate(&mut self, outcome: &mut RequestOutcome) {
        let _ = outcome;
    }

    /// Deposit run-level counters and timelines after the last completion.
    fn finish(&mut self, telemetry: &mut Telemetry) {
        let _ = telemetry;
    }

    /// Analytic bypass: controllers that model a bound rather than a
    /// schedule (the paper's IDEAL scenario) return the full outcome list
    /// here and no machine is simulated. Returns `None` for real policies.
    fn analytic(&self, workload: &Workload) -> Option<Vec<RequestOutcome>> {
        let _ = workload;
        None
    }
}

impl<C: Controller + ?Sized> Controller for Box<C> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn dispatch_policy(&mut self, req: &Request) -> Policy {
        (**self).dispatch_policy(req)
    }
    fn on_arrival(&mut self, m: &mut MachineView<'_>, req: &Request, pid: Pid) {
        (**self).on_arrival(m, req, pid)
    }
    fn on_notification(&mut self, m: &mut MachineView<'_>, note: &Notification) {
        (**self).on_notification(m, note)
    }
    fn next_wakeup(&self) -> Option<SimTime> {
        (**self).next_wakeup()
    }
    fn on_wakeup(&mut self, m: &mut MachineView<'_>) {
        (**self).on_wakeup(m)
    }
    fn annotate(&mut self, outcome: &mut RequestOutcome) {
        (**self).annotate(outcome)
    }
    fn finish(&mut self, telemetry: &mut Telemetry) {
        (**self).finish(telemetry)
    }
    fn analytic(&self, workload: &Workload) -> Option<Vec<RequestOutcome>> {
        (**self).analytic(workload)
    }
}

/// A recipe producing a fresh [`Controller`] per run. Multi-host harnesses
/// (the `sfs-faas` cluster and platform) build one controller per host from
/// a factory, and sweep engines build one per trial.
pub trait ControllerFactory {
    /// Build a fresh controller instance.
    fn build(&self) -> Box<dyn Controller>;

    /// Display label for figure legends and tables.
    fn label(&self) -> String;

    /// Adjust machine parameters the policy depends on (e.g. the SRTF
    /// oracle switches the machine's scheduling mode). Default: no change.
    fn configure_machine(&self, params: &mut MachineParams) {
        let _ = params;
    }

    /// Convenience: run `workload` under a fresh controller from this
    /// recipe on a default Linux machine with `cores` cores (after
    /// [`configure_machine`](ControllerFactory::configure_machine)) —
    /// the glue every harness would otherwise hand-roll.
    fn run_on(&self, cores: usize, workload: &Workload) -> RunOutcome {
        let mut params = MachineParams::linux(cores);
        self.configure_machine(&mut params);
        Sim::on(params)
            .workload(workload)
            .boxed_controller(self.build())
            .run()
    }
}

/// A [`ControllerFactory`] from a label and a build closure — the glue for
/// policies that ship as plain [`Controller`] values (no config struct of
/// their own) but need to run behind multi-host harnesses or sweeps:
///
/// ```
/// use sfs_core::{Controller, ControllerFactory, FnFactory, UserMlfq};
///
/// let factory = FnFactory::new("user-mlfq", || {
///     Box::new(UserMlfq::default()) as Box<dyn Controller>
/// });
/// assert_eq!(factory.label(), "user-mlfq");
/// let _controller = factory.build();
/// ```
pub struct FnFactory<F> {
    label: String,
    build: F,
}

impl<F: Fn() -> Box<dyn Controller>> FnFactory<F> {
    /// A factory labelled `label` building controllers with `build`.
    pub fn new(label: impl Into<String>, build: F) -> FnFactory<F> {
        FnFactory {
            label: label.into(),
            build,
        }
    }
}

impl<F: Fn() -> Box<dyn Controller>> ControllerFactory for FnFactory<F> {
    fn build(&self) -> Box<dyn Controller> {
        (self.build)()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Run-level counters and timelines deposited by a controller via
/// [`Controller::finish`]. Fields default to zero/empty for controllers
/// that do not poll, slice, or queue (e.g. the kernel-only baselines).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Number of polling ticks performed.
    pub polls: u64,
    /// Number of per-task status reads across all polling ticks.
    pub polled_tasks: u64,
    /// Requests bypassed to the kernel scheduler (overload / SLO shedding).
    pub offloaded: u64,
    /// Requests demoted on slice expiry.
    pub demoted: u64,
    /// Adaptive slice recalculations.
    pub slice_recalcs: u64,
    /// Timeline of adapted time slices (Fig. 10).
    pub slice_timeline: TimeSeries,
    /// Timeline of window-mean IATs (Fig. 10).
    pub iat_timeline: TimeSeries,
    /// Per-request queue delay, indexed by invocation time (Fig. 12a).
    pub queue_delay_series: TimeSeries,
}

/// Result of one [`Sim`] run: uniform per-request records plus machine- and
/// controller-level accounting, whatever the policy.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-request outcomes, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Number of `schedtool`-equivalent policy switches the controller
    /// issued (counted by [`MachineView::set_policy`]).
    pub sched_actions: u64,
    /// Machine-wide involuntary context switches.
    pub machine_ctx_switches: u64,
    /// Total simulated span.
    pub sim_span: SimDuration,
    /// Cores in the simulated machine.
    pub cores: usize,
    /// Execution trace, if requested via [`Sim::tracing`].
    pub schedule_trace: Option<ScheduleTrace>,
    /// Controller-specific counters and timelines.
    pub telemetry: Telemetry,
}

impl RunOutcome {
    /// Mean turnaround in ms.
    pub fn mean_turnaround_ms(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.turnaround.as_millis_f64())
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Fraction of requests with RTE at least `x`.
    pub fn fraction_rte_at_least(&self, x: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.rte >= x).count() as f64 / self.outcomes.len() as f64
    }

    /// Estimate the controller's user-space CPU overhead as a fraction of
    /// machine capacity (Table II's metric): `poll_cost` per per-task
    /// status read plus `action_cost` per policy switch.
    pub fn overhead_fraction(&self, poll_cost: SimDuration, action_cost: SimDuration) -> f64 {
        let busy = self.telemetry.polled_tasks as f64 * poll_cost.as_nanos() as f64
            + self.sched_actions as f64 * action_cost.as_nanos() as f64;
        let capacity = self.sim_span.as_nanos() as f64 * self.cores as f64;
        if capacity == 0.0 {
            0.0
        } else {
            busy / capacity
        }
    }

    /// Fraction of the modelled overhead attributable to polling.
    pub fn polling_overhead_share(&self, poll_cost: SimDuration, action_cost: SimDuration) -> f64 {
        let poll = self.telemetry.polled_tasks as f64 * poll_cost.as_nanos() as f64;
        let act = self.sched_actions as f64 * action_cost.as_nanos() as f64;
        if poll + act == 0.0 {
            0.0
        } else {
            poll / (poll + act)
        }
    }
}

/// Builder for one simulation run: a machine, a workload, a controller.
///
/// ```
/// use sfs_core::{KernelOnly, Sim};
/// use sfs_sched::{MachineParams, Policy};
/// use sfs_workload::WorkloadSpec;
///
/// let w = WorkloadSpec::azure_sampled(50, 3).with_load(2, 0.5).generate();
/// let run = Sim::on(MachineParams::linux(2))
///     .workload(&w)
///     .controller(KernelOnly(Policy::NORMAL))
///     .run();
/// assert_eq!(run.outcomes.len(), 50);
/// ```
pub struct Sim<'a> {
    params: MachineParams,
    workload: Option<&'a Workload>,
    controller: Option<Box<dyn Controller + 'a>>,
    tracing: bool,
}

impl<'a> Sim<'a> {
    /// Start describing a run on a machine with the given parameters.
    pub fn on(params: MachineParams) -> Sim<'a> {
        Sim {
            params,
            workload: None,
            controller: None,
            tracing: false,
        }
    }

    /// The workload to replay (borrowed; the sim clones per-request specs
    /// only at dispatch time).
    pub fn workload(mut self, w: &'a Workload) -> Sim<'a> {
        self.workload = Some(w);
        self
    }

    /// Select the machine's kernel scheduling policy, overriding whatever
    /// the [`MachineParams`] carried (the `--kpolicy` plumbing point).
    pub fn kernel_policy(mut self, kpolicy: KernelPolicyKind) -> Sim<'a> {
        self.params.kpolicy = kpolicy;
        self
    }

    /// The scheduling policy driving the machine.
    pub fn controller(mut self, c: impl Controller + 'a) -> Sim<'a> {
        self.controller = Some(Box::new(c));
        self
    }

    /// As [`Sim::controller`] but taking an already-boxed controller (e.g.
    /// from a [`ControllerFactory`]) without double-boxing.
    pub fn boxed_controller(mut self, c: Box<dyn Controller + 'a>) -> Sim<'a> {
        self.controller = Some(c);
        self
    }

    /// Enable execution-trace recording on the machine; the trace is
    /// returned in [`RunOutcome::schedule_trace`].
    pub fn tracing(mut self) -> Sim<'a> {
        self.tracing = true;
        self
    }

    /// Run the workload to completion.
    ///
    /// # Panics
    /// Panics if no workload or no controller was set, or if the
    /// controller violates the wakeup timing contract and the simulation
    /// stalls.
    pub fn run(mut self) -> RunOutcome {
        let workload = self
            .workload
            .expect("Sim: no workload set (call .workload(&w))");
        let mut controller = self
            .controller
            .take()
            .expect("Sim: no controller set (call .controller(...))");

        if let Some(mut outcomes) = controller.analytic(workload) {
            outcomes.sort_by_key(|o| o.id);
            let end = outcomes
                .iter()
                .map(|o| o.finished)
                .max()
                .unwrap_or(SimTime::ZERO);
            let mut telemetry = Telemetry::default();
            controller.finish(&mut telemetry);
            return RunOutcome {
                outcomes,
                sched_actions: 0,
                machine_ctx_switches: 0,
                sim_span: end - SimTime::ZERO,
                cores: self.params.cores,
                schedule_trace: None,
                telemetry,
            };
        }

        let mut machine = Machine::new(self.params);
        if self.tracing {
            machine.enable_tracing();
        }
        let total = workload.len();
        let order = workload.arrival_order();
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(total);
        let source: Source<'_, std::iter::Empty<Request>> = Source::Replay {
            workload,
            order,
            cursor: 0,
        };
        let res = drive(
            &mut machine,
            &mut *controller,
            source,
            |o| outcomes.push(o),
            None,
        );

        outcomes.sort_by_key(|o| o.id);
        let mut telemetry = Telemetry::default();
        controller.finish(&mut telemetry);
        RunOutcome {
            outcomes,
            sched_actions: res.sched_actions,
            machine_ctx_switches: machine.total_ctx_switches(),
            sim_span: machine.now() - SimTime::ZERO,
            cores: machine.cores(),
            schedule_trace: machine.trace().cloned(),
            telemetry,
        }
    }

    /// Run an *arrival stream* to completion without materialising the
    /// workload or the outcome list: each [`Request`] is pulled from
    /// `arrivals` only when the simulation reaches its arrival time, and
    /// each [`RequestOutcome`] is handed to `sink` (in completion order,
    /// not id order) the moment its request finishes. Peak memory is
    /// O(peak concurrency), not O(request count): the machine drops
    /// completion records ([`sfs_sched::Machine::set_retain_finished`])
    /// and compacts its task table at quiescent points
    /// ([`sfs_sched::Machine::compact`]).
    ///
    /// `arrivals` must be non-decreasing in arrival time (checked) — the
    /// order [`sfs_workload::WorkloadSpec::stream`] produces. A run over
    /// the same requests is event-for-event identical to [`Sim::run`];
    /// only the retention differs. Controllers with an analytic bypass
    /// ([`Controller::analytic`]) are rejected: they need the whole
    /// workload at once.
    ///
    /// # Panics
    /// Panics if no controller was set, if a workload was set (streaming
    /// takes its requests from `arrivals`), if the controller is analytic,
    /// if arrivals regress in time, or if the simulation stalls.
    pub fn run_streaming<I>(
        mut self,
        arrivals: I,
        mut sink: impl FnMut(RequestOutcome),
    ) -> StreamRun
    where
        I: IntoIterator<Item = Request>,
    {
        assert!(
            self.workload.is_none(),
            "Sim::run_streaming: remove .workload(..) — streaming pulls \
             requests from the arrivals iterator"
        );
        let mut controller = self
            .controller
            .take()
            .expect("Sim: no controller set (call .controller(...))");
        assert!(
            controller
                .analytic(&Workload { requests: vec![] })
                .is_none(),
            "analytic controllers are not supported in streaming mode \
             (they need the whole workload at once)"
        );

        let mut machine = Machine::new(self.params);
        if self.tracing {
            machine.enable_tracing();
        }
        machine.set_retain_finished(false);
        let source = Source::Stream {
            iter: arrivals.into_iter().peekable(),
            last_arrival: SimTime::ZERO,
        };
        let res = drive(
            &mut machine,
            &mut *controller,
            source,
            &mut sink,
            Some(COMPACT_TASK_TABLE_LEN),
        );

        let mut telemetry = Telemetry::default();
        controller.finish(&mut telemetry);
        StreamRun {
            requests: res.completed as u64,
            sched_actions: res.sched_actions,
            machine_ctx_switches: machine.total_ctx_switches(),
            sim_span: machine.now() - SimTime::ZERO,
            cores: machine.cores(),
            schedule_trace: machine.trace().cloned(),
            telemetry,
        }
    }
}

/// Result of one [`Sim::run_streaming`] run: everything [`RunOutcome`]
/// carries except the per-request outcome vector (those went to the sink).
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Number of requests completed (== outcomes handed to the sink).
    pub requests: u64,
    /// Policy switches the controller issued.
    pub sched_actions: u64,
    /// Machine-wide involuntary context switches.
    pub machine_ctx_switches: u64,
    /// Total simulated span.
    pub sim_span: SimDuration,
    /// Cores in the simulated machine.
    pub cores: usize,
    /// Execution trace, if requested via [`Sim::tracing`]. (Tracing
    /// disables task-table compaction, so only use it at small scales.)
    pub schedule_trace: Option<ScheduleTrace>,
    /// Controller-specific counters and timelines.
    pub telemetry: Telemetry,
}

/// Compact the machine's task table whenever the run quiesces with at
/// least this many dead task records — large enough that compaction cost
/// is amortised, small enough that a streaming run's slab stays tiny.
const COMPACT_TASK_TABLE_LEN: usize = 1024;

/// Where the simulation loop pulls due requests from: a materialised
/// workload replayed in stable `(arrival, index)` order, or a lazy
/// non-decreasing arrival stream.
enum Source<'a, I: Iterator<Item = Request>> {
    Replay {
        workload: &'a Workload,
        order: Vec<usize>,
        cursor: usize,
    },
    Stream {
        iter: std::iter::Peekable<I>,
        last_arrival: SimTime,
    },
}

impl<I: Iterator<Item = Request>> Source<'_, I> {
    /// Arrival time of the next pending request, if any.
    fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            Source::Replay {
                workload,
                order,
                cursor,
            } => order.get(*cursor).map(|&i| workload.requests[i].arrival),
            Source::Stream { iter, .. } => iter.peek().map(|r| r.arrival),
        }
    }

    /// True iff requests are still pending.
    fn pending(&mut self) -> bool {
        self.peek_time().is_some()
    }

    /// Dispatch every request due at or before `next`: clone its spec with
    /// the controller's dispatch policy applied, spawn it, and hand the
    /// *original* (policy-unmodified) request to the controller. Returns
    /// how many were spawned.
    fn spawn_due<C: Controller + ?Sized>(
        &mut self,
        next: SimTime,
        view: &mut MachineView<'_>,
        controller: &mut C,
    ) -> usize {
        let mut spawned = 0;
        match self {
            Source::Replay {
                workload,
                order,
                cursor,
            } => {
                while *cursor < order.len() && workload.requests[order[*cursor]].arrival <= next {
                    let req = &workload.requests[order[*cursor]];
                    *cursor += 1;
                    let mut spec = req.spec.clone();
                    spec.policy = controller.dispatch_policy(req);
                    let pid = view.machine.spawn(spec);
                    controller.on_arrival(view, req, pid);
                    spawned += 1;
                }
            }
            Source::Stream { iter, last_arrival } => {
                while iter.peek().is_some_and(|r| r.arrival <= next) {
                    let req = iter.next().expect("peeked request present");
                    assert!(
                        req.arrival >= *last_arrival,
                        "streaming arrivals must be non-decreasing in time \
                         (request {} at {} after {})",
                        req.id,
                        req.arrival,
                        last_arrival
                    );
                    *last_arrival = req.arrival;
                    let mut spec = req.spec.clone();
                    spec.policy = controller.dispatch_policy(&req);
                    let pid = view.machine.spawn(spec);
                    controller.on_arrival(view, &req, pid);
                    spawned += 1;
                }
            }
        }
        spawned
    }
}

/// Counters the shared simulation loop reports back to its caller.
struct DriveResult {
    sched_actions: u64,
    completed: usize,
}

/// The simulation loop shared by [`Sim::run`] and [`Sim::run_streaming`]:
/// advance the machine to the next event (machine / arrival / controller
/// wakeup), deliver notifications, emit outcomes, spawn due arrivals, fire
/// controller timers — identically for both sources, so a streamed run is
/// event-for-event the same simulation as a replayed one.
fn drive<I, C, F>(
    machine: &mut Machine,
    controller: &mut C,
    mut source: Source<'_, I>,
    mut emit: F,
    compact_threshold: Option<usize>,
) -> DriveResult
where
    I: Iterator<Item = Request>,
    C: Controller + ?Sized,
    F: FnMut(RequestOutcome),
{
    let mut sched_actions = 0u64;
    let mut spawned = 0usize;
    let mut completed = 0usize;
    // Reused notification buffer: cleared and refilled every step
    // (the drain-and-reuse idiom from the old simulator loop), so the
    // steady-state loop allocates nothing per advance.
    let mut notes: Vec<Notification> = Vec::new();
    // Stall detection: a well-behaved step either pops a machine event,
    // spawns an arrival, completes a request, or advances the
    // controller's wakeup. If the observable state repeats across
    // iterations the controller is violating the wakeup timing
    // contract (a stale `next_wakeup` it never clears); panic instead
    // of spinning forever.
    let mut last_state = None;
    let mut stalled = 0u32;

    while completed < spawned || source.pending() {
        let tm = machine.next_event_time();
        let ta = source.peek_time();
        let tc = controller.next_wakeup();
        let state = (tm, tc, spawned, completed);
        if last_state == Some(state) {
            stalled += 1;
            assert!(
                stalled < 100,
                "simulation stalled at t={} with {completed} of {spawned} \
                 spawned requests completed: the controller's next_wakeup \
                 ({tc:?}) is not strictly in the future and on_wakeup makes \
                 no progress",
                machine.now(),
            );
        } else {
            stalled = 0;
            last_state = Some(state);
        }
        let next = [tm, ta, tc]
            .into_iter()
            .flatten()
            .min()
            .unwrap_or_else(|| {
                unreachable!("simulation stalled with {completed} of {spawned} spawned")
            })
            .max(machine.now());
        notes.clear();
        machine.advance_into(next, &mut notes);
        let mut view = MachineView {
            machine: &mut *machine,
            sched_actions: &mut sched_actions,
        };
        for note in &notes {
            controller.on_notification(&mut view, note);
            if let Notification::Finished(rec) = note {
                let mut o = outcome_of(rec);
                controller.annotate(&mut o);
                emit(o);
                completed += 1;
            }
        }
        spawned += source.spawn_due(next, &mut view, controller);
        controller.on_wakeup(&mut view);
        // Streaming runs reclaim the task table whenever the machine
        // quiesces with enough dead records — behaviour-transparent (see
        // Machine::compact), so replay and stream stay event-identical.
        if let Some(threshold) = compact_threshold {
            if machine.live_tasks() == 0 && machine.task_table_len() >= threshold {
                machine.compact();
            }
        }
    }

    DriveResult {
        sched_actions,
        completed,
    }
}

/// The controller-independent part of a request's outcome record.
fn outcome_of(rec: &FinishedTask) -> RequestOutcome {
    RequestOutcome {
        id: rec.label,
        arrival: rec.arrival,
        finished: rec.finished,
        turnaround: rec.turnaround(),
        ideal: rec.ideal,
        cpu_demand: rec.cpu_demand,
        rte: rec.rte(),
        ctx_switches: rec.ctx_switches,
        migrations: rec.migrations,
        queue_delay: SimDuration::ZERO,
        demoted: false,
        offloaded: false,
        filter_rounds: 0,
        io_blocks: 0,
    }
}
