//! Fig. 12: effect of the hybrid overload-handling mechanism (§V-E,
//! §VIII-B): queuing-delay timeline and duration CDF, SFS vs SFS w/o
//! hybrid, under a bursty workload with five arrival-rate spikes.
//!
//! Expected shape: without the hybrid fallback, queue-delay spikes grow and
//! drain slowly; with it the timeline stays smooth and ~50% of requests see
//! materially lower turnaround.

use sfs_bench::{banner, run_sfs, save, section, turnarounds_ms, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::{cdf_chart, timeline_chart, CdfReport};
use sfs_workload::{IatSpec, Spike, WorkloadSpec};

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 12",
        "hybrid overload handling under 5 arrival spikes",
        n,
        seed,
    );

    let gen = move || {
        let mut spec = WorkloadSpec::azure_sampled(n, seed);
        spec.iat = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes: Spike::evenly_spaced(5, n / 25, 10.0, n),
        };
        spec.with_load(CORES, 0.85).generate()
    };
    let mut sweep = Sweep::new("fig12", seed);
    sweep.scenario("SFS", move |_| {
        run_sfs(SfsConfig::new(CORES), CORES, &gen())
    });
    sweep.scenario("SFS w/o hybrid", move |_| {
        run_sfs(SfsConfig::new(CORES).without_hybrid(), CORES, &gen())
    });
    let results = sweep.run();
    let (hybrid, pure) = (&results[0].value, &results[1].value);

    section("Fig. 12(a) queuing delay timeline (s)");
    for r in &results {
        let pts: Vec<(f64, f64)> = r
            .value
            .telemetry
            .queue_delay_series
            .points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64(), v))
            .collect();
        println!(
            "{}: peak {:.2}s mean {:.3}s",
            r.label,
            r.value.telemetry.queue_delay_series.max_value(),
            r.value.telemetry.queue_delay_series.mean_value()
        );
        println!("{}", timeline_chart(&pts, 72, 10));
    }
    println!(
        "offloaded to CFS by the bypass: {} requests (w/o hybrid: {})",
        hybrid.telemetry.offloaded, pure.telemetry.offloaded
    );

    section("Fig. 12(b) duration CDF quantiles (ms)");
    let mut report = CdfReport::new("duration_ms");
    let h = turnarounds_ms(&hybrid.outcomes);
    let p = turnarounds_ms(&pure.outcomes);
    report.push("SFS", h.clone());
    report.push("SFS w/o hybrid", p.clone());
    println!("{}", report.to_markdown());
    save("fig12b_duration_cdf.csv", &report.to_csv());
    save(
        "fig12a_queue_delay_sfs.csv",
        &hybrid.telemetry.queue_delay_series.to_csv(),
    );
    save(
        "fig12a_queue_delay_pure.csv",
        &pure.telemetry.queue_delay_series.to_csv(),
    );

    section("duration CDF (log-x)");
    println!(
        "{}",
        cdf_chart(
            &[("SFS", h.as_slice()), ("SFS w/o hybrid", p.as_slice())],
            64,
            16
        )
    );
}
