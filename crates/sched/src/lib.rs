//! # sfs-sched — multicore OS CPU scheduler simulator
//!
//! The OS substrate the SFS reproduction runs on. Models, at event
//! granularity, the schedulers the paper measures (§II-B, §IV-B):
//!
//! * **CFS** (`SCHED_NORMAL`) — per-core vruntime-ordered runqueues with the
//!   mainline nice→weight table, `sched_latency`/`min_granularity` slice
//!   rules, wakeup-preemption hysteresis, and idle pull-balancing;
//! * **FIFO** (`SCHED_FIFO`) — static-priority real-time, run-to-block;
//! * **RR** (`SCHED_RR`) — FIFO plus a 100 ms round-robin quantum;
//! * **SRTF** — the offline oracle (preemptive shortest-remaining-first);
//! * **IDEAL** — infinite uncontended resources ([`TaskSpec::ideal_duration`]).
//!
//! All in-kernel disciplines are values behind the pluggable
//! [`policy::KernelPolicy`] trait (selected via
//! [`policy::KernelPolicyKind`] on [`MachineParams`]); the layer also
//! ships **EEVDF**, a CBS **deadline class**, and a preemption-ceiling
//! **SRP** policy — see [`policy`] for the hook contract.
//!
//! External controllers drive the machine only through the operations a real
//! user-space scheduler has: spawn, `schedtool`-style policy switching, and
//! `/proc` state polling. That restriction is what makes the SFS
//! implementation on top of this substrate faithful to the paper's
//! user-space-only design (§V-A challenge 2).
//!
//! ## Quickstart
//! ```
//! use sfs_sched::{Machine, MachineParams, TaskSpec};
//! use sfs_simcore::SimDuration;
//!
//! let mut m = Machine::new(MachineParams::linux(2));
//! let _a = m.spawn(TaskSpec::cpu(0, SimDuration::from_millis(10)));
//! let _b = m.spawn(TaskSpec::cpu(1, SimDuration::from_millis(300)));
//! m.run_until_quiescent();
//! assert_eq!(m.finished().len(), 2);
//! ```

#![warn(missing_docs)]

// lint: allow-file(K1, crate-root re-exports of the runqueue types keep the public API stable; no logic here touches their internals)

pub mod machine;
pub mod policy;
pub mod smp;
pub mod task;
pub mod trace;

/// The CFS runqueue/weight module (lives under [`policy`]; re-exported at
/// the crate root for API compatibility).
pub use policy::cfs;
/// The RT runqueue module (lives under [`policy`]; re-exported at the
/// crate root for API compatibility).
pub use policy::rt;

pub use machine::{Machine, MachineParams, Notification};
pub use policy::cfs::{weight_of_nice, CfsParams, CfsRunqueue, NICE_0_WEIGHT};
pub use policy::rt::{RtRunqueue, RR_TIMESLICE};
pub use policy::{KernelCtx, KernelPolicy, KernelPolicyKind, Placed, PreemptKind};
pub use smp::SmpParams;
pub use task::{FinishedTask, Phase, Pid, Policy, ProcState, TaskSpec};
pub use trace::{ScheduleTrace, Segment};

use sfs_simcore::SimTime;

/// Run a batch of `(arrival_time, spec)` pairs to completion on a machine,
/// spawning each task at its arrival time, and return the completion records.
///
/// This is the whole driver needed for the paper's pure-kernel-scheduler
/// baselines (CFS / FIFO / RR / SRTF in Fig. 2): the FaaS server dispatches
/// every request to the OS as it arrives and the kernel does the rest.
pub fn run_open_loop(
    params: MachineParams,
    arrivals: impl IntoIterator<Item = (SimTime, TaskSpec)>,
) -> Vec<FinishedTask> {
    let mut m = Machine::new(params);
    for (at, spec) in arrivals {
        m.advance_to(at);
        m.spawn(spec);
    }
    m.run_until_quiescent();
    m.into_finished()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_simcore::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    /// Zero switch cost makes hand-computed schedules exact.
    fn exact_params(cores: usize, kpolicy: KernelPolicyKind) -> MachineParams {
        MachineParams {
            cores,
            ctx_switch_cost: SimDuration::ZERO,
            kpolicy,
            ..Default::default()
        }
    }

    #[test]
    fn single_task_runs_to_completion_uninterrupted() {
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [(at(0), TaskSpec::cpu(0, ms(50)))],
        );
        assert_eq!(done.len(), 1);
        let t = &done[0];
        assert_eq!(t.turnaround(), ms(50));
        assert_eq!(t.cpu_time, ms(50));
        assert_eq!(t.ctx_switches, 0);
        assert!((t.rte() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cfs_two_equal_tasks_share_one_core_fairly() {
        // Two 48ms nice-0 tasks on one core: both finish near 96ms, each is
        // context-switched repeatedly, combined CPU time is exactly 96ms.
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [
                (at(0), TaskSpec::cpu(0, ms(48))),
                (at(0), TaskSpec::cpu(1, ms(48))),
            ],
        );
        assert_eq!(done.len(), 2);
        let last = done.iter().map(|t| t.finished).max().unwrap();
        assert_eq!(last, at(96));
        for t in &done {
            // Fair sharing: neither task finishes before ~2x its service time
            // minus one slice.
            assert!(
                t.turnaround() >= ms(84),
                "task finished too early: {}",
                t.turnaround()
            );
            assert!(t.ctx_switches >= 1, "expected slicing, got none");
        }
    }

    #[test]
    fn cfs_short_task_amplified_by_many_long_tasks() {
        // The paper's core observation: a 5ms function co-located with many
        // long CFS tasks waits for a full scheduling round between slices.
        let mut arrivals = vec![(at(0), TaskSpec::cpu(999, ms(5)))];
        for i in 0..15 {
            arrivals.push((at(0), TaskSpec::cpu(i, ms(500))));
        }
        let done = run_open_loop(exact_params(1, KernelPolicyKind::Cfs), arrivals);
        let short = done.iter().find(|t| t.label == 999).unwrap();
        // With 16 runnable tasks the short one's RTE collapses.
        assert!(
            short.rte() < 0.25,
            "short task RTE {} should be heavily amplified",
            short.rte()
        );
        assert!(short.turnaround() > ms(20));
    }

    #[test]
    fn fifo_runs_in_arrival_order_with_convoy() {
        // FIFO on one core: a short task behind a long one waits out the
        // entire long task (the convoy effect, §IV-B obs 4).
        let long = TaskSpec {
            phases: vec![Phase::Cpu(ms(1000))],
            policy: Policy::Fifo { prio: 50 },
            label: 0,
        };
        let short = TaskSpec {
            phases: vec![Phase::Cpu(ms(5))],
            policy: Policy::Fifo { prio: 50 },
            label: 1,
        };
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [(at(0), long), (at(1), short)],
        );
        let s = done.iter().find(|t| t.label == 1).unwrap();
        assert_eq!(s.finished, at(1005));
        assert_eq!(s.ctx_switches, 0);
        let l = done.iter().find(|t| t.label == 0).unwrap();
        assert_eq!(l.finished, at(1000));
    }

    #[test]
    fn fifo_higher_priority_preempts_lower() {
        let low = TaskSpec {
            phases: vec![Phase::Cpu(ms(100))],
            policy: Policy::Fifo { prio: 10 },
            label: 0,
        };
        let high = TaskSpec {
            phases: vec![Phase::Cpu(ms(10))],
            policy: Policy::Fifo { prio: 90 },
            label: 1,
        };
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [(at(0), low), (at(20), high)],
        );
        let h = done.iter().find(|t| t.label == 1).unwrap();
        assert_eq!(h.finished, at(30), "high prio runs immediately");
        let l = done.iter().find(|t| t.label == 0).unwrap();
        assert_eq!(l.finished, at(110), "low prio resumes after preemption");
        assert_eq!(l.ctx_switches, 1);
    }

    #[test]
    fn rr_rotates_on_quantum() {
        // Two 250ms RR tasks at the same priority on one core: they must
        // alternate on the 100ms quantum rather than run to completion.
        let mk = |label| TaskSpec {
            phases: vec![Phase::Cpu(ms(250))],
            policy: Policy::Rr { prio: 50 },
            label,
        };
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [(at(0), mk(0)), (at(0), mk(1))],
        );
        let t0 = done.iter().find(|t| t.label == 0).unwrap();
        let t1 = done.iter().find(|t| t.label == 1).unwrap();
        // Slices: A[0,100] B[100,200] A[200,300] B[300,400] A[400,450] B[450,500]
        assert_eq!(t0.finished, at(450));
        assert_eq!(t1.finished, at(500));
        assert!(t0.ctx_switches >= 2);
    }

    #[test]
    fn rt_preempts_cfs_immediately() {
        let cfs_task = TaskSpec::cpu(0, ms(100));
        let rt_task = TaskSpec {
            phases: vec![Phase::Cpu(ms(10))],
            policy: Policy::Fifo { prio: 50 },
            label: 1,
        };
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [(at(0), cfs_task), (at(30), rt_task)],
        );
        let rt = done.iter().find(|t| t.label == 1).unwrap();
        assert_eq!(rt.finished, at(40), "RT task preempts CFS on arrival");
        let c = done.iter().find(|t| t.label == 0).unwrap();
        assert_eq!(c.finished, at(110));
    }

    #[test]
    fn srtf_prefers_shortest_remaining() {
        // One core; long task arrives first, then two shorter ones. SRTF
        // preempts for the shortest remaining work.
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Srtf),
            [
                (at(0), TaskSpec::cpu(0, ms(100))),
                (at(10), TaskSpec::cpu(1, ms(20))),
                (at(12), TaskSpec::cpu(2, ms(5))),
            ],
        );
        let t2 = done.iter().find(|t| t.label == 2).unwrap();
        assert_eq!(t2.finished, at(17), "5ms job cuts the line");
        let t1 = done.iter().find(|t| t.label == 1).unwrap();
        assert_eq!(t1.finished, at(35));
        let t0 = done.iter().find(|t| t.label == 0).unwrap();
        assert_eq!(t0.finished, at(125));
    }

    #[test]
    fn srtf_does_not_preempt_for_longer_work() {
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Srtf),
            [
                (at(0), TaskSpec::cpu(0, ms(30))),
                (at(10), TaskSpec::cpu(1, ms(25))),
            ],
        );
        // At t=10 the running task has 20ms remaining < 25ms: no preemption.
        let t0 = done.iter().find(|t| t.label == 0).unwrap();
        assert_eq!(t0.finished, at(30));
        assert_eq!(t0.ctx_switches, 0);
        let t1 = done.iter().find(|t| t.label == 1).unwrap();
        assert_eq!(t1.finished, at(55));
    }

    #[test]
    fn multicore_spreads_load() {
        // 4 equal tasks on 4 cores: all run in parallel, all finish at 50ms.
        let arrivals: Vec<_> = (0..4).map(|i| (at(0), TaskSpec::cpu(i, ms(50)))).collect();
        let done = run_open_loop(exact_params(4, KernelPolicyKind::Cfs), arrivals);
        for t in &done {
            assert_eq!(t.turnaround(), ms(50));
            assert_eq!(t.ctx_switches, 0);
        }
    }

    #[test]
    fn idle_core_steals_queued_work() {
        // Four 50ms tasks on 2 cores: when the first two finish, the queued
        // ones run immediately; makespan is ~100ms, not 200ms.
        let arrivals: Vec<_> = (0..4).map(|i| (at(0), TaskSpec::cpu(i, ms(50)))).collect();
        let done = run_open_loop(exact_params(2, KernelPolicyKind::Cfs), arrivals);
        let makespan = done.iter().map(|t| t.finished).max().unwrap();
        assert!(
            makespan <= at(101),
            "work conservation violated: makespan {makespan}"
        );
    }

    #[test]
    fn io_task_sleeps_then_resumes() {
        let spec = TaskSpec::io_then_cpu(0, ms(40), ms(10));
        let done = run_open_loop(exact_params(1, KernelPolicyKind::Cfs), [(at(0), spec)]);
        let t = &done[0];
        assert_eq!(t.io_time, ms(40));
        assert_eq!(t.cpu_time, ms(10));
        assert_eq!(t.turnaround(), ms(50));
        assert!((t.rte() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn io_block_lets_other_task_run() {
        // Task A (FIFO, so it owns the core while runnable): 10ms CPU, 50ms
        // IO, 10ms CPU. Task B (CFS): 30ms CPU. One core. B runs inside A's
        // IO window, so the makespan is 70ms, not 100ms — the work
        // conservation SFS relies on when FILTER functions block (§V-D).
        let a = TaskSpec {
            phases: vec![Phase::Cpu(ms(10)), Phase::Io(ms(50)), Phase::Cpu(ms(10))],
            policy: Policy::Fifo { prio: 50 },
            label: 0,
        };
        let b = TaskSpec::cpu(1, ms(30));
        let done = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs),
            [(at(0), a), (at(0), b)],
        );
        let fa = done.iter().find(|t| t.label == 0).unwrap();
        assert_eq!(
            fa.finished,
            at(70),
            "FIFO task: 10ms cpu + 50ms io + 10ms cpu"
        );
        let fb = done.iter().find(|t| t.label == 1).unwrap();
        assert_eq!(fb.finished, at(40), "CFS task fills the IO window");
        let makespan = done.iter().map(|t| t.finished).max().unwrap();
        assert_eq!(makespan, at(70));
    }

    #[test]
    fn policy_switch_promotes_running_cfs_task() {
        // A long CFS task contending with another gets promoted to FIFO and
        // then runs without further slicing.
        let mut m = Machine::new(exact_params(1, KernelPolicyKind::Cfs));
        let a = m.spawn(TaskSpec::cpu(0, ms(100)));
        let _b = m.spawn(TaskSpec::cpu(1, ms(100)));
        m.advance_to(at(5));
        m.set_policy(a, Policy::Fifo { prio: 50 });
        m.run_until_quiescent();
        let fa = m.finished().iter().find(|t| t.label == 0).unwrap();
        // a runs to completion first (modulo the share it lost before t=5).
        assert!(
            fa.finished <= at(105),
            "promoted task finished at {}",
            fa.finished
        );
        let fb = m.finished().iter().find(|t| t.label == 1).unwrap();
        assert_eq!(fb.finished, at(200));
    }

    #[test]
    fn policy_switch_demotes_running_fifo_task() {
        // FIFO task demoted to CFS mid-run starts sharing with a CFS peer.
        let mut m = Machine::new(exact_params(1, KernelPolicyKind::Cfs));
        let a = m.spawn(TaskSpec {
            phases: vec![Phase::Cpu(ms(100))],
            policy: Policy::Fifo { prio: 50 },
            label: 0,
        });
        let _b = m.spawn(TaskSpec::cpu(1, ms(50)));
        m.advance_to(at(20));
        m.set_policy(a, Policy::NORMAL);
        m.run_until_quiescent();
        let fb = m.finished().iter().find(|t| t.label == 1).unwrap();
        // b gets CPU before a fully finishes: under pure FIFO b would finish
        // at 150; demotion must let it finish well before that.
        assert!(
            fb.finished < at(150),
            "demotion did not release the core: b at {}",
            fb.finished
        );
        let fa = m.finished().iter().find(|t| t.label == 0).unwrap();
        assert_eq!(fa.cpu_time, ms(100));
    }

    #[test]
    fn proc_state_reflects_lifecycle() {
        let mut m = Machine::new(exact_params(1, KernelPolicyKind::Cfs));
        let a = m.spawn(TaskSpec {
            phases: vec![Phase::Cpu(ms(10)), Phase::Io(ms(20)), Phase::Cpu(ms(10))],
            policy: Policy::NORMAL,
            label: 0,
        });
        assert_eq!(m.proc_state(a), ProcState::Running);
        m.advance_to(at(15));
        assert_eq!(m.proc_state(a), ProcState::Sleeping);
        m.advance_to(at(35));
        assert_eq!(m.proc_state(a), ProcState::Running);
        m.advance_to(at(45));
        assert_eq!(m.proc_state(a), ProcState::Dead);
        assert_eq!(m.cpu_time(a), ms(20));
    }

    #[test]
    fn cpu_time_includes_inflight_run() {
        let mut m = Machine::new(exact_params(1, KernelPolicyKind::Cfs));
        let a = m.spawn(TaskSpec::cpu(0, ms(100)));
        m.advance_to(at(30));
        assert_eq!(m.cpu_time(a), ms(30));
        assert_eq!(m.proc_state(a), ProcState::Running);
    }

    #[test]
    fn notifications_cover_lifecycle() {
        let mut m = Machine::new(exact_params(1, KernelPolicyKind::Cfs));
        let a = m.spawn(TaskSpec {
            phases: vec![Phase::Cpu(ms(5)), Phase::Io(ms(5)), Phase::Cpu(ms(5))],
            policy: Policy::NORMAL,
            label: 0,
        });
        let notes = m.run_until_quiescent();
        let kinds: Vec<&str> = notes
            .iter()
            .map(|n| match n {
                Notification::FirstRun(p, _) => {
                    assert_eq!(*p, a);
                    "first"
                }
                Notification::Blocked(..) => "blocked",
                Notification::Woke(..) => "woke",
                Notification::Finished(..) => "finished",
            })
            .collect();
        assert_eq!(kinds, vec!["first", "blocked", "woke", "finished"]);
    }

    #[test]
    fn context_switch_cost_delays_completion() {
        let params = MachineParams {
            cores: 1,
            ctx_switch_cost: SimDuration::from_micros(100),
            kpolicy: KernelPolicyKind::Cfs,
            ..Default::default()
        };
        let done = run_open_loop(
            params,
            [
                (at(0), TaskSpec::cpu(0, ms(24))),
                (at(0), TaskSpec::cpu(1, ms(24))),
            ],
        );
        let makespan = done.iter().map(|t| t.finished).max().unwrap();
        // 48ms of work plus at least a few 100us switch penalties.
        assert!(makespan > at(48));
        assert!(makespan < at(50));
    }

    #[test]
    fn determinism_same_input_same_schedule() {
        let mk = || {
            let arrivals: Vec<_> = (0..200)
                .map(|i| (at(i * 3), TaskSpec::cpu(i, ms(1 + (i * 7) % 40))))
                .collect();
            run_open_loop(exact_params(4, KernelPolicyKind::Cfs), arrivals)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.pid, y.pid);
            assert_eq!(x.finished, y.finished);
            assert_eq!(x.ctx_switches, y.ctx_switches);
        }
    }

    #[test]
    fn conservation_of_cpu_time() {
        // Total CPU time charged equals total demand, regardless of policy mix.
        let mut arrivals = Vec::new();
        let mut demand = SimDuration::ZERO;
        for i in 0..100u64 {
            let d = ms(1 + (i * 13) % 80);
            demand += d;
            let spec = if i % 3 == 0 {
                TaskSpec {
                    phases: vec![Phase::Cpu(d)],
                    policy: Policy::Fifo { prio: 50 },
                    label: i,
                }
            } else {
                TaskSpec::cpu(i, d)
            };
            arrivals.push((at(i), spec));
        }
        let done = run_open_loop(exact_params(3, KernelPolicyKind::Cfs), arrivals);
        let total: SimDuration = done.iter().map(|t| t.cpu_time).sum();
        assert_eq!(total, demand);
        for t in &done {
            assert_eq!(
                t.cpu_time, t.cpu_demand,
                "task {} over/under-charged",
                t.pid
            );
        }
    }

    #[test]
    fn contention_inflates_oversubscribed_execution() {
        // 8 equal CFS tasks on 1 core with contention on: the makespan must
        // exceed the raw demand, and every task's charged CPU time must
        // exceed its demand (utime ticks at wall rate while progress slows).
        let mut params = exact_params(1, KernelPolicyKind::Cfs);
        params.contention_beta = 0.5;
        let arrivals: Vec<_> = (0..8).map(|i| (at(0), TaskSpec::cpu(i, ms(50)))).collect();
        let done = run_open_loop(params, arrivals);
        let makespan = done.iter().map(|t| t.finished).max().unwrap();
        assert!(
            makespan > at(500),
            "8x50ms under contention should exceed 400ms raw demand: {makespan}"
        );
        for t in &done {
            assert!(t.cpu_time > t.cpu_demand, "task {} not inflated", t.pid);
        }
        // Without contention the same workload takes exactly 400ms.
        let arrivals: Vec<_> = (0..8).map(|i| (at(0), TaskSpec::cpu(i, ms(50)))).collect();
        let base = run_open_loop(exact_params(1, KernelPolicyKind::Cfs), arrivals);
        assert_eq!(base.iter().map(|t| t.finished).max().unwrap(), at(400));
    }

    #[test]
    fn contention_spares_serial_execution() {
        // One task at a time (FIFO convoy): active never exceeds... the
        // queue counts as active, so FIFO also sees inflation from waiting
        // tasks? No: contention counts runnable+running, so a FIFO convoy
        // of 8 is inflated early but the factor decays as tasks finish,
        // while CFS keeps all 8 live to the end. FIFO must therefore beat
        // CFS on total makespan under contention.
        let mut params = exact_params(1, KernelPolicyKind::Cfs);
        params.contention_beta = 0.5;
        let cfs: Vec<_> = (0..8).map(|i| (at(0), TaskSpec::cpu(i, ms(50)))).collect();
        let cfs_done = run_open_loop(params, cfs);
        let fifo: Vec<_> = (0..8)
            .map(|i| {
                (
                    at(0),
                    TaskSpec {
                        phases: vec![Phase::Cpu(ms(50))],
                        policy: Policy::Fifo { prio: 50 },
                        label: i,
                    },
                )
            })
            .collect();
        let fifo_done = run_open_loop(params, fifo);
        let makespan = |v: &[FinishedTask]| v.iter().map(|t| t.finished).max().unwrap();
        assert!(
            makespan(&fifo_done) < makespan(&cfs_done),
            "serial FIFO {} should drain faster than time-shared CFS {} under contention",
            makespan(&fifo_done),
            makespan(&cfs_done)
        );
    }

    #[test]
    fn srtf_beats_cfs_on_mean_turnaround_for_short_heavy_mix() {
        // Statistical sanity: the Fig. 2 headline (SRTF >> CFS for
        // short-dominant workloads at high load).
        let arrivals = || {
            let mut v = Vec::new();
            for i in 0..300u64 {
                let d = if i % 10 == 0 { ms(400) } else { ms(8) };
                v.push((at(i * 12), TaskSpec::cpu(i, d)));
            }
            v
        };
        let cfs = run_open_loop(exact_params(1, KernelPolicyKind::Cfs), arrivals());
        let srtf = run_open_loop(exact_params(1, KernelPolicyKind::Srtf), arrivals());
        let mean = |v: &[FinishedTask]| {
            v.iter()
                .map(|t| t.turnaround().as_millis_f64())
                .sum::<f64>()
                / v.len() as f64
        };
        assert!(
            mean(&srtf) < mean(&cfs),
            "SRTF mean {} should beat CFS mean {}",
            mean(&srtf),
            mean(&cfs)
        );
        // Short tasks specifically should be far better under SRTF.
        let short_mean = |v: &[FinishedTask]| {
            let xs: Vec<f64> = v
                .iter()
                .filter(|t| t.cpu_demand == ms(8))
                .map(|t| t.turnaround().as_millis_f64())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(short_mean(&srtf) * 2.0 < short_mean(&cfs));
    }

    /// Build the canonical imbalance: a long FIFO task pins core 0, so CFS
    /// placement (which counts an RT core's queue only) stacks the queue
    /// gap the balancer must fix — queued depths 3 vs 1 after five spawns.
    fn imbalanced_arrivals() -> Vec<(SimTime, TaskSpec)> {
        let mut v = vec![(
            at(0),
            TaskSpec {
                phases: vec![Phase::Cpu(ms(100))],
                policy: Policy::Fifo { prio: 50 },
                label: 100,
            },
        )];
        for i in 0..5 {
            v.push((at(0), TaskSpec::cpu(i, ms(50))));
        }
        v
    }

    #[test]
    fn balance_tick_migrates_busiest_to_idlest() {
        let smp = SmpParams::balanced(ms(1), SimDuration::ZERO, SimDuration::ZERO);
        let mut m = Machine::new(exact_params(2, KernelPolicyKind::Cfs).with_smp(smp));
        for (t, spec) in imbalanced_arrivals() {
            m.advance_to(t);
            m.spawn(spec);
        }
        // FIFO holds core 0; CFS placement left queued depths 3 (core 0)
        // vs 1 (core 1): an imbalance the first tick at 1ms must repair.
        assert_eq!(m.core_depth(0), 3);
        assert_eq!(m.core_depth(1), 1);
        assert_eq!(m.balance_migrations(), 0);
        let mut notes = Vec::new();
        m.advance_into(at(1), &mut notes);
        assert_eq!(m.balance_migrations(), 1, "one migration per tick");
        assert_eq!(m.core_depth(0), 2);
        assert_eq!(m.core_depth(1), 2);
        m.assert_conservation();
        // Re-balanced: the next tick scans but must not migrate.
        m.advance_into(at(2), &mut notes);
        assert_eq!(m.balance_migrations(), 1, "balanced load never migrates");
        m.run_until_quiescent();
        assert_eq!(m.finished().len(), 6, "balancing must not lose tasks");
        m.assert_conservation();
    }

    #[test]
    fn balanced_load_never_migrates() {
        // Six identical CFS tasks spread 3/3 across two cores: every tick
        // scans, none migrates.
        let smp = SmpParams::balanced(ms(1), ms(1), SimDuration::ZERO);
        let mut m = Machine::new(exact_params(2, KernelPolicyKind::Cfs).with_smp(smp));
        for i in 0..6 {
            m.spawn(TaskSpec::cpu(i, ms(30)));
        }
        m.run_until_quiescent();
        assert_eq!(m.finished().len(), 6);
        assert_eq!(m.balance_migrations(), 0);
    }

    #[test]
    fn migration_cost_delays_the_migrated_work() {
        let run = |mig: SimDuration| {
            let smp = SmpParams::balanced(ms(1), mig, SimDuration::ZERO);
            run_open_loop(
                exact_params(2, KernelPolicyKind::Cfs).with_smp(smp),
                imbalanced_arrivals(),
            )
        };
        let free = run(SimDuration::ZERO);
        let costly = run(ms(10));
        assert_eq!(free.len(), costly.len());
        let total = |v: &[FinishedTask]| v.iter().map(|t| t.turnaround().as_nanos()).sum::<u64>();
        assert!(
            total(&costly) > total(&free),
            "a 10ms migration penalty must show up in aggregate turnaround"
        );
        // The penalty is dispatch latency, never billed CPU time.
        for t in &costly {
            assert_eq!(t.cpu_time, t.cpu_demand);
        }
    }

    #[test]
    fn affinity_cost_charged_exactly_once_on_cross_core_resume() {
        // B pins core 0; A runs its first burst on core 1, blocks, and C
        // (stolen by the idling core 1) holds it, so A resumes on core 0:
        // one cross-core resume, one affinity charge.
        let arrivals = || {
            vec![
                (at(0), TaskSpec::cpu(0, ms(40))),
                (
                    at(0),
                    TaskSpec {
                        phases: vec![Phase::Cpu(ms(5)), Phase::Io(ms(5)), Phase::Cpu(ms(5))],
                        policy: Policy::NORMAL,
                        label: 1,
                    },
                ),
                (at(0), TaskSpec::cpu(2, ms(40))),
            ]
        };
        let run = |aff: SimDuration| {
            let smp = SmpParams {
                affinity_cost: aff,
                ..SmpParams::default()
            };
            run_open_loop(
                exact_params(2, KernelPolicyKind::Cfs).with_smp(smp),
                arrivals(),
            )
        };
        let base = run(SimDuration::ZERO);
        let charged = run(ms(1));
        let a_base = base.iter().find(|t| t.label == 1).unwrap();
        let a_charged = charged.iter().find(|t| t.label == 1).unwrap();
        assert!(a_base.migrations >= 1, "scenario must move A across cores");
        assert_eq!(
            a_charged.finished,
            a_base.finished + ms(1),
            "exactly one affinity charge on A's cross-core resume"
        );
    }

    #[test]
    fn single_core_is_immune_to_smp_knobs() {
        // cores = 1 with every SMP mechanism enabled must be bit-identical
        // to the default machine: there is no second core to balance toward
        // and no cross-core resume to charge. This is the unit-level face of
        // the golden bit-exactness gate.
        let arrivals = || {
            let mut v = Vec::new();
            for i in 0..40u64 {
                let spec = if i % 3 == 0 {
                    TaskSpec::io_then_cpu(i, ms(2 + i % 7), ms(4 + i % 11))
                } else {
                    TaskSpec::cpu(i, ms(1 + i % 13))
                };
                v.push((at(i * 3), spec));
            }
            v
        };
        let plain = run_open_loop(exact_params(1, KernelPolicyKind::Cfs), arrivals());
        let smp_on = run_open_loop(
            exact_params(1, KernelPolicyKind::Cfs).with_smp(SmpParams::balanced(
                SimDuration::from_micros(500),
                ms(1),
                ms(1),
            )),
            arrivals(),
        );
        assert_eq!(format!("{plain:?}"), format!("{smp_on:?}"));
    }
}
