//! EEVDF — Earliest Eligible Virtual Deadline First, mainline CFS's
//! successor (kernel 6.6+), as a [`KernelPolicy`].
//!
//! Each fair task carries an *eligible time* `ve` (stored in the task's
//! vruntime slot, advancing with weighted service exactly like CFS
//! vruntime) and a *virtual deadline* `vd = ve + Δ(min_granularity, w)`.
//! A task is **eligible** when its `ve` is at or behind the queue's
//! weighted-average virtual time (`ve · ΣW ≤ Σ wᵢ·veᵢ`), i.e. it has
//! received no more than its fair share; among eligible tasks the earliest
//! virtual deadline runs. The minimum-`ve` task is always eligible, so a
//! non-empty queue always yields a pick (work conservation).
//!
//! The RT band (`SCHED_FIFO`/`SCHED_RR`) sits above the fair class exactly
//! as under [`super::LinuxPolicy`], and the same SMP envelope applies:
//! least-loaded wakeup placement, idle stealing, and balance-tick
//! migration (moving the latest-deadline task, the one that would run
//! last).

use std::collections::{BTreeMap, BTreeSet};

use sfs_simcore::SimDuration;

use crate::policy::cfs::CfsParams;
use crate::policy::rt::{RtRunqueue, RR_TIMESLICE};
use crate::policy::{rt_band_enqueue, KernelCtx, KernelPolicy, Placed, PreemptKind};
use crate::smp::pick_imbalance;
use crate::task::{Pid, Policy};

/// One core's EEVDF runqueue: deadline-ordered scan set plus the weighted
/// virtual-time aggregates that decide eligibility.
#[derive(Debug, Default, Clone)]
struct EevdfRunqueue {
    /// `(virtual deadline, eligible time, pid)` in deadline order.
    by_deadline: BTreeSet<(u64, u64, Pid)>,
    /// `(eligible time, pid)` — O(log n) minimum-`ve` lookup.
    by_ve: BTreeSet<(u64, Pid)>,
    /// pid → (eligible time, weight) of queued tasks.
    entries: BTreeMap<Pid, (u64, u32)>,
    /// Σ wᵢ of queued tasks.
    total_weight: u64,
    /// Σ wᵢ·veᵢ of queued tasks (u128: weight × ns products).
    sum_wv: u128,
    /// Monotone placement floor, the EEVDF analogue of CFS min_vruntime.
    min_v: u64,
}

impl EevdfRunqueue {
    /// Virtual deadline for a task with eligible time `ve` and weight `w`.
    fn deadline(cfs: &CfsParams, ve: u64, w: u32) -> u64 {
        ve + CfsParams::vruntime_delta(cfs.min_granularity, w)
    }

    /// Clamp a waking task's `ve` to the placement floor (sleepers must
    /// not hoard lag) and return the placed value.
    fn place(&self, ve: u64) -> u64 {
        ve.max(self.min_v)
    }

    /// Raise the placement floor (never lowers it).
    fn advance_min(&mut self, v: u64) {
        if v > self.min_v {
            self.min_v = v;
        }
    }

    fn insert(&mut self, cfs: &CfsParams, pid: Pid, ve: u64, w: u32) {
        let vd = Self::deadline(cfs, ve, w);
        self.by_deadline.insert((vd, ve, pid));
        self.by_ve.insert((ve, pid));
        self.entries.insert(pid, (ve, w));
        self.total_weight += u64::from(w);
        self.sum_wv += u128::from(w) * u128::from(ve);
    }

    fn remove(&mut self, cfs: &CfsParams, pid: Pid) -> Option<(u64, u32)> {
        let (ve, w) = self.entries.remove(&pid)?;
        let vd = Self::deadline(cfs, ve, w);
        self.by_deadline.remove(&(vd, ve, pid));
        self.by_ve.remove(&(ve, pid));
        self.total_weight -= u64::from(w);
        self.sum_wv -= u128::from(w) * u128::from(ve);
        Some((ve, w))
    }

    /// Is a task with eligible time `ve` eligible (has not outrun the
    /// queue's weighted-average virtual time)?
    fn eligible(&self, ve: u64) -> bool {
        u128::from(ve) * u128::from(self.total_weight) <= self.sum_wv
    }

    /// Remove and return the earliest-virtual-deadline eligible task.
    fn pop(&mut self, cfs: &CfsParams) -> Option<(u64, Pid, u32)> {
        let &(_, _, pid) = self
            .by_deadline
            .iter()
            .find(|&&(_, ve, _)| self.eligible(ve))?;
        let (ve, w) = self.remove(cfs, pid).expect("scanned entry exists");
        Some((ve, pid, w))
    }

    /// Remove and return the *latest*-deadline task (the migration and
    /// steal victim: it would run last here, so it loses the least).
    fn pop_latest(&mut self, cfs: &CfsParams) -> Option<(u64, Pid, u32)> {
        let &(_, _, pid) = self.by_deadline.iter().next_back()?;
        let (ve, w) = self.remove(cfs, pid).expect("scanned entry exists");
        Some((ve, pid, w))
    }

    fn len(&self) -> usize {
        self.by_deadline.len()
    }

    fn is_empty(&self) -> bool {
        self.by_deadline.is_empty()
    }

    fn contains(&self, pid: Pid) -> bool {
        self.entries.contains_key(&pid)
    }

    /// Smallest eligible time currently queued.
    fn min_ve(&self) -> Option<u64> {
        self.by_ve.iter().next().map(|&(ve, _)| ve)
    }
}

/// EEVDF over per-core fair queues with the Linux RT band on top.
#[derive(Debug)]
pub struct EevdfPolicy {
    rt: RtRunqueue,
    rq: Vec<EevdfRunqueue>,
}

impl EevdfPolicy {
    /// An EEVDF policy for a machine with `cores` cores.
    pub fn new(cores: usize) -> EevdfPolicy {
        EevdfPolicy {
            rt: RtRunqueue::new(),
            rq: (0..cores).map(|_| EevdfRunqueue::default()).collect(),
        }
    }

    /// Fair-class load on `core` including a running fair task.
    fn fair_nr(&self, ctx: &KernelCtx<'_>, core: usize) -> u64 {
        let running_fair = ctx
            .current(core)
            .is_some_and(|p| !ctx.policy_of(p).is_realtime());
        self.rq[core].len() as u64 + u64::from(running_fair)
    }

    fn enqueue_fair(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        let core_id = (0..self.rq.len())
            .min_by_key(|&i| self.fair_nr(ctx, i))
            .expect("at least one core");
        let ve = self.rq[core_id].place(ctx.vruntime(pid));
        ctx.set_vruntime(pid, ve);
        if ctx.home_core(pid) != Some(core_id) && ctx.has_run(pid) {
            ctx.note_migration(pid);
        }
        ctx.set_home_core(pid, Some(core_id));
        let w = ctx.weight_of(pid);
        self.rq[core_id].insert(ctx.cfs_params(), pid, ve, w);

        match ctx.current(core_id) {
            None => Placed::RescheduleIdle(core_id),
            Some(curr) if !ctx.policy_of(curr).is_realtime() => {
                // Deadline preemption: the waking task preempts when its
                // virtual deadline beats the running task's.
                let vd_new = EevdfRunqueue::deadline(ctx.cfs_params(), ve, w);
                let curr_ve = ctx.running_vruntime(core_id, curr);
                let vd_curr =
                    EevdfRunqueue::deadline(ctx.cfs_params(), curr_ve, ctx.weight_of(curr));
                if vd_new < vd_curr {
                    Placed::Preempt(core_id)
                } else {
                    Placed::Queued
                }
            }
            Some(_) => Placed::Queued, // RT running: fair task waits.
        }
    }
}

impl KernelPolicy for EevdfPolicy {
    fn name(&self) -> &'static str {
        "eevdf"
    }

    fn enqueue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        match ctx.policy_of(pid) {
            Policy::Fifo { prio } | Policy::Rr { prio } => {
                rt_band_enqueue(&mut self.rt, ctx, pid, prio, false)
            }
            Policy::Normal { .. } => self.enqueue_fair(ctx, pid),
        }
    }

    fn dequeue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) {
        if ctx.policy_of(pid).is_realtime() {
            self.rt.remove(pid);
        } else if let Some(core_id) = ctx.home_core(pid) {
            self.rq[core_id].remove(ctx.cfs_params(), pid);
        }
    }

    fn pick_next(&mut self, ctx: &mut KernelCtx<'_>, core: usize) -> Option<Pid> {
        if let Some((pid, _)) = self.rt.pop() {
            return Some(pid);
        }
        if let Some((ve, pid, _)) = self.rq[core].pop(ctx.cfs_params()) {
            ctx.set_vruntime(pid, ve);
            return Some(pid);
        }
        // Idle steal: latest-deadline task from the most loaded queue.
        let victim = (0..self.rq.len())
            .filter(|&i| i != core && !self.rq[i].is_empty())
            .max_by_key(|&i| self.rq[i].len())?;
        let (ve, pid, _) = self.rq[victim].pop_latest(ctx.cfs_params())?;
        ctx.note_migration(pid);
        ctx.set_home_core(pid, Some(core));
        ctx.set_vruntime(pid, self.rq[core].place(ve));
        Some(pid)
    }

    fn requeue_preempted(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        core: usize,
        pid: Pid,
        why: PreemptKind,
    ) {
        match (ctx.policy_of(pid), why) {
            (Policy::Rr { prio }, PreemptKind::SliceExpired) => self.rt.push_back(pid, prio),
            (Policy::Fifo { prio } | Policy::Rr { prio }, _) => self.rt.push_front(pid, prio),
            (Policy::Normal { .. }, _) => {
                let ve = self.rq[core].place(ctx.vruntime(pid));
                ctx.set_vruntime(pid, ve);
                ctx.set_home_core(pid, Some(core));
                let w = ctx.weight_of(pid);
                self.rq[core].insert(ctx.cfs_params(), pid, ve, w);
            }
        }
    }

    fn slice_for(&mut self, ctx: &mut KernelCtx<'_>, core: usize, pid: Pid) -> SimDuration {
        match ctx.policy_of(pid) {
            Policy::Fifo { .. } => SimDuration::MAX,
            Policy::Rr { .. } => RR_TIMESLICE,
            Policy::Normal { .. } => {
                // The EEVDF request size: the same latency-targeted slice
                // CFS grants, so event cadence stays comparable across the
                // fair policies.
                let w = ctx.weight_of(pid);
                let nr = self.rq[core].len() as u64 + 1;
                let total = self.rq[core].total_weight + u64::from(w);
                ctx.cfs_params().slice(nr, w, total)
            }
        }
    }

    fn task_tick(&mut self, ctx: &mut KernelCtx<'_>, core: usize, pid: Pid, ran: SimDuration) {
        if ctx.policy_of(pid).is_realtime() {
            return;
        }
        let w = ctx.weight_of(pid);
        let ve = ctx.vruntime(pid) + CfsParams::vruntime_delta(ran, w);
        ctx.set_vruntime(pid, ve);
        let floor = self.rq[core].min_ve().map_or(ve, |m| m.min(ve));
        self.rq[core].advance_min(floor);
    }

    fn has_competition(&self, _ctx: &KernelCtx<'_>, core: usize) -> bool {
        !self.rt.is_empty()
            || !self.rq[core].is_empty()
            || self
                .rq
                .iter()
                .enumerate()
                .any(|(i, q)| i != core && q.len() > 1)
    }

    fn has_waiters(&self, _ctx: &KernelCtx<'_>) -> bool {
        !self.rt.is_empty() || self.rq.iter().any(|q| !q.is_empty())
    }

    fn demotes_on_change(&self, old: Policy, new: Policy) -> bool {
        old.is_realtime() && !new.is_realtime()
    }

    fn participates_in_balance(&self) -> bool {
        true
    }

    fn balance(&mut self, ctx: &mut KernelCtx<'_>) -> Option<Placed> {
        let depths: Vec<u64> = self.rq.iter().map(|q| q.len() as u64).collect();
        let (src, dst) = pick_imbalance(&depths, ctx.smp_params().balance_threshold)?;
        let (ve, pid, w) = self.rq[src].pop_latest(ctx.cfs_params())?;
        ctx.note_migration(pid);
        ctx.add_migration_cost(pid, ctx.smp_params().migration_cost);
        let placed = self.rq[dst].place(ve);
        ctx.set_vruntime(pid, placed);
        ctx.set_home_core(pid, Some(dst));
        self.rq[dst].insert(ctx.cfs_params(), pid, placed, w);
        match ctx.current(dst) {
            None => Some(Placed::RescheduleIdle(dst)),
            Some(_) => Some(Placed::Queued),
        }
    }

    fn queue_depth(&self, core: usize) -> usize {
        self.rq[core].len()
    }

    fn rt_depth(&self) -> usize {
        self.rt.len()
    }

    fn queued_places(&self, pid: Pid) -> usize {
        self.rq.iter().filter(|q| q.contains(pid)).count() + usize::from(self.rt.contains(pid))
    }
}
