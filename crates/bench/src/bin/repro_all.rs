//! Run every figure/table harness in sequence (the full reproduction).
//!
//! Invokes the sibling binaries from the same target directory, so build
//! them first:
//!
//! ```text
//! cargo build --release -p sfs-bench
//! cargo run   --release -p sfs-bench --bin repro_all -- --threads 8
//! ```
//!
//! `SFS_BENCH_REQUESTS` applies to every harness (default here: 10_000;
//! pass a smaller value for a quick smoke run). `--threads N` (or
//! `SFS_BENCH_THREADS=N`) sets the sweep worker count inside every
//! harness: trials fan out over N threads, but every number printed or
//! saved is bit-identical for any N — parallelism buys wall-clock only.

// lint: allow-file(D2, wall-clock here only stamps the per-harness timing lines on stderr-style progress output, never a result)

use std::process::Command;
use std::time::Instant;

const HARNESSES: [&str; 11] = [
    "fig01_azure_cdf",
    "fig02_motivation",
    "table1_durations",
    "fig06_08_loads",
    "fig09_timeslice",
    "fig10_slice_timeline",
    "fig11_io",
    "fig12_overload",
    "fig13_16_openlambda",
    "table2_overhead",
    "headline_claims",
];

const EXTRAS: [&str; 8] = [
    "ablation_queues",
    "sensitivity_window",
    "breakdown_buckets",
    "matrix_scenarios",
    "extension_slo",
    "extension_cluster",
    "cluster_scale",
    "fleet_scale",
];

fn main() {
    let threads = parse_threads();
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("target dir").to_path_buf();
    let mut failures = Vec::new();
    let overall = Instant::now();
    eprintln!("[repro_all: sweeps run on {threads} worker thread(s)]");

    for name in HARNESSES.iter().chain(EXTRAS.iter()) {
        let bin = dir.join(name);
        if !bin.exists() {
            eprintln!("[skip] {name}: binary not built (run cargo build -p sfs-bench first)");
            failures.push(*name);
            continue;
        }
        println!("\n================================================================");
        println!("==> {name}");
        println!("================================================================");
        let t = Instant::now();
        let status = Command::new(&bin)
            .env("SFS_BENCH_THREADS", threads.to_string())
            .status();
        match status {
            Ok(s) if s.success() => {
                println!("[{name} done in {:.1}s]", t.elapsed().as_secs_f64());
            }
            Ok(s) => {
                eprintln!("[{name} FAILED: {s}]");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("[{name} could not start: {e}]");
                failures.push(*name);
            }
        }
    }

    println!("\n================================================================");
    println!(
        "Reproduction suite finished in {:.1}s; {} harnesses, {} failures",
        overall.elapsed().as_secs_f64(),
        HARNESSES.len() + EXTRAS.len(),
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
    println!("CSV outputs are under results/.");
}

/// `--threads N` beats `SFS_BENCH_THREADS`, which beats the core count.
fn parse_threads() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" | "-t" => {
                let v = args.get(i + 1).cloned().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(t) if t >= 1 => threads = Some(t),
                    _ => {
                        eprintln!("repro_all: --threads needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: repro_all [--threads N]");
                println!("  --threads N   sweep worker threads per harness (default: autodetect)");
                std::process::exit(0);
            }
            other => {
                eprintln!("repro_all: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    threads.unwrap_or_else(sfs_simcore::parallel::default_threads)
}
