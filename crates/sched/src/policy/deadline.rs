//! Deadline class — CBS runtime/period reservations with admission
//! control, as a [`KernelPolicy`].
//!
//! Each admitted task gets a Constant Bandwidth Server: a budget of
//! `runtime` CPU per `period`, with an absolute deadline one period out.
//! Earliest deadline runs first; when a server exhausts its budget the
//! deadline is postponed one period and the budget refilled (CBS
//! throttling — the task keeps competing, just with a later deadline, so
//! it can never starve others past its reserved bandwidth). On wakeup the
//! classic CBS rule applies: if the leftover budget-to-deadline ratio
//! would exceed the reserved bandwidth, the server is re-initialised
//! (deadline = now + period, budget = runtime) instead of letting the
//! task hoard an early deadline it slept through.
//!
//! Admission control caps the number of servers at `4 × cores` (each
//! server reserves `runtime/period = 1/4` of a core). Non-admitted tasks
//! run in a background FIFO band that only sees idle cores and is
//! preempted the instant an admitted task arrives; when a server exits,
//! the longest-waiting background task is promoted into the freed
//! reservation.
//!
//! Scheduling-policy classes (`SCHED_FIFO` / nice levels) are ignored:
//! like the SRTF oracle, the deadline class imposes its own discipline on
//! every task, so `set_policy` is inert bookkeeping.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sfs_simcore::SimDuration;

use crate::policy::{KernelCtx, KernelPolicy, Placed, PreemptKind};
use crate::task::Pid;

/// Per-server CPU reservation: 4 ms of budget…
const DL_RUNTIME: SimDuration = SimDuration::from_millis(4);
/// …every 16 ms (bandwidth 1/4 core per server).
const DL_PERIOD: SimDuration = SimDuration::from_millis(16);
/// Admitted servers per core (4 servers × 1/4 core = full utilisation).
const SERVERS_PER_CORE: usize = 4;

/// One task's Constant Bandwidth Server.
#[derive(Debug, Clone, Copy)]
struct Server {
    /// Absolute deadline (ns since sim start) — the EDF sort key.
    deadline: u64,
    /// Remaining budget in the current period.
    budget: SimDuration,
}

/// CBS deadline class with admission control and a background FIFO band.
#[derive(Debug)]
pub struct DeadlinePolicy {
    /// Queued admitted tasks in EDF order: `(deadline ns, pid)`.
    dl: BTreeSet<(u64, Pid)>,
    /// Queued non-admitted tasks, FIFO.
    bg: VecDeque<Pid>,
    /// Reservation state for every admitted task (queued or running).
    servers: BTreeMap<Pid, Server>,
    /// Admission cap: `SERVERS_PER_CORE × cores`.
    cap: usize,
}

impl DeadlinePolicy {
    /// A deadline-class policy for a machine with `cores` cores.
    pub fn new(cores: usize) -> DeadlinePolicy {
        DeadlinePolicy {
            dl: BTreeSet::new(),
            bg: VecDeque::new(),
            servers: BTreeMap::new(),
            cap: SERVERS_PER_CORE * cores.max(1),
        }
    }

    /// First idle core, if any.
    fn idle_core(ctx: &KernelCtx<'_>) -> Option<usize> {
        (0..ctx.nr_cores()).find(|&i| ctx.current(i).is_none())
    }

    /// Placement decision for an admitted task that just joined the EDF
    /// queue with deadline `d`: idle core first, then any core running a
    /// background task, then the latest-deadline running server if its
    /// deadline is strictly later than `d`.
    fn place_admitted(&self, ctx: &KernelCtx<'_>, d: u64) -> Placed {
        if let Some(idle) = Self::idle_core(ctx) {
            return Placed::RescheduleIdle(idle);
        }
        let bg_victim = (0..ctx.nr_cores()).find(|&i| {
            let vpid = ctx.current(i).expect("no idle cores");
            !self.servers.contains_key(&vpid)
        });
        if let Some(vc) = bg_victim {
            return Placed::Preempt(vc);
        }
        // All cores run servers: preempt the latest deadline if strictly
        // later than ours (lowest core index among ties).
        let mut victim: Option<(usize, u64)> = None;
        for i in 0..ctx.nr_cores() {
            let vpid = ctx.current(i).expect("no idle cores");
            let vd = self.servers[&vpid].deadline;
            if victim.map_or(true, |(_, best)| vd > best) {
                victim = Some((i, vd));
            }
        }
        match victim {
            Some((vc, vd)) if vd > d => Placed::Preempt(vc),
            _ => Placed::Queued,
        }
    }
}

impl KernelPolicy for DeadlinePolicy {
    fn name(&self) -> &'static str {
        "dl"
    }

    fn enqueue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        let now_ns = ctx.now().as_nanos();
        if let Some(s) = self.servers.get_mut(&pid) {
            // CBS wakeup rule: re-initialise the server if the deadline
            // passed, or if leftover budget over remaining time exceeds
            // the reserved bandwidth (budget/(d-now) > runtime/period ⇔
            // budget·period > (d-now)·runtime, in u128 to avoid overflow).
            let reset = s.deadline <= now_ns || {
                let remaining = s.deadline - now_ns;
                u128::from(s.budget.as_nanos()) * u128::from(DL_PERIOD.as_nanos())
                    > u128::from(remaining) * u128::from(DL_RUNTIME.as_nanos())
            };
            if reset {
                s.deadline = now_ns + DL_PERIOD.as_nanos();
                s.budget = DL_RUNTIME;
            }
            let d = s.deadline;
            self.dl.insert((d, pid));
            return self.place_admitted(ctx, d);
        }
        if self.servers.len() < self.cap {
            // Admit: fresh reservation, deadline one period out.
            let d = now_ns + DL_PERIOD.as_nanos();
            self.servers.insert(
                pid,
                Server {
                    deadline: d,
                    budget: DL_RUNTIME,
                },
            );
            self.dl.insert((d, pid));
            return self.place_admitted(ctx, d);
        }
        // Over capacity: background band, idle cores only.
        self.bg.push_back(pid);
        match Self::idle_core(ctx) {
            Some(idle) => Placed::RescheduleIdle(idle),
            None => Placed::Queued,
        }
    }

    fn dequeue(&mut self, _ctx: &mut KernelCtx<'_>, pid: Pid) {
        if let Some(s) = self.servers.get(&pid) {
            self.dl.remove(&(s.deadline, pid));
        } else {
            self.bg.retain(|&p| p != pid);
        }
    }

    fn pick_next(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize) -> Option<Pid> {
        if let Some(&(d, pid)) = self.dl.iter().next() {
            self.dl.remove(&(d, pid));
            return Some(pid);
        }
        self.bg.pop_front()
    }

    fn requeue_preempted(
        &mut self,
        _ctx: &mut KernelCtx<'_>,
        _core: usize,
        pid: Pid,
        _why: PreemptKind,
    ) {
        match self.servers.get(&pid) {
            Some(s) => {
                self.dl.insert((s.deadline, pid));
            }
            // A preempted background task resumes before its peers (it
            // lost the core involuntarily, not by yielding).
            None => self.bg.push_front(pid),
        }
    }

    fn slice_for(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize, pid: Pid) -> SimDuration {
        match self.servers.get(&pid) {
            // The slice is exactly the remaining budget: the slice-expiry
            // event is the CBS throttle point. task_tick refills an
            // exhausted budget immediately, so this is never zero.
            Some(s) => s.budget,
            None => SimDuration::MAX,
        }
    }

    fn task_tick(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize, pid: Pid, ran: SimDuration) {
        if let Some(s) = self.servers.get_mut(&pid) {
            s.budget = s.budget.saturating_sub(ran);
            if s.budget.is_zero() {
                // CBS deadline postponement: next period's reservation.
                s.deadline += DL_PERIOD.as_nanos();
                s.budget = DL_RUNTIME;
            }
        }
    }

    fn on_task_exit(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) {
        if self.servers.remove(&pid).is_some() {
            // A reservation freed up: promote the longest-waiting
            // background task into it.
            if let Some(promoted) = self.bg.pop_front() {
                let d = ctx.now().as_nanos() + DL_PERIOD.as_nanos();
                self.servers.insert(
                    promoted,
                    Server {
                        deadline: d,
                        budget: DL_RUNTIME,
                    },
                );
                self.dl.insert((d, promoted));
            }
        }
    }

    fn has_competition(&self, _ctx: &KernelCtx<'_>, _core: usize) -> bool {
        !self.dl.is_empty() || !self.bg.is_empty()
    }

    fn has_waiters(&self, _ctx: &KernelCtx<'_>) -> bool {
        !self.dl.is_empty() || !self.bg.is_empty()
    }

    fn policy_change_inert(&self) -> bool {
        true
    }

    fn queue_depth(&self, _core: usize) -> usize {
        0
    }

    fn rt_depth(&self) -> usize {
        self.dl.len() + self.bg.len()
    }

    fn queued_places(&self, pid: Pid) -> usize {
        let in_dl = self
            .servers
            .get(&pid)
            .is_some_and(|s| self.dl.contains(&(s.deadline, pid)));
        usize::from(in_dl) + self.bg.iter().filter(|&&p| p == pid).count()
    }
}
