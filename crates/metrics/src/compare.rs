//! Cross-scheduler comparisons: the paper's headline claims.
//!
//! "SFS improves the execution duration of 83% of the functions by 49.6× on
//! average compared to CFS; for the remaining 17% of the functions that are
//! relatively longer, they run 1.29× longer on average under SFS than CFS."
//! (§I). This module computes exactly those aggregates from two outcome
//! vectors, plus the Fig. 16 per-request context-switch ratios.

/// A per-request pairing of two schedulers' results (same request id).
#[derive(Debug, Clone, Copy)]
pub struct Paired {
    /// Ideal (isolated) duration in ms — the short/long classifier.
    pub ideal_ms: f64,
    /// Turnaround under the treatment scheduler (SFS).
    pub treatment_ms: f64,
    /// Turnaround under the baseline scheduler (CFS).
    pub baseline_ms: f64,
    /// Context switches under treatment / baseline.
    pub treatment_ctx: u64,
    /// Context switches under the baseline.
    pub baseline_ctx: u64,
}

/// The headline aggregates.
#[derive(Debug, Clone, Copy)]
pub struct HeadlineClaims {
    /// Fraction of requests classified short (paper: ~0.83).
    pub short_fraction: f64,
    /// Mean of per-request `baseline/treatment` speedups over the short
    /// population (paper: 49.6×).
    pub short_mean_speedup: f64,
    /// Median short-population speedup (robust companion).
    pub short_median_speedup: f64,
    /// Mean of per-request `treatment/baseline` slowdowns over the long
    /// population (paper: 1.29×).
    pub long_mean_slowdown: f64,
    /// Fraction of requests whose duration improved under the treatment.
    pub improved_fraction: f64,
}

/// Compute the headline claims with the short/long boundary at
/// `long_threshold_ms` of *ideal* duration (the paper's Table I boundary,
/// 1550 ms).
pub fn headline_claims(pairs: &[Paired], long_threshold_ms: f64) -> HeadlineClaims {
    assert!(!pairs.is_empty(), "need at least one paired request");
    let mut short_speedups = Vec::new();
    let mut long_slowdowns = Vec::new();
    let mut improved = 0usize;
    for p in pairs {
        if p.treatment_ms < p.baseline_ms {
            improved += 1;
        }
        if p.ideal_ms < long_threshold_ms {
            short_speedups.push(p.baseline_ms / p.treatment_ms.max(1e-9));
        } else {
            long_slowdowns.push(p.treatment_ms / p.baseline_ms.max(1e-9));
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            1.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let median = |v: &mut Vec<f64>| {
        if v.is_empty() {
            return 1.0;
        }
        // total_cmp: one NaN turnaround upstream must not panic the
        // headline aggregation; NaN sorts after every number (simlint P1).
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let mut ss = short_speedups.clone();
    HeadlineClaims {
        short_fraction: short_speedups.len() as f64 / pairs.len() as f64,
        short_mean_speedup: mean(&short_speedups),
        short_median_speedup: median(&mut ss),
        long_mean_slowdown: mean(&long_slowdowns),
        improved_fraction: improved as f64 / pairs.len() as f64,
    }
}

/// Fig. 16: per-request `baseline_ctx / treatment_ctx` ratios. A request
/// with zero switches under the treatment contributes
/// `baseline_ctx / 1` (the plotted ratio floor the paper's log axis
/// implies), and requests with zero under both contribute 1.
pub fn ctx_switch_ratios(pairs: &[Paired]) -> Vec<f64> {
    pairs
        .iter()
        .map(|p| p.baseline_ctx.max(1) as f64 / p.treatment_ctx.max(1) as f64)
        .collect()
}

/// Speedup of one distribution's percentile over another's (Fig. 15's
/// "1.65×, 4.04×, 7.93× p99 speedup" style numbers).
pub fn percentile_speedup(
    baseline: &mut sfs_simcore::Samples,
    treatment: &mut sfs_simcore::Samples,
    pct: f64,
) -> f64 {
    let t = treatment.percentile(pct);
    if t <= 0.0 {
        return f64::INFINITY;
    }
    baseline.percentile(pct) / t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(ideal: f64, t: f64, b: f64) -> Paired {
        Paired {
            ideal_ms: ideal,
            treatment_ms: t,
            baseline_ms: b,
            treatment_ctx: 0,
            baseline_ctx: 10,
        }
    }

    #[test]
    fn headline_separates_short_and_long() {
        let pairs = vec![
            mk(10.0, 10.0, 100.0),      // short, 10x speedup
            mk(100.0, 20.0, 400.0),     // short, 20x
            mk(2000.0, 2600.0, 2000.0), // long, 1.3x slowdown
        ];
        let h = headline_claims(&pairs, 1550.0);
        assert!((h.short_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.short_mean_speedup - 15.0).abs() < 1e-9);
        assert!((h.long_mean_slowdown - 1.3).abs() < 1e-9);
        assert!((h.improved_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn headline_handles_all_short() {
        let pairs = vec![mk(5.0, 5.0, 50.0)];
        let h = headline_claims(&pairs, 1550.0);
        assert_eq!(h.short_fraction, 1.0);
        assert_eq!(h.long_mean_slowdown, 1.0, "no long population → neutral");
    }

    #[test]
    fn ctx_ratios_floor_at_one() {
        let mut p = mk(1.0, 1.0, 1.0);
        p.treatment_ctx = 0;
        p.baseline_ctx = 40;
        assert_eq!(ctx_switch_ratios(&[p]), vec![40.0]);
        p.baseline_ctx = 0;
        assert_eq!(ctx_switch_ratios(&[p]), vec![1.0]);
        p.treatment_ctx = 4;
        p.baseline_ctx = 2;
        assert_eq!(ctx_switch_ratios(&[p]), vec![0.5]);
    }

    #[test]
    fn percentile_speedup_reads_right_tail() {
        let mut b = sfs_simcore::Samples::from_vec((1..=100).map(|i| i as f64 * 4.0).collect());
        let mut t = sfs_simcore::Samples::from_vec((1..=100).map(|i| i as f64).collect());
        assert!((percentile_speedup(&mut b, &mut t, 99.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn headline_requires_data() {
        headline_claims(&[], 1550.0);
    }

    #[test]
    fn headline_nan_turnaround_does_not_panic_median() {
        // Regression (simlint P1, mirroring the PR 7 ensure_sorted fix):
        // the median sort used partial_cmp().unwrap(), so one NaN baseline
        // turnaround (degenerate upstream telemetry) panicked the whole
        // aggregation. total_cmp sorts NaN after every number, so the
        // median of the remaining real speedups survives.
        let pairs = vec![
            mk(10.0, 10.0, f64::NAN), // NaN speedup
            mk(10.0, 10.0, 100.0),    // 10x
            mk(10.0, 20.0, 40.0),     // 2x
        ];
        let h = headline_claims(&pairs, 1550.0);
        assert!(
            (h.short_median_speedup - 10.0).abs() < 1e-12,
            "median {}",
            h.short_median_speedup
        );
    }
}
