//! FCFS multi-server dispatch stages.
//!
//! OpenLambda's request path (paper Fig. 5) passes through a gateway, an
//! OpenLambda worker, and an HTTP sandbox server before the function process
//! reaches the OS. Each hop is modelled as a first-come-first-served
//! multi-server queue with a (jittered) per-request service overhead —
//! enough to reproduce the paper's observation that "the OpenLambda
//! deployment introduced extra overhead at various levels" which diminishes
//! but does not erase SFS's benefit (§IX-A).

use sfs_simcore::{SimDuration, SimRng, SimTime};

/// One FCFS stage: `servers` parallel servers, each request holding a server
/// for `service ± jitter`.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage name (diagnostics).
    pub name: &'static str,
    /// Parallel servers at this hop.
    pub servers: usize,
    /// Mean per-request service overhead.
    pub service: SimDuration,
    /// Relative jitter (0.5 = ±50%, uniform).
    pub jitter: f64,
}

impl Stage {
    /// Build a stage.
    pub fn new(name: &'static str, servers: usize, service: SimDuration, jitter: f64) -> Stage {
        assert!(servers >= 1, "stage needs at least one server");
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0,1]");
        Stage {
            name,
            servers,
            service,
            jitter,
        }
    }

    /// Push `arrivals` (ascending) through the stage, returning each
    /// request's exit time (same order).
    pub fn process(&self, arrivals: &[SimTime], rng: &mut SimRng) -> Vec<SimTime> {
        // free_at[k] = when server k next becomes available; requests take
        // the earliest-free server (FCFS across the stage).
        let mut free_at = vec![SimTime::ZERO; self.servers];
        let mut out = Vec::with_capacity(arrivals.len());
        for &a in arrivals {
            let (k, &free) = free_at
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .expect("at least one server");
            let start = a.max(free);
            let svc = if self.jitter > 0.0 {
                let f = rng.uniform(1.0 - self.jitter, 1.0 + self.jitter);
                self.service.mul_f64(f)
            } else {
                self.service
            };
            let end = start + svc;
            free_at[k] = end;
            out.push(end);
        }
        out
    }
}

/// A chain of stages applied in order.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    stages: Vec<Stage>,
}

impl Pipeline {
    /// Empty pipeline (identity).
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Append a stage.
    pub fn stage(mut self, s: Stage) -> Pipeline {
        self.stages.push(s);
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True iff no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Process arrivals through all stages; returns final exit times.
    pub fn process(&self, arrivals: &[SimTime], rng: &mut SimRng) -> Vec<SimTime> {
        let mut t = arrivals.to_vec();
        for s in &self.stages {
            t = s.process(&t, rng);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn uncontended_stage_adds_service_time() {
        let s = Stage::new("w", 4, SimDuration::from_millis(2), 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let out = s.process(&[at(0), at(100), at(200)], &mut rng);
        assert_eq!(out, vec![at(2), at(102), at(202)]);
    }

    #[test]
    fn single_server_queues_fcfs() {
        let s = Stage::new("w", 1, SimDuration::from_millis(10), 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        // Three simultaneous arrivals: serialised.
        let out = s.process(&[at(0), at(0), at(0)], &mut rng);
        assert_eq!(out, vec![at(10), at(20), at(30)]);
    }

    #[test]
    fn multi_server_parallelism() {
        let s = Stage::new("w", 2, SimDuration::from_millis(10), 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let out = s.process(&[at(0), at(0), at(0), at(0)], &mut rng);
        assert_eq!(out, vec![at(10), at(10), at(20), at(20)]);
    }

    #[test]
    fn jitter_stays_bounded() {
        let s = Stage::new("w", 8, SimDuration::from_millis(10), 0.5);
        let mut rng = SimRng::seed_from_u64(3);
        let arrivals: Vec<SimTime> = (0..1_000).map(|i| at(i * 100)).collect();
        let out = s.process(&arrivals, &mut rng);
        for (a, e) in arrivals.iter().zip(out.iter()) {
            let d = (*e - *a).as_millis_f64();
            assert!(
                (5.0..=15.0).contains(&d),
                "jittered service {d}ms out of ±50%"
            );
        }
    }

    #[test]
    fn pipeline_composes_stages() {
        let p = Pipeline::new()
            .stage(Stage::new("gw", 100, SimDuration::from_millis(1), 0.0))
            .stage(Stage::new("worker", 100, SimDuration::from_millis(2), 0.0));
        let mut rng = SimRng::seed_from_u64(1);
        let out = p.process(&[at(0)], &mut rng);
        assert_eq!(out, vec![at(3)]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn exit_order_preserved_for_equal_service() {
        let s = Stage::new("w", 3, SimDuration::from_millis(5), 0.0);
        let mut rng = SimRng::seed_from_u64(9);
        let arrivals: Vec<SimTime> = (0..200).map(at).collect();
        let out = s.process(&arrivals, &mut rng);
        for w in out.windows(2) {
            assert!(w[0] <= w[1], "FCFS with equal service must preserve order");
        }
    }
}
