//! Multi-server offloading (the paper's stated future work, §VIII-A):
//! *"Longer functions could be potentially offloaded to relatively
//! lighter-loaded FaaS servers by the global FaaS scheduler to mitigate the
//! performance impact."*
//!
//! A [`Cluster`] of SFS hosts with a global dispatcher. Placement policies:
//!
//! * [`Placement::RoundRobin`] — baseline spreading;
//! * [`Placement::LeastLoaded`] — join the host with the least outstanding
//!   CPU work;
//! * [`Placement::LongToLightest`] — the paper's proposal: short functions
//!   round-robin (they are latency-critical and any FILTER pool serves
//!   them); functions predicted long are steered to the lightest host so
//!   their demoted-CFS phase faces the least competition.
//!
//! Prediction uses per-function history (the same kind of statistics SFS
//! already keeps): a function app's previous ideal durations classify the
//! next invocation as short or long.

use sfs_core::{ControllerFactory, RequestOutcome, SfsConfig};
use sfs_simcore::SimDuration;
use sfs_workload::{Workload, LONG_THRESHOLD_MS};

/// Global dispatcher placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Requests go to hosts in rotation.
    RoundRobin,
    /// Requests join the host with the least outstanding CPU demand.
    LeastLoaded,
    /// Short functions rotate; predicted-long functions go to the host with
    /// the least outstanding *long* work.
    LongToLightest,
}

impl Placement {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
            Placement::LongToLightest => "long-to-lightest",
        }
    }
}

/// A cluster of identical SFS hosts.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Number of hosts.
    pub hosts: usize,
    /// Cores per host.
    pub cores_per_host: usize,
    /// SFS configuration applied on every host.
    pub sfs: SfsConfig,
}

/// Result of a cluster run.
#[derive(Debug)]
pub struct ClusterRun {
    /// Outcomes across all hosts, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests placed per host.
    pub per_host: Vec<usize>,
    /// The placement used.
    pub placement: Placement,
}

impl Cluster {
    /// A cluster of `hosts` × `cores_per_host` with default SFS settings.
    pub fn new(hosts: usize, cores_per_host: usize) -> Cluster {
        assert!(hosts >= 1 && cores_per_host >= 1);
        Cluster {
            hosts,
            cores_per_host,
            sfs: SfsConfig::new(cores_per_host),
        }
    }

    /// Dispatch `workload` across the cluster under `placement` and run
    /// every host to completion with this cluster's SFS configuration.
    pub fn run(&self, placement: Placement, workload: &Workload) -> ClusterRun {
        self.run_with(placement, &self.sfs, workload)
    }

    /// As [`Cluster::run`], with any per-host scheduling policy: one fresh
    /// controller is built per host from `factory` (hosts share nothing but
    /// the dispatcher, as in a real FaaS fleet).
    pub fn run_with(
        &self,
        placement: Placement,
        factory: &dyn ControllerFactory,
        workload: &Workload,
    ) -> ClusterRun {
        // Outstanding work estimate per host: sum of dispatched (not yet
        // "expired") CPU demand, decayed by arrival time — the global
        // scheduler's view from its own dispatch log (it does not see host
        // internals, matching the paper's architecture).
        let mut per_host_requests: Vec<Vec<usize>> = vec![Vec::new(); self.hosts];
        let mut outstanding = vec![0.0f64; self.hosts]; // CPU ms in flight
        let mut outstanding_long = vec![0.0f64; self.hosts];
        let mut last_decay = vec![0.0f64; self.hosts]; // ms timestamp
        let mut rr = 0usize;

        for (idx, r) in workload.requests.iter().enumerate() {
            let now_ms = r.arrival.as_millis_f64();
            // Decay each host's outstanding estimate by its service capacity
            // since the last dispatch there.
            for h in 0..self.hosts {
                let dt = now_ms - last_decay[h];
                if dt > 0.0 {
                    let drained = dt * self.cores_per_host as f64;
                    outstanding[h] = (outstanding[h] - drained).max(0.0);
                    outstanding_long[h] = (outstanding_long[h] - drained).max(0.0);
                    last_decay[h] = now_ms;
                }
            }
            // Classify using per-app history: FaaSBench labels carry the
            // sampled duration, standing in for SFS's historical statistics.
            let predicted_long = r.duration_ms >= LONG_THRESHOLD_MS;
            let host = match placement {
                Placement::RoundRobin => {
                    rr = (rr + 1) % self.hosts;
                    rr
                }
                Placement::LeastLoaded => (0..self.hosts)
                    .min_by(|&a, &b| outstanding[a].partial_cmp(&outstanding[b]).unwrap())
                    .unwrap(),
                Placement::LongToLightest => {
                    if predicted_long {
                        (0..self.hosts)
                            .min_by(|&a, &b| {
                                outstanding_long[a]
                                    .partial_cmp(&outstanding_long[b])
                                    .unwrap()
                            })
                            .unwrap()
                    } else {
                        rr = (rr + 1) % self.hosts;
                        rr
                    }
                }
            };
            let cpu_ms = r.spec.cpu_demand().as_millis_f64();
            outstanding[host] += cpu_ms;
            if predicted_long {
                outstanding_long[host] += cpu_ms;
            }
            per_host_requests[host].push(idx);
        }

        // Run each host independently, one controller per host.
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(workload.len());
        let mut per_host = Vec::with_capacity(self.hosts);
        for idxs in &per_host_requests {
            per_host.push(idxs.len());
            if idxs.is_empty() {
                continue;
            }
            let sub = Workload {
                requests: idxs.iter().map(|&i| workload.requests[i].clone()).collect(),
            };
            outcomes.extend(factory.run_on(self.cores_per_host, &sub).outcomes);
        }
        outcomes.sort_by_key(|o| o.id);
        ClusterRun {
            outcomes,
            per_host,
            placement,
        }
    }
}

impl ClusterRun {
    /// Mean turnaround (ms) of the long-function population — the quantity
    /// the offloading proposal targets.
    pub fn long_mean_ms(&self) -> f64 {
        let thr = SimDuration::from_millis_f64(LONG_THRESHOLD_MS);
        let longs: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.ideal >= thr)
            .map(|o| o.turnaround.as_millis_f64())
            .collect();
        if longs.is_empty() {
            0.0
        } else {
            longs.iter().sum::<f64>() / longs.len() as f64
        }
    }

    /// Mean turnaround (ms) of the short population.
    pub fn short_mean_ms(&self) -> f64 {
        let thr = SimDuration::from_millis_f64(LONG_THRESHOLD_MS);
        let shorts: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.ideal < thr)
            .map(|o| o.turnaround.as_millis_f64())
            .collect();
        if shorts.is_empty() {
            0.0
        } else {
            shorts.iter().sum::<f64>() / shorts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_workload::WorkloadSpec;

    fn workload(n: usize, hosts: usize, cores: usize, load: f64) -> Workload {
        WorkloadSpec::azure_sampled(n, 19)
            .with_load(hosts * cores, load)
            .generate()
    }

    #[test]
    fn all_placements_complete_everything() {
        let cluster = Cluster::new(3, 4);
        let w = workload(900, 3, 4, 0.8);
        for p in [
            Placement::RoundRobin,
            Placement::LeastLoaded,
            Placement::LongToLightest,
        ] {
            let run = cluster.run(p, &w);
            assert_eq!(run.outcomes.len(), 900, "{} lost requests", p.name());
            assert_eq!(run.per_host.iter().sum::<usize>(), 900);
            for (i, o) in run.outcomes.iter().enumerate() {
                assert_eq!(o.id, i as u64);
            }
        }
    }

    #[test]
    fn round_robin_balances_counts() {
        let cluster = Cluster::new(4, 2);
        let w = workload(1_000, 4, 2, 0.7);
        let run = cluster.run(Placement::RoundRobin, &w);
        for &c in &run.per_host {
            assert!(
                (200..=300).contains(&c),
                "round-robin should balance counts, got {:?}",
                run.per_host
            );
        }
    }

    #[test]
    fn long_to_lightest_helps_long_functions() {
        // The future-work claim: steering longs to lighter hosts mitigates
        // their SFS penalty relative to blind round-robin.
        let cluster = Cluster::new(3, 4);
        let w = workload(1_500, 3, 4, 1.0);
        let rr = cluster.run(Placement::RoundRobin, &w);
        let steer = cluster.run(Placement::LongToLightest, &w);
        assert!(
            steer.long_mean_ms() <= rr.long_mean_ms() * 1.05,
            "steering longs should not hurt them: {} vs {}",
            steer.long_mean_ms(),
            rr.long_mean_ms()
        );
        // And shorts must not regress materially either.
        assert!(
            steer.short_mean_ms() <= rr.short_mean_ms() * 1.25,
            "short functions regressed: {} vs {}",
            steer.short_mean_ms(),
            rr.short_mean_ms()
        );
    }

    #[test]
    fn any_controller_recipe_runs_per_host() {
        // The dispatcher composes with arbitrary policies: a kernel-only
        // CFS cluster completes the same request set as the SFS cluster,
        // one fresh controller per host.
        let cluster = Cluster::new(3, 4);
        let w = workload(600, 3, 4, 0.8);
        let sfs = cluster.run(Placement::RoundRobin, &w);
        let cfs = cluster.run_with(Placement::RoundRobin, &sfs_core::Baseline::Cfs, &w);
        assert_eq!(cfs.outcomes.len(), 600);
        assert_eq!(
            cfs.per_host, sfs.per_host,
            "placement is policy-independent"
        );
        // Same ids, different schedules.
        for (a, b) in sfs.outcomes.iter().zip(cfs.outcomes.iter()) {
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn least_loaded_tracks_outstanding_work() {
        let cluster = Cluster::new(2, 2);
        let w = workload(600, 2, 2, 0.9);
        let run = cluster.run(Placement::LeastLoaded, &w);
        // Both hosts must participate.
        assert!(run.per_host.iter().all(|&c| c > 100), "{:?}", run.per_host);
    }
}
