//! Live "function processes": calibrated busy-loop threads.
//!
//! Real counterpart of the simulator's `sfs_sched::TaskSpec`: a thread
//! that burns CPU for a target duration (fib-style) and optionally sleeps
//! to emulate an I/O operation. Used by the live demo scheduler and the
//! Table-II overhead measurements.

// lint: allow-file(D2, live backend: real threads burning real CPU are the measurement, so wall-clock reads are the point)
// lint: allow-file(D3, live function processes are real OS threads, not simulated fan-out; determinism is out of scope here)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::sys::{gettid, pin_to_cpu, Tid};

/// Spec for one live function invocation.
#[derive(Debug, Clone, Copy)]
pub struct LiveSpec {
    /// CPU burst length.
    pub cpu: Duration,
    /// Optional leading I/O (sleep) phase.
    pub io: Option<Duration>,
    /// Pin the function to this CPU (contention experiments).
    pub pin_cpu: Option<usize>,
}

impl LiveSpec {
    /// Pure CPU function.
    pub fn cpu_ms(ms: u64) -> LiveSpec {
        LiveSpec {
            cpu: Duration::from_millis(ms),
            io: None,
            pin_cpu: None,
        }
    }

    /// Pin to a CPU.
    pub fn pinned(mut self, cpu: usize) -> LiveSpec {
        self.pin_cpu = Some(cpu);
        self
    }

    /// Add a leading I/O sleep.
    pub fn with_io_ms(mut self, ms: u64) -> LiveSpec {
        self.io = Some(Duration::from_millis(ms));
        self
    }
}

/// Completion record of a live function.
#[derive(Debug, Clone, Copy)]
pub struct LiveOutcome {
    /// Wall-clock turnaround (spawn → completion).
    pub turnaround: Duration,
    /// Requested CPU burst.
    pub cpu_demand: Duration,
    /// Requested I/O time.
    pub io_demand: Duration,
}

impl LiveOutcome {
    /// Live analogue of the paper's RTE: ideal isolated duration over
    /// turnaround.
    pub fn rte(&self) -> f64 {
        let ideal = self.cpu_demand + self.io_demand;
        (ideal.as_secs_f64() / self.turnaround.as_secs_f64()).min(1.0)
    }
}

/// A running live function.
pub struct LiveFunction {
    /// Kernel tid of the function thread (valid once spawned).
    pub tid: Tid,
    /// When it was spawned.
    pub spawned_at: Instant,
    done: Arc<AtomicBool>,
    handle: thread::JoinHandle<LiveOutcome>,
}

impl LiveFunction {
    /// Spawn the function thread; blocks briefly until the thread reports
    /// its tid (so the caller can immediately `schedtool` it).
    pub fn spawn(spec: LiveSpec) -> LiveFunction {
        let (tid_tx, tid_rx) = mpsc::channel();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let spawned_at = Instant::now();
        let handle = thread::spawn(move || {
            let tid = gettid();
            // Function processes start under CFS (paper §V-B step 2). This
            // also sheds any inherited SCHED_FIFO policy from an RT spawner,
            // which would otherwise block the monitor for the whole burst.
            let _ = crate::sys::set_policy(tid, crate::sys::HostPolicy::Normal);
            if let Some(cpu) = spec.pin_cpu {
                let _ = pin_to_cpu(tid, cpu);
            }
            tid_tx.send(tid).expect("parent alive");
            let start = Instant::now();
            if let Some(io) = spec.io {
                thread::sleep(io);
            }
            burn_cpu(spec.cpu);
            done2.store(true, Ordering::Release);
            LiveOutcome {
                turnaround: start.elapsed(),
                cpu_demand: spec.cpu,
                io_demand: spec.io.unwrap_or(Duration::ZERO),
            }
        });
        let tid = tid_rx.recv().expect("function thread reports tid");
        LiveFunction {
            tid,
            spawned_at,
            done,
            handle,
        }
    }

    /// Whether the function has completed its work.
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Join and return the outcome.
    pub fn join(self) -> LiveOutcome {
        self.handle.join().expect("function thread must not panic")
    }
}

/// Burn CPU for approximately `d` of *busy* wall time. Uses a checked spin
/// so sleeps/preemption extend wall time but the work amount is what a
/// calibrated fib(N) would do.
fn burn_cpu(d: Duration) {
    let start = Instant::now();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    while start.elapsed() < d {
        // A few hundred ns of real work per check keeps syscall overhead nil.
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        std::hint::black_box(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_completes_and_reports_duration() {
        let f = LiveFunction::spawn(LiveSpec::cpu_ms(30));
        assert!(f.tid > 0);
        let out = f.join();
        assert!(out.turnaround >= Duration::from_millis(30));
        assert!(
            out.turnaround < Duration::from_millis(600),
            "30ms burst took {:?}",
            out.turnaround
        );
        assert!(out.rte() > 0.0 && out.rte() <= 1.0);
    }

    #[test]
    fn io_phase_adds_sleep_time() {
        let f = LiveFunction::spawn(LiveSpec::cpu_ms(10).with_io_ms(50));
        let out = f.join();
        assert!(out.turnaround >= Duration::from_millis(60));
        assert_eq!(out.io_demand, Duration::from_millis(50));
    }

    #[test]
    fn done_flag_flips_on_completion() {
        let f = LiveFunction::spawn(LiveSpec::cpu_ms(20));
        // It may or may not be done yet, but must be done after join-time.
        while !f.is_done() {
            std::thread::sleep(Duration::from_millis(2));
        }
        let out = f.join();
        assert!(out.turnaround >= Duration::from_millis(19));
    }

    #[test]
    fn uncontended_function_has_high_rte() {
        // On an idle machine a solo function should be near RTE 1; allow
        // generous slack for noisy CI machines.
        let f = LiveFunction::spawn(LiveSpec::cpu_ms(50));
        let out = f.join();
        assert!(
            out.rte() > 0.5,
            "solo function RTE {} suspiciously low",
            out.rte()
        );
    }
}
