//! Rendering: the human findings table and the machine-readable JSON
//! findings list (hand-rolled writer — the workspace stays
//! dependency-free, same as `sfs_bench::perf`'s BENCH_sim.json).

use crate::engine::Finding;

/// Render findings as an aligned `path:line  RULE  message` table, grouped
/// in path order. Empty input renders an empty string.
pub fn human_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return String::new();
    }
    let loc_w = findings
        .iter()
        .map(|f| f.path.len() + 1 + digits(f.line))
        .max()
        .unwrap_or(0);
    let rule_w = findings.iter().map(|f| f.rule.len()).max().unwrap_or(0);
    let mut out = String::new();
    for f in findings {
        let loc = format!("{}:{}", f.path, f.line);
        out.push_str(&format!(
            "{loc:<loc_w$}  {rule:<rule_w$}  {msg}\n",
            rule = f.rule,
            msg = f.message
        ));
    }
    out
}

/// One summary line: `simlint: N findings, M suppressed, K files scanned`.
pub fn summary_line(findings: usize, suppressed: usize, files: usize) -> String {
    format!("simlint: {findings} finding(s), {suppressed} suppressed, {files} files scanned")
}

/// Machine-readable findings: a JSON array of
/// `{"rule": …, "path": …, "line": …, "message": …}` objects, sorted the
/// way the engine emitted them (path order).
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_str(&f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Minimal JSON string escape (quote, backslash, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &str, path: &str, line: u32, msg: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message: msg.to_string(),
        }
    }

    #[test]
    fn table_aligns_and_lists_every_finding() {
        let fs = vec![
            f("D1", "crates/a/src/lib.rs", 7, "x"),
            f("P1", "crates/longer/path.rs", 123, "y"),
        ];
        let t = human_table(&fs);
        assert!(t.contains("crates/a/src/lib.rs:7"));
        assert!(t.contains("crates/longer/path.rs:123"));
        assert_eq!(t.lines().count(), 2);
    }

    #[test]
    fn json_escapes_and_roundtrips_shape() {
        let fs = vec![f("D1", "a.rs", 1, "said \"hi\"\\path")];
        let j = findings_json(&fs);
        assert!(j.contains(r#""rule": "D1""#));
        assert!(j.contains(r#"\"hi\""#));
        assert!(j.contains(r#"\\path"#));
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
        assert_eq!(findings_json(&[]).trim(), "[]");
    }
}
