//! Fig. 11: handling I/O — polling intervals 1/4/8 ms vs I/O-oblivious SFS
//! (§VIII-B).
//!
//! Workload: 75% of requests get one leading I/O operation of 10–100 ms.
//! Expected shape: the three polling intervals are nearly indistinguishable;
//! I/O-oblivious SFS is clearly worse (blocked functions burn their FILTER
//! slice and get demoted).

use sfs_bench::{banner, save, section, turnarounds_ms};
use sfs_core::{SfsConfig, SfsSimulator};
use sfs_metrics::{cdf_chart, CdfReport};
use sfs_sched::MachineParams;
use sfs_simcore::SimDuration;
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 11",
        "I/O handling: polling intervals vs oblivious",
        n,
        seed,
    );

    // The paper replays the Azure-sampled (bursty) arrival pattern here;
    // burstiness matters because the adaptive slice S dips during spikes,
    // which is exactly when an I/O-oblivious FILTER pool wastes slice
    // credit on sleeping functions.
    let mut spec = WorkloadSpec::azure_replay(n, seed);
    spec.io_fraction = 0.75;
    spec.io_range_ms = (10.0, 100.0);
    let w = spec.with_load(CORES, 0.8).generate();

    let mut report = CdfReport::new("duration_ms");
    let mut chart: Vec<(String, Vec<f64>)> = Vec::new();

    for (label, cfg) in [
        ("SFS + 1ms", poll_cfg(1)),
        ("SFS + 4ms", poll_cfg(4)),
        ("SFS + 8ms", poll_cfg(8)),
        ("I/O-oblivious SFS", SfsConfig::new(CORES).io_oblivious()),
        // Regime probe: with the slice forced to the I/O scale (50 ms),
        // the oblivious variant burns whole slices on sleeping functions —
        // the mechanism behind the paper's Fig. 11 gap. See EXPERIMENTS.md.
        ("SFS 50ms aware", poll_cfg(4).with_fixed_slice(50)),
        (
            "SFS 50ms oblivious",
            SfsConfig::new(CORES).io_oblivious().with_fixed_slice(50),
        ),
    ] {
        let r = SfsSimulator::new(cfg, MachineParams::linux(CORES), w.clone()).run();
        let io_blocks: u32 = r.outcomes.iter().map(|o| o.io_blocks).sum();
        println!(
            "{label:>18}: mean {:.1} ms, io-blocks detected {}, demoted {}",
            r.mean_turnaround_ms(),
            io_blocks,
            r.demoted
        );
        let durs = turnarounds_ms(&r.outcomes);
        report.push(label, durs.clone());
        chart.push((label.to_string(), durs));
    }

    section("duration CDF quantiles (ms)");
    println!("{}", report.to_markdown());
    save("fig11_io_cdf.csv", &report.to_csv());

    section("duration CDF (log-x)");
    let refs: Vec<(&str, &[f64])> = chart
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));
}

fn poll_cfg(ms: u64) -> SfsConfig {
    let mut c = SfsConfig::new(CORES);
    c.poll_interval = SimDuration::from_millis(ms);
    c
}
