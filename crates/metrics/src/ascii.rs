//! Minimal ASCII charts for terminal figure output.
//!
//! The bench binaries print each figure both as CSV (for plotting) and as a
//! quick ASCII rendering so the shape is visible straight from
//! `cargo run`. Log-x CDF plots and linear timelines are enough for every
//! figure in the paper.

/// Render a log-x CDF chart of several series.
///
/// `series` is `(label, sorted-or-unsorted samples)`; the x-axis spans the
/// pooled sample range on a log scale; each series is drawn with its own
/// glyph.
pub fn cdf_chart(series: &[(&str, &[f64])], width: usize, height: usize) -> String {
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&', '~', '='];
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|x| *x > 0.0)
        .collect();
    if all.is_empty() || width < 8 || height < 2 {
        return String::from("(no data)\n");
    }
    let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = all.iter().cloned().fold(0.0f64, f64::max).max(lo * 1.0001);
    let (llo, lhi) = (lo.ln(), hi.ln());
    let mut grid = vec![vec![' '; width]; height];

    for (si, (_, vals)) in series.iter().enumerate() {
        let mut v: Vec<f64> = vals.iter().copied().filter(|x| *x > 0.0).collect();
        if v.is_empty() {
            continue;
        }
        // total_cmp: a chart must never panic a run over a stray NaN
        // sample (simlint P1); the `> 0.0` filter drops NaN today, but the
        // sort must stay total regardless.
        v.sort_by(f64::total_cmp);
        let g = glyphs[si % glyphs.len()];
        for (col, x) in
            (0..width).map(|c| (c, (llo + (lhi - llo) * c as f64 / (width - 1) as f64).exp()))
        {
            let frac = v.partition_point(|&s| s <= x) as f64 / v.len() as f64;
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col] = g;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let frac = 1.0 - i as f64 / (height - 1) as f64;
        out.push_str(&format!("{frac:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "     +{}\n      {:<10.3}{:>width$.3}\n",
        "-".repeat(width),
        lo,
        hi,
        width = width.saturating_sub(10)
    ));
    for (si, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("      {} {}\n", glyphs[si % glyphs.len()], label));
    }
    out
}

/// Render a linear timeline chart of `(x, y)` points.
pub fn timeline_chart(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() || width < 8 || height < 2 {
        return String::from("(no data)\n");
    }
    let xmin = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ymax = points.iter().map(|p| p.1).fold(0.0f64, f64::max).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let col = if xmax > xmin {
            ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize
        } else {
            0
        };
        let row = ((1.0 - y / ymax) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = '*';
    }
    let mut out = format!("ymax={ymax:.3}\n");
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "+{}\n x: {xmin:.1} .. {xmax:.1}\n",
        "-".repeat(width)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_chart_contains_series_glyphs_and_legend() {
        let a: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b: Vec<f64> = (1..=100).map(|i| i as f64 * 10.0).collect();
        let chart = cdf_chart(&[("fast", &a), ("slow", &b)], 40, 10);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("fast"));
        assert!(chart.contains("slow"));
        assert!(chart.lines().count() > 10);
    }

    #[test]
    fn cdf_chart_tolerates_nan_samples() {
        // Regression (simlint P1, mirroring the PR 7 ensure_sorted fix):
        // the per-series sort used partial_cmp().unwrap(). The positivity
        // filter happens to drop NaN today, but the sort must stay total
        // so a chart can never panic a run over a stray NaN sample.
        let a = vec![1.0, f64::NAN, 10.0, 100.0];
        let chart = cdf_chart(&[("nan-laced", &a)], 40, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains("nan-laced"));
    }

    #[test]
    fn cdf_chart_handles_empty() {
        assert_eq!(cdf_chart(&[], 40, 10), "(no data)\n");
        let empty: Vec<f64> = vec![];
        assert_eq!(cdf_chart(&[("e", &empty)], 40, 10), "(no data)\n");
    }

    #[test]
    fn timeline_chart_scales_to_peak() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, (i % 10) as f64)).collect();
        let chart = timeline_chart(&pts, 50, 8);
        assert!(chart.starts_with("ymax=9.000"));
        assert!(chart.contains('*'));
    }

    #[test]
    fn timeline_chart_single_point() {
        let chart = timeline_chart(&[(5.0, 2.0)], 20, 5);
        assert!(chart.contains('*'));
    }
}
