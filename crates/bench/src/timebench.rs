//! Minimal wall-clock benchmarking harness (criterion stand-in).
//!
//! The workspace builds hermetically with no external crates, so the
//! `benches/` targets use this std-only harness instead of criterion:
//! each benchmark auto-calibrates a batch size, runs a fixed number of
//! timed batches, and reports median / p10 / p90 nanoseconds per
//! iteration. Invoke with `cargo bench` (the targets set
//! `harness = false`) — an optional CLI argument filters benchmarks by
//! substring, mirroring criterion's behaviour.

use std::time::{Duration, Instant};

/// Target wall time for one timed batch.
const BATCH_TARGET: Duration = Duration::from_millis(10);
/// Number of timed batches per benchmark.
const BATCHES: usize = 25;

/// Tunables for one measurement: how long a timed batch should run and how
/// many batches feed the quantiles. The defaults match the classic
/// microbenchmark harness; heavyweight operations (full simulation runs in
/// the perf suite) use longer batches and fewer of them.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Calibration target: grow the batch until it runs at least this long.
    pub batch_target: Duration,
    /// Number of timed batches (the quantile sample size).
    pub batches: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            batch_target: BATCH_TARGET,
            batches: BATCHES,
        }
    }
}

/// Measured distribution of per-iteration cost.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median nanoseconds per iteration across batches.
    pub median_ns: f64,
    /// 10th percentile ns/iter.
    pub p10_ns: f64,
    /// 90th percentile ns/iter.
    pub p90_ns: f64,
    /// Iterations per timed batch after calibration.
    pub batch_iters: u64,
}

/// A named group of benchmarks, printed as an aligned report.
pub struct Harness {
    filter: Option<String>,
    ran: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

impl Harness {
    /// Build a harness, taking an optional substring filter from argv.
    pub fn from_args() -> Harness {
        Harness::with_filter(std::env::args().nth(1).filter(|a| !a.starts_with('-')))
    }

    /// Build a harness with an explicit substring filter (`None` runs
    /// everything) — the testable constructor behind
    /// [`Harness::from_args`].
    pub fn with_filter(filter: Option<String>) -> Harness {
        Harness { filter, ran: 0 }
    }

    /// Whether `name` passes the filter (i.e. [`Harness::bench`] would run
    /// it).
    pub fn matches(&self, name: &str) -> bool {
        match self.filter.as_deref() {
            Some(pat) => name.contains(pat),
            None => true,
        }
    }

    /// Number of benchmarks run so far.
    pub fn ran(&self) -> usize {
        self.ran
    }

    /// Run one benchmark: `f` is the operation to time, called repeatedly.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if !self.matches(name) {
            return;
        }
        let m = measure(&mut f);
        self.ran += 1;
        println!(
            "{name:<44} {:>12}/iter  (p10 {}, p90 {}, {} iters/batch)",
            fmt_ns(m.median_ns),
            fmt_ns(m.p10_ns),
            fmt_ns(m.p90_ns),
            m.batch_iters
        );
    }

    /// Print a trailing summary; call once at the end of `main`.
    pub fn finish(self) {
        if self.ran == 0 {
            println!("(no benchmarks matched the filter)");
        }
    }
}

/// Calibration ceiling: give up growing the batch past this many
/// iterations (guards against closures the optimizer deletes entirely).
const MAX_BATCH_ITERS: u64 = 1 << 30;

/// Time `f`, returning the per-iteration cost distribution.
pub fn measure<F: FnMut()>(f: &mut F) -> Measurement {
    measure_with(f, &MeasureConfig::default())
}

/// As [`measure`], with explicit batch tunables.
pub fn measure_with<F: FnMut()>(f: &mut F, cfg: &MeasureConfig) -> Measurement {
    assert!(cfg.batches >= 1, "need at least one timed batch");
    // Calibrate: grow the batch until it runs for at least the target.
    let mut iters: u64 = 1;
    loop {
        let t = time_batch(f, iters);
        if t >= cfg.batch_target || iters >= MAX_BATCH_ITERS {
            break;
        }
        // Aim straight for the target with 2x headroom, at least doubling.
        let scale = cfg.batch_target.as_secs_f64() / t.as_secs_f64().max(1e-9);
        iters = (iters as f64 * scale.max(1.0) * 2.0).min(MAX_BATCH_ITERS as f64) as u64;
        iters = iters.max(2);
    }
    let mut per_iter: Vec<f64> = (0..cfg.batches)
        .map(|_| time_batch(f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| per_iter[((per_iter.len() - 1) as f64 * q).round() as usize];
    Measurement {
        median_ns: pick(0.5),
        p10_ns: pick(0.1),
        p90_ns: pick(0.9),
        batch_iters: iters,
    }
}

fn time_batch<F: FnMut()>(f: &mut F, iters: u64) -> Duration {
    // Callers are expected to `black_box` their own results inside `f`
    // (the compiler cannot see through the FnMut boundary anyway).
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed()
}

/// Human-format a nanosecond count with an auto-picked unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_ordered_quantiles() {
        let mut x = 0u64;
        let mut f = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        };
        let m = measure(&mut f);
        assert!(m.p10_ns <= m.median_ns && m.median_ns <= m.p90_ns);
        assert!(m.median_ns > 0.0);
        assert!(m.batch_iters >= 1);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12.0), "12ns");
        assert_eq!(fmt_ns(1_200.0), "1.20us");
        assert_eq!(fmt_ns(3_400_000.0), "3.40ms");
        assert_eq!(fmt_ns(2_000_000_000.0), "2.00s");
    }

    #[test]
    fn calibration_picks_a_nonzero_batch_size() {
        // A near-free operation must be batched up well past one iteration
        // to reach the batch target; a single-iteration batch would make
        // every quantile pure timer noise.
        let mut x = 0u64;
        let mut f = || x = x.wrapping_add(1);
        let cfg = MeasureConfig {
            batch_target: Duration::from_millis(1),
            batches: 3,
        };
        let m = measure_with(&mut f, &cfg);
        assert!(m.batch_iters > 1, "free op not batched: {}", m.batch_iters);
        // A slow operation stays at small batches instead of spinning the
        // calibration loop forever.
        let mut g = || std::thread::sleep(Duration::from_millis(2));
        let m = measure_with(&mut g, &cfg);
        assert_eq!(m.batch_iters, 1);
    }

    #[test]
    fn quantiles_are_ordered_under_config() {
        let mut x = 1u64;
        let mut f = || {
            for _ in 0..100 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            black_box_u64(x);
        };
        let cfg = MeasureConfig {
            batch_target: Duration::from_millis(2),
            batches: 7,
        };
        let m = measure_with(&mut f, &cfg);
        assert!(m.p10_ns <= m.median_ns, "{} > {}", m.p10_ns, m.median_ns);
        assert!(m.median_ns <= m.p90_ns, "{} > {}", m.median_ns, m.p90_ns);
        assert!(m.median_ns > 0.0);
    }

    fn black_box_u64(v: u64) {
        std::hint::black_box(v);
    }

    #[test]
    fn filter_runs_the_matching_subset() {
        let mut h = Harness::with_filter(Some("cfs".to_string()));
        assert!(h.matches("cfs_runqueue/pick"));
        assert!(h.matches("micro/cfs_pick_64"));
        assert!(!h.matches("rt_runqueue/push_pop"));
        let mut hits = Vec::new();
        for name in ["cfs/a", "rt/b", "event/cfs_c"] {
            if h.matches(name) {
                hits.push(name);
            }
        }
        assert_eq!(hits, ["cfs/a", "event/cfs_c"]);
        // bench() itself honours the filter: only the matching name runs.
        h.bench("rt/skipped", || unreachable!("filtered out"));
        assert_eq!(h.ran(), 0);
        let mut x = 0u64;
        h.bench("cfs/tiny", || x = x.wrapping_add(1));
        assert_eq!(h.ran(), 1);
    }

    #[test]
    fn no_filter_matches_everything() {
        let h = Harness::with_filter(None);
        assert!(h.matches("anything/at_all"));
        assert_eq!(h.ran(), 0);
    }
}
