//! Per-request outcomes and run-level results for SFS experiments.

use sfs_simcore::{SimDuration, SimTime, TimeSeries};

/// Everything measured about one completed function request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Workload request id.
    pub id: u64,
    /// Invocation time (FaaS dispatch == OS spawn in the model).
    pub arrival: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// End-to-end execution duration (the paper's headline metric).
    pub turnaround: SimDuration,
    /// Duration under the IDEAL (isolated, infinite-resource) scenario.
    pub ideal: SimDuration,
    /// CPU service demand.
    pub cpu_demand: SimDuration,
    /// Run-time effectiveness (paper Eq. 1).
    pub rte: f64,
    /// Involuntary context switches suffered.
    pub ctx_switches: u64,
    /// Core-to-core migrations (wakeup placement, idle steals, and SMP
    /// balance-tick pulls combined).
    pub migrations: u64,
    /// Time spent waiting in SFS's global queue before the first pop
    /// (zero for pure-kernel baselines).
    pub queue_delay: SimDuration,
    /// Whether the request exhausted its FILTER slice and was demoted to CFS.
    pub demoted: bool,
    /// Whether the overload bypass sent it straight to CFS.
    pub offloaded: bool,
    /// Number of FILTER rounds it received.
    pub filter_rounds: u32,
    /// Number of I/O blocks detected during FILTER rounds.
    pub io_blocks: u32,
}

impl RequestOutcome {
    /// Slowdown relative to the ideal duration (≥ 1).
    pub fn slowdown(&self) -> f64 {
        if self.ideal.is_zero() {
            1.0
        } else {
            (self.turnaround.as_nanos() as f64 / self.ideal.as_nanos() as f64).max(1.0)
        }
    }
}

/// Result of one SFS simulation run (legacy shape; new code reads the
/// same data from [`crate::RunOutcome`] and its
/// [`Telemetry`](crate::Telemetry) instead).
#[derive(Debug, Clone)]
pub struct SfsRunResult {
    /// Per-request outcomes, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Adapted time slice timeline (Fig. 10).
    pub slice_timeline: TimeSeries,
    /// Window-mean IAT timeline (Fig. 10).
    pub iat_timeline: TimeSeries,
    /// Per-request global-queue delay, indexed by invocation time (Fig. 12a).
    pub queue_delay_series: TimeSeries,
    /// Number of polling ticks performed.
    pub polls: u64,
    /// Number of per-task status reads across all polling ticks.
    pub polled_tasks: u64,
    /// Number of `schedtool`-equivalent policy switches issued.
    pub sched_actions: u64,
    /// Requests sent to CFS by the overload bypass.
    pub offloaded: u64,
    /// Requests demoted to CFS on slice expiry.
    pub demoted: u64,
    /// Adaptive slice recalculations.
    pub slice_recalcs: u64,
    /// Machine-wide involuntary context switches.
    pub machine_ctx_switches: u64,
    /// Total simulated span.
    pub sim_span: SimDuration,
    /// Cores in the simulated machine.
    pub cores: usize,
    /// Execution trace, if requested via `Sim::tracing`.
    pub schedule_trace: Option<sfs_sched::ScheduleTrace>,
}

impl From<crate::RunOutcome> for SfsRunResult {
    fn from(run: crate::RunOutcome) -> SfsRunResult {
        SfsRunResult {
            outcomes: run.outcomes,
            slice_timeline: run.telemetry.slice_timeline,
            iat_timeline: run.telemetry.iat_timeline,
            queue_delay_series: run.telemetry.queue_delay_series,
            polls: run.telemetry.polls,
            polled_tasks: run.telemetry.polled_tasks,
            sched_actions: run.sched_actions,
            offloaded: run.telemetry.offloaded,
            demoted: run.telemetry.demoted,
            slice_recalcs: run.telemetry.slice_recalcs,
            machine_ctx_switches: run.machine_ctx_switches,
            sim_span: run.sim_span,
            cores: run.cores,
            schedule_trace: run.schedule_trace,
        }
    }
}

impl SfsRunResult {
    /// Mean turnaround in ms.
    pub fn mean_turnaround_ms(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.turnaround.as_millis_f64())
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Fraction of requests with RTE at least `x`.
    pub fn fraction_rte_at_least(&self, x: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.rte >= x).count() as f64 / self.outcomes.len() as f64
    }

    /// Estimate SFS's user-space CPU overhead as a fraction of machine
    /// capacity (Table II's metric), from a simple cost model:
    /// `poll_cost` per per-task status read plus `action_cost` per
    /// `schedtool` invocation.
    ///
    /// Defaults calibrated to the paper's measured numbers (≈3.6% for a
    /// 72-core deployment at 4 ms polling, ~74% of it from polling):
    /// 120 µs per status read (gopsutil parses several `/proc` files per
    /// call), 150 µs per policy switch (fork+exec of `schedtool`).
    pub fn overhead_fraction(&self, poll_cost: SimDuration, action_cost: SimDuration) -> f64 {
        let busy = self.polled_tasks as f64 * poll_cost.as_nanos() as f64
            + self.sched_actions as f64 * action_cost.as_nanos() as f64;
        let capacity = self.sim_span.as_nanos() as f64 * self.cores as f64;
        if capacity == 0.0 {
            0.0
        } else {
            busy / capacity
        }
    }

    /// Fraction of the modelled overhead attributable to polling.
    pub fn polling_overhead_share(&self, poll_cost: SimDuration, action_cost: SimDuration) -> f64 {
        let poll = self.polled_tasks as f64 * poll_cost.as_nanos() as f64;
        let act = self.sched_actions as f64 * action_cost.as_nanos() as f64;
        if poll + act == 0.0 {
            0.0
        } else {
            poll / (poll + act)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_outcome(turn_ms: u64, ideal_ms: u64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            arrival: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_millis(turn_ms),
            turnaround: SimDuration::from_millis(turn_ms),
            ideal: SimDuration::from_millis(ideal_ms),
            cpu_demand: SimDuration::from_millis(ideal_ms),
            rte: ideal_ms as f64 / turn_ms as f64,
            ctx_switches: 0,
            migrations: 0,
            queue_delay: SimDuration::ZERO,
            demoted: false,
            offloaded: false,
            filter_rounds: 1,
            io_blocks: 0,
        }
    }

    #[test]
    fn slowdown_floors_at_one() {
        assert_eq!(mk_outcome(100, 50).slowdown(), 2.0);
        assert_eq!(mk_outcome(50, 50).slowdown(), 1.0);
        let mut o = mk_outcome(50, 50);
        o.ideal = SimDuration::ZERO;
        assert_eq!(o.slowdown(), 1.0);
    }

    #[test]
    fn run_result_aggregates() {
        let r = SfsRunResult {
            outcomes: vec![mk_outcome(10, 10), mk_outcome(30, 15), mk_outcome(20, 20)],
            slice_timeline: TimeSeries::new("s"),
            iat_timeline: TimeSeries::new("i"),
            queue_delay_series: TimeSeries::new("q"),
            polls: 0,
            polled_tasks: 0,
            sched_actions: 0,
            offloaded: 0,
            demoted: 0,
            slice_recalcs: 0,
            machine_ctx_switches: 0,
            sim_span: SimDuration::from_secs(1),
            cores: 4,
            schedule_trace: None,
        };
        assert!((r.mean_turnaround_ms() - 20.0).abs() < 1e-12);
        assert!((r.fraction_rte_at_least(0.95) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.fraction_rte_at_least(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_model_accounts_polls_and_actions() {
        let r = SfsRunResult {
            outcomes: vec![],
            slice_timeline: TimeSeries::new("s"),
            iat_timeline: TimeSeries::new("i"),
            queue_delay_series: TimeSeries::new("q"),
            polls: 1_000,
            polled_tasks: 72_000,
            sched_actions: 10_000,
            offloaded: 0,
            demoted: 0,
            slice_recalcs: 0,
            machine_ctx_switches: 0,
            sim_span: SimDuration::from_secs(100),
            cores: 72,
            schedule_trace: None,
        };
        let poll_cost = SimDuration::from_micros(120);
        let act_cost = SimDuration::from_micros(150);
        let f = r.overhead_fraction(poll_cost, act_cost);
        // 72000*120us + 10000*150us = 8.64s + 1.5s = 10.14s over 7200 core-s.
        assert!((f - 10.14 / 7200.0).abs() < 1e-9);
        let share = r.polling_overhead_share(poll_cost, act_cost);
        assert!((share - 8.64 / 10.14).abs() < 1e-9);
    }
}
