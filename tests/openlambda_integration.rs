//! End-to-end OpenLambda platform integration: dispatch pipeline, container
//! accounting, contention model, and SFS-vs-CFS behaviour behind the
//! platform.

use sfs_repro::faas::{HostScheduler, OpenLambda, OpenLambdaParams};
use sfs_repro::sfs::{Baseline, SfsConfig};
use sfs_repro::simcore::Samples;
use sfs_repro::workload::{IatSpec, Spike, WorkloadSpec};

const CORES: usize = 24;

#[test]
fn platform_preserves_request_identity() {
    let ol = OpenLambda::new(OpenLambdaParams::default());
    let w = WorkloadSpec::openlambda(400, 3)
        .with_duration_load(CORES, 0.7)
        .generate();
    let out = ol.run(HostScheduler::Sfs(SfsConfig::new(CORES)), CORES, &w);
    assert_eq!(out.len(), 400);
    for (i, o) in out.iter().enumerate() {
        assert_eq!(o.id, i as u64);
        // Turnaround is rebased to HTTP invocation: includes pipeline delay.
        assert!(o.turnaround >= o.ideal);
    }
}

#[test]
fn platform_delay_is_monotone_with_queueing() {
    // Flood the OL workers: dispatch delays must grow during the flood.
    let ol = OpenLambda::new(OpenLambdaParams {
        ol_workers: 2,
        jitter: 0.0,
        ..Default::default()
    });
    let mut spec = WorkloadSpec::openlambda(300, 5);
    spec.iat = IatSpec::Fixed { iat_ms: 0.01 }; // near-simultaneous arrivals
    let w = spec.generate();
    let d = ol.dispatch(&w);
    let first = d.platform_delay[0];
    let last = d.platform_delay[299];
    assert!(
        last > first * 5,
        "2 OL workers under a flood must queue: first {first}, last {last}"
    );
}

#[test]
fn contention_hurts_cfs_more_than_sfs_under_bursts() {
    // The §IX dynamic: a burst piles up work; CFS keeps the whole backlog
    // live (sustained contention inflation) while SFS drains it serially.
    let n = 3_000;
    let ol = OpenLambda::new(OpenLambdaParams::default());
    let mut spec = WorkloadSpec::openlambda(n, 9);
    spec.iat = IatSpec::Bursty {
        base_mean_ms: 1.0,
        spikes: Spike::evenly_spaced(2, n / 10, 10.0, n),
    };
    let w = spec.with_duration_load(CORES, 0.9).generate();
    let sfs = ol.run(HostScheduler::Sfs(SfsConfig::new(CORES)), CORES, &w);
    let cfs = ol.run(HostScheduler::Kernel(Baseline::Cfs), CORES, &w);
    let median = |outs: &[sfs_repro::sfs::RequestOutcome]| {
        let mut s = Samples::from_vec(outs.iter().map(|o| o.turnaround.as_millis_f64()).collect());
        s.percentile(50.0)
    };
    assert!(
        median(&sfs) < median(&cfs),
        "OL+SFS median {} must beat OL+CFS {}",
        median(&sfs),
        median(&cfs)
    );
}

#[test]
fn container_pool_is_generously_sized_by_default() {
    let ol = OpenLambda::new(OpenLambdaParams::default());
    let w = WorkloadSpec::openlambda(2_000, 11)
        .with_duration_load(CORES, 1.0)
        .generate();
    let d = ol.dispatch(&w);
    assert!(
        !d.pool_blocked,
        "default pool must never block (pre-warmed)"
    );
    assert!(d.container_peak <= 4_096);
    assert!(d.container_peak > 0);
}

#[test]
fn disabling_contention_restores_ideal_substrate() {
    let ol = OpenLambda::new(OpenLambdaParams {
        contention_beta: 0.0,
        ..Default::default()
    });
    let w = WorkloadSpec::openlambda(500, 13)
        .with_duration_load(CORES, 0.5)
        .generate();
    let out = ol.run(HostScheduler::Kernel(Baseline::Cfs), CORES, &w);
    // At 50% duration load with no contention, the vast majority of
    // requests should complete near-ideally (only pipeline overhead).
    let near_ideal = out
        .iter()
        .filter(|o| o.turnaround.as_millis_f64() < o.ideal.as_millis_f64() * 1.5 + 10.0)
        .count();
    assert!(
        near_ideal * 10 >= out.len() * 9,
        "only {near_ideal}/{} near ideal",
        out.len()
    );
}
