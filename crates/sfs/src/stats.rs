//! Per-request outcomes and run-level results for SFS experiments.

use sfs_simcore::{OnlineStats, QuantileSketch, SimDuration, SimTime, TimeSeries};

/// Everything measured about one completed function request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Workload request id.
    pub id: u64,
    /// Invocation time (FaaS dispatch == OS spawn in the model).
    pub arrival: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// End-to-end execution duration (the paper's headline metric).
    pub turnaround: SimDuration,
    /// Duration under the IDEAL (isolated, infinite-resource) scenario.
    pub ideal: SimDuration,
    /// CPU service demand.
    pub cpu_demand: SimDuration,
    /// Run-time effectiveness (paper Eq. 1).
    pub rte: f64,
    /// Involuntary context switches suffered.
    pub ctx_switches: u64,
    /// Core-to-core migrations (wakeup placement, idle steals, and SMP
    /// balance-tick pulls combined).
    pub migrations: u64,
    /// Time spent waiting in SFS's global queue before the first pop
    /// (zero for pure-kernel baselines).
    pub queue_delay: SimDuration,
    /// Whether the request exhausted its FILTER slice and was demoted to CFS.
    pub demoted: bool,
    /// Whether the overload bypass sent it straight to CFS.
    pub offloaded: bool,
    /// Number of FILTER rounds it received.
    pub filter_rounds: u32,
    /// Number of I/O blocks detected during FILTER rounds.
    pub io_blocks: u32,
}

impl RequestOutcome {
    /// Slowdown relative to the ideal duration (≥ 1).
    ///
    /// A degenerate zero-demand request (ideal = 0) must not report 1.0 —
    /// that would mask an arbitrarily large turnaround as "perfect". The
    /// ratio is instead taken against a 1 ns floor, so such a request
    /// reports `turnaround / 1 ns` (finite, never `inf`/NaN) and shows up
    /// at the far tail where it belongs. No shipped workload family
    /// generates zero-demand requests (asserted in the workload tests);
    /// the floor only guards hand-built degenerate inputs.
    pub fn slowdown(&self) -> f64 {
        let ideal_ns = (self.ideal.as_nanos().max(1)) as f64;
        (self.turnaround.as_nanos() as f64 / ideal_ns).max(1.0)
    }
}

/// O(1)-memory aggregate of [`RequestOutcome`]s for streaming runs.
///
/// Replaces the exact `Vec<RequestOutcome>` with mergeable
/// [`QuantileSketch`]es (default relative-error bound 1%) plus exact scalar
/// counters, so a 10M-request run retains a few KiB of statistics instead
/// of gigabytes of samples. Feed it to
/// [`Sim::run_streaming`](crate::Sim::run_streaming) as the sink:
///
/// ```ignore
/// let mut summary = OutcomeSummary::new();
/// let stream = sim.run_streaming(arrivals, |o| summary.observe(&o));
/// println!("p99 turnaround: {} ms", summary.turnaround_ms.percentile(99.0));
/// ```
#[derive(Debug, Clone)]
pub struct OutcomeSummary {
    /// Requests observed.
    pub requests: u64,
    /// Turnaround (end-to-end duration) sketch, in milliseconds.
    pub turnaround_ms: QuantileSketch,
    /// Global-queue delay sketch, in milliseconds.
    pub queue_delay_ms: QuantileSketch,
    /// Slowdown (`turnaround / ideal`, ≥ 1) sketch.
    pub slowdown: QuantileSketch,
    /// Run-time effectiveness sketch (paper Eq. 1; values in (0, 1]).
    pub rte: QuantileSketch,
    /// Exact running moments of turnaround in milliseconds (mean/stddev are
    /// exact even though the percentiles above are approximate).
    pub turnaround_stats: OnlineStats,
    /// Requests demoted to CFS on slice expiry.
    pub demoted: u64,
    /// Requests sent straight to CFS by the overload bypass.
    pub offloaded: u64,
    /// Total involuntary context switches across requests.
    pub ctx_switches: u64,
    /// Total I/O blocks detected during FILTER rounds.
    pub io_blocks: u64,
    first_arrival: Option<SimTime>,
    last_finish: Option<SimTime>,
}

impl OutcomeSummary {
    /// Summary with the default 1% relative-error bound on percentiles.
    pub fn new() -> OutcomeSummary {
        OutcomeSummary::with_accuracy(0.01)
    }

    /// Summary whose sketches guarantee `|q̂ - q| ≤ alpha × q` for every
    /// reported quantile value.
    pub fn with_accuracy(alpha: f64) -> OutcomeSummary {
        OutcomeSummary {
            requests: 0,
            turnaround_ms: QuantileSketch::new(alpha),
            queue_delay_ms: QuantileSketch::new(alpha),
            slowdown: QuantileSketch::new(alpha),
            rte: QuantileSketch::new(alpha),
            turnaround_stats: OnlineStats::new(),
            demoted: 0,
            offloaded: 0,
            ctx_switches: 0,
            io_blocks: 0,
            first_arrival: None,
            last_finish: None,
        }
    }

    /// Fold one outcome into the summary.
    pub fn observe(&mut self, o: &RequestOutcome) {
        self.requests += 1;
        let t_ms = o.turnaround.as_millis_f64();
        self.turnaround_ms.push(t_ms);
        self.turnaround_stats.push(t_ms);
        self.queue_delay_ms.push(o.queue_delay.as_millis_f64());
        self.slowdown.push(o.slowdown());
        self.rte.push(o.rte);
        if o.demoted {
            self.demoted += 1;
        }
        if o.offloaded {
            self.offloaded += 1;
        }
        self.ctx_switches += o.ctx_switches;
        self.io_blocks += u64::from(o.io_blocks);
        self.first_arrival = Some(match self.first_arrival {
            Some(t) => t.min(o.arrival),
            None => o.arrival,
        });
        self.last_finish = Some(match self.last_finish {
            Some(t) => t.max(o.finished),
            None => o.finished,
        });
    }

    /// Merge another summary (e.g. from a parallel shard) into this one.
    /// Both must use the same accuracy.
    pub fn merge(&mut self, other: &OutcomeSummary) {
        self.requests += other.requests;
        self.turnaround_ms.merge(&other.turnaround_ms);
        self.queue_delay_ms.merge(&other.queue_delay_ms);
        self.slowdown.merge(&other.slowdown);
        self.rte.merge(&other.rte);
        self.turnaround_stats.merge(&other.turnaround_stats);
        self.demoted += other.demoted;
        self.offloaded += other.offloaded;
        self.ctx_switches += other.ctx_switches;
        self.io_blocks += other.io_blocks;
        self.first_arrival = match (self.first_arrival, other.first_arrival) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_finish = match (self.last_finish, other.last_finish) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Exact mean turnaround in ms (mirrors
    /// [`SfsRunResult::mean_turnaround_ms`]).
    pub fn mean_turnaround_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.turnaround_stats.mean()
        }
    }

    /// Approximate fraction of requests with RTE at least `x`, from the RTE
    /// sketch (bisection over the monotone quantile function; accurate to
    /// the sketch's relative-error bound on values near `x`).
    pub fn fraction_rte_at_least(&self, x: f64) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        if self.rte.min() >= x {
            return 1.0;
        }
        if self.rte.max() < x {
            return 0.0;
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.rte.quantile(mid) < x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        1.0 - 0.5 * (lo + hi)
    }

    /// Wall-clock span covered by observed requests (first arrival to last
    /// completion); zero when empty.
    pub fn observed_span(&self) -> SimDuration {
        match (self.first_arrival, self.last_finish) {
            (Some(a), Some(f)) => f.since(a),
            _ => SimDuration::ZERO,
        }
    }
}

impl Default for OutcomeSummary {
    fn default() -> OutcomeSummary {
        OutcomeSummary::new()
    }
}

/// Result of one SFS simulation run (legacy shape; new code reads the
/// same data from [`crate::RunOutcome`] and its
/// [`Telemetry`](crate::Telemetry) instead).
#[derive(Debug, Clone)]
pub struct SfsRunResult {
    /// Per-request outcomes, sorted by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Adapted time slice timeline (Fig. 10).
    pub slice_timeline: TimeSeries,
    /// Window-mean IAT timeline (Fig. 10).
    pub iat_timeline: TimeSeries,
    /// Per-request global-queue delay, indexed by invocation time (Fig. 12a).
    pub queue_delay_series: TimeSeries,
    /// Number of polling ticks performed.
    pub polls: u64,
    /// Number of per-task status reads across all polling ticks.
    pub polled_tasks: u64,
    /// Number of `schedtool`-equivalent policy switches issued.
    pub sched_actions: u64,
    /// Requests sent to CFS by the overload bypass.
    pub offloaded: u64,
    /// Requests demoted to CFS on slice expiry.
    pub demoted: u64,
    /// Adaptive slice recalculations.
    pub slice_recalcs: u64,
    /// Machine-wide involuntary context switches.
    pub machine_ctx_switches: u64,
    /// Total simulated span.
    pub sim_span: SimDuration,
    /// Cores in the simulated machine.
    pub cores: usize,
    /// Execution trace, if requested via `Sim::tracing`.
    pub schedule_trace: Option<sfs_sched::ScheduleTrace>,
}

impl From<crate::RunOutcome> for SfsRunResult {
    fn from(run: crate::RunOutcome) -> SfsRunResult {
        SfsRunResult {
            outcomes: run.outcomes,
            slice_timeline: run.telemetry.slice_timeline,
            iat_timeline: run.telemetry.iat_timeline,
            queue_delay_series: run.telemetry.queue_delay_series,
            polls: run.telemetry.polls,
            polled_tasks: run.telemetry.polled_tasks,
            sched_actions: run.sched_actions,
            offloaded: run.telemetry.offloaded,
            demoted: run.telemetry.demoted,
            slice_recalcs: run.telemetry.slice_recalcs,
            machine_ctx_switches: run.machine_ctx_switches,
            sim_span: run.sim_span,
            cores: run.cores,
            schedule_trace: run.schedule_trace,
        }
    }
}

impl SfsRunResult {
    /// Mean turnaround in ms.
    pub fn mean_turnaround_ms(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes
            .iter()
            .map(|o| o.turnaround.as_millis_f64())
            .sum::<f64>()
            / self.outcomes.len() as f64
    }

    /// Fraction of requests with RTE at least `x`.
    pub fn fraction_rte_at_least(&self, x: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.rte >= x).count() as f64 / self.outcomes.len() as f64
    }

    /// Estimate SFS's user-space CPU overhead as a fraction of machine
    /// capacity (Table II's metric), from a simple cost model:
    /// `poll_cost` per per-task status read plus `action_cost` per
    /// `schedtool` invocation.
    ///
    /// Defaults calibrated to the paper's measured numbers (≈3.6% for a
    /// 72-core deployment at 4 ms polling, ~74% of it from polling):
    /// 120 µs per status read (gopsutil parses several `/proc` files per
    /// call), 150 µs per policy switch (fork+exec of `schedtool`).
    pub fn overhead_fraction(&self, poll_cost: SimDuration, action_cost: SimDuration) -> f64 {
        let busy = self.polled_tasks as f64 * poll_cost.as_nanos() as f64
            + self.sched_actions as f64 * action_cost.as_nanos() as f64;
        let capacity = self.sim_span.as_nanos() as f64 * self.cores as f64;
        if capacity == 0.0 {
            0.0
        } else {
            busy / capacity
        }
    }

    /// Fraction of the modelled overhead attributable to polling.
    pub fn polling_overhead_share(&self, poll_cost: SimDuration, action_cost: SimDuration) -> f64 {
        let poll = self.polled_tasks as f64 * poll_cost.as_nanos() as f64;
        let act = self.sched_actions as f64 * action_cost.as_nanos() as f64;
        if poll + act == 0.0 {
            0.0
        } else {
            poll / (poll + act)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_outcome(turn_ms: u64, ideal_ms: u64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            arrival: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_millis(turn_ms),
            turnaround: SimDuration::from_millis(turn_ms),
            ideal: SimDuration::from_millis(ideal_ms),
            cpu_demand: SimDuration::from_millis(ideal_ms),
            rte: ideal_ms as f64 / turn_ms as f64,
            ctx_switches: 0,
            migrations: 0,
            queue_delay: SimDuration::ZERO,
            demoted: false,
            offloaded: false,
            filter_rounds: 1,
            io_blocks: 0,
        }
    }

    #[test]
    fn slowdown_floors_at_one() {
        assert_eq!(mk_outcome(100, 50).slowdown(), 2.0);
        assert_eq!(mk_outcome(50, 50).slowdown(), 1.0);
    }

    #[test]
    fn zero_ideal_slowdown_is_not_masked() {
        // Regression: a zero-demand request used to report slowdown 1.0 no
        // matter how long it actually took. It now ratios against a 1 ns
        // floor: huge but finite.
        let mut o = mk_outcome(50, 50);
        o.ideal = SimDuration::ZERO;
        assert_eq!(o.slowdown(), 50e6, "50 ms over the 1 ns floor");
        assert!(o.slowdown().is_finite());
        // Degenerate zero/zero still floors at 1 (it was instantaneous).
        o.turnaround = SimDuration::ZERO;
        assert_eq!(o.slowdown(), 1.0);
    }

    #[test]
    fn outcome_summary_matches_exact_aggregates() {
        let outcomes: Vec<RequestOutcome> = (1..=1_000)
            .map(|i| {
                let mut o = mk_outcome(2 * i, i);
                o.id = i;
                o.arrival = SimTime::ZERO + SimDuration::from_millis(i);
                o.finished = o.arrival + o.turnaround;
                o.ctx_switches = i % 3;
                o.io_blocks = (i % 5) as u32;
                o.demoted = i % 7 == 0;
                o.offloaded = i % 11 == 0;
                o
            })
            .collect();
        let mut sum = OutcomeSummary::new();
        for o in &outcomes {
            sum.observe(o);
        }
        assert_eq!(sum.requests, 1_000);
        assert_eq!(
            sum.demoted,
            outcomes.iter().filter(|o| o.demoted).count() as u64
        );
        assert_eq!(
            sum.offloaded,
            outcomes.iter().filter(|o| o.offloaded).count() as u64
        );
        assert_eq!(
            sum.ctx_switches,
            outcomes.iter().map(|o| o.ctx_switches).sum::<u64>()
        );
        let exact_mean = outcomes
            .iter()
            .map(|o| o.turnaround.as_millis_f64())
            .sum::<f64>()
            / 1_000.0;
        assert!((sum.mean_turnaround_ms() - exact_mean).abs() < 1e-9);
        // Percentiles within the 1% relative-error contract.
        let mut exact = sfs_simcore::Samples::from_vec(
            outcomes
                .iter()
                .map(|o| o.turnaround.as_millis_f64())
                .collect(),
        );
        for p in [50.0, 90.0, 99.0] {
            let (e, s) = (exact.percentile(p), sum.turnaround_ms.percentile(p));
            assert!((s - e).abs() <= 0.011 * e, "p{p}: sketch {s} vs exact {e}");
        }
        // All rte values are 0.5 here, so any threshold at or below 0.5 is
        // met by everyone and anything above by no one.
        assert!((sum.fraction_rte_at_least(0.4) - 1.0).abs() < 1e-9);
        assert!(sum.fraction_rte_at_least(0.9) < 1e-9);
        // Span: first arrival at 1ms, last finish at 1000ms + 2000ms.
        assert_eq!(sum.observed_span(), SimDuration::from_millis(2_999));
    }

    #[test]
    fn outcome_summary_merge_equals_single_pass() {
        let mk = |i: u64| {
            let mut o = mk_outcome(10 + i, 5 + i / 2);
            o.id = i;
            o.arrival = SimTime::ZERO + SimDuration::from_millis(i);
            o.finished = o.arrival + o.turnaround;
            o
        };
        let mut whole = OutcomeSummary::new();
        let mut left = OutcomeSummary::new();
        let mut right = OutcomeSummary::new();
        for i in 0..500 {
            let o = mk(i);
            whole.observe(&o);
            if i < 250 { &mut left } else { &mut right }.observe(&o);
        }
        left.merge(&right);
        assert_eq!(left.requests, whole.requests);
        assert_eq!(left.observed_span(), whole.observed_span());
        for p in [50.0, 95.0, 99.9] {
            assert_eq!(
                left.turnaround_ms.percentile(p).to_bits(),
                whole.turnaround_ms.percentile(p).to_bits(),
                "merge must be exact at p{p} (same buckets)"
            );
        }
        assert!((left.mean_turnaround_ms() - whole.mean_turnaround_ms()).abs() < 1e-9);
    }

    #[test]
    fn run_result_aggregates() {
        let r = SfsRunResult {
            outcomes: vec![mk_outcome(10, 10), mk_outcome(30, 15), mk_outcome(20, 20)],
            slice_timeline: TimeSeries::new("s"),
            iat_timeline: TimeSeries::new("i"),
            queue_delay_series: TimeSeries::new("q"),
            polls: 0,
            polled_tasks: 0,
            sched_actions: 0,
            offloaded: 0,
            demoted: 0,
            slice_recalcs: 0,
            machine_ctx_switches: 0,
            sim_span: SimDuration::from_secs(1),
            cores: 4,
            schedule_trace: None,
        };
        assert!((r.mean_turnaround_ms() - 20.0).abs() < 1e-12);
        assert!((r.fraction_rte_at_least(0.95) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.fraction_rte_at_least(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_model_accounts_polls_and_actions() {
        let r = SfsRunResult {
            outcomes: vec![],
            slice_timeline: TimeSeries::new("s"),
            iat_timeline: TimeSeries::new("i"),
            queue_delay_series: TimeSeries::new("q"),
            polls: 1_000,
            polled_tasks: 72_000,
            sched_actions: 10_000,
            offloaded: 0,
            demoted: 0,
            slice_recalcs: 0,
            machine_ctx_switches: 0,
            sim_span: SimDuration::from_secs(100),
            cores: 72,
            schedule_trace: None,
        };
        let poll_cost = SimDuration::from_micros(120);
        let act_cost = SimDuration::from_micros(150);
        let f = r.overhead_fraction(poll_cost, act_cost);
        // 72000*120us + 10000*150us = 8.64s + 1.5s = 10.14s over 7200 core-s.
        assert!((f - 10.14 / 7200.0).abs() < 1e-9);
        let share = r.polling_overhead_share(poll_cost, act_cost);
        assert!((share - 8.64 / 10.14).abs() < 1e-9);
    }
}
