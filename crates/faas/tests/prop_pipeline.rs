//! Property tests for the dispatch pipeline and container pool.

use proptest::prelude::*;
use sfs_faas::{Pipeline, Stage};
use sfs_simcore::{SimDuration, SimRng, SimTime};

proptest! {
    /// Every request exits after its arrival plus at least the unjittered
    /// minimum service, and a stage never runs more requests concurrently
    /// than it has servers.
    #[test]
    fn stage_respects_capacity_and_causality(
        arrivals in proptest::collection::vec(0u64..10_000, 1..200),
        servers in 1usize..6,
        service_ms in 1u64..50,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let times: Vec<SimTime> = sorted
            .iter()
            .map(|&ms| SimTime::ZERO + SimDuration::from_millis(ms))
            .collect();
        let stage = Stage::new("s", servers, SimDuration::from_millis(service_ms), 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let exits = stage.process(&times, &mut rng);
        prop_assert_eq!(exits.len(), times.len());
        for (a, e) in times.iter().zip(exits.iter()) {
            prop_assert!(*e >= *a + SimDuration::from_millis(service_ms));
        }
        // Capacity: count in-flight requests at each exit boundary.
        for (i, &e) in exits.iter().enumerate() {
            let start = e - SimDuration::from_millis(service_ms);
            let overlapping = times
                .iter()
                .zip(exits.iter())
                .filter(|(&a2, &e2)| a2.max(start) < e2.min(e) || (a2 <= start && e2 > start))
                .count();
            // Loose bound: no more than servers + queued-at-same-instant.
            prop_assert!(overlapping >= 1, "request {i} lost");
        }
        // Work conservation: with one server, total busy time == n*service.
        if servers == 1 {
            let last = exits.iter().max().unwrap();
            prop_assert!(
                *last >= times[0] + SimDuration::from_millis(service_ms * sorted.len() as u64)
                    - SimDuration::from_millis(service_ms * sorted.len() as u64), // trivially true
            );
            // FCFS with a single server: exits are sorted.
            let mut prev = SimTime::ZERO;
            for &e in exits.iter() {
                prop_assert!(e >= prev);
                prev = e;
            }
        }
    }

    /// A multi-stage pipeline preserves request count and causality.
    #[test]
    fn pipeline_composes(
        n in 1usize..150,
        s1 in 1u64..10,
        s2 in 1u64..10,
    ) {
        let times: Vec<SimTime> = (0..n)
            .map(|i| SimTime::ZERO + SimDuration::from_millis(i as u64 * 3))
            .collect();
        let p = Pipeline::new()
            .stage(Stage::new("a", 2, SimDuration::from_millis(s1), 0.0))
            .stage(Stage::new("b", 3, SimDuration::from_millis(s2), 0.0));
        let mut rng = SimRng::seed_from_u64(9);
        let out = p.process(&times, &mut rng);
        prop_assert_eq!(out.len(), n);
        for (a, e) in times.iter().zip(out.iter()) {
            prop_assert!(*e >= *a + SimDuration::from_millis(s1 + s2));
        }
    }
}
