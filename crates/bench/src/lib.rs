//! # sfs-bench — per-figure/table reproduction harnesses
//!
//! One binary per figure and table of the paper's evaluation (see
//! DESIGN.md §4 for the full index). Every binary:
//!
//! 1. describes the experiment as [`sweep::Scenario`]s and runs them on a
//!    [`sweep::Sweep`] — in parallel, with bit-identical results for any
//!    worker-thread count,
//! 2. prints the figure's series as markdown + an ASCII chart,
//! 3. writes CSV under `results/`.
//!
//! Scale knobs come from the environment so CI and laptops can downsize:
//! `SFS_BENCH_REQUESTS` (default figure-specific), `SFS_BENCH_SEED`,
//! `SFS_BENCH_THREADS` (wall-clock only — never the numbers).

pub mod perf;
pub mod sweep;
pub mod timebench;

pub use sweep::{Scenario, Sweep, SweepResult, Trial};

use sfs_core::{ControllerFactory, RequestOutcome, RunOutcome, SfsConfig, SfsController, Sim};
use sfs_sched::MachineParams;
use sfs_simcore::SimDuration;
use sfs_workload::Workload;

/// Run `w` under SFS (`cfg`) on a default Linux machine with `cores`
/// cores — the shared harness glue for every figure binary.
pub fn run_sfs(cfg: SfsConfig, cores: usize, w: &Workload) -> RunOutcome {
    Sim::on(MachineParams::linux(cores))
        .workload(w)
        .controller(SfsController::new(cfg))
        .run()
}

/// Run `w` under any controller recipe (a [`sfs_core::Baseline`], an
/// [`SfsConfig`], or a custom factory) on `cores` cores.
pub fn run_factory(f: &dyn ControllerFactory, cores: usize, w: &Workload) -> RunOutcome {
    f.run_on(cores, w)
}

/// Number of requests for a harness, overridable via `SFS_BENCH_REQUESTS`.
pub fn n_requests(default: usize) -> usize {
    std::env::var("SFS_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Experiment seed, overridable via `SFS_BENCH_SEED`.
pub fn seed() -> u64 {
    std::env::var("SFS_BENCH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5F5_2022)
}

/// Turnaround values (ms) of a run.
pub fn turnarounds_ms(outcomes: &[RequestOutcome]) -> Vec<f64> {
    outcomes
        .iter()
        .map(|o| o.turnaround.as_millis_f64())
        .collect()
}

/// RTE values of a run.
pub fn rtes(outcomes: &[RequestOutcome]) -> Vec<f64> {
    outcomes.iter().map(|o| o.rte).collect()
}

/// Split turnarounds into (short, long) by ideal duration at the paper's
/// 1550 ms Table-I boundary.
pub fn split_short_long(outcomes: &[RequestOutcome]) -> (Vec<f64>, Vec<f64>) {
    let thr = SimDuration::from_millis(1550);
    let mut short = Vec::new();
    let mut long = Vec::new();
    for o in outcomes {
        if o.ideal < thr {
            short.push(o.turnaround.as_millis_f64());
        } else {
            long.push(o.turnaround.as_millis_f64());
        }
    }
    (short, long)
}

/// Standard banner every harness prints.
pub fn banner(figure: &str, what: &str, n: usize, seed: u64) {
    println!("== {figure}: {what}");
    println!("   requests={n} seed={seed:#x} (SFS_BENCH_REQUESTS / SFS_BENCH_SEED to override)");
    println!();
}

/// Print a section header.
pub fn section(title: &str) {
    println!("\n--- {title} ---");
}

/// Save CSV via sfs-metrics and report the path.
pub fn save(filename: &str, contents: &str) {
    match sfs_metrics::write_results(filename, contents) {
        Ok(p) => println!("[saved {}]", p.display()),
        Err(e) => eprintln!("[warn] could not save {filename}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_simcore::SimTime;

    fn outcome(ideal_ms: u64, turn_ms: u64) -> RequestOutcome {
        RequestOutcome {
            id: 0,
            arrival: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_millis(turn_ms),
            turnaround: SimDuration::from_millis(turn_ms),
            ideal: SimDuration::from_millis(ideal_ms),
            cpu_demand: SimDuration::from_millis(ideal_ms),
            rte: ideal_ms as f64 / turn_ms as f64,
            ctx_switches: 0,
            migrations: 0,
            queue_delay: SimDuration::ZERO,
            demoted: false,
            offloaded: false,
            filter_rounds: 0,
            io_blocks: 0,
        }
    }

    #[test]
    fn split_uses_table1_boundary() {
        let outs = vec![
            outcome(100, 200),
            outcome(1549, 2000),
            outcome(1550, 1600),
            outcome(3000, 3000),
        ];
        let (s, l) = split_short_long(&outs);
        assert_eq!(s.len(), 2);
        assert_eq!(l.len(), 2);
        assert_eq!(s, vec![200.0, 2000.0]);
    }

    #[test]
    fn env_overrides_parse() {
        // No env set in tests: defaults pass through.
        assert_eq!(n_requests(1234), 1234);
        assert_eq!(seed(), 0x5F5_2022);
    }

    #[test]
    fn extractors_match_fields() {
        let outs = vec![outcome(10, 20), outcome(30, 30)];
        assert_eq!(turnarounds_ms(&outs), vec![20.0, 30.0]);
        assert_eq!(rtes(&outs), vec![0.5, 1.0]);
    }
}
