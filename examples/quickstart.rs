//! Quickstart: schedule a small serverless workload under SFS and CFS and
//! compare turnaround times.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sfs_repro::metrics::MarkdownTable;
use sfs_repro::sched::{MachineParams, Policy};
use sfs_repro::sfs::{KernelOnly, SfsConfig, SfsController, Sim};
use sfs_repro::workload::WorkloadSpec;

/// Downsizing knob so CI can smoke-run every example quickly.
fn n_requests(default: usize) -> usize {
    std::env::var("SFS_EXAMPLE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    // 1. Generate a FaaSBench workload: 1,000 Azure-sampled function
    //    invocations targeting 90% CPU load on a 8-core host.
    let cores = 8;
    let workload = WorkloadSpec::azure_sampled(n_requests(1_000), 42)
        .with_load(cores, 0.9)
        .generate();
    println!(
        "workload: {} requests, {:.1}s of CPU demand, offered load {:.2}",
        workload.len(),
        workload.total_cpu_ms() / 1e3,
        workload.offered_load(cores)
    );

    // 2. Run it under SFS (the paper's scheduler)...
    let sfs = Sim::on(MachineParams::linux(cores))
        .workload(&workload)
        .controller(SfsController::new(SfsConfig::new(cores)))
        .run();

    // 3. ...and under plain Linux CFS — same runner, different controller.
    let cfs = Sim::on(MachineParams::linux(cores))
        .workload(&workload)
        .controller(KernelOnly(Policy::NORMAL))
        .run()
        .outcomes;

    // 4. Compare.
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let sfs_durs: Vec<f64> = sfs
        .outcomes
        .iter()
        .map(|o| o.turnaround.as_millis_f64())
        .collect();
    let cfs_durs: Vec<f64> = cfs.iter().map(|o| o.turnaround.as_millis_f64()).collect();

    let mut t = MarkdownTable::new(&["metric", "SFS", "CFS"]);
    t.row(&[
        "mean turnaround (ms)".into(),
        format!("{:.1}", mean(&sfs_durs)),
        format!("{:.1}", mean(&cfs_durs)),
    ]);
    let rte95 =
        |rtes: Vec<f64>| rtes.iter().filter(|&&x| x >= 0.95).count() as f64 / rtes.len() as f64;
    t.row(&[
        "fraction RTE >= 0.95".into(),
        format!("{:.3}", rte95(sfs.outcomes.iter().map(|o| o.rte).collect())),
        format!("{:.3}", rte95(cfs.iter().map(|o| o.rte).collect())),
    ]);
    t.row(&[
        "requests demoted to CFS".into(),
        format!("{}", sfs.telemetry.demoted),
        "-".into(),
    ]);
    t.row(&[
        "adaptive slice recalcs".into(),
        format!("{}", sfs.telemetry.slice_recalcs),
        "-".into(),
    ]);
    println!("{}", t.to_markdown());

    println!(
        "current FILTER slice ended at {} after {} adaptations",
        sfs.telemetry
            .slice_timeline
            .points()
            .last()
            .map(|&(_, v)| format!("{v:.1} ms"))
            .unwrap_or_else(|| "initial".into()),
        sfs.telemetry.slice_recalcs
    );
}
