//! Cluster request-conservation invariant.
//!
//! For random workloads × all five placements × affinity on/off, the
//! dispatcher must account for every request exactly once: placement
//! counts sum to the workload size, every host runs to completion, and
//! the merged outcome list contains each request id exactly once — no
//! request lost in dispatch, none duplicated across hosts.
//!
//! Seeded case-loop style (like `property_invariants.rs`): fixed seeds,
//! exactly reproducible failures.

use std::collections::HashSet;

use sfs_repro::faas::{Cluster, Placement};
use sfs_repro::simcore::{SimDuration, SimRng};
use sfs_repro::workload::WorkloadSpec;

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::seed_from_u64(0x0C10_57E4)
        .derive(test)
        .derive(&case.to_string())
}

#[test]
fn every_request_is_placed_and_completed_exactly_once() {
    for case in 0..12u64 {
        let mut rng = case_rng("conservation", case);
        let n = rng.uniform_u64(40, 220) as usize;
        let seed = rng.uniform_u64(0, 9_999);
        let hosts = [1usize, 2, 3, 5, 8][rng.uniform_u64(0, 4) as usize];
        let cores = rng.uniform_u64(1, 4) as usize;
        let load = rng.uniform(0.5, 1.3);
        let w = WorkloadSpec::azure_sampled(n, seed)
            .with_load(hosts * cores, load)
            .generate();
        let expected_ids: HashSet<u64> = w.requests.iter().map(|r| r.id).collect();
        assert_eq!(expected_ids.len(), n, "workload ids unique (case {case})");

        for affinity in [false, true] {
            let mut cluster = Cluster::new(hosts, cores);
            if affinity {
                cluster = cluster.with_affinity(
                    SimDuration::from_millis(rng.uniform_u64(50, 2_000)),
                    SimDuration::from_millis(rng.uniform_u64(1, 150)),
                );
            }
            for placement in Placement::ALL {
                let run = cluster.run(placement, &w);
                let ctx = format!(
                    "case {case}: {} hosts={hosts} cores={cores} affinity={affinity}",
                    placement.name()
                );

                // Placement conserves requests: per-host counts sum to n.
                assert_eq!(run.per_host.len(), hosts, "{ctx}");
                assert_eq!(run.per_host.iter().sum::<usize>(), n, "{ctx}");

                // Every request id appears in the merged outcomes exactly
                // once (sorted by id, so uniqueness = strict monotonicity).
                assert_eq!(run.outcomes.len(), n, "{ctx}");
                let ids: Vec<u64> = run.outcomes.iter().map(|o| o.id).collect();
                assert!(
                    ids.windows(2).all(|p| p[0] < p[1]),
                    "{ctx}: dup/unsorted ids"
                );
                assert!(
                    ids.iter().all(|id| expected_ids.contains(id)),
                    "{ctx}: unknown outcome id"
                );

                // Cold starts only exist under the affinity model, and
                // never exceed one per request.
                if !affinity {
                    assert_eq!(run.cold_starts, 0, "{ctx}");
                } else {
                    assert!(run.cold_starts <= n as u64, "{ctx}");
                }
            }
        }
    }
}

#[test]
fn conservation_holds_for_degenerate_shapes() {
    // More hosts than requests; single request; empty workload.
    for (hosts, n) in [(8usize, 3usize), (4, 1), (5, 0)] {
        let w = WorkloadSpec::azure_sampled(n, 77)
            .with_load(hosts, 0.8)
            .generate();
        for placement in Placement::ALL {
            let run = Cluster::new(hosts, 2)
                .with_affinity(SimDuration::from_millis(500), SimDuration::from_millis(20))
                .run(placement, &w);
            assert_eq!(run.per_host.iter().sum::<usize>(), n);
            assert_eq!(run.outcomes.len(), n);
            let ids: Vec<u64> = run.outcomes.iter().map(|o| o.id).collect();
            assert!(ids.windows(2).all(|p| p[0] < p[1]));
        }
    }
}
