//! Golden-metrics regression suite.
//!
//! Every scenario in `support::SCENARIOS` runs at a fixed seed and its
//! headline metrics (p50/p99/mean latency, throughput, plus a per-request
//! fingerprint) must match the snapshot in `tests/golden/<name>.txt`
//! **exactly** — down to the IEEE-754 bit pattern. Any change to the
//! simulator, the workload generator, the RNG streams, or the event-queue
//! fast paths that shifts a single number in any request fails here.
//!
//! Scenarios run through the same parallel `Sweep` engine the bench
//! binaries use, so this suite also re-checks thread-count invariance on
//! whatever `SFS_BENCH_THREADS` CI sets.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! SFS_GOLDEN_UPDATE=1 cargo test -p sfs-bench --test golden
//! git diff crates/bench/tests/golden/   # review what moved, then commit
//! ```

mod support;

use std::path::PathBuf;

use sfs_bench::Sweep;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn headline_metrics_match_golden_snapshots() {
    let mut sweep = Sweep::new("golden", support::SEED);
    for &name in support::SCENARIOS {
        sweep.scenario(name, move |_| {
            support::metrics_report(name, &support::run_scenario(name))
        });
    }
    let results = sweep.run();

    let update = std::env::var("SFS_GOLDEN_UPDATE").is_ok_and(|v| !v.is_empty() && v != "0");
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut mismatches = Vec::new();
    for r in &results {
        let path = dir.join(format!("{}.txt", r.label));
        if update {
            std::fs::write(&path, &r.value).expect("write golden snapshot");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == r.value => {}
            Ok(expected) => mismatches.push(format!(
                "{}: metrics drifted from snapshot\n--- expected ({})\n{}--- got\n{}",
                r.label,
                path.display(),
                expected,
                r.value
            )),
            Err(e) => mismatches.push(format!(
                "{}: cannot read {} ({e}); run with SFS_GOLDEN_UPDATE=1 to create it",
                r.label,
                path.display()
            )),
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden-metrics regressions:\n{}\n\
         If the change is intentional, regenerate with SFS_GOLDEN_UPDATE=1 and review the diff.",
        mismatches.join("\n")
    );
}
