//! Replay an Azure-trace-like workload (bursty arrivals, Table-I durations)
//! across every scheduler this repo implements, printing a league table.
//!
//! This is the paper's motivation experiment (§IV) in one command:
//!
//! ```text
//! cargo run --release --example azure_replay
//! ```

use sfs_repro::metrics::MarkdownTable;
use sfs_repro::sched::MachineParams;
use sfs_repro::sfs::{
    Baseline, ControllerFactory, Ideal, RequestOutcome, SfsConfig, SfsController, Sim,
};
use sfs_repro::simcore::Samples;
use sfs_repro::workload::WorkloadSpec;

const CORES: usize = 12;

/// Downsizing knob so CI can smoke-run every example quickly.
fn n_requests(default: usize) -> usize {
    std::env::var("SFS_EXAMPLE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let workload = WorkloadSpec::azure_replay(n_requests(8_000), 7)
        .with_load(CORES, 0.9)
        .generate();
    println!(
        "Azure-replay workload: {} requests over {:.0}s, {} cores, bursty IATs\n",
        workload.len(),
        workload
            .requests
            .last()
            .map(|r| r.arrival.as_secs_f64())
            .unwrap_or(0.0),
        CORES,
    );

    let mut table = MarkdownTable::new(&[
        "scheduler",
        "mean (ms)",
        "p50 (ms)",
        "p99 (ms)",
        "RTE>=0.95",
        "ctx switches",
    ]);

    let mut add = |name: &str, outs: Vec<RequestOutcome>| {
        let durs: Vec<f64> = outs.iter().map(|o| o.turnaround.as_millis_f64()).collect();
        let mut s = Samples::from_vec(durs.clone());
        let rte = outs.iter().filter(|o| o.rte >= 0.95).count() as f64 / outs.len() as f64;
        let ctx: u64 = outs.iter().map(|o| o.ctx_switches).sum();
        table.row(&[
            name.into(),
            format!("{:.1}", durs.iter().sum::<f64>() / durs.len() as f64),
            format!("{:.1}", s.percentile(50.0)),
            format!("{:.1}", s.percentile(99.0)),
            format!("{:.3}", rte),
            format!("{ctx}"),
        ]);
    };

    add(
        "IDEAL",
        Sim::on(MachineParams::linux(CORES))
            .workload(&workload)
            .controller(Ideal)
            .run()
            .outcomes,
    );
    add(
        "SFS",
        Sim::on(MachineParams::linux(CORES))
            .workload(&workload)
            .controller(SfsController::new(SfsConfig::new(CORES)))
            .run()
            .outcomes,
    );
    for b in [Baseline::Srtf, Baseline::Cfs, Baseline::Rr, Baseline::Fifo] {
        add(b.name(), b.run_on(CORES, &workload).outcomes);
    }

    println!("{}", table.to_markdown());
    println!("Expected ordering: IDEAL <= SRTF <= SFS << CFS < RR <= FIFO on p50;");
    println!("SFS trades a little tail (p99) for its short-function wins.");
}
