//! Fixture-snippet tests for every lint rule: each rule must fire on its
//! bad pattern, stay silent on the good replacement, honour suppressions
//! only when they carry a reason, and never match string or comment
//! contents. Plus the test-code exemption, allowed-path, and
//! directive-hygiene (`allow-syntax` / `unused-allow`) contracts.

use sfs_lint::engine::scan_source;
use sfs_lint::rules::RULESET;

const SIM_PATH: &str = "crates/simcore/src/fixture.rs";

fn findings(path: &str, src: &str) -> Vec<(String, u32)> {
    scan_source(path, src, RULESET)
        .findings
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    findings(path, src).into_iter().map(|(r, _)| r).collect()
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_fires_on_hashmap_and_hashset_in_live_code() {
    let bad = "use std::collections::HashMap;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
    // Two `HashSet` hits on line 2 dedup into one finding per line.
    assert_eq!(
        findings(SIM_PATH, bad),
        vec![("D1".into(), 1), ("D1".into(), 2)]
    );
}

#[test]
fn d1_silent_on_deterministic_containers() {
    let good = "use std::collections::{BTreeMap, BTreeSet};\nfn f(m: &BTreeMap<u32, u32>) {}\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

#[test]
fn d1_exempts_cfg_test_modules_and_test_fns() {
    let src = "\
fn live() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashSet;\n\
    #[test]\n\
    fn seeds_unique() { let mut s = HashSet::new(); s.insert(1); }\n\
}\n";
    assert!(rules_fired(SIM_PATH, src).is_empty(), "cfg(test) is exempt");

    let fn_only = "#[test]\nfn t() { let m = HashMap::new(); }\nfn live() { }\n";
    assert!(
        rules_fired(SIM_PATH, fn_only).is_empty(),
        "#[test] fn is exempt"
    );
}

#[test]
fn d1_exempts_tests_and_benches_trees() {
    let src = "use std::collections::HashMap;\n";
    assert!(rules_fired("crates/faas/tests/prop.rs", src).is_empty());
    assert!(rules_fired("crates/bench/benches/micro.rs", src).is_empty());
    assert_eq!(rules_fired("crates/faas/src/prop.rs", src), vec!["D1"]);
}

#[test]
fn d1_not_exempt_after_cfg_not_test() {
    let src = "#[cfg(not(test))]\nfn live() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
    assert_eq!(
        rules_fired(SIM_PATH, src),
        vec!["D1"],
        "cfg(not(test)) is live code"
    );
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_fires_on_wall_clock_reads() {
    let bad = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
    let fired = rules_fired(SIM_PATH, bad);
    assert_eq!(fired.iter().filter(|r| *r == "D2").count(), 2);
    // Two `SystemTime` hits on one line dedup into a single finding.
    assert_eq!(
        rules_fired(SIM_PATH, "fn f() -> SystemTime { SystemTime::now() }\n").len(),
        1
    );
}

#[test]
fn d2_silent_on_sim_time_and_duration() {
    let good = "fn f(now: SimTime, d: SimDuration) -> SimTime { now + d }\n\
                use std::time::Duration;\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

#[test]
fn d2_allowed_in_timebench_and_perf() {
    let src = "use std::time::Instant;\n";
    assert!(rules_fired("crates/bench/src/timebench.rs", src).is_empty());
    assert!(rules_fired("crates/bench/src/perf.rs", src).is_empty());
    assert_eq!(rules_fired("crates/bench/src/sweep.rs", src), vec!["D2"]);
}

// ---------------------------------------------------------------- D3

#[test]
fn d3_fires_on_thread_spawn_and_scope() {
    assert_eq!(
        rules_fired(SIM_PATH, "fn f() { std::thread::spawn(|| {}); }\n"),
        vec!["D3"]
    );
    assert_eq!(
        rules_fired(SIM_PATH, "fn f() { thread::scope(|s| {}); }\n"),
        vec!["D3"]
    );
}

#[test]
fn d3_silent_on_sleep_and_parallelism_queries() {
    let good = "fn f() { std::thread::sleep(d); std::thread::available_parallelism(); }\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

#[test]
fn d3_allowed_in_parallel_module() {
    let src = "fn fan_out() { std::thread::scope(|s| {}); }\n";
    assert!(rules_fired("crates/simcore/src/parallel.rs", src).is_empty());
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_fires_on_partial_cmp_unwrap_and_expect() {
    assert_eq!(
        rules_fired(
            SIM_PATH,
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n"
        ),
        vec!["P1"]
    );
    assert_eq!(
        rules_fired(
            SIM_PATH,
            "fn f() { x.partial_cmp(&y).expect(\"ordered\"); }\n"
        ),
        vec!["P1"]
    );
}

#[test]
fn p1_fires_even_in_test_code() {
    // A NaN panic in a test is a flaky suite; the rule applies everywhere.
    let src = "#[cfg(test)]\nmod tests {\n fn m(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n}\n";
    assert_eq!(rules_fired(SIM_PATH, src), vec!["P1"]);
}

#[test]
fn p1_silent_on_total_cmp_and_on_handled_partial_cmp() {
    let good = "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n\
                fn g(a: f64, b: f64) -> Ordering { a.partial_cmp(&b).unwrap_or(Ordering::Equal) }\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

#[test]
fn p1_silent_on_defining_partial_cmp() {
    let good = "impl PartialOrd for T {\n fn partial_cmp(&self, other: &Self) -> Option<Ordering> { Some(self.cmp(other)) }\n}\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

#[test]
fn p1_matches_across_nested_argument_parens() {
    let bad = "fn f() { a.partial_cmp(&key(b, c)).unwrap(); }\n";
    assert_eq!(rules_fired(SIM_PATH, bad), vec!["P1"]);
}

// ---------------------------------------------------------------- P2

#[test]
fn p2_fires_on_try_into_unwrap_in_live_code_only() {
    let bad = "fn f(t: u128) -> u64 { t.try_into().unwrap() }\n";
    assert_eq!(rules_fired(SIM_PATH, bad), vec!["P2"]);
    let in_test = format!("#[cfg(test)]\nmod tests {{\n {bad}\n}}\n");
    assert!(rules_fired(SIM_PATH, &in_test).is_empty());
}

#[test]
fn p2_silent_on_handled_conversion() {
    let good = "fn f(t: u128) -> Option<u64> { t.try_into().ok() }\n";
    assert!(rules_fired(SIM_PATH, good).is_empty());
}

// ---------------------------------------------------------------- U1

#[test]
fn u1_fires_on_unsafe_everywhere_but_sys() {
    let src = "fn f() { unsafe { syscall() } }\n";
    assert_eq!(rules_fired(SIM_PATH, src), vec!["U1"]);
    // Even in test code: unsafe quarantine is absolute.
    let in_test = "#[cfg(test)]\nmod tests { fn f() { unsafe { x() } } }\n";
    assert_eq!(rules_fired(SIM_PATH, in_test), vec!["U1"]);
    assert!(rules_fired("crates/hostsched/src/sys.rs", src).is_empty());
}

// ---------------------------------------------------------------- K1

#[test]
fn k1_fires_on_runqueue_internals_outside_policy_layer() {
    let bad = "use sfs_sched::CfsRunqueue;\nfn f(rt: &RtRunqueue) { let q = RR_TIMESLICE; }\n";
    assert_eq!(
        findings("crates/sfs/src/scheduler.rs", bad),
        vec![("K1".into(), 1), ("K1".into(), 2), ("K1".into(), 2)]
    );
    assert_eq!(
        rules_fired(SIM_PATH, "fn w(i: i8) -> u32 { NICE_TO_WEIGHT[idx(i)] }\n"),
        vec!["K1"]
    );
    assert_eq!(
        rules_fired(SIM_PATH, "fn f() { let rq = EevdfRunqueue::new(); }\n"),
        vec!["K1"]
    );
}

#[test]
fn k1_allows_the_whole_policy_directory() {
    let src = "fn f() { let rq = CfsRunqueue::new(); let t = RR_TIMESLICE; }\n";
    assert!(rules_fired("crates/sched/src/policy/cfs.rs", src).is_empty());
    assert!(rules_fired("crates/sched/src/policy/eevdf.rs", src).is_empty());
    // The directory prefix does not leak to siblings of `policy/` —
    // both identifiers on the line fire there.
    assert_eq!(
        rules_fired("crates/sched/src/machine.rs", src),
        vec!["K1", "K1"]
    );
}

#[test]
fn k1_exempts_test_code() {
    let src = "use sfs_sched::RtRunqueue;\n";
    assert!(rules_fired("crates/sched/tests/kpolicy_diff.rs", src).is_empty());
    assert!(rules_fired("crates/bench/benches/micro.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests { fn f() { let q = CfsRunqueue::new(); } }\n";
    assert!(rules_fired(SIM_PATH, in_test).is_empty());
}

#[test]
fn k1_honours_reasoned_file_allow() {
    let src = "// lint: allow-file(K1, root re-exports keep the public API stable)\n\
               pub use policy::cfs::CfsRunqueue;\n";
    let scan = scan_source("crates/sched/src/lib.rs", src, RULESET);
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    assert_eq!(scan.suppressed.len(), 1);
}

// ------------------------------------------------------- suppressions

#[test]
fn reasoned_allow_suppresses_same_line_and_next_line() {
    let same = "use std::collections::HashMap; // lint: allow(D1, keyed lookups only)\n";
    let scan = scan_source(SIM_PATH, same, RULESET);
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    assert_eq!(scan.suppressed.len(), 1);

    let above = "// lint: allow(D1, keyed lookups only)\nuse std::collections::HashMap;\n";
    let scan = scan_source(SIM_PATH, above, RULESET);
    assert!(scan.findings.is_empty());
    assert_eq!(scan.suppressed.len(), 1);
}

#[test]
fn allow_does_not_reach_two_lines_down() {
    let src = "// lint: allow(D1, keyed lookups only)\n\nuse std::collections::HashMap;\n";
    let fired = rules_fired(SIM_PATH, src);
    assert!(fired.contains(&"D1".to_string()), "{fired:?}");
}

#[test]
fn allow_without_reason_is_rejected_and_does_not_suppress() {
    let src = "use std::collections::HashMap; // lint: allow(D1)\n";
    let fired = rules_fired(SIM_PATH, src);
    assert!(
        fired.contains(&"D1".to_string()),
        "finding must survive: {fired:?}"
    );
    assert!(
        fired.contains(&"allow-syntax".to_string()),
        "reasonless allow reported: {fired:?}"
    );
}

#[test]
fn allow_file_suppresses_whole_file_for_that_rule_only() {
    let src = "// lint: allow-file(D2, fixture measures real wall-clock)\n\
               use std::time::Instant;\n\
               fn f() { let t = Instant::now(); let m = HashMap::new(); }\n";
    let fired = rules_fired(SIM_PATH, src);
    assert!(!fired.contains(&"D2".to_string()), "{fired:?}");
    assert!(
        fired.contains(&"D1".to_string()),
        "other rules unaffected: {fired:?}"
    );
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let src = "use std::collections::HashMap; // lint: allow(D2, wrong rule)\n";
    let fired = rules_fired(SIM_PATH, src);
    assert!(fired.contains(&"D1".to_string()), "{fired:?}");
    // And the D2 allow is now unused — reported.
    assert!(fired.contains(&"unused-allow".to_string()), "{fired:?}");
}

#[test]
fn unknown_rule_in_allow_is_reported() {
    let src = "// lint: allow(Z9, no such rule)\nfn f() {}\n";
    let fired = rules_fired(SIM_PATH, src);
    assert_eq!(fired, vec!["allow-syntax"]);
}

#[test]
fn unused_allow_is_reported() {
    let src = "// lint: allow(D1, nothing here uses a map)\nfn f() {}\n";
    let fired = rules_fired(SIM_PATH, src);
    assert_eq!(fired, vec!["unused-allow"]);
}

// ------------------------------------------- strings & comments inert

#[test]
fn string_and_comment_contents_never_match() {
    let src = "\
// HashMap, Instant, unsafe, thread::spawn — all just prose\n\
/* and partial_cmp(x).unwrap() in a block comment */\n\
fn f() -> &'static str {\n\
    let a = \"HashMap::new() and Instant::now()\";\n\
    let b = r#\"unsafe { thread::spawn }\"#;\n\
    let c = b\"partial_cmp(q).unwrap()\";\n\
    let d = 'u';\n\
    a\n\
}\n";
    assert!(rules_fired(SIM_PATH, src).is_empty());
}

#[test]
fn doc_comment_mentions_are_inert() {
    let src = "/// Unlike a `HashMap`, iteration order here is stable.\nfn f() {}\n";
    assert!(rules_fired(SIM_PATH, src).is_empty());
}

// ------------------------------------------------------------- misc

#[test]
fn findings_carry_path_line_and_rule_summary() {
    let src = "fn f() {}\nuse std::collections::HashMap;\n";
    let scan = scan_source("crates/x/src/y.rs", src, RULESET);
    assert_eq!(scan.findings.len(), 1);
    let f = &scan.findings[0];
    assert_eq!(f.rule, "D1");
    assert_eq!(f.path, "crates/x/src/y.rs");
    assert_eq!(f.line, 2);
    assert!(f.message.contains("HashMap"));
}

#[test]
fn multiple_rules_fire_independently_in_one_file() {
    let src = "use std::collections::HashMap;\n\
               fn f() { let t = Instant::now(); unsafe { x() } }\n";
    let mut fired = rules_fired(SIM_PATH, src);
    fired.sort();
    fired.dedup();
    assert_eq!(fired, vec!["D1", "D2", "U1"]);
}
