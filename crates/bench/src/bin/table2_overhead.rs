//! Table II: SFS's (relative) CPU overhead supporting a 72-core OpenLambda
//! deployment, by polling interval (§IX-B).
//!
//! Two measurements:
//! 1. the *modelled* overhead from the simulator's poll/action counts with
//!    per-operation costs calibrated in `RunOutcome::overhead_fraction`;
//! 2. the *live* cost of one `/proc` status poll on this machine
//!    (`sfs_host::measure_poll_cost`), the real-world analogue of the
//!    paper's gopsutil reads.
//!
//! Expected shape: a few percent, dominated by polling, and only weakly
//! dependent on the polling interval (the paper measures 3.4–3.8% average).

use sfs_bench::{banner, run_sfs, save, section, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::MarkdownTable;
use sfs_simcore::SimDuration;
use sfs_workload::WorkloadSpec;

const CORES: usize = 72;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Table II",
        "SFS CPU overhead by polling interval (72 cores)",
        n,
        seed,
    );

    let poll_cost = SimDuration::from_micros(120);
    let action_cost = SimDuration::from_micros(150);

    let mut sweep = Sweep::new("table2", seed);
    for ms in [1u64, 4, 8] {
        sweep.scenario(format!("{ms} ms"), move |_| {
            // I/O-heavy mix so the blocked-set polling is exercised like
            // the OL run.
            let w = WorkloadSpec::openlambda(n, seed)
                .with_load(CORES, 0.9)
                .generate();
            let mut cfg = SfsConfig::new(CORES);
            cfg.poll_interval = SimDuration::from_millis(ms);
            run_sfs(cfg, CORES, &w)
        });
    }
    let results = sweep.run();

    let mut t = MarkdownTable::new(&[
        "interval",
        "polls",
        "status reads",
        "sched actions",
        "overhead (avg)",
        "polling share",
    ]);
    for r in &results {
        let f = r.value.overhead_fraction(poll_cost, action_cost);
        let share = r.value.polling_overhead_share(poll_cost, action_cost);
        t.row(&[
            r.label.clone(),
            format!("{}", r.value.telemetry.polls),
            format!("{}", r.value.telemetry.polled_tasks),
            format!("{}", r.value.sched_actions),
            format!("{:.1}%", f * 100.0),
            format!("{:.1}%", share * 100.0),
        ]);
    }
    section("modelled overhead (paper Table II: avg 3.8% / 3.6% / 3.4%; ~74% polling)");
    println!("{}", t.to_markdown());
    save("table2_overhead.csv", &t.to_csv());

    section("live /proc poll cost on this machine");
    #[cfg(all(feature = "host-linux", target_os = "linux"))]
    {
        let live = sfs_host::measure_poll_cost(2_000);
        println!(
            "one status poll: {:.1} us ({} per second per monitored task at 4 ms)",
            live.as_secs_f64() * 1e6,
            250
        );
        println!(
            "implied overhead for 72 monitored tasks at 4 ms: {:.2}% of one core x 72 = {:.2}% of the machine",
            // 72 tasks * 250 polls/s * cost, relative to one core
            72.0 * 250.0 * live.as_secs_f64() * 100.0,
            72.0 * 250.0 * live.as_secs_f64() * 100.0 / 72.0
        );
    }
    #[cfg(not(all(feature = "host-linux", target_os = "linux")))]
    {
        println!(
            "skipped: build with `--features host-linux` on a Linux host to \
             measure the real /proc poll cost"
        );
    }
}
