//! Multi-series reports: CDFs, percentile tables, CSV/markdown rendering.
//!
//! Every figure harness produces one of these and prints it, so the bench
//! binaries all share the same output conventions:
//!
//! * CDF figures (2, 6, 7, 9, 11, 12b, 13, 14) → [`CdfReport`],
//! * percentile figures (8, 15) → [`PercentileTable`],
//! * tables (I, II) → [`MarkdownTable`].

use sfs_simcore::{QuantileSketch, Samples};

/// Quantile grid used when printing CDFs (dense at the tail, like the
/// paper's log-scale axes).
pub const CDF_FRACTIONS: [f64; 17] = [
    0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99, 0.995,
    0.999, 1.0,
];

/// A named empirical distribution.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label ("SFS 80%", "CFS 100%", ...).
    pub label: String,
    /// Raw sample values.
    pub samples: Samples,
}

impl Series {
    /// Build from raw values.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Series {
        Series {
            label: label.into(),
            samples: Samples::from_vec(values),
        }
    }
}

/// A CDF comparison across several series.
#[derive(Debug, Clone, Default)]
pub struct CdfReport {
    series: Vec<Series>,
    /// Axis label for the value dimension ("duration_ms", "rte").
    value_label: String,
}

impl CdfReport {
    /// Empty report with a value-axis label.
    pub fn new(value_label: impl Into<String>) -> CdfReport {
        CdfReport {
            series: Vec::new(),
            value_label: value_label.into(),
        }
    }

    /// Add one series.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.series.push(Series::new(label, values));
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True iff no series added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Access a series' samples by label.
    pub fn samples_mut(&mut self, label: &str) -> Option<&mut Samples> {
        self.series
            .iter_mut()
            .find(|s| s.label == label)
            .map(|s| &mut s.samples)
    }

    /// CSV: one row per quantile, one column per series.
    pub fn to_csv(&mut self) -> String {
        let mut out = String::from("fraction");
        for s in &self.series {
            out.push_str(&format!(",{}", s.label));
        }
        out.push('\n');
        for &f in CDF_FRACTIONS.iter() {
            out.push_str(&format!("{f}"));
            for s in self.series.iter_mut() {
                out.push_str(&format!(",{:.6}", s.samples.quantile(f)));
            }
            out.push('\n');
        }
        out
    }

    /// Markdown table of quantiles (what the bench binaries print).
    pub fn to_markdown(&mut self) -> String {
        let mut out = format!("| fraction | {} |\n", self.value_label);
        out = format!(
            "| fraction |{}\n|---|{}\n",
            self.series
                .iter()
                .map(|s| format!(" {} |", s.label))
                .collect::<String>(),
            self.series.iter().map(|_| "---|").collect::<String>()
        );
        for &f in CDF_FRACTIONS.iter() {
            out.push_str(&format!("| p{:.5} |", f * 100.0));
            for s in self.series.iter_mut() {
                out.push_str(&format!(" {:.3} |", s.samples.quantile(f)));
            }
            out.push('\n');
        }
        out
    }
}

/// Percentile breakdown table (Fig. 8 / Fig. 15): rows = series, columns =
/// p50/p90/p99/p99.9/p99.99.
///
/// Rows are backed either by exact [`Samples`] ([`PercentileTable::push`])
/// or by a streaming [`QuantileSketch`]
/// ([`PercentileTable::push_sketch`]) — the renderings are identical, so
/// O(1)-memory runs report through the same tables as exact ones.
#[derive(Debug, Clone, Default)]
pub struct PercentileTable {
    series: Vec<PctRow>,
}

/// One table row: a label over an exact or sketched distribution.
#[derive(Debug, Clone)]
struct PctRow {
    label: String,
    source: PctSource,
}

#[derive(Debug, Clone)]
enum PctSource {
    Exact(Samples),
    Sketch(QuantileSketch),
}

impl PctRow {
    fn percentile(&mut self, p: f64) -> f64 {
        match &mut self.source {
            PctSource::Exact(s) => s.percentile(p),
            PctSource::Sketch(k) => k.percentile(p),
        }
    }
}

/// The percentiles the paper reports in Fig. 8/15.
pub const PAPER_PERCENTILES: [f64; 5] = [50.0, 90.0, 99.0, 99.9, 99.99];

impl PercentileTable {
    /// Empty table.
    pub fn new() -> PercentileTable {
        PercentileTable::default()
    }

    /// Add one series from raw values (exact percentiles).
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.series.push(PctRow {
            label: label.into(),
            source: PctSource::Exact(Samples::from_vec(values)),
        });
    }

    /// Add one series backed by a streaming sketch (percentiles within the
    /// sketch's relative-error bound; memory independent of sample count).
    pub fn push_sketch(&mut self, label: impl Into<String>, sketch: QuantileSketch) {
        self.series.push(PctRow {
            label: label.into(),
            source: PctSource::Sketch(sketch),
        });
    }

    /// Percentile value for a series (by label).
    pub fn value(&mut self, label: &str, pct: f64) -> Option<f64> {
        self.series
            .iter_mut()
            .find(|s| s.label == label)
            .map(|s| s.percentile(pct))
    }

    /// Markdown rendering.
    pub fn to_markdown(&mut self) -> String {
        let mut out = String::from("| series |");
        for p in PAPER_PERCENTILES {
            out.push_str(&format!(" p{p} |"));
        }
        out.push_str("\n|---|");
        for _ in PAPER_PERCENTILES {
            out.push_str("---|");
        }
        out.push('\n');
        for s in self.series.iter_mut() {
            out.push_str(&format!("| {} |", s.label));
            for p in PAPER_PERCENTILES {
                out.push_str(&format!(" {:.1} |", s.percentile(p)));
            }
            out.push('\n');
        }
        out
    }

    /// CSV rendering.
    pub fn to_csv(&mut self) -> String {
        let mut out = String::from("series");
        for p in PAPER_PERCENTILES {
            out.push_str(&format!(",p{p}"));
        }
        out.push('\n');
        for s in self.series.iter_mut() {
            out.push_str(&s.label.to_string());
            for p in PAPER_PERCENTILES {
                out.push_str(&format!(",{:.3}", s.percentile(p)));
            }
            out.push('\n');
        }
        out
    }
}

/// A generic markdown/CSV table for Table I / Table II style output.
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> MarkdownTable {
        MarkdownTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "| {} |\n|{}\n",
            self.header.join(" | "),
            self.header.iter().map(|_| "---|").collect::<String>()
        );
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }

    /// CSV rendering.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_report_quantiles_per_series() {
        let mut r = CdfReport::new("duration_ms");
        r.push("A", (1..=100).map(|i| i as f64).collect());
        r.push("B", (1..=100).map(|i| (i * 2) as f64).collect());
        assert_eq!(r.len(), 2);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "fraction,A,B");
        assert_eq!(lines.len(), 1 + CDF_FRACTIONS.len());
        // p50 row: A=50, B=100.
        let p50 = lines.iter().find(|l| l.starts_with("0.5,")).unwrap();
        assert!(p50.contains("50.000000") && p50.contains("100.000000"));
        let md = r.to_markdown();
        assert!(md.contains("| A |") && md.contains("| B |"));
    }

    #[test]
    fn percentile_table_matches_samples() {
        let mut t = PercentileTable::new();
        t.push("X", (1..=1000).map(|i| i as f64).collect());
        assert_eq!(t.value("X", 50.0), Some(500.0));
        assert_eq!(t.value("X", 99.9), Some(999.0));
        assert_eq!(t.value("missing", 50.0), None);
        let md = t.to_markdown();
        assert!(md.contains("p99.99"));
        let csv = t.to_csv();
        assert!(csv.starts_with("series,p50,p90,p99,p99.9,p99.99"));
    }

    #[test]
    fn percentile_table_sketch_rows_match_exact_rows() {
        // The same distribution pushed exactly and as a sketch must render
        // through the same table, agreeing within the sketch's 1% bound.
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        let mut sketch = QuantileSketch::new(0.01);
        for &v in &values {
            sketch.push(v);
        }
        let mut t = PercentileTable::new();
        t.push("exact", values);
        t.push_sketch("sketch", sketch);
        for p in PAPER_PERCENTILES {
            let e = t.value("exact", p).unwrap();
            let s = t.value("sketch", p).unwrap();
            assert!((s - e).abs() <= 0.011 * e, "p{p}: sketch {s} vs exact {e}");
        }
        let md = t.to_markdown();
        assert!(md.contains("| exact |") && md.contains("| sketch |"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn markdown_table_rendering() {
        let mut t = MarkdownTable::new(&["interval", "avg"]);
        t.row(&["4 ms".into(), "3.6%".into()]);
        assert_eq!(t.len(), 1);
        let md = t.to_markdown();
        assert!(md.contains("| interval | avg |"));
        assert!(md.contains("| 4 ms | 3.6% |"));
        assert_eq!(t.to_csv(), "interval,avg\n4 ms,3.6%\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn markdown_table_rejects_bad_row() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
