//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by ascending timestamp and breaks ties by
//! insertion order (FIFO). Stable tie-breaking matters: simultaneous events
//! (e.g. a slice expiry and an arrival at the same nanosecond) must be
//! processed in a reproducible order for experiments to be bit-identical
//! across runs.
//!
//! Two interchangeable backends implement the same `(time, seq)` total
//! order, so their pop sequences are identical event for event:
//!
//! * [`EventCore::Wheel`] (the default) — a hierarchical timing wheel
//!   (hashed-and-hierarchical, Varghese & Lauck style): six levels of
//!   64 slots each with a `u64` occupancy bitmap per level. A level-`k` slot
//!   spans `64^k` ticks of [`TICK_NS`] nanoseconds; pushes and pops are O(1)
//!   amortised regardless of how many events are pending, which keeps
//!   ns/request flat on runs with millions of requests. Events beyond the
//!   wheel horizon (`64^LEVELS` ticks ≈ 19.5 simulated hours) wait in a
//!   small overflow heap and migrate into the wheel as time approaches.
//! * [`EventCore::Heap`] — the classic [`std::collections::BinaryHeap`]
//!   implementation (O(log n) per operation), kept as the differential
//!   reference and selectable for A/B runs.
//!
//! The backend is picked per-queue at construction: [`EventQueue::new`]
//! reads `SFS_EVENT_CORE` (`wheel` | `heap`, default `wheel`) once per
//! process; [`EventQueue::with_core`] pins a backend explicitly. Because
//! both backends realise the same total order, every golden snapshot is
//! byte-identical whichever backend runs — `tests/wheel_diff.rs` hammers
//! that equivalence with randomized interleavings.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::OnceLock;

use crate::time::SimTime;

/// An event scheduled at a [`SimTime`], carrying an arbitrary payload `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventCore {
    /// Hierarchical timing wheel, O(1) amortised push/pop (the default).
    Wheel,
    /// Binary heap, O(log n) push/pop (the differential reference).
    Heap,
}

/// Resolve an `SFS_EVENT_CORE` value to a backend. `None` (unset) selects
/// the wheel; unknown values are a hard error so a typo can never silently
/// benchmark the wrong backend.
fn core_from_env_value(value: Option<&str>) -> EventCore {
    match value {
        None | Some("wheel") => EventCore::Wheel,
        Some("heap") => EventCore::Heap,
        Some(other) => panic!("SFS_EVENT_CORE must be \"wheel\" or \"heap\", got {other:?}"),
    }
}

/// The process-wide default backend (`SFS_EVENT_CORE`, read once).
fn default_core() -> EventCore {
    static CHOICE: OnceLock<EventCore> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        let v = std::env::var("SFS_EVENT_CORE").ok();
        core_from_env_value(v.as_deref())
    })
}

// ----------------------------------------------------------------------
// Timing-wheel backend
// ----------------------------------------------------------------------

/// log2 of the wheel tick in nanoseconds: one tick is 1024 ns (~1 µs).
/// Events inside the same tick are ordered exactly by `(at, seq)` when the
/// tick's slot is drained, so the coarse tick never coarsens event order.
const TICK_SHIFT: u32 = 10;
/// Nanoseconds per wheel tick (documentation constant).
pub const TICK_NS: u64 = 1 << TICK_SHIFT;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels. Level `k` slots span `64^k` ticks; the total
/// horizon is `64^LEVELS` ticks ≈ 7.0e13 ns × 1024 ≈ 19.5 simulated hours.
const LEVELS: usize = 6;

/// Wheel tick of a timestamp.
#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.as_nanos() >> TICK_SHIFT
}

struct Wheel<E> {
    /// `LEVELS × SLOTS` buckets, row-major by level. Buckets are unsorted;
    /// order is imposed when a bucket is drained.
    slots: Vec<Vec<Scheduled<E>>>,
    /// Per-level occupancy bitmaps (bit `s` set ⇔ `slots[l*SLOTS+s]`
    /// non-empty), so "next occupied slot" is one `trailing_zeros`.
    occupied: [u64; LEVELS],
    /// Current tick cursor. Invariants: no pending wheel entry has a tick
    /// `≤ elapsed` (those live in `front`), and `elapsed` never passes the
    /// tick of any pending event.
    elapsed: u64,
    /// Due events in `(at, seq)` order: the drained current tick plus any
    /// pushes at or before `elapsed` (handlers scheduling "now" included).
    front: VecDeque<Scheduled<E>>,
    /// Events beyond the wheel horizon, migrated in as time approaches.
    overflow: BinaryHeap<Scheduled<E>>,
    len: usize,
    next_seq: u64,
}

// Manual impls: derive would bound `E: Debug`/`E: Clone` on the *fields*
// only, which is what we want, but `[u64; LEVELS]` needs no bound at all.
impl<E: std::fmt::Debug> std::fmt::Debug for Wheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wheel")
            .field("len", &self.len)
            .field("elapsed", &self.elapsed)
            .field("front", &self.front.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

impl<E: Clone> Clone for Wheel<E> {
    fn clone(&self) -> Self {
        Wheel {
            slots: self.slots.clone(),
            occupied: self.occupied,
            elapsed: self.elapsed,
            front: self.front.clone(),
            overflow: self.overflow.clone(),
            len: self.len,
            next_seq: self.next_seq,
        }
    }
}

impl<E> Wheel<E> {
    fn new(cap: usize) -> Wheel<E> {
        Wheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            elapsed: 0,
            front: VecDeque::with_capacity(cap),
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Level whose slot covers `tick` relative to `elapsed`, or `None` for
    /// the overflow heap. Requires `tick > elapsed`.
    #[inline]
    fn level_for(&self, tick: u64) -> Option<usize> {
        debug_assert!(tick > self.elapsed);
        let level = ((63 - (tick ^ self.elapsed).leading_zeros()) / SLOT_BITS) as usize;
        (level < LEVELS).then_some(level)
    }

    fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.insert(Scheduled { at, seq, payload });
    }

    /// Route an entry to the front buffer, a wheel slot, or the overflow
    /// heap according to its tick relative to `elapsed`.
    fn insert(&mut self, ev: Scheduled<E>) {
        let tick = tick_of(ev.at);
        if tick <= self.elapsed {
            // Due (or past) tick: keep the front buffer sorted by
            // `(at, seq)`. Fresh pushes carry the largest seq so far, so
            // the partition point is a pure `(at, seq)` bound.
            let idx = self
                .front
                .partition_point(|e| (e.at, e.seq) <= (ev.at, ev.seq));
            self.front.insert(idx, ev);
        } else if let Some(level) = self.level_for(tick) {
            let slot = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
            self.occupied[level] |= 1u64 << slot;
            self.slots[level * SLOTS + slot].push(ev);
        } else {
            self.overflow.push(ev);
        }
    }

    fn wheel_is_empty(&self) -> bool {
        self.occupied.iter().all(|&b| b == 0)
    }

    /// Move every overflow event that now fits inside the wheel horizon.
    /// Called before expiring any slot: an overflow event due at or before
    /// the wheel's next expiration provably fits (its tick shares the
    /// cursor's prefix at least as deeply as the expiring slot does), so
    /// `elapsed` can never skip past an overflow event.
    fn migrate_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            let tick = tick_of(head.at);
            if tick > self.elapsed && self.level_for(tick).is_none() {
                return;
            }
            let ev = self.overflow.pop().expect("peeked entry present");
            self.insert(ev);
        }
    }

    /// Fill the front buffer with the earliest pending tick's events.
    /// After this, `front` is non-empty iff the queue is non-empty.
    fn ensure_front(&mut self) {
        while self.front.is_empty() {
            if self.wheel_is_empty() {
                // Jump straight to the overflow head's tick (nothing
                // pending in between) and pull it in.
                let Some(head) = self.overflow.peek() else {
                    return;
                };
                self.elapsed = self.elapsed.max(tick_of(head.at));
            }
            self.migrate_overflow();
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                continue; // only overflow remained; migration advanced it
            };
            let slot = self.occupied[level].trailing_zeros() as usize;
            let shift = SLOT_BITS * level as u32;
            // Advance the cursor to the slot's base tick: same prefix
            // above the slot digit, zeros below. Monotone because every
            // occupied slot is ahead of the cursor at its level.
            let span = 1u64 << (shift + SLOT_BITS);
            let base = (self.elapsed & !(span - 1)) | ((slot as u64) << shift);
            debug_assert!(base >= self.elapsed, "wheel cursor went backwards");
            self.elapsed = base;
            self.occupied[level] &= !(1u64 << slot);
            let mut drained = std::mem::take(&mut self.slots[level * SLOTS + slot]);
            if level == 0 {
                // A level-0 slot is exactly one tick: these events are due
                // now; order them and expose them.
                drained.sort_unstable_by_key(|a| (a.at, a.seq));
                self.front.extend(drained.drain(..));
            } else {
                // Cascade: re-route each event one or more levels down
                // (or to the front, for the slot's base tick itself).
                for ev in drained.drain(..) {
                    self.insert(ev);
                }
            }
            // Hand the (now empty) bucket back to keep its allocation.
            self.slots[level * SLOTS + slot] = drained;
        }
    }

    /// Earliest pending `(at, seq)` without mutating the wheel.
    fn peek(&self) -> Option<(SimTime, u64)> {
        if let Some(e) = self.front.front() {
            // Front events precede every wheel/overflow event (their ticks
            // are ≤ elapsed; everything else is strictly later).
            return Some((e.at, e.seq));
        }
        let mut best: Option<(SimTime, u64)> = None;
        if let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) {
            let slot = self.occupied[level].trailing_zeros() as usize;
            for e in &self.slots[level * SLOTS + slot] {
                if best.map_or(true, |b| (e.at, e.seq) < b) {
                    best = Some((e.at, e.seq));
                }
            }
        }
        if let Some(e) = self.overflow.peek() {
            if best.map_or(true, |b| (e.at, e.seq) < b) {
                best = Some((e.at, e.seq));
            }
        }
        best
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_front();
        self.front.pop_front().map(|e| {
            self.len -= 1;
            (e.at, e.payload)
        })
    }

    fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        self.ensure_front();
        match self.front.front() {
            Some(e) if e.at <= t => self.pop(),
            _ => None,
        }
    }

    fn capacity(&self) -> usize {
        self.front.capacity()
            + self.overflow.capacity()
            + self.slots.iter().map(Vec::capacity).sum::<usize>()
    }

    fn clear(&mut self) {
        for (level, bits) in self.occupied.iter_mut().enumerate() {
            let mut b = *bits;
            while b != 0 {
                let slot = b.trailing_zeros() as usize;
                b &= b - 1;
                self.slots[level * SLOTS + slot].clear();
            }
            *bits = 0;
        }
        self.front.clear();
        self.overflow.clear();
        self.elapsed = 0;
        self.len = 0;
    }
}

// ----------------------------------------------------------------------
// Public queue
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Backend<E> {
    Heap {
        heap: BinaryHeap<Scheduled<E>>,
        next_seq: u64,
    },
    Wheel(Wheel<E>),
}

/// A discrete-event priority queue with deterministic ordering.
///
/// Events with equal timestamps pop in the order they were pushed. See the
/// [module docs](self) for the two backends; both realise the identical
/// `(time, seq)` total order.
///
/// # Example
/// ```
/// use sfs_simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::from_millis(2), "second");
/// q.push(SimTime::ZERO + SimDuration::from_millis(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "first");
/// assert_eq!(t.as_millis_f64(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the process-default backend (`SFS_EVENT_CORE`,
    /// wheel unless overridden).
    pub fn new() -> Self {
        Self::with_core(default_core())
    }

    /// An empty queue with pre-reserved capacity on the default backend.
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_core(cap, default_core())
    }

    /// An empty queue on an explicitly chosen backend.
    pub fn with_core(core: EventCore) -> Self {
        Self::with_capacity_and_core(0, core)
    }

    /// An empty queue with pre-reserved capacity on a chosen backend.
    pub fn with_capacity_and_core(cap: usize, core: EventCore) -> Self {
        let backend = match core {
            EventCore::Heap => Backend::Heap {
                heap: BinaryHeap::with_capacity(cap),
                next_seq: 0,
            },
            EventCore::Wheel => Backend::Wheel(Wheel::new(cap)),
        };
        EventQueue { backend }
    }

    /// The backend this queue runs on.
    pub fn core(&self) -> EventCore {
        match &self.backend {
            Backend::Heap { .. } => EventCore::Heap,
            Backend::Wheel(_) => EventCore::Wheel,
        }
    }

    /// Schedule `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        match &mut self.backend {
            Backend::Heap { heap, next_seq } => {
                let seq = *next_seq;
                *next_seq += 1;
                heap.push(Scheduled { at, seq, payload });
            }
            Backend::Wheel(w) => w.push(at, payload),
        }
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap { heap, .. } => heap.peek().map(|s| s.at),
            Backend::Wheel(w) => w.peek().map(|(at, _)| at),
        }
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap { heap, .. } => heap.pop().map(|s| (s.at, s.payload)),
            Backend::Wheel(w) => w.pop(),
        }
    }

    /// Remove and return the earliest event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Heap { heap, .. } => match heap.peek() {
                Some(s) if s.at <= t => heap.pop().map(|s| (s.at, s.payload)),
                _ => None,
            },
            Backend::Wheel(w) => w.pop_until(t),
        }
    }

    /// Pop every event firing at or before `t` into `out` (in time/FIFO
    /// order), returning how many were popped.
    ///
    /// This is the peek-based batch fast path for hot simulation loops:
    /// one bound comparison per event against a reusable output buffer,
    /// instead of a peek + pop call pair per event with a fresh allocation
    /// per step. `out` is appended to, not cleared — callers reuse one
    /// buffer across iterations (drain-and-reuse) so steady-state batch
    /// popping performs zero allocations.
    ///
    /// Only safe when event handlers never schedule new events at or
    /// before `t`; otherwise the incremental [`EventQueue::pop_until`]
    /// loop must be used so late insertions are observed.
    pub fn pop_batch_until(&mut self, t: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let before = out.len();
        match &mut self.backend {
            Backend::Heap { heap, .. } => {
                while let Some(s) = heap.peek() {
                    if s.at > t {
                        break;
                    }
                    let s = heap.pop().expect("peeked event present");
                    out.push((s.at, s.payload));
                }
            }
            Backend::Wheel(w) => {
                while let Some(pair) = w.pop_until(t) {
                    out.push(pair);
                }
            }
        }
        out.len() - before
    }

    /// Retained allocation of the queue (heap capacity, or the sum of the
    /// wheel's bucket/front/overflow capacities), preserved across
    /// [`EventQueue::recycle`].
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Heap { heap, .. } => heap.capacity(),
            Backend::Wheel(w) => w.capacity(),
        }
    }

    /// Reset the queue for a fresh run while keeping its allocation: all
    /// pending events are dropped and the FIFO sequence counter restarts,
    /// so a recycled queue behaves exactly like a new one — minus the
    /// reallocation. Trial loops that simulate many runs back to back use
    /// this to keep the event structures warm.
    pub fn recycle(&mut self) {
        match &mut self.backend {
            Backend::Heap { heap, next_seq } => {
                heap.clear();
                *next_seq = 0;
            }
            Backend::Wheel(w) => {
                w.clear();
                w.next_seq = 0;
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap { heap, .. } => heap.len(),
            Backend::Wheel(w) => w.len,
        }
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Heap { heap, .. } => heap.clear(),
            Backend::Wheel(w) => w.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Every API-contract test runs on both backends.
    fn both(test: impl Fn(EventQueue<i32>)) {
        test(EventQueue::with_core(EventCore::Heap));
        test(EventQueue::with_core(EventCore::Wheel));
    }

    #[test]
    fn pops_in_time_order() {
        both(|mut q| {
            q.push(at(30), 3);
            q.push(at(10), 1);
            q.push(at(20), 2);
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 2, 3]);
        });
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        both(|mut q| {
            for i in 0..100 {
                q.push(at(5), i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn pop_until_respects_bound() {
        both(|mut q| {
            q.push(at(10), 1);
            q.push(at(20), 2);
            assert_eq!(q.pop_until(at(15)).map(|(_, e)| e), Some(1));
            assert_eq!(q.pop_until(at(15)), None);
            assert_eq!(q.pop_until(at(20)).map(|(_, e)| e), Some(2));
            assert!(q.is_empty());
        });
    }

    #[test]
    fn peek_does_not_consume() {
        both(|mut q| {
            q.push(at(7), 0);
            assert_eq!(q.peek_time(), Some(at(7)));
            assert_eq!(q.len(), 1);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn batch_pop_matches_incremental_and_reuses_buffer() {
        both(|mut q| {
            for i in 0..6 {
                q.push(at(10 * (i % 3) as u64), i);
            }
            let mut out = Vec::new();
            assert_eq!(q.pop_batch_until(at(10), &mut out), 4);
            let evs: Vec<i32> = out.iter().map(|&(_, e)| e).collect();
            assert_eq!(evs, vec![0, 3, 1, 4], "time order then FIFO within ties");
            // Appends without clearing: the same buffer accumulates.
            assert_eq!(q.pop_batch_until(at(100), &mut out), 2);
            assert_eq!(out.len(), 6);
            assert!(q.is_empty());
            assert_eq!(q.pop_batch_until(at(100), &mut out), 0);
        });
    }

    #[test]
    fn recycle_keeps_capacity_and_restarts_fifo_numbering() {
        for core in [EventCore::Heap, EventCore::Wheel] {
            let mut q = EventQueue::with_capacity_and_core(64, core);
            for i in 0..50 {
                q.push(at(1), i);
            }
            let cap = q.capacity();
            assert!(cap >= 50);
            q.recycle();
            assert!(q.is_empty());
            assert_eq!(q.capacity(), cap, "recycle must keep the allocation");
            // FIFO ordering restarts cleanly after recycling.
            q.push(at(5), 100);
            q.push(at(5), 200);
            assert_eq!(q.pop().unwrap().1, 100);
            assert_eq!(q.pop().unwrap().1, 200);
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        both(|mut q| {
            q.push(at(5), 5);
            q.push(at(1), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            q.push(at(3), 3);
            q.push(at(2), 2);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 5);
        });
    }

    #[test]
    fn wheel_handles_pushes_at_or_before_the_cursor() {
        let mut q = EventQueue::with_core(EventCore::Wheel);
        q.push(at(100), 1);
        assert_eq!(q.pop().unwrap().1, 1); // cursor now at the 100 ms tick
        q.push(at(50), 2); // strictly in the past
        q.push(at(100), 3); // same tick as the cursor
        q.push(at(100), 4);
        assert_eq!(q.pop().unwrap(), (at(50), 2));
        assert_eq!(q.pop().unwrap(), (at(100), 3));
        assert_eq!(q.pop().unwrap(), (at(100), 4));
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_sub_tick_timestamps_stay_totally_ordered() {
        // Events inside one 1024 ns tick must still pop by exact (at, seq).
        let mut q = EventQueue::with_core(EventCore::Wheel);
        let base = SimTime::ZERO + SimDuration::from_nanos(1 << 20);
        q.push(base + SimDuration::from_nanos(7), 7);
        q.push(base + SimDuration::from_nanos(3), 3);
        q.push(base + SimDuration::from_nanos(5), 5);
        q.push(base + SimDuration::from_nanos(3), 33); // FIFO tie
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 33, 5, 7]);
    }

    #[test]
    fn wheel_far_future_events_cross_the_overflow_horizon() {
        let mut q = EventQueue::with_core(EventCore::Wheel);
        // ~28 simulated hours: beyond the 19.5 h wheel horizon.
        let far = SimTime::ZERO + SimDuration::from_secs(100_000);
        let farther = SimTime::ZERO + SimDuration::from_secs(200_000);
        q.push(far, 2);
        q.push(farther, 3);
        q.push(at(1), 1);
        assert_eq!(q.peek_time(), Some(at(1)));
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop().unwrap(), (far, 2));
        // After time advanced, a near event still precedes the remaining
        // far one, and interleaves correctly with it.
        q.push(far + SimDuration::from_secs(1), 4);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap(), (farther, 3));
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_max_timestamp_is_representable() {
        let mut q = EventQueue::with_core(EventCore::Wheel);
        q.push(SimTime::MAX, 1); // FIFO-pinned sentinel events exist in the machine
        q.push(at(1), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap(), (SimTime::MAX, 1));
    }

    #[test]
    fn env_value_selects_backend_and_rejects_typos() {
        assert_eq!(core_from_env_value(None), EventCore::Wheel);
        assert_eq!(core_from_env_value(Some("wheel")), EventCore::Wheel);
        assert_eq!(core_from_env_value(Some("heap")), EventCore::Heap);
        let err = std::panic::catch_unwind(|| core_from_env_value(Some("heep")));
        assert!(err.is_err(), "typo'd backend name must be a hard error");
    }

    #[test]
    fn explicit_constructors_pin_the_backend() {
        let h: EventQueue<()> = EventQueue::with_core(EventCore::Heap);
        let w: EventQueue<()> = EventQueue::with_core(EventCore::Wheel);
        assert_eq!(h.core(), EventCore::Heap);
        assert_eq!(w.core(), EventCore::Wheel);
    }
}
