//! Region-scale serving: a multi-region fleet of [`Cluster`](crate::Cluster)-style host
//! pools behind one global front door (ROADMAP item 1; the paper's §IX
//! composition argument scaled out).
//!
//! Three subsystems compose here:
//!
//! * **Front door** — every request enters at a global anycast point and is
//!   routed to a region by *latency-aware* scoring: per-region RTT cost
//!   plus the live backlog-per-core feedback of the region's dispatcher
//!   model (the same predicted-completion discipline [`Cluster`](crate::Cluster) uses).
//!   A region whose backlog crosses the spill threshold stops attracting
//!   traffic (spillover to the next-best region); when every region is
//!   past the shed threshold the request is **shed** at the door.
//! * **Autoscaler** — each region scales its active host count on queue
//!   depth, with warm-pool keep-alive economics extending the PR 4
//!   affinity model: scale-down *parks* a host warm (it drains its queue
//!   and keeps its containers) for a keep-alive window before releasing
//!   it; scale-up prefers reactivating a parked host (instant, warm) over
//!   booting a released one (boot delay, cold warm-pool).
//! * **Fault injection** — deterministic, seed-derived scenarios: host
//!   crashes (in-flight work re-dispatched through the front door),
//!   straggler hosts (a slowdown factor on everything they run), and
//!   correlated AZ outages (a contiguous host group down and back up).
//!   Every request ends in exactly one attributable state — *completed*,
//!   *shed* (front door refused it), or *lost* (a fault victim the fleet
//!   could not re-place) — and [`FleetRun::conservation_holds`] checks the
//!   sum equals the workload size.
//!
//! # Determinism under parallel execution
//!
//! The two-phase design of [`Cluster`](crate::Cluster) scales up unchanged. *Routing* is
//! one sequential event loop — a pure function of `(fleet config,
//! placement, workload)` — over a single event heap ordered by `(time,
//! class, sequence)`; fault plans derive from the fleet seed by pure
//! [`SeedSequencer`] / [`SimRng`] functions before the loop starts.
//! *Execution* fans out over [`sfs_simcore::parallel::run_indexed`], one
//! independent `Sim` per `(region, host, epoch)` unit with results written
//! into index-ordered slots (a host's epoch increments each time a crash
//! or re-provision resets it, so pre- and post-crash placements never
//! share a sim). A 1000-host faulted fleet run is therefore bit-identical
//! at any thread count. All bookkeeping that is ever iterated lives in
//! `BTreeMap`s: iteration order is part of the routing function.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

use sfs_core::{ControllerFactory, RequestOutcome, SfsConfig};
use sfs_sched::Phase;
use sfs_simcore::{parallel, SeedSequencer, SimDuration, SimRng, SimTime};
use sfs_workload::{Table1Sampler, Workload};

use crate::cluster::{
    argmin_f64_over, argmin_jsq_over, bounded_load_cap, build_ring, func_key, ring_walk, Affinity,
    HostLoad, Placement,
};

/// One region of the fleet: an RTT cost from the front door plus a pool of
/// host slots the autoscaler moves between active / parked / released.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// One-way network cost (ms) from the front door to this region; part
    /// of both the routing score and every request's latency.
    pub rtt_ms: f64,
    /// Hosts active at t = 0.
    pub initial_hosts: usize,
    /// Total provisionable host slots (the autoscaler's ceiling).
    pub max_hosts: usize,
    /// Floor the autoscaler never parks below.
    pub min_hosts: usize,
}

/// Front-door routing thresholds, in modelled backlog milliseconds per
/// active core (the dispatcher's own predicted-completion units).
#[derive(Debug, Clone, Copy)]
pub struct FrontDoor {
    /// A region at/above this backlog stops attracting new work while any
    /// region below it exists (spillover).
    pub spill_backlog_ms: f64,
    /// When every region is at/above this backlog, requests are shed at
    /// the door instead of queued into an already-drowning fleet.
    pub shed_backlog_ms: f64,
}

/// Per-region autoscaler policy with warm-pool keep-alive economics.
#[derive(Debug, Clone, Copy)]
pub struct Autoscaler {
    /// Evaluation period.
    pub tick: SimDuration,
    /// Scale up when mean outstanding depth per active host exceeds this.
    pub up_depth_per_host: f64,
    /// Scale down when mean outstanding depth per active host falls below.
    pub down_depth_per_host: f64,
    /// How long a scaled-down host stays parked warm before release.
    pub warm_park: SimDuration,
    /// Boot delay when scale-up must provision a released (cold) slot.
    pub boot_delay: SimDuration,
}

impl Default for Autoscaler {
    fn default() -> Autoscaler {
        Autoscaler {
            tick: SimDuration::from_millis(500),
            up_depth_per_host: 4.0,
            down_depth_per_host: 0.5,
            warm_park: SimDuration::from_secs(5),
            boot_delay: SimDuration::from_millis(250),
        }
    }
}

/// A deterministic fault scenario: counts per fault kind, expanded into a
/// concrete seed-derived plan by [`Fleet::run_with_threads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Host crashes (in-flight work re-dispatched; host repairs and
    /// rejoins cold after [`FaultSpec::repair`]).
    pub crashes: usize,
    /// Straggler hosts: everything placed on one after onset runs
    /// [`FaultSpec::straggler_factor`]× slower.
    pub stragglers: usize,
    /// Slowdown multiplier for straggler hosts.
    pub straggler_factor: f64,
    /// Correlated AZ outages: a contiguous half of a region's host slots
    /// goes down and rejoins together.
    pub outages: usize,
    /// How many times one request may be re-dispatched after fault evictions
    /// before it is declared lost.
    pub max_redispatch: u32,
    /// Crash repair time (down → active again, cold).
    pub repair: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            crashes: 0,
            stragglers: 0,
            straggler_factor: 4.0,
            outages: 0,
            max_redispatch: 3,
            repair: SimDuration::from_millis(500),
        }
    }
}

impl FaultSpec {
    /// Parse the CLI spelling: `+`-separated `kind:count` terms, e.g.
    /// `crash:2+straggler:3+outage:1`. Unknown kinds and malformed counts
    /// are errors naming the offending term (the repo-wide strict-parse
    /// contract).
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for term in s.split('+') {
            let (kind, count) = term
                .split_once(':')
                .ok_or_else(|| format!("fault term `{term}` is not `kind:count`"))?;
            let n: usize = count
                .parse()
                .map_err(|_| format!("fault count `{count}` in `{term}` is not a number"))?;
            match kind {
                "crash" => spec.crashes = n,
                "straggler" => spec.stragglers = n,
                "outage" => spec.outages = n,
                _ => {
                    return Err(format!(
                        "unknown fault kind `{kind}` in `{term}` (expected crash/straggler/outage)"
                    ))
                }
            }
        }
        Ok(spec)
    }

    /// Whether the spec injects anything at all.
    pub fn is_active(&self) -> bool {
        self.crashes > 0 || self.stragglers > 0 || self.outages > 0
    }
}

/// A multi-region fleet of SFS host pools behind one global front door.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The regions, in routing-index order.
    pub regions: Vec<RegionConfig>,
    /// Cores per host (uniform across the fleet).
    pub cores_per_host: usize,
    /// SFS configuration applied on every host by [`Fleet::run`].
    pub sfs: SfsConfig,
    /// Warm-container affinity model (see [`Cluster`](crate::Cluster)); `None` disables
    /// cold starts.
    pub affinity: Option<Affinity>,
    /// Front-door spill/shed thresholds.
    pub front_door: FrontDoor,
    /// Autoscaler policy; `None` pins every region at its initial hosts.
    pub autoscaler: Option<Autoscaler>,
    /// Fault scenario; `None` runs fault-free.
    pub faults: Option<FaultSpec>,
    /// EWMA smoothing for per-host turnaround feedback.
    pub ewma_alpha: f64,
    /// Fleet seed: hash rings, fault plans, and every other stochastic
    /// input derive from it by pure functions.
    pub seed: u64,
    /// Virtual nodes per host on each region's hash ring.
    pub vnodes: usize,
}

/// Per-region counters surfaced by [`FleetRun`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionStats {
    /// Requests dispatched into this region (initial and re-dispatched).
    pub placed: u64,
    /// Cold starts the affinity model charged here.
    pub cold_starts: u64,
    /// Host-crash events (including outage members).
    pub crashes: u64,
    /// Cold scale-ups (released slot booted).
    pub boots: u64,
    /// Warm scale-ups (parked host reactivated).
    pub reactivations: u64,
    /// Scale-downs (host parked warm).
    pub parks: u64,
    /// Parked hosts whose keep-alive expired (released).
    pub releases: u64,
    /// Host-milliseconds spent parked warm — the keep-alive bill.
    pub warm_host_ms: f64,
}

/// Result of a fleet run: completed outcomes plus the attributable
/// remainder (shed / lost), per-region economics, and fault accounting.
#[derive(Debug)]
pub struct FleetRun {
    /// Outcomes of every completed request, sorted by id, re-based to the
    /// front-door arrival (turnaround includes RTT and re-dispatch time).
    pub outcomes: Vec<RequestOutcome>,
    /// Ids the front door shed on arrival (every region past the shed
    /// threshold or without an active host).
    pub shed: Vec<u64>,
    /// Ids lost to faults: evicted by a crash/outage and either out of
    /// re-dispatch budget or re-routable nowhere.
    pub lost: Vec<u64>,
    /// The intra-region placement used.
    pub placement: Placement,
    /// Per-region counters, indexed like [`Fleet::regions`].
    pub per_region: Vec<RegionStats>,
    /// Total affinity cold starts.
    pub cold_starts: u64,
    /// Fault-driven re-dispatches that were successfully re-placed.
    pub redispatches: u64,
    /// Placements routed away from the request's cheapest-RTT home region
    /// (spillover volume).
    pub spilled: u64,
    /// Workload size the run was asked to serve.
    pub requests: usize,
}

impl FleetRun {
    /// The conservation-under-failure invariant: every request is exactly
    /// one of completed / shed / lost.
    pub fn conservation_holds(&self) -> bool {
        self.outcomes.len() + self.shed.len() + self.lost.len() == self.requests
    }

    /// Mean turnaround (ms) over completed requests, `None` when none
    /// completed.
    pub fn mean_turnaround_ms(&self) -> Option<f64> {
        (!self.outcomes.is_empty()).then(|| {
            self.outcomes
                .iter()
                .map(|o| o.turnaround.as_millis_f64())
                .sum::<f64>()
                / self.outcomes.len() as f64
        })
    }
}

/// Host lifecycle under the autoscaler and fault injector.
#[derive(Debug, Clone, Copy, PartialEq)]
enum HostState {
    /// Serving and eligible for placement.
    Active,
    /// Scaled down: draining its queue, containers warm, not placeable.
    /// Reactivation before `until` is free; at `until` the slot releases.
    ParkedWarm { since: SimTime, until: SimTime },
    /// Cold scale-up in progress; becomes Active at the pending HostUp.
    Booting,
    /// Crashed or in an AZ outage; rejoins at the pending HostUp.
    Down,
    /// Unprovisioned slot.
    Released,
}

/// Event classes: at equal timestamps, completions land before fault /
/// lifecycle transitions, which land before autoscaler ticks, which land
/// before the re-dispatches those transitions queued — so a re-dispatch
/// never targets a host that died in the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// Predicted completion of dispatch `seq` on (region, host).
    Completion {
        region: usize,
        host: usize,
        seq: u64,
    },
    /// Host crash (fault plan).
    Crash { region: usize, host: usize },
    /// Straggler onset (fault plan).
    Straggler {
        region: usize,
        host: usize,
        factor_bits: u64,
    },
    /// AZ outage start: `group` = 0 for the low half of the slots, 1 high.
    OutageStart {
        region: usize,
        group: usize,
        until: SimTime,
    },
    /// A booting / repaired / outage-ended host comes (back) up, cold.
    HostUp { region: usize, host: usize },
    /// A parked host's keep-alive window ended (stale if reactivated).
    ParkExpire { region: usize, host: usize },
    /// Autoscaler evaluation for one region.
    ScaleTick { region: usize },
    /// Re-route a fault-evicted request through the front door.
    Redispatch { idx: usize, attempts: u32 },
}

impl EventKind {
    fn class(&self) -> u8 {
        match self {
            EventKind::Completion { .. } => 0,
            EventKind::Crash { .. }
            | EventKind::Straggler { .. }
            | EventKind::OutageStart { .. }
            | EventKind::HostUp { .. }
            | EventKind::ParkExpire { .. } => 1,
            EventKind::ScaleTick { .. } => 2,
            EventKind::Redispatch { .. } => 3,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    class: u8,
    /// Global push sequence: the deterministic final tie-break.
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.class, self.seq).cmp(&(other.at, other.class, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A dispatched request the routing model still considers in flight.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    idx: usize,
    region: usize,
    host: usize,
    service_ms: f64,
    long: bool,
    turnaround_ms: f64,
    attempts: u32,
}

/// One placement the execution phase will realise.
#[derive(Debug, Clone, Copy)]
struct PlacedReq {
    idx: usize,
    at_host: SimTime,
    penalty: SimDuration,
    /// Straggler factor at placement time (1.0 = healthy host).
    slow: f64,
}

/// Mutable per-region routing state.
struct RegionState {
    cfg: RegionConfig,
    hosts: Vec<HostLoad>,
    state: Vec<HostState>,
    /// Current slowdown factor per slot (1.0 = healthy).
    straggle: Vec<f64>,
    /// Reset generation per slot: placements key execution units by it.
    epoch: Vec<u32>,
    /// Timestamp of the latest scheduled HostUp per slot; earlier HostUp
    /// events in the heap are stale and must be ignored.
    pending_up: Vec<Option<SimTime>>,
    ring: Vec<(u64, usize)>,
    /// In-flight count across the region's hosts.
    depth: usize,
    rr: usize,
    stats: RegionStats,
}

impl RegionState {
    fn active_count(&self) -> usize {
        self.state
            .iter()
            .filter(|s| matches!(s, HostState::Active))
            .count()
    }

    /// The front door's load signal: modelled backlog (ms) per active
    /// core. Infinite when the region has no active host.
    fn backlog_per_core_ms(&self, now: SimTime, cores_per_host: usize) -> f64 {
        let active = self.active_count();
        if active == 0 {
            return f64::INFINITY;
        }
        let backlog: f64 = self
            .state
            .iter()
            .zip(self.hosts.iter())
            .filter(|(s, _)| matches!(s, HostState::Active))
            .map(|(_, h)| h.backlog_ms(now))
            .sum();
        backlog / (active * cores_per_host) as f64
    }
}

/// The sequential routing phase's full output.
struct FleetPlan {
    /// Execution units keyed `(region, host, epoch)` — BTreeMap order is
    /// the deterministic fan-out order.
    units: BTreeMap<(usize, usize, u32), Vec<PlacedReq>>,
    shed: Vec<u64>,
    lost: Vec<u64>,
    per_region: Vec<RegionStats>,
    cold_starts: u64,
    redispatches: u64,
    spilled: u64,
}

impl Fleet {
    /// A fleet of `regions` × `initial hosts` × `cores_per_host` with a
    /// deterministic RTT ladder (5 ms + 25 ms per region index), default
    /// front door and autoscaler, no affinity model, and no faults.
    pub fn new(regions: usize, hosts_per_region: usize, cores_per_host: usize) -> Fleet {
        assert!(regions >= 1 && hosts_per_region >= 1 && cores_per_host >= 1);
        let regions = (0..regions)
            .map(|i| RegionConfig {
                rtt_ms: 5.0 + 25.0 * i as f64,
                initial_hosts: hosts_per_region,
                max_hosts: hosts_per_region + (hosts_per_region / 2).max(1),
                min_hosts: 1,
            })
            .collect();
        Fleet {
            regions,
            cores_per_host,
            sfs: SfsConfig::new(cores_per_host),
            affinity: None,
            front_door: FrontDoor {
                spill_backlog_ms: 250.0,
                shed_backlog_ms: 10_000.0,
            },
            autoscaler: Some(Autoscaler::default()),
            faults: None,
            ewma_alpha: 0.2,
            seed: 0xF1EE_7D00,
            vnodes: 64,
        }
    }

    /// Enable the warm-container affinity model fleet-wide.
    pub fn with_affinity(mut self, keep_alive: SimDuration, cold_start: SimDuration) -> Fleet {
        self.affinity = Some(Affinity {
            keep_alive,
            cold_start,
        });
        self
    }

    /// Inject a fault scenario.
    pub fn with_faults(mut self, faults: FaultSpec) -> Fleet {
        self.faults = Some(faults);
        self
    }

    /// Route `workload` through the front door and run every execution
    /// unit to completion under this fleet's SFS configuration.
    pub fn run(&self, placement: Placement, workload: &Workload) -> FleetRun {
        self.run_with(placement, &self.sfs, workload)
    }

    /// As [`Fleet::run`] with any per-host scheduling policy; hosts share
    /// nothing but the routing model. Executes on the default worker count.
    pub fn run_with(
        &self,
        placement: Placement,
        factory: &(dyn ControllerFactory + Sync),
        workload: &Workload,
    ) -> FleetRun {
        self.run_with_threads(placement, factory, workload, parallel::default_threads())
    }

    /// As [`Fleet::run_with`] with an explicit worker-thread count. The
    /// result is bit-identical for every `threads` value ≥ 1.
    pub fn run_with_threads(
        &self,
        placement: Placement,
        factory: &(dyn ControllerFactory + Sync),
        workload: &Workload,
        threads: usize,
    ) -> FleetRun {
        let plan = self.route(placement, workload);
        let units: Vec<&Vec<PlacedReq>> = plan.units.values().collect();
        let unit_outcomes = parallel::run_indexed(units.len(), threads, |u| {
            let placed = units[u];
            // Sub-workload: this host-epoch's requests with arrivals moved
            // to host-arrival time, the cold penalty as a leading CPU
            // phase, and every CPU phase stretched by the straggler factor
            // in force at placement.
            let sub = Workload {
                requests: placed
                    .iter()
                    .map(|p| {
                        let mut r = workload.requests[p.idx].clone();
                        r.arrival = p.at_host;
                        if p.slow != 1.0 {
                            for ph in r.spec.phases.iter_mut() {
                                if let Phase::Cpu(d) = ph {
                                    *ph = Phase::Cpu(d.mul_f64(p.slow));
                                }
                            }
                        }
                        if !p.penalty.is_zero() {
                            r.spec
                                .phases
                                .insert(0, Phase::Cpu(p.penalty.mul_f64(p.slow)));
                        }
                        r
                    })
                    .collect(),
            };
            factory.run_on(self.cores_per_host, &sub).outcomes
        });
        let mut outcomes: Vec<RequestOutcome> = unit_outcomes.into_iter().flatten().collect();
        outcomes.sort_by_key(|o| o.id);
        // Re-base to the front-door invocation, the OpenLambda idiom: RTT,
        // queueing, and re-dispatch delay are part of what the user felt.
        for o in outcomes.iter_mut() {
            let front = workload.requests[o.id as usize].arrival;
            o.arrival = front;
            o.turnaround = o.finished.since(front);
            o.rte = if o.turnaround.is_zero() {
                1.0
            } else {
                (o.ideal.as_nanos() as f64 / o.turnaround.as_nanos() as f64).min(1.0)
            };
        }
        FleetRun {
            outcomes,
            shed: plan.shed,
            lost: plan.lost,
            placement,
            per_region: plan.per_region,
            cold_starts: plan.cold_starts,
            redispatches: plan.redispatches,
            spilled: plan.spilled,
            requests: workload.len(),
        }
    }

    /// The sequential routing phase: front door + autoscaler + fault
    /// injection in one event loop. Pure in `(self, placement, workload)`.
    fn route(&self, placement: Placement, workload: &Workload) -> FleetPlan {
        let t1 = Table1Sampler::new();
        let aff = self.affinity;
        let faults = self.faults.unwrap_or_default();
        let mut regions: Vec<RegionState> = self
            .regions
            .iter()
            .enumerate()
            .map(|(i, cfg)| {
                assert!(
                    cfg.initial_hosts >= 1
                        && cfg.initial_hosts <= cfg.max_hosts
                        && cfg.min_hosts >= 1,
                    "region {i}: need 1 <= min <= initial <= max hosts"
                );
                RegionState {
                    hosts: (0..cfg.max_hosts)
                        .map(|_| HostLoad::new(self.cores_per_host))
                        .collect(),
                    state: (0..cfg.max_hosts)
                        .map(|h| {
                            if h < cfg.initial_hosts {
                                HostState::Active
                            } else {
                                HostState::Released
                            }
                        })
                        .collect(),
                    straggle: vec![1.0; cfg.max_hosts],
                    epoch: vec![0; cfg.max_hosts],
                    pending_up: vec![None; cfg.max_hosts],
                    ring: build_ring(
                        cfg.max_hosts,
                        self.vnodes,
                        SeedSequencer::new(self.seed).seed_for(i as u64),
                    ),
                    depth: 0,
                    rr: 0,
                    stats: RegionStats::default(),
                    cfg: cfg.clone(),
                }
            })
            .collect();
        // The cheapest-RTT region is every request's "home"; placements
        // elsewhere count as spillover.
        let home = argmin_index(self.regions.iter().map(|r| r.rtt_ms)).unwrap_or(0);

        let order = workload.arrival_order();
        let mut heap: BinaryHeap<std::cmp::Reverse<Event>> = BinaryHeap::new();
        let mut event_seq = 0u64;
        let push = |heap: &mut BinaryHeap<std::cmp::Reverse<Event>>,
                    seq: &mut u64,
                    at: SimTime,
                    kind: EventKind| {
            heap.push(std::cmp::Reverse(Event {
                at,
                class: kind.class(),
                seq: *seq,
                kind,
            }));
            *seq += 1;
        };

        // Seed-derived fault plan + first autoscaler ticks, both pinned to
        // the workload's arrival span.
        if let (Some(&first), Some(&last)) = (order.first(), order.last()) {
            let t0 = workload.requests[first].arrival;
            let span_ms = workload.requests[last].arrival.since(t0).as_millis_f64();
            if faults.is_active() && !self.regions.is_empty() {
                let mut rng =
                    SimRng::seed_from_u64(SeedSequencer::new(self.seed).seed_for(0xFA017));
                let at_frac = |rng: &mut SimRng, lo: f64, hi: f64| {
                    t0 + SimDuration::from_millis_f64(rng.uniform(lo, hi) * span_ms.max(1.0))
                };
                for _ in 0..faults.crashes {
                    let at = at_frac(&mut rng, 0.10, 0.80);
                    let region = rng.uniform_u64(0, self.regions.len() as u64 - 1) as usize;
                    let host =
                        rng.uniform_u64(0, self.regions[region].initial_hosts as u64 - 1) as usize;
                    push(
                        &mut heap,
                        &mut event_seq,
                        at,
                        EventKind::Crash { region, host },
                    );
                }
                for _ in 0..faults.stragglers {
                    let at = at_frac(&mut rng, 0.05, 0.40);
                    let region = rng.uniform_u64(0, self.regions.len() as u64 - 1) as usize;
                    let host =
                        rng.uniform_u64(0, self.regions[region].initial_hosts as u64 - 1) as usize;
                    push(
                        &mut heap,
                        &mut event_seq,
                        at,
                        EventKind::Straggler {
                            region,
                            host,
                            factor_bits: faults.straggler_factor.to_bits(),
                        },
                    );
                }
                for _ in 0..faults.outages {
                    let at = at_frac(&mut rng, 0.20, 0.60);
                    let until = at + SimDuration::from_millis_f64(0.20 * span_ms.max(1.0));
                    let region = rng.uniform_u64(0, self.regions.len() as u64 - 1) as usize;
                    let group = rng.uniform_u64(0, 1) as usize;
                    push(
                        &mut heap,
                        &mut event_seq,
                        at,
                        EventKind::OutageStart {
                            region,
                            group,
                            until,
                        },
                    );
                }
            }
            if let Some(auto) = self.autoscaler {
                for r in 0..self.regions.len() {
                    push(
                        &mut heap,
                        &mut event_seq,
                        t0 + auto.tick,
                        EventKind::ScaleTick { region: r },
                    );
                }
            }
        }

        let mut units: BTreeMap<(usize, usize, u32), Vec<PlacedReq>> = BTreeMap::new();
        let mut in_flight: BTreeMap<u64, InFlight> = BTreeMap::new();
        let mut last_seen: BTreeMap<(usize, usize, u64), SimTime> = BTreeMap::new();
        let mut shed: Vec<u64> = Vec::new();
        let mut lost: Vec<u64> = Vec::new();
        let mut dispatch_seq = 0u64;
        let mut cold_starts = 0u64;
        let mut redispatches = 0u64;
        let mut spilled = 0u64;

        // One dispatch: route the request at the front door, place it in
        // the chosen region, admit it into the dispatcher model.
        macro_rules! dispatch {
            ($idx:expr, $now:expr, $attempts:expr) => {{
                let idx: usize = $idx;
                let now: SimTime = $now;
                let attempts: u32 = $attempts;
                let r = &workload.requests[idx];
                match self.route_region(&regions, now) {
                    None => {
                        if attempts == 0 {
                            shed.push(r.id);
                        } else {
                            lost.push(r.id);
                        }
                    }
                    Some(region) => {
                        let key = func_key(&t1, r);
                        let long = r.duration_ms >= sfs_workload::LONG_THRESHOLD_MS;
                        let at_host =
                            now + SimDuration::from_millis_f64(regions[region].cfg.rtt_ms);
                        let host = pick_host(placement, &mut regions[region], key, long, at_host);
                        match host {
                            None => {
                                if attempts == 0 {
                                    shed.push(r.id);
                                } else {
                                    lost.push(r.id);
                                }
                            }
                            Some(host) => {
                                let reg = &mut regions[region];
                                let mut service_ms = r.spec.cpu_demand().as_millis_f64();
                                let mut penalty = SimDuration::ZERO;
                                if let Some(aff) = aff {
                                    let warm = last_seen
                                        .get(&(region, host, key))
                                        .is_some_and(|&t| at_host <= t + aff.keep_alive);
                                    if !warm {
                                        penalty = aff.cold_start;
                                        service_ms += aff.cold_start.as_millis_f64();
                                        cold_starts += 1;
                                        reg.stats.cold_starts += 1;
                                    }
                                }
                                let slow = reg.straggle[host];
                                service_ms *= slow;
                                let finish = reg.hosts[host].admit(at_host, service_ms);
                                reg.hosts[host].depth += 1;
                                reg.depth += 1;
                                if long {
                                    reg.hosts[host].outstanding_long_ms += service_ms;
                                }
                                reg.stats.placed += 1;
                                if region != home {
                                    spilled += 1;
                                }
                                if attempts > 0 {
                                    redispatches += 1;
                                }
                                last_seen.insert((region, host, key), finish);
                                in_flight.insert(
                                    dispatch_seq,
                                    InFlight {
                                        idx,
                                        region,
                                        host,
                                        service_ms,
                                        long,
                                        turnaround_ms: finish.since(at_host).as_millis_f64(),
                                        attempts,
                                    },
                                );
                                push(
                                    &mut heap,
                                    &mut event_seq,
                                    finish,
                                    EventKind::Completion {
                                        region,
                                        host,
                                        seq: dispatch_seq,
                                    },
                                );
                                dispatch_seq += 1;
                                units
                                    .entry((region, host, reg.epoch[host]))
                                    .or_default()
                                    .push(PlacedReq {
                                        idx,
                                        at_host,
                                        penalty,
                                        slow,
                                    });
                            }
                        }
                    }
                }
            }};
        }

        // One fleet event. `arrivals_done` gates autoscaler re-arming so
        // the post-arrival drain terminates.
        macro_rules! handle {
            ($ev:expr, $arrivals_done:expr) => {{
                let ev: Event = $ev;
                match ev.kind {
                    EventKind::Completion { region, host, seq } => {
                        // Stale if the dispatch was evicted by a crash.
                        if let Some(fl) = in_flight.remove(&seq) {
                            let reg = &mut regions[region];
                            reg.hosts[host].depth -= 1;
                            reg.depth -= 1;
                            if fl.long {
                                reg.hosts[host].outstanding_long_ms =
                                    (reg.hosts[host].outstanding_long_ms - fl.service_ms).max(0.0);
                            }
                            reg.hosts[host].ewma_turnaround_ms =
                                Some(match reg.hosts[host].ewma_turnaround_ms {
                                    Some(e) => {
                                        self.ewma_alpha * fl.turnaround_ms
                                            + (1.0 - self.ewma_alpha) * e
                                    }
                                    None => fl.turnaround_ms,
                                });
                        }
                    }
                    EventKind::Crash { region, host } => {
                        if take_host_down(
                            &mut regions[region],
                            region,
                            host,
                            ev.at,
                            &mut units,
                            &mut in_flight,
                            &mut last_seen,
                            &mut lost,
                            &faults,
                            |at, kind| push(&mut heap, &mut event_seq, at, kind),
                        ) {
                            let up_at = ev.at + faults.repair;
                            regions[region].pending_up[host] = Some(up_at);
                            push(
                                &mut heap,
                                &mut event_seq,
                                up_at,
                                EventKind::HostUp { region, host },
                            );
                        }
                    }
                    EventKind::Straggler {
                        region,
                        host,
                        factor_bits,
                    } => {
                        regions[region].straggle[host] = f64::from_bits(factor_bits);
                    }
                    EventKind::OutageStart {
                        region,
                        group,
                        until,
                    } => {
                        // The whole group goes down now and rejoins
                        // together at the outage end.
                        for h in az_members(regions[region].cfg.max_hosts, group) {
                            if take_host_down(
                                &mut regions[region],
                                region,
                                h,
                                ev.at,
                                &mut units,
                                &mut in_flight,
                                &mut last_seen,
                                &mut lost,
                                &faults,
                                |at, kind| push(&mut heap, &mut event_seq, at, kind),
                            ) {
                                regions[region].pending_up[h] = Some(until);
                                push(
                                    &mut heap,
                                    &mut event_seq,
                                    until,
                                    EventKind::HostUp { region, host: h },
                                );
                            }
                        }
                    }
                    EventKind::HostUp { region, host } => {
                        let reg = &mut regions[region];
                        // Stale unless this is the most recently scheduled
                        // rejoin for the slot (a boot's HostUp must not
                        // revive a host an outage took down in between).
                        if reg.pending_up[host] == Some(ev.at)
                            && matches!(reg.state[host], HostState::Down | HostState::Booting)
                        {
                            reg.pending_up[host] = None;
                            reg.state[host] = HostState::Active;
                            reg.hosts[host].reset(ev.at);
                            reg.epoch[host] += 1;
                            clear_warmth(&mut last_seen, region, host);
                        }
                    }
                    EventKind::ParkExpire { region, host } => {
                        let reg = &mut regions[region];
                        if let HostState::ParkedWarm { since, until } = reg.state[host] {
                            // Stale if the host was reactivated and parked
                            // again with a fresher window.
                            if until == ev.at {
                                if reg.hosts[host].depth > 0 {
                                    // Still draining: a slot cannot release
                                    // with work on it — extend the window
                                    // (the bill keeps running from `since`).
                                    if let Some(auto) = self.autoscaler {
                                        let next = ev.at + auto.warm_park;
                                        reg.state[host] =
                                            HostState::ParkedWarm { since, until: next };
                                        push(
                                            &mut heap,
                                            &mut event_seq,
                                            next,
                                            EventKind::ParkExpire { region, host },
                                        );
                                    }
                                } else {
                                    reg.state[host] = HostState::Released;
                                    reg.stats.warm_host_ms += until.since(since).as_millis_f64();
                                    reg.stats.releases += 1;
                                }
                            }
                        }
                    }
                    EventKind::ScaleTick { region } => {
                        if let Some(auto) = self.autoscaler {
                            scale_region(&mut regions[region], region, &auto, ev.at, |at, kind| {
                                push(&mut heap, &mut event_seq, at, kind)
                            });
                            if !$arrivals_done || !in_flight.is_empty() {
                                push(
                                    &mut heap,
                                    &mut event_seq,
                                    ev.at + auto.tick,
                                    EventKind::ScaleTick { region },
                                );
                            }
                        }
                    }
                    EventKind::Redispatch { idx, attempts } => {
                        dispatch!(idx, ev.at, attempts);
                    }
                }
            }};
        }

        for &idx in &order {
            let now = workload.requests[idx].arrival;
            while let Some(&std::cmp::Reverse(ev)) = heap.peek() {
                if ev.at > now {
                    break;
                }
                heap.pop();
                handle!(ev, false);
            }
            dispatch!(idx, now, 0);
        }
        // Arrivals done: drain the remaining events (late completions,
        // rejoins, park expiries; ticks stop re-arming once idle).
        while let Some(std::cmp::Reverse(ev)) = heap.pop() {
            handle!(ev, true);
        }

        shed.sort_unstable();
        lost.sort_unstable();
        FleetPlan {
            units,
            shed,
            lost,
            per_region: regions.into_iter().map(|r| r.stats).collect(),
            cold_starts,
            redispatches,
            spilled,
        }
    }

    /// Front-door routing: among regions under the spill threshold, the
    /// lowest `rtt + backlog/core` score wins; if none, any region under
    /// the shed threshold; if none (or no region has an active host), the
    /// request is shed. Ties resolve to the lowest region index.
    fn route_region(&self, regions: &[RegionState], now: SimTime) -> Option<usize> {
        let loads: Vec<f64> = regions
            .iter()
            .map(|r| r.backlog_per_core_ms(now, self.cores_per_host))
            .collect();
        for threshold in [
            self.front_door.spill_backlog_ms,
            self.front_door.shed_backlog_ms,
        ] {
            let best = argmin_index(loads.iter().zip(regions.iter()).map(|(&l, r)| {
                if l < threshold {
                    r.cfg.rtt_ms + l
                } else {
                    f64::INFINITY
                }
            }));
            if let Some(b) = best {
                if loads[b] < threshold {
                    return Some(b);
                }
            }
        }
        None
    }
}

/// Intra-region placement over the active hosts only — the [`Placement`]
/// disciplines of [`Cluster`](crate::Cluster), restricted to the slate the autoscaler and
/// fault injector currently allow. `None` when no host is active.
fn pick_host(
    placement: Placement,
    reg: &mut RegionState,
    key: u64,
    long: bool,
    now: SimTime,
) -> Option<usize> {
    let n = reg.cfg.max_hosts;
    let actives = || (0..n).filter(|&h| matches!(reg.state[h], HostState::Active));
    let rr_next = |reg: &mut RegionState| {
        // Rotate over slots, skipping inactive ones; deterministic because
        // the cursor advances exactly to the chosen slot + 1.
        for step in 0..n {
            let h = (reg.rr + step) % n;
            if matches!(reg.state[h], HostState::Active) {
                reg.rr = h + 1;
                return Some(h);
            }
        }
        None
    };
    match placement {
        Placement::RoundRobin => rr_next(reg),
        Placement::LeastLoaded => {
            argmin_f64_over(actives().map(|h| (h, &reg.hosts[h])), |h| h.backlog_ms(now))
        }
        Placement::LongToLightest => {
            if long {
                argmin_f64_over(actives().map(|h| (h, &reg.hosts[h])), |h| {
                    h.outstanding_long_ms
                })
            } else {
                rr_next(reg)
            }
        }
        Placement::JoinShortestQueue => argmin_jsq_over(&reg.hosts, actives()),
        Placement::ConsistentHash => {
            let active_n = reg.active_count();
            if active_n == 0 {
                return None;
            }
            let cap = bounded_load_cap(reg.depth, active_n);
            ring_walk(&reg.ring, &reg.hosts, key, cap, |h| {
                matches!(reg.state[h], HostState::Active)
            })
            .or_else(|| argmin_f64_over(actives().map(|h| (h, &reg.hosts[h])), |h| h.depth as f64))
        }
    }
}

/// Index of the minimum of a float iterator under `total_cmp`, ties to the
/// lowest index; `None` on empty input.
fn argmin_index(scores: impl Iterator<Item = f64>) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in scores.enumerate() {
        best = match best {
            Some((_, bv)) if v.total_cmp(&bv).is_lt() => Some((i, v)),
            Some(b) => Some(b),
            None => Some((i, v)),
        };
    }
    best.map(|(i, _)| i)
}

/// The contiguous host slots of AZ `group` (0 = low half, 1 = high half).
fn az_members(max_hosts: usize, group: usize) -> std::ops::Range<usize> {
    let mid = max_hosts / 2;
    if group == 0 {
        0..mid.max(1)
    } else {
        mid.max(1)..max_hosts
    }
}

/// Drop all warm-pool entries of one host (its containers died with it).
fn clear_warmth(
    last_seen: &mut BTreeMap<(usize, usize, u64), SimTime>,
    region: usize,
    host: usize,
) {
    let keys: Vec<(usize, usize, u64)> = last_seen
        .range((region, host, 0)..=(region, host, u64::MAX))
        .map(|(&k, _)| k)
        .collect();
    for k in keys {
        last_seen.remove(&k);
    }
}

/// Take one host down (crash or outage member): evict its in-flight work
/// back through the front door, wipe its model and warm pool. Returns
/// whether the host actually went down (false for slots already down or
/// released — a fault on an unprovisioned slot is a no-op).
#[allow(clippy::too_many_arguments)]
fn take_host_down(
    reg: &mut RegionState,
    region: usize,
    host: usize,
    at: SimTime,
    units: &mut BTreeMap<(usize, usize, u32), Vec<PlacedReq>>,
    in_flight: &mut BTreeMap<u64, InFlight>,
    last_seen: &mut BTreeMap<(usize, usize, u64), SimTime>,
    lost: &mut Vec<u64>,
    faults: &FaultSpec,
    mut push: impl FnMut(SimTime, EventKind),
) -> bool {
    match reg.state[host] {
        HostState::Down | HostState::Released => return false,
        HostState::ParkedWarm { since, .. } => {
            reg.stats.warm_host_ms += at.since(since).as_millis_f64();
        }
        HostState::Active | HostState::Booting => {}
    }
    // Victims in dispatch order (BTreeMap is seq-ordered): still-running
    // requests lose their progress and re-enter the front door now.
    let victims: Vec<(u64, InFlight)> = in_flight
        .iter()
        .filter(|(_, fl)| fl.region == region && fl.host == host)
        .map(|(&s, &fl)| (s, fl))
        .collect();
    if !victims.is_empty() {
        let epoch = reg.epoch[host];
        let unit = units
            .get_mut(&(region, host, epoch))
            .expect("victims imply placements in the current epoch");
        unit.retain(|p| !victims.iter().any(|(_, fl)| fl.idx == p.idx));
        if unit.is_empty() {
            units.remove(&(region, host, epoch));
        }
    }
    for (seq, fl) in victims {
        in_flight.remove(&seq);
        reg.hosts[host].depth -= 1;
        reg.depth -= 1;
        if fl.attempts >= faults.max_redispatch {
            lost.push(fl.idx as u64);
        } else {
            push(
                at,
                EventKind::Redispatch {
                    idx: fl.idx,
                    attempts: fl.attempts + 1,
                },
            );
        }
    }
    reg.state[host] = HostState::Down;
    reg.hosts[host].reset(at);
    clear_warmth(last_seen, region, host);
    reg.stats.crashes += 1;
    true
}

/// One autoscaler evaluation for one region.
fn scale_region(
    reg: &mut RegionState,
    region: usize,
    auto: &Autoscaler,
    now: SimTime,
    mut push: impl FnMut(SimTime, EventKind),
) {
    let active = reg.active_count();
    if active == 0 {
        return;
    }
    let depth_per_host = reg.depth as f64 / active as f64;
    if depth_per_host > auto.up_depth_per_host {
        // Prefer the cheapest capacity: a parked host is warm and instant.
        if let Some(h) =
            (0..reg.cfg.max_hosts).find(|&h| matches!(reg.state[h], HostState::ParkedWarm { .. }))
        {
            if let HostState::ParkedWarm { since, .. } = reg.state[h] {
                reg.stats.warm_host_ms += now.since(since).as_millis_f64();
            }
            reg.state[h] = HostState::Active;
            reg.stats.reactivations += 1;
        } else if let Some(h) =
            (0..reg.cfg.max_hosts).find(|&h| matches!(reg.state[h], HostState::Released))
        {
            reg.state[h] = HostState::Booting;
            reg.stats.boots += 1;
            let up_at = now + auto.boot_delay;
            reg.pending_up[h] = Some(up_at);
            push(up_at, EventKind::HostUp { region, host: h });
        }
    } else if depth_per_host < auto.down_depth_per_host && active > reg.cfg.min_hosts {
        // Park the highest-index active host: it drains its queue warm and
        // releases when the keep-alive window lapses.
        if let Some(h) = (0..reg.cfg.max_hosts)
            .rev()
            .find(|&h| matches!(reg.state[h], HostState::Active))
        {
            let until = now + auto.warm_park;
            reg.state[h] = HostState::ParkedWarm { since: now, until };
            reg.stats.parks += 1;
            push(until, EventKind::ParkExpire { region, host: h });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_workload::WorkloadSpec;

    fn workload(n: usize, cores: usize, load: f64, seed: u64) -> Workload {
        WorkloadSpec::azure_sampled(n, seed)
            .with_load(cores, load)
            .generate()
    }

    /// Every request id appears exactly once across completed / shed /
    /// lost — the conservation-under-failure invariant.
    fn assert_conserved(run: &FleetRun, n: usize) {
        assert!(run.conservation_holds(), "sizes do not sum to {n}");
        let mut ids: Vec<u64> = run.outcomes.iter().map(|o| o.id).collect();
        ids.extend_from_slice(&run.shed);
        ids.extend_from_slice(&run.lost);
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..n as u64).collect::<Vec<u64>>(),
            "every id exactly once across completed/shed/lost"
        );
    }

    #[test]
    fn fault_free_fleet_completes_everything() {
        let fleet = Fleet::new(2, 4, 2);
        let w = workload(600, 16, 0.7, 31);
        for p in Placement::ALL {
            let run = fleet.run(p, &w);
            assert_eq!(run.outcomes.len(), 600, "{}: shed or lost work", p.name());
            assert!(run.shed.is_empty() && run.lost.is_empty(), "{}", p.name());
            assert_conserved(&run, 600);
            for (i, o) in run.outcomes.iter().enumerate() {
                assert_eq!(o.id, i as u64);
                assert!(o.rte > 0.0 && o.rte <= 1.0);
            }
        }
    }

    #[test]
    fn turnaround_includes_rtt() {
        // Every placement pays at least the home region's RTT.
        let fleet = Fleet::new(2, 2, 2);
        let w = workload(200, 8, 0.5, 33);
        let run = fleet.run(Placement::JoinShortestQueue, &w);
        let min_rtt = SimDuration::from_millis_f64(5.0);
        for o in &run.outcomes {
            assert!(
                o.turnaround >= o.ideal + min_rtt,
                "req {} turnaround {} below ideal+RTT",
                o.id,
                o.turnaround
            );
        }
    }

    #[test]
    fn results_identical_for_every_thread_count() {
        // The acceptance gate in miniature: a faulted, autoscaled,
        // affinity-enabled 2-region fleet is bit-identical at any thread
        // count.
        let fleet = Fleet::new(2, 4, 2)
            .with_affinity(
                SimDuration::from_millis(2_000),
                SimDuration::from_millis(25),
            )
            .with_faults(FaultSpec {
                crashes: 2,
                stragglers: 1,
                outages: 1,
                ..FaultSpec::default()
            });
        let w = workload(800, 16, 0.9, 35);
        for p in Placement::ALL {
            let one = fleet.run_with_threads(p, &fleet.sfs, &w, 1);
            assert_conserved(&one, 800);
            for threads in [2, 8] {
                let many = fleet.run_with_threads(p, &fleet.sfs, &w, threads);
                assert_eq!(one.shed, many.shed, "{} t={threads}", p.name());
                assert_eq!(one.lost, many.lost, "{} t={threads}", p.name());
                assert_eq!(one.per_region, many.per_region, "{} t={threads}", p.name());
                assert_eq!(one.outcomes.len(), many.outcomes.len());
                for (a, b) in one.outcomes.iter().zip(many.outcomes.iter()) {
                    assert_eq!(a.id, b.id, "{} t={threads}", p.name());
                    assert_eq!(a.finished, b.finished, "{} t={threads}", p.name());
                    assert_eq!(a.rte.to_bits(), b.rte.to_bits());
                    assert_eq!(a.ctx_switches, b.ctx_switches);
                }
            }
        }
    }

    #[test]
    fn conservation_under_every_fault_mix() {
        let specs = [
            FaultSpec::default(),
            FaultSpec {
                crashes: 3,
                ..FaultSpec::default()
            },
            FaultSpec {
                outages: 2,
                ..FaultSpec::default()
            },
            FaultSpec {
                crashes: 2,
                stragglers: 2,
                outages: 1,
                max_redispatch: 0,
                ..FaultSpec::default()
            },
        ];
        for (si, spec) in specs.iter().enumerate() {
            let mut fleet = Fleet::new(2, 3, 2).with_faults(*spec);
            fleet.seed ^= si as u64;
            let w = workload(400, 12, 0.9, 40 + si as u64);
            for p in [Placement::RoundRobin, Placement::ConsistentHash] {
                let run = fleet.run(p, &w);
                assert_conserved(&run, 400);
            }
        }
    }

    #[test]
    fn crashes_cause_redispatch_and_budget_exhaustion_loses() {
        // With a healthy budget, crash victims are re-placed; with a zero
        // budget, every victim is attributably lost.
        let base = Fleet::new(2, 3, 2);
        let w = workload(500, 12, 1.0, 41);
        let faulted = base.clone().with_faults(FaultSpec {
            crashes: 3,
            ..FaultSpec::default()
        });
        let run = faulted.run(Placement::JoinShortestQueue, &w);
        assert_conserved(&run, 500);
        assert!(
            run.redispatches > 0 || run.lost.is_empty(),
            "crashes at load 1.0 should evict someone"
        );
        let strict = base.with_faults(FaultSpec {
            crashes: 3,
            max_redispatch: 0,
            ..FaultSpec::default()
        });
        let run0 = strict.run(Placement::JoinShortestQueue, &w);
        assert_conserved(&run0, 500);
        assert_eq!(run0.redispatches, 0, "budget 0 re-places nothing");
        assert!(
            run0.lost.len() >= run.lost.len(),
            "a zero budget cannot lose less"
        );
        let crashes: u64 = run0.per_region.iter().map(|r| r.crashes).sum();
        assert!(crashes > 0, "the fault plan must actually land");
    }

    #[test]
    fn outage_takes_group_down_and_brings_it_back() {
        let fleet = Fleet::new(1, 6, 2).with_faults(FaultSpec {
            outages: 1,
            ..FaultSpec::default()
        });
        let w = workload(600, 12, 0.9, 43);
        let run = fleet.run(Placement::LeastLoaded, &w);
        assert_conserved(&run, 600);
        assert!(
            run.per_region[0].crashes >= 2,
            "an AZ outage downs a host group, got {}",
            run.per_region[0].crashes
        );
        // The fleet keeps serving: most of the workload still completes.
        assert!(
            run.outcomes.len() > 400,
            "only {} completed",
            run.outcomes.len()
        );
    }

    #[test]
    fn autoscaler_parks_warm_and_bills_the_keepalive() {
        // A workload that ends leaves the fleet idle: the scaler must park
        // down to min_hosts and the parked time must be billed.
        let mut fleet = Fleet::new(1, 4, 2);
        fleet.autoscaler = Some(Autoscaler {
            down_depth_per_host: 1.5,
            warm_park: SimDuration::from_millis(800),
            ..Autoscaler::default()
        });
        let w = workload(400, 8, 0.4, 47);
        let run = fleet.run(Placement::JoinShortestQueue, &w);
        assert_conserved(&run, 400);
        let s = &run.per_region[0];
        assert!(s.parks > 0, "an underloaded region must scale down");
        assert!(
            s.warm_host_ms > 0.0,
            "parked host time must appear on the warm-pool bill"
        );
        assert!(
            s.releases > 0,
            "keep-alive windows lapse once the run drains"
        );
    }

    #[test]
    fn spillover_routes_past_a_drowning_home_region() {
        // Tiny home region + tight spill threshold: the front door must
        // send overflow to the higher-RTT region rather than queue it.
        let mut fleet = Fleet::new(2, 2, 2);
        fleet.regions[0].initial_hosts = 1;
        fleet.regions[0].max_hosts = 1;
        fleet.autoscaler = None;
        fleet.front_door.spill_backlog_ms = 20.0;
        let w = workload(500, 4, 1.2, 51);
        let run = fleet.run(Placement::JoinShortestQueue, &w);
        assert_conserved(&run, 500);
        assert!(run.spilled > 0, "overflow must spill to region 1");
        assert!(
            run.per_region[1].placed > 0,
            "region 1 must receive spillover"
        );
    }

    #[test]
    fn shed_threshold_rejects_at_the_door() {
        // Shed threshold at the spill threshold: once every region drowns,
        // requests are refused rather than queued without bound.
        let mut fleet = Fleet::new(2, 1, 1);
        fleet.autoscaler = None;
        fleet.front_door.spill_backlog_ms = 30.0;
        fleet.front_door.shed_backlog_ms = 60.0;
        let w = workload(400, 2, 1.5, 53);
        let run = fleet.run(Placement::RoundRobin, &w);
        assert_conserved(&run, 400);
        assert!(!run.shed.is_empty(), "a drowning fleet must shed");
        assert!(run.lost.is_empty(), "shedding is not loss");
    }

    #[test]
    fn affinity_cold_starts_accumulate_per_region() {
        let fleet = Fleet::new(2, 3, 2).with_affinity(
            SimDuration::from_millis(1_500),
            SimDuration::from_millis(30),
        );
        let w = workload(800, 12, 0.8, 57);
        let run = fleet.run(Placement::ConsistentHash, &w);
        assert_conserved(&run, 800);
        assert!(run.cold_starts > 0);
        assert_eq!(
            run.cold_starts,
            run.per_region.iter().map(|r| r.cold_starts).sum::<u64>()
        );
    }

    #[test]
    fn fault_spec_parses_the_cli_spelling() {
        let spec = FaultSpec::parse("crash:2+straggler:3+outage:1").unwrap();
        assert_eq!(
            spec,
            FaultSpec {
                crashes: 2,
                stragglers: 3,
                outages: 1,
                ..FaultSpec::default()
            }
        );
        assert!(spec.is_active());
        assert!(!FaultSpec::default().is_active());
        assert_eq!(FaultSpec::parse("crash:1").unwrap().crashes, 1);
        // Errors name the offending term.
        let e = FaultSpec::parse("crash").unwrap_err();
        assert!(e.contains("`crash`"), "{e}");
        let e = FaultSpec::parse("crash:abc").unwrap_err();
        assert!(e.contains("`abc`"), "{e}");
        let e = FaultSpec::parse("meteor:1").unwrap_err();
        assert!(e.contains("`meteor`"), "{e}");
    }

    #[test]
    fn az_membership_partitions_the_slots() {
        for n in [2usize, 3, 6, 9] {
            let a: Vec<usize> = az_members(n, 0).collect();
            let b: Vec<usize> = az_members(n, 1).collect();
            let mut all = a.clone();
            all.extend_from_slice(&b);
            assert_eq!(all, (0..n).collect::<Vec<usize>>(), "n={n}");
        }
    }

    #[test]
    fn empty_workload_is_a_noop() {
        let fleet = Fleet::new(2, 2, 2).with_faults(FaultSpec {
            crashes: 5,
            ..FaultSpec::default()
        });
        let w = Workload {
            requests: Vec::new(),
        };
        let run = fleet.run(Placement::ConsistentHash, &w);
        assert!(run.outcomes.is_empty() && run.shed.is_empty() && run.lost.is_empty());
        assert_conserved(&run, 0);
    }
}
