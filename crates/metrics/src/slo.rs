//! FaaS performance SLOs (the paper's §I proposal).
//!
//! The paper observes there are no well-defined SLOs for short-job-dominant
//! FaaS workloads and proposes one: *"X% of function invocations must be
//! finished within a soft/hard-bounded ratio with respect to the duration
//! that this function would observe if running in an ideally isolated
//! environment."* This module implements exactly that rule so schedulers
//! can be compared on SLO attainment rather than raw distributions.

/// One SLO rule: `percentile`% of invocations must finish within
/// `slowdown_bound ×` their isolated (ideal) duration, with short
/// invocations granted a `grace_ms` absolute allowance (a 2 ms function
/// cannot reasonably be held to 2× = 4 ms on a shared host).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRule {
    /// Fraction of invocations that must comply, in the half-open unit range.
    pub target_fraction: f64,
    /// Allowed turnaround / ideal ratio.
    pub slowdown_bound: f64,
    /// Absolute grace added to the bound (ms).
    pub grace_ms: f64,
}

impl SloRule {
    /// A soft SLO: 95% of invocations within 2× isolated duration (+10 ms).
    pub fn soft() -> SloRule {
        SloRule {
            target_fraction: 0.95,
            slowdown_bound: 2.0,
            grace_ms: 10.0,
        }
    }

    /// A hard SLO: 99% within 10× (+10 ms) — the amplification ceiling the
    /// paper's motivation says CFS blows through at load.
    pub fn hard() -> SloRule {
        SloRule {
            target_fraction: 0.99,
            slowdown_bound: 10.0,
            grace_ms: 10.0,
        }
    }

    /// Does a single invocation comply?
    pub fn complies(&self, ideal_ms: f64, turnaround_ms: f64) -> bool {
        turnaround_ms <= ideal_ms * self.slowdown_bound + self.grace_ms
    }
}

/// Attainment of one rule over a set of invocations.
#[derive(Debug, Clone, Copy)]
pub struct SloReport {
    /// The evaluated rule.
    pub rule: SloRule,
    /// Fraction of invocations that complied.
    pub attained_fraction: f64,
    /// Whether the rule's target was met.
    pub met: bool,
    /// Number of invocations evaluated.
    pub evaluated: usize,
    /// The worst observed slowdown (turnaround / ideal).
    pub worst_slowdown: f64,
}

/// Evaluate a rule over `(ideal_ms, turnaround_ms)` pairs.
pub fn evaluate_slo(rule: SloRule, invocations: &[(f64, f64)]) -> SloReport {
    assert!(
        rule.target_fraction > 0.0 && rule.target_fraction <= 1.0,
        "target fraction out of range"
    );
    if invocations.is_empty() {
        return SloReport {
            rule,
            attained_fraction: 1.0,
            met: true,
            evaluated: 0,
            worst_slowdown: 1.0,
        };
    }
    let mut ok = 0usize;
    let mut worst = 1.0f64;
    for &(ideal, turn) in invocations {
        if rule.complies(ideal, turn) {
            ok += 1;
        }
        if ideal > 0.0 {
            worst = worst.max(turn / ideal);
        }
    }
    let frac = ok as f64 / invocations.len() as f64;
    SloReport {
        rule,
        attained_fraction: frac,
        met: frac >= rule.target_fraction,
        evaluated: invocations.len(),
        worst_slowdown: worst,
    }
}

/// The largest slowdown bound (at fixed grace) for which `target_fraction`
/// of invocations would comply — i.e. the tightest SLO this scheduler could
/// honour. Useful for "what SLO could we sell?" comparisons.
pub fn tightest_bound(target_fraction: f64, grace_ms: f64, invocations: &[(f64, f64)]) -> f64 {
    assert!(target_fraction > 0.0 && target_fraction <= 1.0);
    if invocations.is_empty() {
        return 1.0;
    }
    let mut ratios: Vec<f64> = invocations
        .iter()
        .map(|&(ideal, turn)| ((turn - grace_ms) / ideal.max(1e-9)).max(1.0))
        .collect();
    // total_cmp: a NaN ratio (degenerate upstream turnaround) sorts after
    // every number instead of panicking the whole report (simlint P1).
    ratios.sort_by(f64::total_cmp);
    let idx = (((target_fraction * ratios.len() as f64).ceil() as usize).max(1) - 1)
        .min(ratios.len() - 1);
    ratios[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliance_respects_bound_and_grace() {
        let rule = SloRule {
            target_fraction: 0.9,
            slowdown_bound: 2.0,
            grace_ms: 10.0,
        };
        assert!(rule.complies(100.0, 200.0));
        assert!(rule.complies(100.0, 210.0));
        assert!(!rule.complies(100.0, 211.0));
        // Tiny function: grace dominates.
        assert!(rule.complies(1.0, 12.0));
        assert!(!rule.complies(1.0, 12.1));
    }

    #[test]
    fn evaluation_counts_attainment() {
        let rule = SloRule {
            target_fraction: 0.75,
            slowdown_bound: 2.0,
            grace_ms: 0.0,
        };
        let invocations = vec![
            (100.0, 150.0), // ok
            (100.0, 199.0), // ok
            (100.0, 201.0), // violation
            (50.0, 60.0),   // ok
        ];
        let r = evaluate_slo(rule, &invocations);
        assert_eq!(r.evaluated, 4);
        assert!((r.attained_fraction - 0.75).abs() < 1e-12);
        assert!(r.met);
        assert!((r.worst_slowdown - 2.01).abs() < 1e-9);

        let strict = SloRule {
            target_fraction: 0.9,
            ..rule
        };
        assert!(!evaluate_slo(strict, &invocations).met);
    }

    #[test]
    fn empty_input_trivially_met() {
        let r = evaluate_slo(SloRule::soft(), &[]);
        assert!(r.met);
        assert_eq!(r.evaluated, 0);
    }

    #[test]
    fn tightest_bound_nan_turnaround_does_not_panic() {
        // Regression (simlint P1, mirroring the PR 7 ensure_sorted fix):
        // the ratio sort used partial_cmp().unwrap(), so a NaN reaching it
        // panicked the whole report. With total_cmp a NaN-laced input
        // still yields a usable bound.
        let invocations = vec![
            (10.0, f64::NAN),
            (f64::NAN, 20.0),
            (10.0, 20.0),
            (10.0, 30.0),
        ];
        let b = tightest_bound(0.5, 0.0, &invocations);
        assert!(b >= 1.0, "bound {b}");
    }

    #[test]
    fn tightest_bound_is_the_quantile_of_slowdowns() {
        let invocations: Vec<(f64, f64)> = (1..=100)
            .map(|i| (100.0, 100.0 * i as f64 / 10.0))
            .collect();
        // Slowdowns 0.1..10 floored at 1. p90 slowdown = 9.
        let b = tightest_bound(0.9, 0.0, &invocations);
        assert!((b - 9.0).abs() < 1e-9, "bound {b}");
        // Everything complies at the p100 bound.
        let all = tightest_bound(1.0, 0.0, &invocations);
        let rule = SloRule {
            target_fraction: 1.0,
            slowdown_bound: all,
            grace_ms: 0.0,
        };
        assert!(evaluate_slo(rule, &invocations).met);
    }

    #[test]
    fn presets_are_ordered() {
        assert!(SloRule::soft().slowdown_bound < SloRule::hard().slowdown_bound);
        assert!(SloRule::soft().target_fraction < SloRule::hard().target_fraction);
    }
}
