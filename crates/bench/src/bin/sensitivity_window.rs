//! Sensitivity: sliding-window length N for the IAT statistics (§V-C uses
//! N = 100). Sweeps N ∈ {10, 50, 100, 500} on the bursty workload, where
//! window length matters most: short windows chase noise, long windows lag
//! rate changes.

use sfs_bench::{banner, run_sfs, save, section, turnarounds_ms, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::PercentileTable;
use sfs_workload::{IatSpec, Spike, WorkloadSpec};

const CORES: usize = 16;
const WINDOWS: [usize; 4] = [10, 50, 100, 500];

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner("Sensitivity", "IAT window length N sweep", n, seed);

    let gen = move || {
        let mut spec = WorkloadSpec::azure_sampled(n, seed);
        spec.iat = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes: Spike::evenly_spaced(4, n / 20, 6.0, n),
        };
        spec.with_load(CORES, 0.85).generate()
    };
    let mut sweep = Sweep::new("sensitivity_window", seed);
    for window_n in WINDOWS {
        sweep.scenario(format!("N={window_n}"), move |_| {
            let mut cfg = SfsConfig::new(CORES);
            cfg.window_n = window_n;
            run_sfs(cfg, CORES, &gen())
        });
    }
    let results = sweep.run();

    let mut t = PercentileTable::new();
    section("per-window-length results");
    for (r, window_n) in results.iter().zip(WINDOWS) {
        println!(
            "N={window_n:>4}: mean {:.1} ms, recalcs {}, offloaded {}, peak queue delay {:.2}s",
            r.value.mean_turnaround_ms(),
            r.value.telemetry.slice_recalcs,
            r.value.telemetry.offloaded,
            r.value.telemetry.queue_delay_series.max_value()
        );
        t.push(r.label.clone(), turnarounds_ms(&r.value.outcomes));
    }

    section("percentiles (ms)");
    println!("{}", t.to_markdown());
    save("sensitivity_window.csv", &t.to_csv());
}
