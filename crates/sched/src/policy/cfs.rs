//! CFS (Completely Fair Scheduler) runqueue model.
//!
//! Per-core red-black-tree runqueue ordered by `vruntime` (§II-B of the
//! paper), implemented with a `BTreeSet<(vruntime, Pid)>` which gives the
//! same O(log n) pick-smallest discipline. Mirrors mainline defaults:
//!
//! * `sched_latency_ns`        = 24 ms (scheduling period for ≤ 8 runnable),
//! * `sched_min_granularity`   = 3 ms  (slice floor; period stretches when
//!   more than `sched_latency / min_granularity` tasks are runnable),
//! * `sched_wakeup_granularity`= 4 ms  (preemption hysteresis on wakeup),
//! * nice→weight table from `kernel/sched/core.c` (`sched_prio_to_weight`).
//!
//! The paper's core observation (§III) falls out of these rules: with `k`
//! runnable tasks a short function receives only `period/k` of CPU every
//! `period`, so its turnaround is roughly `k ×` its service time.

use sfs_simcore::SimDuration;

use crate::task::Pid;

/// `sched_prio_to_weight`: weight for nice -20 (index 0) through 19 (39).
/// NICE_0_LOAD is 1024.
pub const NICE_TO_WEIGHT: [u32; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// Weight of a nice-0 task.
pub const NICE_0_WEIGHT: u32 = 1024;

/// Weight for a nice level, clamped to the valid range.
pub fn weight_of_nice(nice: i8) -> u32 {
    let idx = (nice.clamp(-20, 19) as i32 + 20) as usize;
    NICE_TO_WEIGHT[idx]
}

/// Tunables for the CFS model.
#[derive(Debug, Clone, Copy)]
pub struct CfsParams {
    /// Target scheduling period when few tasks are runnable.
    pub sched_latency: SimDuration,
    /// Minimum slice any task receives before preemption.
    pub min_granularity: SimDuration,
    /// Wakeup preemption hysteresis: a waking task preempts the current one
    /// only if its vruntime lags by more than this (weight-scaled in the
    /// kernel; fixed here).
    pub wakeup_granularity: SimDuration,
}

impl Default for CfsParams {
    fn default() -> Self {
        CfsParams {
            sched_latency: SimDuration::from_millis(24),
            min_granularity: SimDuration::from_millis(3),
            wakeup_granularity: SimDuration::from_millis(4),
        }
    }
}

impl CfsParams {
    /// The scheduling period for `nr_running` tasks: `sched_latency` while
    /// `nr ≤ sched_latency/min_granularity`, else `nr × min_granularity`
    /// (the kernel's `__sched_period`).
    pub fn period(&self, nr_running: u64) -> SimDuration {
        let nr_latency = (self.sched_latency.as_nanos() / self.min_granularity.as_nanos()).max(1);
        if nr_running <= nr_latency {
            self.sched_latency
        } else {
            self.min_granularity * nr_running
        }
    }

    /// Time slice for a task of `weight` among `total_weight` of runnable
    /// load with `nr_running` tasks (the kernel's `sched_slice`), floored at
    /// `min_granularity`.
    pub fn slice(&self, nr_running: u64, weight: u32, total_weight: u64) -> SimDuration {
        if total_weight == 0 {
            return self.sched_latency;
        }
        let period = self.period(nr_running);
        let s = period.mul_f64(weight as f64 / total_weight as f64);
        s.max(self.min_granularity)
    }

    /// vruntime delta for `exec` real runtime at `weight`
    /// (`delta_exec × NICE_0_LOAD / weight`).
    pub fn vruntime_delta(exec: SimDuration, weight: u32) -> u64 {
        ((exec.as_nanos() as u128 * NICE_0_WEIGHT as u128) / weight.max(1) as u128) as u64
    }
}

/// Sentinel for "this pid is not queued" in the position index.
const POS_NONE: u32 = u32::MAX;

/// A per-core CFS runqueue: queued (not running) tasks ordered by vruntime.
///
/// Index-backed: a 4-ary min-heap of `(vruntime, pid, weight)` entries
/// keyed by `(vruntime, pid)`, plus a dense `pid → heap position` index,
/// replacing the original `BTreeSet<(u64, Pid)>` + `HashMap<Pid, u32>`
/// weight table. A pick or an enqueue now touches one contiguous array
/// (no tree-node walks) and never hashes the pid (the weight travels in
/// the entry, the position index is a plain vector). The observable
/// semantics are identical — pops always yield the unique smallest
/// `(vruntime, pid)` — and the differential suite
/// (`tests/cfs_runqueue_diff.rs`) drives this and a naive sorted
/// reference model through randomized interleavings to prove it.
///
/// The position index is keyed by `pid.0`, sized to the largest pid ever
/// enqueued. The machine allocates pids densely from 0, so the index is
/// O(spawned tasks); don't feed sparse synthetic pids like
/// `Pid(u64::MAX)` to a real queue.
#[derive(Debug, Clone, Default)]
pub struct CfsRunqueue {
    /// 4-ary min-heap ordered by `(vruntime, pid)`; weight rides along.
    heap: Vec<(u64, Pid, u32)>,
    /// `pos[pid.0]` = index into `heap`, or [`POS_NONE`].
    pos: Vec<u32>,
    /// Monotonic minimum vruntime floor for this queue (never decreases).
    min_vruntime: u64,
    /// Sum of weights of queued tasks.
    total_weight: u64,
}

/// Heap ordering key.
#[inline]
fn key(e: &(u64, Pid, u32)) -> (u64, u64) {
    (e.0, e.1 .0)
}

impl CfsRunqueue {
    /// Empty runqueue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Sum of queued task weights.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The queue's monotonic min_vruntime floor. New/woken tasks are placed
    /// at `max(task.vruntime, min_vruntime)` so sleepers cannot hoard an
    /// arbitrarily small vruntime and starve the queue when they wake.
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }

    /// Normalise a task's vruntime for (re-)enqueue on this queue.
    pub fn place_vruntime(&self, task_vruntime: u64) -> u64 {
        task_vruntime.max(self.min_vruntime)
    }

    #[inline]
    fn pos_of(&self, pid: Pid) -> u32 {
        self.pos.get(pid.0 as usize).copied().unwrap_or(POS_NONE)
    }

    /// True iff `pid` is queued here (O(1) via the position index).
    pub fn contains(&self, pid: Pid) -> bool {
        self.pos_of(pid) != POS_NONE
    }

    /// Insert a task with its (already normalised) vruntime.
    pub fn enqueue(&mut self, pid: Pid, vruntime: u64, weight: u32) {
        debug_assert!(self.pos_of(pid) == POS_NONE, "task {pid} double-enqueued");
        let slot = pid.0 as usize;
        if self.pos.len() <= slot {
            self.pos.resize(slot + 1, POS_NONE);
        }
        let idx = self.heap.len();
        self.heap.push((vruntime, pid, weight));
        self.pos[slot] = idx as u32;
        self.total_weight += weight as u64;
        self.sift_up(idx);
    }

    /// Remove a specific task (e.g. policy change while queued). Returns
    /// `false` when `(pid, vruntime)` is not queued.
    pub fn remove(&mut self, pid: Pid, vruntime: u64) -> bool {
        let idx = self.pos_of(pid);
        if idx == POS_NONE || self.heap[idx as usize].0 != vruntime {
            return false;
        }
        let (_, _, w) = self.remove_at(idx as usize);
        self.total_weight = self.total_weight.saturating_sub(w as u64);
        true
    }

    /// Peek the leftmost (smallest-vruntime) task.
    pub fn peek(&self) -> Option<(u64, Pid)> {
        self.heap.first().map(|&(v, p, _)| (v, p))
    }

    /// Pop the leftmost task and advance `min_vruntime` to it.
    pub fn pop(&mut self) -> Option<(u64, Pid)> {
        if self.heap.is_empty() {
            return None;
        }
        let (v, p, w) = self.remove_at(0);
        self.total_weight = self.total_weight.saturating_sub(w as u64);
        self.advance_min_vruntime(v);
        Some((v, p))
    }

    /// Pop the *rightmost* (largest-vruntime) task — used for idle stealing,
    /// where taking the task that would run last disturbs the victim least.
    /// The heap keeps no max order, so this scans — stealing only happens
    /// when a core goes idle, far off the pick path.
    pub fn pop_last(&mut self) -> Option<(u64, Pid)> {
        let (idx, _) = self.heap.iter().enumerate().max_by_key(|(_, e)| key(e))?;
        let (v, p, w) = self.remove_at(idx);
        self.total_weight = self.total_weight.saturating_sub(w as u64);
        Some((v, p))
    }

    /// Raise the monotonic floor (called as tasks run/pop).
    pub fn advance_min_vruntime(&mut self, candidate: u64) {
        if candidate > self.min_vruntime {
            self.min_vruntime = candidate;
        }
    }

    /// Detach the entry at `idx`, refilling the hole from the heap tail.
    fn remove_at(&mut self, idx: usize) -> (u64, Pid, u32) {
        let entry = self.heap[idx];
        self.pos[entry.1 .0 as usize] = POS_NONE;
        let last = self.heap.pop().expect("non-empty");
        if idx < self.heap.len() {
            self.heap[idx] = last;
            self.pos[last.1 .0 as usize] = idx as u32;
            // The tail entry may belong above or below the hole.
            if idx > 0 && key(&self.heap[idx]) < key(&self.heap[(idx - 1) / 4]) {
                self.sift_up(idx);
            } else {
                self.sift_down(idx);
            }
        }
        entry
    }

    /// Hole-based sift: entries shift into the hole and the moving entry
    /// is written (and its position indexed) exactly once at the end.
    fn sift_up(&mut self, mut idx: usize) {
        let entry = self.heap[idx];
        let k = key(&entry);
        while idx > 0 {
            let parent = (idx - 1) / 4;
            if k < key(&self.heap[parent]) {
                self.heap[idx] = self.heap[parent];
                self.pos[self.heap[idx].1 .0 as usize] = idx as u32;
                idx = parent;
            } else {
                break;
            }
        }
        self.heap[idx] = entry;
        self.pos[entry.1 .0 as usize] = idx as u32;
    }

    fn sift_down(&mut self, mut idx: usize) {
        let entry = self.heap[idx];
        let k = key(&entry);
        loop {
            let first = 4 * idx + 1;
            if first >= self.heap.len() {
                break;
            }
            let mut best = first;
            let mut best_key = key(&self.heap[first]);
            for c in (first + 1)..(first + 4).min(self.heap.len()) {
                let ck = key(&self.heap[c]);
                if ck < best_key {
                    best = c;
                    best_key = ck;
                }
            }
            if best_key >= k {
                break;
            }
            self.heap[idx] = self.heap[best];
            self.pos[self.heap[idx].1 .0 as usize] = idx as u32;
            idx = best;
        }
        self.heap[idx] = entry;
        self.pos[entry.1 .0 as usize] = idx as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn weight_table_spot_checks() {
        assert_eq!(weight_of_nice(0), 1024);
        assert_eq!(weight_of_nice(-20), 88761);
        assert_eq!(weight_of_nice(19), 15);
        // Each nice level is ~1.25x the next.
        let r = weight_of_nice(0) as f64 / weight_of_nice(1) as f64;
        assert!((r - 1.25).abs() < 0.01, "nice ratio {r}");
        // Clamping out-of-range nice values.
        assert_eq!(weight_of_nice(-100), 88761);
        assert_eq!(weight_of_nice(100), 15);
    }

    #[test]
    fn period_stretches_under_load() {
        let p = CfsParams::default();
        assert_eq!(p.period(1), ms(24));
        assert_eq!(p.period(8), ms(24));
        // Beyond sched_latency/min_granularity = 8 tasks the period grows.
        assert_eq!(p.period(9), ms(27));
        assert_eq!(p.period(100), ms(300));
    }

    #[test]
    fn slice_is_proportional_and_floored() {
        let p = CfsParams::default();
        // Two equal nice-0 tasks: half the 24ms period each.
        let s = p.slice(2, NICE_0_WEIGHT, 2 * NICE_0_WEIGHT as u64);
        assert_eq!(s, ms(12));
        // Many tasks: the floor kicks in.
        let s = p.slice(1000, NICE_0_WEIGHT, 1000 * NICE_0_WEIGHT as u64);
        assert_eq!(s, ms(3));
        // Empty queue: full latency.
        assert_eq!(p.slice(0, NICE_0_WEIGHT, 0), ms(24));
    }

    #[test]
    fn vruntime_scales_inversely_with_weight() {
        // nice 0: 1ms of runtime -> 1ms of vruntime.
        assert_eq!(
            CfsParams::vruntime_delta(ms(1), NICE_0_WEIGHT),
            ms(1).as_nanos()
        );
        // High-priority (heavy) tasks accrue vruntime slower.
        let d = CfsParams::vruntime_delta(ms(1), weight_of_nice(-5));
        assert!(d < ms(1).as_nanos() / 3);
        // Low-priority (light) tasks accrue faster.
        let d = CfsParams::vruntime_delta(ms(1), weight_of_nice(5));
        assert!(d > ms(3).as_nanos());
    }

    #[test]
    fn runqueue_orders_by_vruntime() {
        let mut rq = CfsRunqueue::new();
        rq.enqueue(Pid(1), 300, 1024);
        rq.enqueue(Pid(2), 100, 1024);
        rq.enqueue(Pid(3), 200, 1024);
        assert_eq!(rq.len(), 3);
        assert_eq!(rq.total_weight(), 3 * 1024);
        let (v, p) = rq.pop().unwrap();
        assert_eq!((v, p), (100, Pid(2)));
        assert_eq!(rq.min_vruntime(), 100);
        let (v, p) = rq.pop().unwrap();
        assert_eq!((v, p), (200, Pid(3)));
        assert_eq!(rq.peek(), Some((300, Pid(1))));
    }

    #[test]
    fn min_vruntime_floor_is_monotone() {
        let mut rq = CfsRunqueue::new();
        rq.enqueue(Pid(1), 1000, 1024);
        rq.pop();
        assert_eq!(rq.min_vruntime(), 1000);
        // A task that slept with old vruntime 10 gets re-placed at the floor.
        assert_eq!(rq.place_vruntime(10), 1000);
        // A task already ahead keeps its own vruntime.
        assert_eq!(rq.place_vruntime(5000), 5000);
        rq.advance_min_vruntime(500); // lower candidate: no effect
        assert_eq!(rq.min_vruntime(), 1000);
    }

    #[test]
    fn remove_specific_entry() {
        let mut rq = CfsRunqueue::new();
        rq.enqueue(Pid(1), 10, 1024);
        rq.enqueue(Pid(2), 20, 512);
        assert!(rq.remove(Pid(2), 20));
        assert!(!rq.remove(Pid(2), 20));
        assert_eq!(rq.len(), 1);
        assert_eq!(rq.total_weight(), 1024);
    }

    #[test]
    fn pop_last_takes_tail() {
        let mut rq = CfsRunqueue::new();
        rq.enqueue(Pid(1), 10, 1024);
        rq.enqueue(Pid(2), 99, 1024);
        let (v, p) = rq.pop_last().unwrap();
        assert_eq!((v, p), (99, Pid(2)));
        // Stealing from the tail must not advance the floor.
        assert_eq!(rq.min_vruntime(), 0);
    }
}
