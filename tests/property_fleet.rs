//! Fleet conservation-under-failure invariant.
//!
//! For random workloads × fault scenarios × all five placements, the
//! fleet must attribute every offered request to exactly one outcome —
//! completed, shed at the front door, or lost to a fault — with the
//! three populations disjoint and summing to the workload size. Crashes
//! may move work, stragglers may stretch it, an AZ outage may take half
//! a region down mid-run: nothing may be double-counted or silently
//! dropped.
//!
//! The second test is the ISSUE's acceptance gate verbatim: a 2-region ×
//! 64-host faulted run is bit-identical at `--threads 1` vs `--threads 8`
//! (fingerprinted per request, shed/lost id lists compared exactly).
//!
//! Seeded case-loop style (like `property_cluster.rs`): fixed seeds,
//! exactly reproducible failures.

use std::collections::BTreeSet;

use sfs_repro::faas::{FaultSpec, Fleet, FleetRun, Placement};
use sfs_repro::simcore::{SimDuration, SimRng};
use sfs_repro::workload::WorkloadSpec;

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::seed_from_u64(0xF1EE_7CA5)
        .derive(test)
        .derive(&case.to_string())
}

/// Every id in 0..n lands in exactly one of completed / shed / lost.
fn assert_conserved(run: &FleetRun, n: usize, ctx: &str) {
    assert!(run.conservation_holds(), "{ctx}: counts do not sum to {n}");
    let mut seen = BTreeSet::new();
    for id in run
        .outcomes
        .iter()
        .map(|o| o.id)
        .chain(run.shed.iter().copied())
        .chain(run.lost.iter().copied())
    {
        assert!(seen.insert(id), "{ctx}: id {id} attributed twice");
    }
    assert_eq!(seen.len(), n, "{ctx}: id set incomplete");
    if let (Some(&lo), Some(&hi)) = (seen.first(), seen.last()) {
        assert_eq!((lo, hi), (0, n as u64 - 1), "{ctx}: ids out of range");
    }
    // Attribution side-channels agree with the populations they count.
    let placed: u64 = run.per_region.iter().map(|r| r.placed).sum();
    assert_eq!(
        placed,
        (n - run.shed.len()) as u64 + run.redispatches,
        "{ctx}: placements != routed + re-dispatched"
    );
}

const FAULT_MIXES: [&str; 5] = [
    "none",
    "crash:3",
    "straggler:3",
    "outage:1",
    "crash:2+straggler:2+outage:1",
];

fn faulted_fleet(regions: usize, hosts: usize, cores: usize, mix: &str) -> Fleet {
    let mut fleet = Fleet::new(regions, hosts, cores);
    if mix != "none" {
        fleet = fleet.with_faults(FaultSpec::parse(mix).expect("literal fault spec"));
    }
    fleet
}

#[test]
fn every_request_is_attributed_exactly_once_under_every_fault_mix() {
    for case in 0..8u64 {
        let mut rng = case_rng("conservation", case);
        let n = rng.uniform_u64(60, 240) as usize;
        let seed = rng.uniform_u64(0, 9_999);
        let regions = [1usize, 2, 3][rng.uniform_u64(0, 2) as usize];
        let hosts = [2usize, 4, 8][rng.uniform_u64(0, 2) as usize];
        let cores = rng.uniform_u64(1, 3) as usize;
        let load = rng.uniform(0.6, 1.3);
        let w = WorkloadSpec::azure_sampled(n, seed)
            .with_load(regions * hosts * cores, load)
            .generate();

        for mix in FAULT_MIXES {
            let mut fleet = faulted_fleet(regions, hosts, cores, mix);
            if case % 2 == 0 {
                fleet = fleet.with_affinity(
                    SimDuration::from_millis(rng.uniform_u64(100, 3_000)),
                    SimDuration::from_millis(rng.uniform_u64(1, 80)),
                );
            }
            for placement in Placement::ALL {
                let run = fleet.run(placement, &w);
                let ctx = format!(
                    "case {case}: {} {regions}x{hosts}x{cores} faults={mix}",
                    placement.name()
                );
                assert_conserved(&run, n, &ctx);
                // Loss is a fault outcome: fault-free runs complete or
                // shed, never lose.
                if mix == "none" {
                    assert!(run.lost.is_empty(), "{ctx}: lost without faults");
                }
            }
        }
    }
}

/// The acceptance gate: a 2-region × 64-host faulted run, bit-identical
/// at 1 vs 8 worker threads.
#[test]
fn faulted_64_host_fleet_is_bit_identical_at_1_vs_8_threads() {
    let n = 2_000usize;
    let fleet = faulted_fleet(2, 64, 2, "crash:6+straggler:4+outage:1").with_affinity(
        SimDuration::from_millis(2_000),
        SimDuration::from_millis(40),
    );
    let w = WorkloadSpec::azure_sampled(n, 0x064F_1EE7)
        .with_load(2 * 64 * 2, 0.95)
        .generate();

    let fingerprint = |run: &FleetRun| -> Vec<(u64, u64, u64, u64)> {
        run.outcomes
            .iter()
            .map(|o| {
                (
                    o.id,
                    o.finished.as_nanos(),
                    o.turnaround.as_nanos(),
                    o.rte.to_bits(),
                )
            })
            .collect()
    };

    let one = fleet.run_with_threads(Placement::JoinShortestQueue, &fleet.sfs, &w, 1);
    assert_conserved(&one, n, "threads=1");
    for threads in [2usize, 8] {
        let multi = fleet.run_with_threads(Placement::JoinShortestQueue, &fleet.sfs, &w, threads);
        assert_eq!(fingerprint(&one), fingerprint(&multi), "threads={threads}");
        assert_eq!(one.shed, multi.shed, "threads={threads}");
        assert_eq!(one.lost, multi.lost, "threads={threads}");
        assert_eq!(one.per_region, multi.per_region, "threads={threads}");
        assert_eq!(
            (one.cold_starts, one.redispatches, one.spilled),
            (multi.cold_starts, multi.redispatches, multi.spilled),
            "threads={threads}"
        );
    }
}

#[test]
fn conservation_holds_for_degenerate_shapes() {
    // More hosts than requests; single request; empty workload — each
    // under the full fault mix.
    for (regions, hosts, n) in [(2usize, 8usize, 3usize), (1, 4, 1), (3, 2, 0)] {
        let w = WorkloadSpec::azure_sampled(n, 77)
            .with_load(regions * hosts, 0.8)
            .generate();
        for placement in Placement::ALL {
            let run = faulted_fleet(regions, hosts, 2, "crash:2+straggler:2+outage:1")
                .with_affinity(SimDuration::from_millis(500), SimDuration::from_millis(20))
                .run(placement, &w);
            assert_conserved(&run, n, &format!("{regions}x{hosts} n={n}"));
        }
    }
}
