//! # sfs-core — the Smart Function Scheduler and the policy-driven sim API
//!
//! Reproduction of the paper's contribution: a user-space, two-level
//! function scheduler that approximates SRTF by steering Linux's existing
//! FIFO and CFS schedulers (paper §V–VI) — generalised so *any* user-space
//! policy is a pluggable [`Controller`] value driven by one [`Sim`] runner.
//!
//! * [`sim`] — the [`Controller`] trait, the [`Sim`] builder, and the
//!   uniform [`RunOutcome`] every policy produces;
//! * [`scheduler`] — [`SfsController`], the paper's policy (global queue +
//!   workers + FILTER/CFS flow), plus its SLO-deadline variant;
//! * [`policies`] — [`KernelOnly`] baselines, the [`Ideal`] bound, and
//!   further controllers ([`HistoryPriority`], [`UserMlfq`]);
//! * [`config`] — SFS tunables (window N, poll interval, overload factor O);
//! * [`timeslice`] — the adaptive FILTER slice `S = mean(IAT_N) × c`;
//! * [`baseline`] — [`Baseline`] descriptors ([`ControllerFactory`] form);
//! * [`stats`] — per-request outcomes and run aggregates.
//!
//! ## Quickstart
//! ```
//! use sfs_core::{Sim, SfsConfig, SfsController};
//! use sfs_sched::MachineParams;
//! use sfs_workload::WorkloadSpec;
//!
//! let workload = WorkloadSpec::azure_sampled(200, 1).with_load(4, 0.8).generate();
//! let run = Sim::on(MachineParams::linux(4))
//!     .workload(&workload)
//!     .controller(SfsController::new(SfsConfig::new(4)))
//!     .run();
//! assert_eq!(run.outcomes.len(), 200);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod config;
pub mod policies;
pub mod scheduler;
pub mod sim;
pub mod stats;
pub mod timeslice;

pub use baseline::Baseline;
pub use config::{QueueMode, SfsConfig, SliceMode};
pub use policies::{HistoryPriority, Ideal, KernelOnly, UserMlfq};
pub use scheduler::SfsController;
pub use sim::{
    Controller, ControllerFactory, FnFactory, MachineView, RunOutcome, Sim, StreamRun, Telemetry,
};
pub use stats::{OutcomeSummary, RequestOutcome, SfsRunResult};
pub use timeslice::SliceController;

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_sched::MachineParams;
    use sfs_simcore::SimDuration;
    use sfs_workload::{IatSpec, Spike, WorkloadSpec};

    fn run_sfs(cfg: SfsConfig, cores: usize, w: &sfs_workload::Workload) -> RunOutcome {
        Sim::on(MachineParams::linux(cores))
            .workload(w)
            .controller(SfsController::new(cfg))
            .run()
    }

    fn run_cfs(cores: usize, w: &sfs_workload::Workload) -> Vec<RequestOutcome> {
        Sim::on(MachineParams::linux(cores))
            .workload(w)
            .controller(KernelOnly(sfs_sched::Policy::NORMAL))
            .run()
            .outcomes
    }

    #[test]
    fn completes_all_requests() {
        let w = WorkloadSpec::azure_sampled(500, 9)
            .with_load(4, 0.8)
            .generate();
        let r = run_sfs(SfsConfig::new(4), 4, &w);
        assert_eq!(r.outcomes.len(), 500);
        for o in &r.outcomes {
            assert!(o.rte > 0.0 && o.rte <= 1.0, "req {} rte {}", o.id, o.rte);
            assert!(o.turnaround >= o.ideal.saturating_sub(SimDuration::from_micros(1)));
        }
    }

    #[test]
    fn short_functions_mostly_uninterrupted_at_moderate_load() {
        // Paper Fig. 7: at 65–80% load, ~88–93% of requests get RTE ≥ 0.95
        // under SFS.
        let w = WorkloadSpec::azure_sampled(2_000, 13)
            .with_load(8, 0.65)
            .generate();
        let r = run_sfs(SfsConfig::new(8), 8, &w);
        let frac = r.fraction_rte_at_least(0.95);
        assert!(
            frac > 0.80,
            "expected most requests unpreempted under SFS at 65% load, got {frac}"
        );
    }

    #[test]
    fn sfs_beats_cfs_for_short_functions_at_high_load() {
        // The headline claim: short functions improve dramatically vs CFS.
        let w = WorkloadSpec::azure_sampled(2_500, 17)
            .with_load(8, 1.0)
            .generate();
        let sfs = run_sfs(SfsConfig::new(8), 8, &w);
        let cfs = run_cfs(8, &w);
        let mean_short = |v: &[RequestOutcome]| {
            let xs: Vec<f64> = v
                .iter()
                .filter(|o| o.ideal < SimDuration::from_millis(400))
                .map(|o| o.turnaround.as_millis_f64())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let (s, c) = (mean_short(&sfs.outcomes), mean_short(&cfs));
        assert!(
            s * 3.0 < c,
            "SFS short-function mean {s}ms should be far below CFS {c}ms"
        );
    }

    #[test]
    fn long_functions_pay_a_bounded_penalty() {
        // Paper: the ~17% long functions run ~1.29x longer under SFS.
        let w = WorkloadSpec::azure_sampled(2_500, 19)
            .with_load(8, 1.0)
            .generate();
        let sfs = run_sfs(SfsConfig::new(8), 8, &w);
        let cfs = run_cfs(8, &w);
        let mean_long = |v: &[RequestOutcome]| {
            let xs: Vec<f64> = v
                .iter()
                .filter(|o| o.ideal >= SimDuration::from_millis(1550))
                .map(|o| o.turnaround.as_millis_f64())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let ratio = mean_long(&sfs.outcomes) / mean_long(&cfs);
        assert!(
            ratio < 2.5,
            "long-function penalty {ratio}x should stay moderate"
        );
    }

    #[test]
    fn adaptive_slice_actually_adapts() {
        let w = WorkloadSpec::azure_sampled(1_000, 23)
            .with_load(4, 0.9)
            .generate();
        let r = run_sfs(SfsConfig::new(4), 4, &w);
        assert!(
            r.telemetry.slice_recalcs >= 9,
            "expected ~10 recalcs, got {}",
            r.telemetry.slice_recalcs
        );
        assert_eq!(
            r.telemetry.slice_timeline.len() as u64,
            r.telemetry.slice_recalcs
        );
    }

    #[test]
    fn demotions_happen_for_long_functions() {
        let w = WorkloadSpec::azure_sampled(1_500, 29)
            .with_load(4, 0.9)
            .generate();
        let r = run_sfs(SfsConfig::new(4), 4, &w);
        assert!(
            r.telemetry.demoted > 0,
            "long functions must exceed the slice"
        );
        let long_demoted = r
            .outcomes
            .iter()
            .filter(|o| o.ideal >= SimDuration::from_millis(1550))
            .filter(|o| o.demoted || o.offloaded)
            .count();
        let long_total = r
            .outcomes
            .iter()
            .filter(|o| o.ideal >= SimDuration::from_millis(1550))
            .count();
        assert!(
            long_demoted * 10 >= long_total * 8,
            "most long functions should leave FILTER ({long_demoted}/{long_total})"
        );
    }

    #[test]
    fn io_aware_recovers_unused_slice() {
        let mut spec = WorkloadSpec::azure_sampled(800, 31);
        spec.io_fraction = 0.75;
        let w = spec.with_load(4, 0.8).generate();
        let aware = run_sfs(SfsConfig::new(4), 4, &w);
        let oblivious = run_sfs(SfsConfig::new(4).io_oblivious(), 4, &w);
        // I/O-aware SFS re-enqueues blocked functions: it must detect blocks.
        let blocks: u32 = aware.outcomes.iter().map(|o| o.io_blocks).sum();
        assert!(blocks > 100, "I/O blocks should be detected, got {blocks}");
        // And it should finish the workload at least as fast on mean.
        assert!(
            aware.mean_turnaround_ms() <= oblivious.mean_turnaround_ms() * 1.05,
            "aware {} vs oblivious {}",
            aware.mean_turnaround_ms(),
            oblivious.mean_turnaround_ms()
        );
    }

    #[test]
    fn overload_bypass_limits_queue_delay() {
        // Bursty workload (Fig. 12): with the hybrid fallback, peak global
        // queue delay must be far below the no-hybrid variant.
        let mut spec = WorkloadSpec::azure_sampled(3_000, 37);
        spec.iat = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes: Spike::evenly_spaced(2, 400, 25.0, 3_000),
        };
        let w = spec.with_load(4, 0.85).generate();
        let hybrid = run_sfs(SfsConfig::new(4), 4, &w);
        let pure = run_sfs(SfsConfig::new(4).without_hybrid(), 4, &w);
        assert!(
            hybrid.telemetry.offloaded > 0,
            "spikes must trigger the bypass"
        );
        let peak = |r: &RunOutcome| r.telemetry.queue_delay_series.max_value();
        assert!(
            peak(&hybrid) < peak(&pure),
            "hybrid peak {} should undercut pure-FILTER peak {}",
            peak(&hybrid),
            peak(&pure)
        );
    }

    #[test]
    fn slo_variant_bounds_queue_age_harder() {
        // Same burst shape as the hybrid test: the SLO deadline sheds aged
        // requests proactively at poll ticks, so its peak queue delay must
        // not exceed the paper rule's, and it must shed at least as many.
        let mut spec = WorkloadSpec::azure_sampled(3_000, 37);
        spec.iat = IatSpec::Bursty {
            base_mean_ms: 1.0,
            spikes: Spike::evenly_spaced(2, 400, 25.0, 3_000),
        };
        let w = spec.with_load(4, 0.85).generate();
        let deadline = SimDuration::from_millis(150);
        let slo = Sim::on(MachineParams::linux(4))
            .workload(&w)
            .controller(SfsController::with_slo(SfsConfig::new(4), deadline))
            .run();
        assert!(
            slo.telemetry.offloaded > 0,
            "the burst must trigger shedding"
        );
        // Every non-offloaded request met the deadline at its first pop.
        for o in slo.outcomes.iter().filter(|o| !o.offloaded) {
            assert!(
                o.queue_delay <= deadline,
                "req {} popped after its deadline: {}",
                o.id,
                o.queue_delay
            );
        }
        assert_eq!(slo.outcomes.len(), 3_000);
    }

    #[test]
    fn deterministic_end_to_end() {
        let w = WorkloadSpec::azure_sampled(600, 41)
            .with_load(4, 0.9)
            .generate();
        let a = run_sfs(SfsConfig::new(4), 4, &w);
        let b = run_sfs(SfsConfig::new(4), 4, &w);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finished, y.finished);
            assert_eq!(x.ctx_switches, y.ctx_switches);
            assert_eq!(x.demoted, y.demoted);
        }
        assert_eq!(a.telemetry.polls, b.telemetry.polls);
        assert_eq!(a.telemetry.offloaded, b.telemetry.offloaded);
    }

    #[test]
    fn run_aggregate_view_matches_run_outcome() {
        // SfsRunResult (the aggregate view the old facade returned) must
        // stay a faithful projection of RunOutcome.
        let w = WorkloadSpec::azure_sampled(700, 43)
            .with_load(4, 0.9)
            .generate();
        let run = run_sfs(SfsConfig::new(4), 4, &w);
        let agg: SfsRunResult = run_sfs(SfsConfig::new(4), 4, &w).into();
        assert_eq!(agg.outcomes.len(), run.outcomes.len());
        for (x, y) in agg.outcomes.iter().zip(run.outcomes.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.finished, y.finished);
            assert_eq!(x.rte.to_bits(), y.rte.to_bits());
        }
        assert_eq!(agg.polls, run.telemetry.polls);
        assert_eq!(agg.sched_actions, run.sched_actions);
        assert_eq!(agg.offloaded, run.telemetry.offloaded);
        assert_eq!(agg.demoted, run.telemetry.demoted);
        assert_eq!(agg.machine_ctx_switches, run.machine_ctx_switches);
        assert_eq!(agg.sim_span, run.sim_span);
    }

    #[test]
    fn sfs_reduces_context_switches_vs_cfs() {
        // Fig. 16's mechanism: CFS slices short functions repeatedly; under
        // SFS they run to completion in FILTER with zero involuntary
        // switches. (Totals are dominated by the demoted long tail, so the
        // paper's claim — and this test — is per-request.)
        let w = WorkloadSpec::azure_sampled(1_500, 43)
            .with_load(8, 1.0)
            .generate();
        let sfs = run_sfs(SfsConfig::new(8), 8, &w);
        let cfs = run_cfs(8, &w);
        let shorts: Vec<(&RequestOutcome, &RequestOutcome)> = sfs
            .outcomes
            .iter()
            .zip(cfs.iter())
            .filter(|(s, _)| s.ideal < SimDuration::from_millis(400))
            .collect();
        let zero_under_sfs = shorts.iter().filter(|(s, _)| s.ctx_switches == 0).count();
        assert!(
            zero_under_sfs * 100 >= shorts.len() * 95,
            "only {zero_under_sfs}/{} short requests unswitched under SFS",
            shorts.len()
        );
        let cfs_worse = sfs
            .outcomes
            .iter()
            .zip(cfs.iter())
            .filter(|(s, c)| c.ctx_switches > s.ctx_switches)
            .count();
        assert!(
            cfs_worse * 100 >= sfs.outcomes.len() * 70,
            "CFS should out-switch SFS for most requests ({cfs_worse}/{})",
            sfs.outcomes.len()
        );
    }

    #[test]
    fn fixed_slice_variants_run() {
        let w = WorkloadSpec::azure_sampled(400, 47)
            .with_load(4, 0.8)
            .generate();
        for ms in [50, 100, 200] {
            let r = run_sfs(SfsConfig::new(4).with_fixed_slice(ms), 4, &w);
            assert_eq!(r.outcomes.len(), 400);
            assert_eq!(r.telemetry.slice_recalcs, 0, "fixed slice must not adapt");
        }
    }

    #[test]
    fn global_queue_beats_per_worker_queues_on_tail() {
        // The paper's §VI design argument: a single global queue gives
        // natural work conservation; static per-worker queues suffer load
        // imbalance, inflating the tail.
        let w = WorkloadSpec::azure_sampled(2_000, 59)
            .with_load(8, 0.9)
            .generate();
        let global = run_sfs(SfsConfig::new(8), 8, &w);
        let per = run_sfs(SfsConfig::new(8).per_worker_queues(), 8, &w);
        let p99 = |r: &RunOutcome| {
            let mut s = sfs_simcore::Samples::from_vec(
                r.outcomes
                    .iter()
                    .map(|o| o.turnaround.as_millis_f64())
                    .collect(),
            );
            s.percentile(99.0)
        };
        assert!(
            p99(&global) <= p99(&per),
            "global p99 {} should not exceed per-worker p99 {}",
            p99(&global),
            p99(&per)
        );
        assert_eq!(
            per.outcomes.len(),
            2_000,
            "per-worker mode must still complete"
        );
    }

    #[test]
    fn overhead_model_produces_small_fraction() {
        let w = WorkloadSpec::azure_sampled(1_000, 53)
            .with_load(8, 0.8)
            .generate();
        let r = run_sfs(SfsConfig::new(8), 8, &w);
        let f = r.overhead_fraction(SimDuration::from_micros(120), SimDuration::from_micros(150));
        assert!(
            f > 0.0 && f < 0.15,
            "overhead fraction {f} out of plausible range"
        );
    }
}
