//! Extension: SLO attainment per scheduler (the paper's §I proposed SLO:
//! "X% of function invocations must be finished within a bounded ratio of
//! their ideally-isolated duration").
//!
//! Evaluates the soft (95% within 2×) and hard (99% within 10×) rules for
//! SFS and every kernel baseline at 80% and 100% load, plus the tightest
//! sellable bound per scheduler.

use sfs_bench::{banner, run_factory, run_sfs, save, section, Sweep};
use sfs_core::{Baseline, RequestOutcome, SfsConfig};
use sfs_metrics::{evaluate_slo, tightest_bound, MarkdownTable, SloRule};
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;
const BASELINES: [Baseline; 4] = [Baseline::Srtf, Baseline::Cfs, Baseline::Rr, Baseline::Fifo];

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Extension: SLO",
        "paper-proposed SLO attainment by scheduler",
        n,
        seed,
    );

    let gen = move |load: f64| {
        WorkloadSpec::azure_sampled(n, seed)
            .with_load(CORES, load)
            .generate()
    };
    let mut sweep: Sweep<'_, (f64, Vec<RequestOutcome>)> = Sweep::new("extension_slo", seed);
    for &load in &[0.8, 1.0] {
        sweep.scenario("SFS", move |_| {
            (
                load,
                run_sfs(SfsConfig::new(CORES), CORES, &gen(load)).outcomes,
            )
        });
        for b in BASELINES {
            sweep.scenario(b.name(), move |_| {
                (load, run_factory(&b, CORES, &gen(load)).outcomes)
            });
        }
    }
    let results = sweep.run();

    let mut table = MarkdownTable::new(&[
        "scheduler",
        "load",
        "soft SLO (95% in 2x)",
        "hard SLO (99% in 10x)",
        "tightest p95 bound",
    ]);
    for r in &results {
        let (load, outs) = &r.value;
        let invocations: Vec<(f64, f64)> = outs
            .iter()
            .map(|o| (o.ideal.as_millis_f64(), o.turnaround.as_millis_f64()))
            .collect();
        let soft = evaluate_slo(SloRule::soft(), &invocations);
        let hard = evaluate_slo(SloRule::hard(), &invocations);
        let bound = tightest_bound(0.95, 10.0, &invocations);
        table.row(&[
            r.label.clone(),
            format!("{:.0}%", load * 100.0),
            format!(
                "{:.1}% {}",
                soft.attained_fraction * 100.0,
                if soft.met { "MET" } else { "missed" }
            ),
            format!(
                "{:.1}% {}",
                hard.attained_fraction * 100.0,
                if hard.met { "MET" } else { "missed" }
            ),
            format!("{bound:.1}x"),
        ]);
    }

    section("SLO attainment");
    println!("{}", table.to_markdown());
    save("extension_slo.csv", &table.to_csv());
    println!(
        "Reading: SFS should be the only practical scheduler whose soft SLO\n\
         survives 100% load; FIFO misses even the hard SLO (convoy effect)."
    );
}
