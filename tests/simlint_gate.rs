//! The static-analysis gate: plain `cargo test` runs the `simlint` engine
//! over the whole workspace, so a determinism or panic-safety hazard (a
//! `HashMap` in sim code, a `partial_cmp().unwrap()` sort, wall-clock
//! reads outside the bench harness, a stray `unsafe`) fails the suite the
//! moment it is written — whether or not any golden snapshot happens to
//! exercise it. Same engine, same ruleset as `cargo run --bin simlint`
//! and the CI step.

use std::path::Path;

#[test]
fn workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let scan = sfs_lint::scan_workspace(root).expect("workspace scan");

    // Sanity: the walker must actually be seeing the tree (a wrong root
    // would vacuously pass).
    assert!(
        scan.files > 80,
        "only {} files scanned under {} — walker misconfigured?",
        scan.files,
        root.display()
    );

    assert!(
        scan.findings.is_empty(),
        "simlint found {} unsuppressed finding(s):\n{}\nfix the hazard or add a \
         `// lint: allow(<rule>, <reason>)` with a written reason (see \
         ARCHITECTURE.md \"Static analysis\")",
        scan.findings.len(),
        sfs_lint::report::human_table(&scan.findings)
    );

    // Every suppression that reached this point is well-formed (reasoned,
    // known rule, actually used) — the engine reports violations of the
    // allow contract as findings, so the assert above covers them. Keep
    // the suppressed count visible in the test output for reviewers.
    println!(
        "{}",
        sfs_lint::report::summary_line(0, scan.suppressed.len(), scan.files)
    );
}
