//! Differential suite: the timing-wheel event core against the binary-heap
//! core, driven through long randomized operation interleavings.
//!
//! Both backends realise the same total order — `(time, insertion seq)` —
//! so for *any* sequence of `push`/`pop`/`pop_until`/`pop_batch_until`/
//! `recycle` calls their outputs must be identical element for element.
//! The unit tests in `events.rs` pin individual contracts; this suite
//! shakes the state space: same-tick FIFO ties, far-future (overflow)
//! events, drained-and-refilled queues, and time jumps spanning several
//! wheel levels.

use sfs_simcore::{EventCore, EventQueue, SimDuration, SimRng, SimTime};

fn t(ns: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_nanos(ns)
}

/// One randomized op applied to both queues; their outputs must match.
fn step(
    rng: &mut SimRng,
    wheel: &mut EventQueue<u64>,
    heap: &mut EventQueue<u64>,
    now: &mut u64,
    next_payload: &mut u64,
) {
    assert_eq!(wheel.len(), heap.len());
    assert_eq!(wheel.is_empty(), heap.is_empty());
    assert_eq!(wheel.peek_time(), heap.peek_time());
    match rng.uniform_u64(0, 100) {
        // Push a burst: mixes same-tick ties (delta 0), short-range slots,
        // and far-future events that land in high wheel levels or overflow.
        0..=49 => {
            let burst = rng.uniform_u64(1, 8);
            for _ in 0..burst {
                let delta = match rng.uniform_u64(0, 10) {
                    0..=3 => 0,                           // same-tick FIFO tie
                    4..=6 => rng.uniform_u64(0, 1 << 12), // near: low levels
                    7..=8 => rng.uniform_u64(0, 1 << 30), // mid levels
                    _ => rng.uniform_u64(0, 1 << 45),     // far future / overflow
                };
                let at = t(*now + delta);
                wheel.push(at, *next_payload);
                heap.push(at, *next_payload);
                *next_payload += 1;
            }
        }
        // Plain pop.
        50..=64 => {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if let Some((at, _)) = a {
                *now = (*now).max(at.since(SimTime::ZERO).as_nanos());
            }
        }
        // Bounded pop: advance a randomized horizon (sometimes huge, to
        // force multi-level cascades in one jump).
        65..=79 => {
            let jump = match rng.uniform_u64(0, 3) {
                0 => rng.uniform_u64(0, 1 << 11),
                1 => rng.uniform_u64(0, 1 << 24),
                _ => rng.uniform_u64(0, 1 << 40),
            };
            let horizon = t(*now + jump);
            let (a, b) = (wheel.pop_until(horizon), heap.pop_until(horizon));
            assert_eq!(a, b);
            if let Some((at, _)) = a {
                *now = (*now).max(at.since(SimTime::ZERO).as_nanos());
            }
        }
        // Batch drain up to a horizon.
        80..=92 => {
            let horizon = t(*now + rng.uniform_u64(0, 1 << 28));
            let (mut va, mut vb) = (Vec::new(), Vec::new());
            let na = wheel.pop_batch_until(horizon, &mut va);
            let nb = heap.pop_batch_until(horizon, &mut vb);
            assert_eq!(na, nb);
            assert_eq!(va, vb);
            if let Some((at, _)) = va.last() {
                *now = (*now).max(at.since(SimTime::ZERO).as_nanos());
            }
        }
        // Recycle both (keeps capacity, must not disturb ordering state).
        _ => {
            wheel.recycle();
            heap.recycle();
        }
    }
}

fn run_differential(seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut wheel = EventQueue::with_core(EventCore::Wheel);
    let mut heap = EventQueue::with_core(EventCore::Heap);
    let mut now = 0u64;
    let mut payload = 0u64;
    for _ in 0..ops {
        step(&mut rng, &mut wheel, &mut heap, &mut now, &mut payload);
    }
    // Full drain: remaining contents must agree exactly, ties included.
    loop {
        let (a, b) = (wheel.pop(), heap.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
}

#[test]
fn randomized_interleavings_agree_across_seeds() {
    for seed in 0..12 {
        run_differential(seed, 4_000);
    }
}

#[test]
fn monotone_drain_pattern_agrees() {
    // The simulation's actual access pattern: time only moves forward,
    // batches drained at poll-tick horizons, new events pushed relative to
    // the just-popped time.
    let mut rng = SimRng::seed_from_u64(99);
    let mut wheel = EventQueue::with_core(EventCore::Wheel);
    let mut heap = EventQueue::with_core(EventCore::Heap);
    for i in 0..256u64 {
        let at = t(rng.uniform_u64(0, 1 << 20));
        wheel.push(at, i);
        heap.push(at, i);
    }
    let mut horizon = 0u64;
    let mut drained = 0usize;
    let mut payload = 256u64;
    while !heap.is_empty() {
        horizon += rng.uniform_u64(1, 1 << 16);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        wheel.pop_batch_until(t(horizon), &mut va);
        heap.pop_batch_until(t(horizon), &mut vb);
        assert_eq!(va, vb);
        drained += va.len();
        // Completion-style feedback: each drained event may schedule a
        // successor a short distance ahead (often on the same tick).
        for (at, _) in &va {
            if rng.chance(0.25) && payload < 2_000 {
                let next = *at + SimDuration::from_nanos(rng.uniform_u64(0, 4096));
                wheel.push(next, payload);
                heap.push(next, payload);
                payload += 1;
            }
        }
    }
    assert!(wheel.is_empty());
    assert!(drained >= 256);
}

#[test]
fn same_tick_fifo_ties_preserved_at_scale() {
    // Thousands of events on a handful of distinct instants: pop order must
    // be exact insertion order within each instant, on both backends.
    let mut wheel = EventQueue::with_core(EventCore::Wheel);
    let mut heap = EventQueue::with_core(EventCore::Heap);
    let instants: Vec<SimTime> = vec![t(0), t(1024), t(1 << 20), t(1 << 36), t(5)];
    for i in 0..5_000u64 {
        let at = instants[(i % 5) as usize];
        wheel.push(at, i);
        heap.push(at, i);
    }
    let mut last: Option<(SimTime, u64)> = None;
    while let Some((at, p)) = wheel.pop() {
        assert_eq!(heap.pop(), Some((at, p)));
        if let Some((lat, lp)) = last {
            assert!(at > lat || (at == lat && p > lp), "FIFO tie order broken");
        }
        last = Some((at, p));
    }
    assert!(heap.pop().is_none());
}
