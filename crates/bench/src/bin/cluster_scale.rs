//! Cluster-scale study: hosts × placement × load on the live-dispatch
//! cluster (`sfs_faas::cluster`), up to 64 hosts × 8 cores × 200k
//! requests.
//!
//! Two sweeps:
//!
//! 1. **placement × hosts** at 90% cluster load — request count scales
//!    with the fleet (the 64-host point runs the full
//!    `SFS_BENCH_REQUESTS`, default 200 000), so per-host pressure is
//!    comparable across fleet sizes;
//! 2. **placement × load** on a 16-host fleet, from comfortable (70%) to
//!    overloaded (110%).
//!
//! Hosts execute in parallel (`--threads N`, or `SFS_BENCH_THREADS`;
//! default: all cores). Every number printed or saved is **bit-identical
//! for any thread count** — the dispatcher places sequentially, host
//! simulations land in host-indexed slots — so
//! `cluster_scale --threads 8 > a; cluster_scale --threads 1 > b;
//! diff a b` is empty while the 8-thread run is several times faster on a
//! multicore machine. The CI `cluster-matrix` job enforces exactly that
//! diff.

use sfs_bench::{banner, save, section};
use sfs_faas::{Cluster, ClusterRun, Placement};
use sfs_metrics::MarkdownTable;
use sfs_simcore::{parallel, Samples, SimDuration, SimTime};
use sfs_workload::{Workload, WorkloadSpec, LONG_THRESHOLD_MS};

const CORES_PER_HOST: usize = 8;
/// Warm-container keep-alive window (ms) of the affinity model.
const KEEP_ALIVE_MS: u64 = 10_000;
/// Cold-start CPU penalty (ms).
const COLD_START_MS: u64 = 50;

fn cluster(hosts: usize) -> Cluster {
    Cluster::new(hosts, CORES_PER_HOST).with_affinity(
        SimDuration::from_millis(KEEP_ALIVE_MS),
        SimDuration::from_millis(COLD_START_MS),
    )
}

fn fmt_mean(mean: Option<f64>) -> String {
    mean.map_or_else(|| "n/a".to_string(), |m| format!("{m:.1}"))
}

/// Stats computed once per run and shared by the table and the CSV.
struct RunStats {
    /// `None` when the run has no long requests — printed as `n/a`, the
    /// same no-0.0-sentinel rule as the means.
    long_p99_ms: Option<f64>,
    makespan_s: f64,
}

impl RunStats {
    fn of(run: &ClusterRun) -> RunStats {
        let longs: Vec<f64> = run
            .outcomes
            .iter()
            .filter(|o| o.ideal.as_millis_f64() >= LONG_THRESHOLD_MS)
            .map(|o| o.turnaround.as_millis_f64())
            .collect();
        let long_p99_ms = (!longs.is_empty()).then(|| Samples::from_vec(longs).percentile(99.0));
        let makespan_s = run
            .outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO)
            .as_millis_f64()
            / 1e3;
        RunStats {
            long_p99_ms,
            makespan_s,
        }
    }
}

fn row(table: &mut MarkdownTable, head: &[String], run: &ClusterRun, stats: &RunStats) {
    let (min_h, max_h) = (
        run.per_host.iter().min().copied().unwrap_or(0),
        run.per_host.iter().max().copied().unwrap_or(0),
    );
    let mut cells = head.to_vec();
    cells.extend([
        fmt_mean(run.short_mean_ms()),
        fmt_mean(run.long_mean_ms()),
        fmt_mean(stats.long_p99_ms),
        format!("{}", run.cold_starts),
        format!("{min_h}..{max_h}"),
        format!("{:.2}", stats.makespan_s),
    ]);
    table.row(&cells);
}

const COLUMNS: [&str; 6] = [
    "short mean (ms)",
    "long mean (ms)",
    "long p99 (ms)",
    "cold starts",
    "per-host n",
    "makespan (s)",
];

fn workload_for(hosts: usize, n64: usize, load: f64, seed: u64) -> Workload {
    // Scale the request count with the fleet so per-host pressure stays
    // comparable: the 64-host point carries the full budget.
    let n = (n64 * hosts / 64).max(hosts);
    WorkloadSpec::azure_sampled(n, seed)
        .with_load(hosts * CORES_PER_HOST, load)
        .generate()
}

fn main() {
    let threads = parse_threads();
    let n64 = sfs_bench::n_requests(200_000);
    let seed = sfs_bench::seed();
    banner(
        "cluster_scale",
        "hosts x placement x load on the live-dispatch cluster",
        n64,
        seed,
    );
    // Thread count goes to stderr only: stdout must stay byte-identical
    // across `--threads` values.
    eprintln!("[cluster_scale: hosts fan out over {threads} worker thread(s)]");

    // Empty populations are written as empty CSV cells (the table prints
    // `n/a`): absent, never a 0.0 sentinel, and still numerically parseable.
    let csv_mean = |m: Option<f64>| m.map_or_else(String::new, |v| format!("{v}"));
    let mut csv = String::from(
        "sweep,hosts,load,placement,short_mean_ms,long_mean_ms,cold_starts,makespan_s\n",
    );
    let mut push_csv =
        |sweep: &str, hosts: usize, load: f64, run: &ClusterRun, stats: &RunStats| {
            csv.push_str(&format!(
                "{sweep},{hosts},{load},{},{},{},{},{}\n",
                run.placement.name(),
                csv_mean(run.short_mean_ms()),
                csv_mean(run.long_mean_ms()),
                run.cold_starts,
                stats.makespan_s,
            ));
        };

    section("placement x fleet size at 90% cluster load");
    let mut cols = vec!["hosts", "placement"];
    cols.extend_from_slice(&COLUMNS);
    let mut table = MarkdownTable::new(&cols);
    for hosts in [4usize, 16, 64] {
        let w = workload_for(hosts, n64, 0.9, seed);
        let c = cluster(hosts);
        for p in Placement::ALL {
            let run = c.run_with_threads(p, &c.sfs, &w, threads);
            let stats = RunStats::of(&run);
            row(
                &mut table,
                &[format!("{hosts}"), p.name().to_string()],
                &run,
                &stats,
            );
            push_csv("hosts", hosts, 0.9, &run, &stats);
        }
    }
    println!("{}", table.to_markdown());

    section("placement x load on 16 hosts");
    let mut cols = vec!["load", "placement"];
    cols.extend_from_slice(&COLUMNS);
    let mut table = MarkdownTable::new(&cols);
    for load in [0.7f64, 0.9, 1.1] {
        let w = workload_for(16, n64, load, seed);
        let c = cluster(16);
        for p in Placement::ALL {
            let run = c.run_with_threads(p, &c.sfs, &w, threads);
            let stats = RunStats::of(&run);
            row(
                &mut table,
                &[format!("{:.0}%", load * 100.0), p.name().to_string()],
                &run,
                &stats,
            );
            push_csv("load", 16, load, &run, &stats);
        }
    }
    println!("{}", table.to_markdown());

    save("cluster_scale.csv", &csv);
    println!(
        "Reading: join-shortest-queue and least-loaded keep per-host counts\n\
         tight as the fleet grows; long-to-lightest trades a little balance\n\
         for a lighter long tail; consistent-hash pays the fewest cold\n\
         starts (locality) at some balance cost, bounded-load hashing\n\
         keeping the worst host in check. Makespan falling with fleet size\n\
         at fixed per-host pressure is the multi-server scaling the paper's\n\
         §VIII-A sketch asks for."
    );
}

/// `--threads N` beats `SFS_BENCH_THREADS`, which beats the core count.
fn parse_threads() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut threads = None;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" | "-t" => {
                let v = args.get(i + 1).cloned().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(t) if t >= 1 => threads = Some(t),
                    _ => {
                        eprintln!("cluster_scale: --threads needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: cluster_scale [--threads N]");
                println!("  --threads N   host-simulation worker threads (default: autodetect)");
                std::process::exit(0);
            }
            other => {
                eprintln!("cluster_scale: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    threads.unwrap_or_else(parallel::default_threads)
}
