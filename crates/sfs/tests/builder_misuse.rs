//! Regression tests pinning `Sim`'s builder-misuse panic messages.
//!
//! The builder deliberately fails fast with a message naming the missing
//! call; these tests pin the exact wording so a refactor can't silently
//! turn the guidance into an obscure `Option::unwrap` backtrace.

use sfs_core::{KernelOnly, SfsConfig, SfsController, Sim};
use sfs_sched::{MachineParams, Policy};
use sfs_workload::WorkloadSpec;

#[test]
#[should_panic(expected = "Sim: no workload set (call .workload(&w))")]
fn missing_workload_panics_with_guidance() {
    let _ = Sim::on(MachineParams::linux(2))
        .controller(KernelOnly(Policy::NORMAL))
        .run();
}

#[test]
#[should_panic(expected = "Sim: no controller set (call .controller(...))")]
fn missing_controller_panics_with_guidance() {
    let w = WorkloadSpec::azure_sampled(5, 1)
        .with_load(2, 0.5)
        .generate();
    let _ = Sim::on(MachineParams::linux(2)).workload(&w).run();
}

#[test]
#[should_panic(expected = "Sim: no workload set (call .workload(&w))")]
fn missing_both_reports_workload_first() {
    // With neither set, the workload check fires first — pinned so the
    // error a fresh user sees stays the one naming the first builder step.
    let _ = Sim::<'_>::on(MachineParams::linux(1)).run();
}

#[test]
fn well_formed_builder_still_runs() {
    // Control: the pinned panics are misuse-only; the happy path works.
    let w = WorkloadSpec::azure_sampled(8, 2)
        .with_load(2, 0.5)
        .generate();
    let run = Sim::on(MachineParams::linux(2))
        .workload(&w)
        .controller(SfsController::new(SfsConfig::new(2)))
        .run();
    assert_eq!(run.outcomes.len(), 8);
}
