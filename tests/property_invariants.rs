//! Property-based invariants over randomly generated workloads and
//! scheduler configurations: nothing is lost, time is conserved, and the
//! metrics stay in range, for every scheduling policy.

use proptest::prelude::*;

use sfs_repro::sched::{run_open_loop, MachineParams, Phase, Policy, SchedMode, TaskSpec};
use sfs_repro::sfs::{run_baseline, Baseline, SfsConfig, SfsSimulator};
use sfs_repro::simcore::{SimDuration, SimTime};
use sfs_repro::workload::{DurationDist, IatSpec, WorkloadSpec};

/// Strategy: a small random task mix with optional I/O phases.
fn arb_tasks() -> impl Strategy<Value = Vec<(u64, TaskSpec)>> {
    proptest::collection::vec(
        (
            1u64..600,       // arrival offset ms
            1u64..400,       // cpu ms
            0u64..80,        // io ms (0 = pure cpu)
            0u8..3,          // policy selector
        ),
        1..40,
    )
    .prop_map(|rows| {
        let mut at = 0u64;
        rows.into_iter()
            .enumerate()
            .map(|(i, (gap, cpu, io, pol))| {
                at += gap;
                let mut phases = Vec::new();
                if io > 0 {
                    phases.push(Phase::Io(SimDuration::from_millis(io)));
                }
                phases.push(Phase::Cpu(SimDuration::from_millis(cpu)));
                let policy = match pol {
                    0 => Policy::NORMAL,
                    1 => Policy::Fifo { prio: 50 },
                    _ => Policy::Rr { prio: 50 },
                };
                (
                    at,
                    TaskSpec {
                        phases,
                        policy,
                        label: i as u64,
                    },
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn machine_conserves_work_and_loses_nothing(
        tasks in arb_tasks(),
        cores in 1usize..5,
        srtf in proptest::bool::ANY,
    ) {
        let n = tasks.len();
        let total_cpu: u64 = tasks.iter().map(|(_, s)| s.cpu_demand().as_nanos()).sum();
        let params = MachineParams {
            cores,
            ctx_switch_cost: SimDuration::ZERO,
            mode: if srtf { SchedMode::Srtf } else { SchedMode::Linux },
            ..Default::default()
        };
        let arrivals = tasks
            .into_iter()
            .map(|(ms, s)| (SimTime::ZERO + SimDuration::from_millis(ms), s));
        let done = run_open_loop(params, arrivals);
        prop_assert_eq!(done.len(), n, "lost tasks");
        let charged: u64 = done.iter().map(|t| t.cpu_time.as_nanos()).sum();
        prop_assert_eq!(charged, total_cpu, "CPU time not conserved");
        for t in &done {
            prop_assert!(t.finished >= t.arrival);
            prop_assert!(t.turnaround() >= t.ideal, "task {} beat ideal", t.pid);
            prop_assert!(t.rte() > 0.0 && t.rte() <= 1.0);
            prop_assert!(t.first_run.is_some(), "task {} never ran", t.pid);
        }
    }

    #[test]
    fn sfs_completes_arbitrary_workloads(
        n in 20usize..150,
        seed in 0u64..1_000,
        load in 0.3f64..1.1,
        cores in 2usize..7,
        io_fraction in 0.0f64..0.9,
        fixed_slice in proptest::option::of(20u64..300),
    ) {
        let mut spec = WorkloadSpec::azure_sampled(n, seed);
        spec.io_fraction = io_fraction;
        let w = spec.with_load(cores, load).generate();
        let mut cfg = SfsConfig::new(cores);
        if let Some(ms) = fixed_slice {
            cfg = cfg.with_fixed_slice(ms);
        }
        let r = SfsSimulator::new(cfg, MachineParams::linux(cores), w).run();
        prop_assert_eq!(r.outcomes.len(), n);
        for o in &r.outcomes {
            prop_assert!(o.rte > 0.0 && o.rte <= 1.0);
            prop_assert!(o.turnaround.as_nanos() + 1_000 >= o.ideal.as_nanos());
        }
        // Offload + demotion counts can never exceed the request count…
        prop_assert!(r.offloaded <= n as u64);
        // …though a request may be demoted after several I/O rounds.
        prop_assert!(r.polls == 0 || r.polled_tasks > 0 || io_fraction == 0.0);
    }

    #[test]
    fn baselines_agree_on_totals(
        n in 20usize..120,
        seed in 0u64..500,
    ) {
        let w = WorkloadSpec {
            durations: DurationDist::LogUniform { lo_ms: 2.0, hi_ms: 500.0 },
            iat: IatSpec::Poisson { mean_ms: 30.0 },
            ..WorkloadSpec::azure_sampled(n, seed)
        }
        .generate();
        let total_demand: f64 = w.total_cpu_ms();
        for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
            let outs = run_baseline(b, 3, &w);
            prop_assert_eq!(outs.len(), n);
            let sum: f64 = outs.iter().map(|o| o.cpu_demand.as_millis_f64()).sum();
            prop_assert!((sum - total_demand).abs() < 1e-3, "{} demand mismatch", b.name());
        }
    }

    #[test]
    fn determinism_across_policies(
        n in 10usize..60,
        seed in 0u64..200,
    ) {
        let w = WorkloadSpec::azure_sampled(n, seed).with_load(4, 0.9).generate();
        for b in [Baseline::Cfs, Baseline::Srtf] {
            let a = run_baseline(b, 4, &w);
            let bb = run_baseline(b, 4, &w);
            for (x, y) in a.iter().zip(bb.iter()) {
                prop_assert_eq!(x.finished, y.finished);
                prop_assert_eq!(x.ctx_switches, y.ctx_switches);
            }
        }
    }
}
